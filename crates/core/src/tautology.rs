//! Deciding instances of propositional tautologies.
//!
//! The axiom system takes "all the instances of tautologies of
//! propositional calculus" as axioms (Section 4.2). The checker abstracts
//! the maximal non-propositional subformulas of a formula as atoms and
//! evaluates the resulting propositional skeleton over all assignments.

use atl_lang::Formula;
use std::collections::BTreeMap;

/// The propositional skeleton of a formula: `True`, `Not`, and `And` nodes
/// over opaque atoms.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Skeleton {
    True,
    Atom(usize),
    Not(Box<Skeleton>),
    And(Box<Skeleton>, Box<Skeleton>),
}

fn skeletonize(f: &Formula, atoms: &mut BTreeMap<Formula, usize>) -> Skeleton {
    match f {
        Formula::True => Skeleton::True,
        Formula::Not(inner) => Skeleton::Not(Box::new(skeletonize(inner, atoms))),
        Formula::And(a, b) => Skeleton::And(
            Box::new(skeletonize(a, atoms)),
            Box::new(skeletonize(b, atoms)),
        ),
        other => {
            let next = atoms.len();
            let id = *atoms.entry(other.clone()).or_insert(next);
            Skeleton::Atom(id)
        }
    }
}

fn eval(s: &Skeleton, assignment: u64) -> bool {
    match s {
        Skeleton::True => true,
        Skeleton::Atom(i) => assignment & (1 << i) != 0,
        Skeleton::Not(inner) => !eval(inner, assignment),
        Skeleton::And(a, b) => eval(a, assignment) && eval(b, assignment),
    }
}

/// The largest number of distinct atoms [`is_tautology`] will truth-table.
pub const MAX_ATOMS: usize = 20;

/// True if `f` is an instance of a propositional tautology: abstracting its
/// maximal non-`¬`/`∧`/`true` subformulas as atoms yields a formula true
/// under every assignment.
///
/// Identical subformulas share an atom, so `φ ∨ ¬φ` is recognized for any
/// `φ`.
///
/// # Panics
///
/// Panics if the skeleton has more than [`MAX_ATOMS`] distinct atoms (no
/// axiom instance used by this crate comes close).
pub fn is_tautology(f: &Formula) -> bool {
    let mut atoms = BTreeMap::new();
    let skel = skeletonize(f, &mut atoms);
    let n = atoms.len();
    assert!(
        n <= MAX_ATOMS,
        "tautology check over {n} atoms exceeds MAX_ATOMS = {MAX_ATOMS}"
    );
    (0..(1u64 << n)).all(|assignment| eval(&skel, assignment))
}

/// True if `f` is propositionally *satisfiable* (true under some
/// assignment of its modal atoms). Useful for sanity checks on derived
/// rules.
///
/// # Panics
///
/// As for [`is_tautology`].
pub fn is_satisfiable(f: &Formula) -> bool {
    let mut atoms = BTreeMap::new();
    let skel = skeletonize(f, &mut atoms);
    let n = atoms.len();
    assert!(n <= MAX_ATOMS, "satisfiability check over too many atoms");
    (0..(1u64 << n)).any(|assignment| eval(&skel, assignment))
}

#[cfg(test)]
mod tests {
    use super::*;
    use atl_lang::{Key, Principal, Prop};

    fn p() -> Formula {
        Formula::prop(Prop::new("p"))
    }

    fn q() -> Formula {
        Formula::prop(Prop::new("q"))
    }

    #[test]
    fn excluded_middle() {
        assert!(is_tautology(&Formula::or(p(), Formula::not(p()))));
    }

    #[test]
    fn modal_subformulas_are_atoms() {
        let b = Formula::believes(
            Principal::new("A"),
            Formula::shared_key(Principal::new("A"), Key::new("K"), Principal::new("B")),
        );
        // φ ∨ ¬φ for a modal φ.
        assert!(is_tautology(&Formula::or(b.clone(), Formula::not(b))));
    }

    #[test]
    fn conjunction_elimination_and_introduction() {
        let elim = Formula::implies(Formula::and(p(), q()), p());
        assert!(is_tautology(&elim));
        let intro = Formula::implies(p(), Formula::implies(q(), Formula::and(p(), q())));
        assert!(is_tautology(&intro));
    }

    #[test]
    fn non_tautologies_rejected() {
        assert!(!is_tautology(&p()));
        assert!(!is_tautology(&Formula::implies(p(), q())));
        assert!(!is_tautology(&Formula::falsum()));
    }

    #[test]
    fn identical_modal_atoms_are_shared() {
        let s1 = Formula::sees(
            Principal::new("A"),
            atl_lang::Message::nonce(atl_lang::Nonce::new("N")),
        );
        let f = Formula::implies(s1.clone(), s1);
        assert!(is_tautology(&f));
    }

    #[test]
    fn different_modal_atoms_are_distinct() {
        let s1 = Formula::has(Principal::new("A"), Key::new("K1"));
        let s2 = Formula::has(Principal::new("A"), Key::new("K2"));
        assert!(!is_tautology(&Formula::implies(s1, s2)));
    }

    #[test]
    fn satisfiability() {
        assert!(is_satisfiable(&p()));
        assert!(!is_satisfiable(&Formula::and(p(), Formula::not(p()))));
    }

    #[test]
    fn true_constant_is_tautology() {
        assert!(is_tautology(&Formula::True));
        assert!(!is_tautology(&Formula::falsum()));
    }

    #[test]
    fn pierce_law() {
        // ((p ⊃ q) ⊃ p) ⊃ p — a classical (non-intuitionistic) tautology.
        let f = Formula::implies(Formula::implies(Formula::implies(p(), q()), p()), p());
        assert!(is_tautology(&f));
    }
}
