//! A textual format for idealized protocols, so analyses can be run from
//! files (see the `atl` CLI in the umbrella crate).
//!
//! The format is line-based; `#` starts a comment. Directives:
//!
//! ```text
//! protocol kerberos-figure1
//! principals A B S
//! keys Kab Kas Kbs
//!
//! assume A believes (A <-Kas-> S)
//! assume A has Kas
//!
//! step S -> A : {Ts, <<A <-Kab-> B>>}Kas@S
//! newkey A Kab
//!
//! goal A believes (A <-Kab-> B)
//! ```
//!
//! Formulas and messages use the [`atl_lang::parser`] concrete syntax;
//! `principals` and `keys` seed its symbol table.

use crate::annotate::AtProtocol;
use atl_lang::parser::{parse_formula, parse_message, ParseError, Symbols};
use atl_lang::{Formula, Key};
use std::error::Error;
use std::fmt;

/// Error produced when a protocol spec fails to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl SpecError {
    /// The one-line `file:line: message` diagnostic for this error.
    ///
    /// The CLI (`atl analyze` / `atl eval`, exit code 3) and the serve
    /// daemon (`ERR` responses) both report parse failures with exactly
    /// this string, so the two surfaces stay byte-identical.
    pub fn diagnostic(&self, origin: &str) -> String {
        format!("{origin}:{}: {}", self.line, self.message)
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec line {}: {}", self.line, self.message)
    }
}

impl Error for SpecError {}

fn err(line: usize, message: impl Into<String>) -> SpecError {
    SpecError {
        line,
        message: message.into(),
    }
}

fn lang_err(line: usize, e: ParseError) -> SpecError {
    err(line, e.to_string())
}

/// Parses a protocol spec into an [`AtProtocol`] (plus the symbol table it
/// declared, for parsing further queries against it).
///
/// # Errors
///
/// [`SpecError`] with the offending line on any syntax problem.
pub fn parse_spec(input: &str) -> Result<(AtProtocol, Symbols), SpecError> {
    let mut name = String::from("unnamed");
    let mut syms = Symbols::new();
    let mut assumptions = Vec::new();
    let mut steps: Vec<crate::annotate::AtStep> = Vec::new();
    let mut goals = Vec::new();

    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (keyword, rest) = match line.split_once(char::is_whitespace) {
            Some((k, r)) => (k, r.trim()),
            None => (line, ""),
        };
        match keyword {
            "protocol" => {
                if rest.is_empty() {
                    return Err(err(lineno, "protocol needs a name"));
                }
                name = rest.to_string();
            }
            "principals" => {
                syms = syms.principals(rest.split_whitespace().map(str::to_string));
            }
            "keys" => {
                syms = syms.keys(rest.split_whitespace().map(str::to_string));
            }
            "assume" => {
                let f = parse_formula(rest, &syms).map_err(|e| lang_err(lineno, e))?;
                assumptions.push(f);
            }
            "goal" => {
                let f = parse_formula(rest, &syms).map_err(|e| lang_err(lineno, e))?;
                goals.push(f);
            }
            "newkey" => {
                let mut parts = rest.split_whitespace();
                let (Some(p), Some(k), None) = (parts.next(), parts.next(), parts.next()) else {
                    return Err(err(lineno, "newkey takes exactly `newkey P K`"));
                };
                steps.push(crate::annotate::AtStep::NewKey {
                    principal: p.into(),
                    key: Key::new(k),
                });
            }
            "step" => {
                // step FROM -> TO : MESSAGE
                let Some((route, message)) = rest.split_once(':') else {
                    return Err(err(lineno, "step needs `FROM -> TO : MESSAGE`"));
                };
                let Some((from, to)) = route.split_once("->") else {
                    return Err(err(lineno, "step route needs `FROM -> TO`"));
                };
                let (from, to) = (from.trim(), to.trim());
                if from.is_empty() || to.is_empty() {
                    return Err(err(lineno, "step route needs `FROM -> TO`"));
                }
                let m = parse_message(message.trim(), &syms).map_err(|e| lang_err(lineno, e))?;
                steps.push(crate::annotate::AtStep::Send {
                    from: from.into(),
                    to: to.into(),
                    message: m,
                });
            }
            other => {
                return Err(err(
                    lineno,
                    format!("unknown directive `{other}` (expected protocol/principals/keys/assume/step/newkey/goal)"),
                ));
            }
        }
    }

    let mut proto = AtProtocol::new(name);
    proto.assumptions = assumptions;
    proto.steps = steps;
    proto.goals = goals;
    Ok((proto, syms))
}

/// Canonicalizes spec text for content addressing: comments are
/// stripped, lines trimmed, and blank lines dropped — so two spec files
/// that differ only in comments or surrounding whitespace canonicalize
/// identically (and serve-mode `LOAD`/`RELOAD`, which digest this form,
/// treat them as the same spec). Directive-internal spacing is kept
/// untouched: [`parse_spec`] begins with exactly this stripping, so
/// equal canonical forms guarantee line-for-line parse equivalence, and
/// nothing more aggressive is attempted.
pub fn canonicalize_spec(input: &str) -> String {
    let mut out = String::new();
    for raw in input.lines() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

/// How the assumption list changed between two parses of a spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AssumptionDelta {
    /// Same multiset of assumptions (possibly reordered).
    Unchanged,
    /// Every old assumption survives; the genuinely new ones are listed
    /// in new-spec order. Monotone for the annotation closure, so the
    /// analysis can resume from its previous fixpoint.
    Added(Vec<Formula>),
    /// Assumptions were removed or modified — not monotone; the
    /// analysis must be recomputed.
    Rewritten,
}

/// Structural classification of a spec edit: which components of the
/// parsed protocol (and its symbol table) actually changed. This is
/// what the serve-mode `RELOAD` path keys its reuse decisions on —
/// comment/whitespace-only edits never reach it, because the canonical
/// content digest ([`canonicalize_spec`]) already deduplicates them.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecDiff {
    /// The `protocol` name changed.
    pub name_changed: bool,
    /// The declared symbol table (`principals`/`keys` lines) changed —
    /// queries against the spec may now parse differently.
    pub symbols_changed: bool,
    /// How the assumptions changed.
    pub assumptions: AssumptionDelta,
    /// A `step`/`newkey` line changed (message, route, or order).
    pub steps_changed: bool,
    /// The goal list changed.
    pub goals_changed: bool,
}

impl SpecDiff {
    /// Classifies the edit between two parsed specs.
    pub fn classify(
        old_at: &AtProtocol,
        old_syms: &Symbols,
        new_at: &AtProtocol,
        new_syms: &Symbols,
    ) -> SpecDiff {
        SpecDiff {
            name_changed: old_at.name != new_at.name,
            symbols_changed: old_syms != new_syms,
            assumptions: assumption_delta(&old_at.assumptions, &new_at.assumptions),
            steps_changed: old_at.steps != new_at.steps,
            goals_changed: old_at.goals != new_at.goals,
        }
    }

    /// True if nothing structural changed at all.
    pub fn identical(&self) -> bool {
        !self.name_changed
            && !self.symbols_changed
            && self.assumptions == AssumptionDelta::Unchanged
            && !self.steps_changed
            && !self.goals_changed
    }

    /// The assumptions newly added, when the edit is monotone for the
    /// annotation closure: steps unchanged and no assumption removed or
    /// modified. `Some(&[])` means the closure itself is untouched
    /// (goal/name/symbol edits only). `None` means the analysis must be
    /// recomputed from scratch.
    pub fn analysis_resumable(&self) -> Option<&[Formula]> {
        if self.steps_changed {
            return None;
        }
        match &self.assumptions {
            AssumptionDelta::Unchanged => Some(&[]),
            AssumptionDelta::Added(added) => Some(added),
            AssumptionDelta::Rewritten => None,
        }
    }

    /// The dominant edit class, for counters and reload reports.
    pub fn kind(&self) -> &'static str {
        if self.identical() {
            return "unchanged";
        }
        if self.symbols_changed {
            return "symbols-changed";
        }
        if self.steps_changed {
            return "message-changed";
        }
        match self.assumptions {
            AssumptionDelta::Added(_) => "assumption-added",
            AssumptionDelta::Rewritten => "assumptions-rewritten",
            AssumptionDelta::Unchanged => {
                if self.goals_changed {
                    "goal-changed"
                } else {
                    "renamed"
                }
            }
        }
    }
}

/// Multiset difference of assumption lists: each new assumption
/// consumes one matching old occurrence; leftovers on the new side are
/// additions, leftovers on the old side mean a rewrite.
fn assumption_delta(old: &[Formula], new: &[Formula]) -> AssumptionDelta {
    let mut remaining: Vec<Option<&Formula>> = old.iter().map(Some).collect();
    let mut added = Vec::new();
    for f in new {
        match remaining.iter().position(|r| r.is_some_and(|g| g == f)) {
            Some(i) => remaining[i] = None,
            None => added.push(f.clone()),
        }
    }
    if remaining.iter().any(Option::is_some) {
        AssumptionDelta::Rewritten
    } else if added.is_empty() {
        AssumptionDelta::Unchanged
    } else {
        AssumptionDelta::Added(added)
    }
}

/// Renders an [`AtProtocol`] back into the spec format (a round-trippable
/// inverse of [`parse_spec`] up to symbol declarations supplied by the
/// caller).
pub fn render_spec(proto: &AtProtocol, syms_principals: &[&str], syms_keys: &[&str]) -> String {
    let mut out = String::new();
    out.push_str(&format!("protocol {}\n", proto.name));
    if !syms_principals.is_empty() {
        out.push_str(&format!("principals {}\n", syms_principals.join(" ")));
    }
    if !syms_keys.is_empty() {
        out.push_str(&format!("keys {}\n", syms_keys.join(" ")));
    }
    out.push('\n');
    for a in &proto.assumptions {
        out.push_str(&format!("assume {a}\n"));
    }
    out.push('\n');
    for s in &proto.steps {
        match s {
            crate::annotate::AtStep::Send { from, to, message } => {
                out.push_str(&format!("step {from} -> {to} : {message}\n"));
            }
            crate::annotate::AtStep::NewKey { principal, key } => {
                out.push_str(&format!("newkey {principal} {key}\n"));
            }
        }
    }
    out.push('\n');
    for g in &proto.goals {
        out.push_str(&format!("goal {g}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::analyze_at;

    const FIGURE1: &str = r#"
# Figure 1 of Abadi & Tuttle 1991 (B's half).
protocol kerberos-figure1-spec
principals A B S
keys Kab Kas Kbs

assume B believes (B <-Kbs-> S)
assume B believes (S controls (A <-Kab-> B))
assume B believes fresh(Ts)
assume B has Kbs

step A -> B : {Ts, <<A <-Kab-> B>>}Kbs@S

goal B believes (A <-Kab-> B)
"#;

    #[test]
    fn parses_and_analyzes_figure1() {
        let (proto, _) = parse_spec(FIGURE1).unwrap();
        assert_eq!(proto.name, "kerberos-figure1-spec");
        assert_eq!(proto.assumptions.len(), 4);
        assert_eq!(proto.steps.len(), 1);
        assert_eq!(proto.goals.len(), 1);
        let analysis = analyze_at(&proto);
        assert!(analysis.succeeded());
    }

    #[test]
    fn newkey_directive() {
        let spec = "protocol t\nnewkey A Kab\ngoal A has Kab\n";
        let (proto, _) = parse_spec(spec).unwrap();
        assert!(analyze_at(&proto).succeeded());
    }

    #[test]
    fn reports_line_numbers() {
        let spec = "protocol t\nassume A believes\n";
        let e = parse_spec(spec).unwrap_err();
        assert_eq!(e.line, 2);
        let spec2 = "protocol t\n\nfrobnicate x\n";
        let e2 = parse_spec(spec2).unwrap_err();
        assert_eq!(e2.line, 3);
        assert!(e2.message.contains("unknown directive"));
    }

    #[test]
    fn malformed_steps_rejected() {
        assert!(parse_spec("step A B : X\n").is_err());
        assert!(parse_spec("step A -> B X\n").is_err());
        assert!(parse_spec("newkey A\n").is_err());
        assert!(parse_spec("protocol\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let spec = "# comment\n\nprotocol t # trailing\n";
        let (proto, _) = parse_spec(spec).unwrap();
        assert_eq!(proto.name, "t");
    }

    #[test]
    fn render_roundtrips() {
        let (proto, _) = parse_spec(FIGURE1).unwrap();
        let rendered = render_spec(&proto, &["A", "B", "S"], &["Kab", "Kas", "Kbs"]);
        let (again, _) = parse_spec(&rendered).unwrap();
        assert_eq!(proto, again);
    }

    #[test]
    fn canonicalization_erases_comments_and_whitespace_only() {
        let noisy = "# banner\n\n  protocol t   # named\n\nassume A has Kab\n";
        let clean = "protocol t\nassume A has Kab\n";
        assert_eq!(canonicalize_spec(noisy), canonicalize_spec(clean));
        // Directive-internal spacing is significant to the parser's
        // token splitting, so it must survive canonicalization.
        assert_eq!(canonicalize_spec("goal A  has Kab"), "goal A  has Kab\n");
        // And a real edit must change the canonical form.
        assert_ne!(
            canonicalize_spec(clean),
            canonicalize_spec("protocol t\nassume B has Kab\n")
        );
    }

    #[test]
    fn canonical_twins_parse_identically() {
        let noisy = format!("# preamble\n{FIGURE1}\n# postscript\n");
        let (a, sa) = parse_spec(FIGURE1).unwrap();
        let (b, sb) = parse_spec(&noisy).unwrap();
        assert_eq!(canonicalize_spec(FIGURE1), canonicalize_spec(&noisy));
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    fn diff(old: &str, new: &str) -> SpecDiff {
        let (oa, os) = parse_spec(old).unwrap();
        let (na, ns) = parse_spec(new).unwrap();
        SpecDiff::classify(&oa, &os, &na, &ns)
    }

    #[test]
    fn classifies_each_edit_class() {
        let base = FIGURE1;
        let d = diff(base, base);
        assert!(d.identical());
        assert_eq!(d.kind(), "unchanged");
        assert_eq!(d.analysis_resumable(), Some(&[][..]));

        let added = format!("{base}assume B believes fresh(Tb)\n");
        let d = diff(base, &added);
        assert_eq!(d.kind(), "assumption-added");
        let delta = d.analysis_resumable().unwrap();
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].to_string(), "B believes fresh(Tb)");

        let removed = base.replacen("assume B has Kbs\n", "", 1);
        let d = diff(base, &removed);
        assert_eq!(d.kind(), "assumptions-rewritten");
        assert_eq!(d.analysis_resumable(), None);

        let modified = base.replacen("fresh(Ts)", "fresh(Tb)", 1);
        let d = diff(base, &modified);
        assert_eq!(d.kind(), "assumptions-rewritten");

        let message = base.replacen("{Ts,", "{Tb,", 1);
        let d = diff(base, &message);
        assert!(d.steps_changed);
        assert_eq!(d.kind(), "message-changed");
        assert_eq!(d.analysis_resumable(), None);

        let principals = base.replacen("principals A B S", "principals A B S E", 1);
        let d = diff(base, &principals);
        assert_eq!(d.kind(), "symbols-changed");

        let goal = base.replacen("goal B believes", "goal B sees Kab\ngoal B believes", 1);
        let d = diff(base, &goal);
        assert!(d.goals_changed && !d.steps_changed);
        assert_eq!(d.kind(), "goal-changed");
        assert_eq!(d.analysis_resumable(), Some(&[][..]));

        let renamed = base.replacen("kerberos-figure1-spec", "kerberos-b", 1);
        let d = diff(base, &renamed);
        assert_eq!(d.kind(), "renamed");
        assert_eq!(d.analysis_resumable(), Some(&[][..]));
    }

    #[test]
    fn assumption_delta_is_a_multiset_diff() {
        let (at, syms) = parse_spec(FIGURE1).unwrap();
        let f = |s: &str| parse_formula(s, &syms).unwrap();
        let old = at.assumptions.clone();

        // Reordering is Unchanged: same multiset.
        let mut reordered = old.clone();
        reordered.reverse();
        assert_eq!(
            assumption_delta(&old, &reordered),
            AssumptionDelta::Unchanged
        );

        // A duplicated occurrence counts as an addition...
        let mut dup = old.clone();
        dup.push(old[0].clone());
        assert_eq!(
            assumption_delta(&old, &dup),
            AssumptionDelta::Added(vec![old[0].clone()])
        );
        // ...and removing one of two equal occurrences is a rewrite.
        assert_eq!(assumption_delta(&dup, &old), AssumptionDelta::Rewritten);

        // Simultaneous add + remove is a rewrite, not an add.
        let mut swapped = old.clone();
        swapped[0] = f("B believes fresh(Tb)");
        assert_eq!(assumption_delta(&old, &swapped), AssumptionDelta::Rewritten);
    }
}
