//! A textual format for idealized protocols, so analyses can be run from
//! files (see the `atl` CLI in the umbrella crate).
//!
//! The format is line-based; `#` starts a comment. Directives:
//!
//! ```text
//! protocol kerberos-figure1
//! principals A B S
//! keys Kab Kas Kbs
//!
//! assume A believes (A <-Kas-> S)
//! assume A has Kas
//!
//! step S -> A : {Ts, <<A <-Kab-> B>>}Kas@S
//! newkey A Kab
//!
//! goal A believes (A <-Kab-> B)
//! ```
//!
//! Formulas and messages use the [`atl_lang::parser`] concrete syntax;
//! `principals` and `keys` seed its symbol table.

use crate::annotate::AtProtocol;
use atl_lang::parser::{parse_formula, parse_message, ParseError, Symbols};
use atl_lang::Key;
use std::error::Error;
use std::fmt;

/// Error produced when a protocol spec fails to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl SpecError {
    /// The one-line `file:line: message` diagnostic for this error.
    ///
    /// The CLI (`atl analyze` / `atl eval`, exit code 3) and the serve
    /// daemon (`ERR` responses) both report parse failures with exactly
    /// this string, so the two surfaces stay byte-identical.
    pub fn diagnostic(&self, origin: &str) -> String {
        format!("{origin}:{}: {}", self.line, self.message)
    }
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "spec line {}: {}", self.line, self.message)
    }
}

impl Error for SpecError {}

fn err(line: usize, message: impl Into<String>) -> SpecError {
    SpecError {
        line,
        message: message.into(),
    }
}

fn lang_err(line: usize, e: ParseError) -> SpecError {
    err(line, e.to_string())
}

/// Parses a protocol spec into an [`AtProtocol`] (plus the symbol table it
/// declared, for parsing further queries against it).
///
/// # Errors
///
/// [`SpecError`] with the offending line on any syntax problem.
pub fn parse_spec(input: &str) -> Result<(AtProtocol, Symbols), SpecError> {
    let mut name = String::from("unnamed");
    let mut syms = Symbols::new();
    let mut assumptions = Vec::new();
    let mut steps: Vec<crate::annotate::AtStep> = Vec::new();
    let mut goals = Vec::new();

    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (keyword, rest) = match line.split_once(char::is_whitespace) {
            Some((k, r)) => (k, r.trim()),
            None => (line, ""),
        };
        match keyword {
            "protocol" => {
                if rest.is_empty() {
                    return Err(err(lineno, "protocol needs a name"));
                }
                name = rest.to_string();
            }
            "principals" => {
                syms = syms.principals(rest.split_whitespace().map(str::to_string));
            }
            "keys" => {
                syms = syms.keys(rest.split_whitespace().map(str::to_string));
            }
            "assume" => {
                let f = parse_formula(rest, &syms).map_err(|e| lang_err(lineno, e))?;
                assumptions.push(f);
            }
            "goal" => {
                let f = parse_formula(rest, &syms).map_err(|e| lang_err(lineno, e))?;
                goals.push(f);
            }
            "newkey" => {
                let mut parts = rest.split_whitespace();
                let (Some(p), Some(k), None) = (parts.next(), parts.next(), parts.next()) else {
                    return Err(err(lineno, "newkey takes exactly `newkey P K`"));
                };
                steps.push(crate::annotate::AtStep::NewKey {
                    principal: p.into(),
                    key: Key::new(k),
                });
            }
            "step" => {
                // step FROM -> TO : MESSAGE
                let Some((route, message)) = rest.split_once(':') else {
                    return Err(err(lineno, "step needs `FROM -> TO : MESSAGE`"));
                };
                let Some((from, to)) = route.split_once("->") else {
                    return Err(err(lineno, "step route needs `FROM -> TO`"));
                };
                let (from, to) = (from.trim(), to.trim());
                if from.is_empty() || to.is_empty() {
                    return Err(err(lineno, "step route needs `FROM -> TO`"));
                }
                let m = parse_message(message.trim(), &syms).map_err(|e| lang_err(lineno, e))?;
                steps.push(crate::annotate::AtStep::Send {
                    from: from.into(),
                    to: to.into(),
                    message: m,
                });
            }
            other => {
                return Err(err(
                    lineno,
                    format!("unknown directive `{other}` (expected protocol/principals/keys/assume/step/newkey/goal)"),
                ));
            }
        }
    }

    let mut proto = AtProtocol::new(name);
    proto.assumptions = assumptions;
    proto.steps = steps;
    proto.goals = goals;
    Ok((proto, syms))
}

/// Renders an [`AtProtocol`] back into the spec format (a round-trippable
/// inverse of [`parse_spec`] up to symbol declarations supplied by the
/// caller).
pub fn render_spec(proto: &AtProtocol, syms_principals: &[&str], syms_keys: &[&str]) -> String {
    let mut out = String::new();
    out.push_str(&format!("protocol {}\n", proto.name));
    if !syms_principals.is_empty() {
        out.push_str(&format!("principals {}\n", syms_principals.join(" ")));
    }
    if !syms_keys.is_empty() {
        out.push_str(&format!("keys {}\n", syms_keys.join(" ")));
    }
    out.push('\n');
    for a in &proto.assumptions {
        out.push_str(&format!("assume {a}\n"));
    }
    out.push('\n');
    for s in &proto.steps {
        match s {
            crate::annotate::AtStep::Send { from, to, message } => {
                out.push_str(&format!("step {from} -> {to} : {message}\n"));
            }
            crate::annotate::AtStep::NewKey { principal, key } => {
                out.push_str(&format!("newkey {principal} {key}\n"));
            }
        }
    }
    out.push('\n');
    for g in &proto.goals {
        out.push_str(&format!("goal {g}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::annotate::analyze_at;

    const FIGURE1: &str = r#"
# Figure 1 of Abadi & Tuttle 1991 (B's half).
protocol kerberos-figure1-spec
principals A B S
keys Kab Kas Kbs

assume B believes (B <-Kbs-> S)
assume B believes (S controls (A <-Kab-> B))
assume B believes fresh(Ts)
assume B has Kbs

step A -> B : {Ts, <<A <-Kab-> B>>}Kbs@S

goal B believes (A <-Kab-> B)
"#;

    #[test]
    fn parses_and_analyzes_figure1() {
        let (proto, _) = parse_spec(FIGURE1).unwrap();
        assert_eq!(proto.name, "kerberos-figure1-spec");
        assert_eq!(proto.assumptions.len(), 4);
        assert_eq!(proto.steps.len(), 1);
        assert_eq!(proto.goals.len(), 1);
        let analysis = analyze_at(&proto);
        assert!(analysis.succeeded());
    }

    #[test]
    fn newkey_directive() {
        let spec = "protocol t\nnewkey A Kab\ngoal A has Kab\n";
        let (proto, _) = parse_spec(spec).unwrap();
        assert!(analyze_at(&proto).succeeded());
    }

    #[test]
    fn reports_line_numbers() {
        let spec = "protocol t\nassume A believes\n";
        let e = parse_spec(spec).unwrap_err();
        assert_eq!(e.line, 2);
        let spec2 = "protocol t\n\nfrobnicate x\n";
        let e2 = parse_spec(spec2).unwrap_err();
        assert_eq!(e2.line, 3);
        assert!(e2.message.contains("unknown directive"));
    }

    #[test]
    fn malformed_steps_rejected() {
        assert!(parse_spec("step A B : X\n").is_err());
        assert!(parse_spec("step A -> B X\n").is_err());
        assert!(parse_spec("newkey A\n").is_err());
        assert!(parse_spec("protocol\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let spec = "# comment\n\nprotocol t # trailing\n";
        let (proto, _) = parse_spec(spec).unwrap();
        assert_eq!(proto.name, "t");
    }

    #[test]
    fn render_roundtrips() {
        let (proto, _) = parse_spec(FIGURE1).unwrap();
        let rendered = render_spec(&proto, &["A", "B", "S"], &["Kab", "Kas", "Kbs"]);
        let (again, _) = parse_spec(&rendered).unwrap();
        assert_eq!(proto, again);
    }
}
