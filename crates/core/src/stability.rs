//! Stability analysis (Sections 2.3 and 4.3).
//!
//! A formula is *stable* if it remains true once it becomes true within a
//! run. The annotation procedure carries assertions from one protocol step
//! to later steps, which is sound only for stable formulas. The original
//! logic had no negation, so every formula was stable; the reformulated
//! logic admits unstable formulas, and Section 4.3 requires the formulas
//! annotating protocols (in practice: the initial assumptions) to be
//! stable, enforced by a simple linguistic restriction.
//!
//! This module provides both the conservative linguistic check
//! ([`is_linguistically_stable`]) and a semantic check over a concrete
//! system ([`is_semantically_stable`]).

use crate::semantics::{Semantics, SemanticsError};
use atl_lang::Formula;
use atl_model::Point;

/// True if `f` is *rigid*: its truth value is constant across the points
/// of any single run (so both it and its negation are stable).
///
/// Rigid constructs: `fresh` (fixed by the pre-epoch traffic), shared keys
/// and secrets (quantified over all times), `controls` (quantified over
/// the epoch), and propositional combinations thereof.
fn is_rigid(f: &Formula) -> bool {
    match f {
        Formula::True => true,
        Formula::Fresh(_)
        | Formula::SharedKey(..)
        | Formula::SharedSecret(..)
        | Formula::PublicKey(..) => true,
        Formula::Controls(_, g) => is_monotone(g) || is_rigid(g),
        Formula::Not(g) => is_rigid(g),
        Formula::And(a, b) => is_rigid(a) && is_rigid(b),
        _ => false,
    }
}

/// True if `f` is *monotone*: once true, it stays true (the core stability
/// notion).
///
/// Monotone constructs: everything rigid; `sees`/`said`/`says`/`has`
/// (histories and key sets only grow); conjunctions of monotone formulas;
/// negations of rigid formulas; and `P believes φ` for monotone `φ` whose
/// truth `P`'s growing information can only confirm — conservatively, we
/// accept belief of rigid bodies only, which covers the initial
/// assumptions used in practice (beliefs in shared keys, freshness,
/// jurisdiction, and nested such beliefs).
fn is_monotone(f: &Formula) -> bool {
    match f {
        Formula::True => true,
        Formula::Sees(..) | Formula::Said(..) | Formula::Says(..) | Formula::Has(..) => true,
        Formula::Fresh(_)
        | Formula::SharedKey(..)
        | Formula::SharedSecret(..)
        | Formula::PublicKey(..) => true,
        Formula::Controls(_, g) => is_monotone(g) || is_rigid(g),
        Formula::Not(g) => is_rigid(g),
        Formula::And(a, b) => is_monotone(a) && is_monotone(b),
        Formula::Believes(_, g) => is_rigid(g) || is_belief_of_rigid(g),
        Formula::Prop(_) => false,
    }
}

fn is_belief_of_rigid(f: &Formula) -> bool {
    match f {
        Formula::Believes(_, g) => is_rigid(g) || is_belief_of_rigid(g),
        Formula::And(a, b) => {
            (is_rigid(a) || is_belief_of_rigid(a)) && (is_rigid(b) || is_belief_of_rigid(b))
        }
        _ => is_rigid(f),
    }
}

/// The conservative linguistic stability check of Section 4.3.
///
/// Accepts formulas built so that truth can only be gained over a run:
/// primitive propositions are rejected (their interpretation is
/// arbitrary), and `believes`/negation are restricted as described on
/// `is_monotone` above. A `false` answer does not mean the formula is
/// unstable — use [`is_semantically_stable`] to check against a system.
pub fn is_linguistically_stable(f: &Formula) -> bool {
    is_monotone(f)
}

/// Checks stability of `f` semantically: in every run of the evaluator's
/// system, once `f` is true at a time it stays true at later times.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn is_semantically_stable(sem: &Semantics<'_>, f: &Formula) -> Result<bool, SemanticsError> {
    for (ri, run) in sem.system().runs().iter().enumerate() {
        let mut seen_true = false;
        for k in run.times() {
            let now = sem.eval(Point::new(ri, k), f)?;
            if seen_true && !now {
                return Ok(false);
            }
            seen_true = seen_true || now;
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::GoodRuns;
    use atl_lang::{Key, Message, Nonce, Prop};
    use atl_model::{RunBuilder, System};

    fn nonce(s: &str) -> Message {
        Message::nonce(Nonce::new(s))
    }

    #[test]
    fn monotone_constructs_accepted() {
        let cases = [
            Formula::sees("A", nonce("X")),
            Formula::said("A", nonce("X")),
            Formula::has("A", Key::new("K")),
            Formula::fresh(nonce("X")),
            Formula::shared_key("A", Key::new("K"), "B"),
            Formula::believes("A", Formula::shared_key("A", Key::new("K"), "B")),
            Formula::believes("A", Formula::believes("B", Formula::fresh(nonce("T")))),
            Formula::controls("S", Formula::shared_key("A", Key::new("K"), "B")),
            Formula::believes("A", Formula::not(Formula::fresh(nonce("T")))),
        ];
        for f in cases {
            assert!(is_linguistically_stable(&f), "{f}");
        }
    }

    #[test]
    fn unstable_shapes_rejected() {
        let cases = [
            Formula::prop(Prop::new("p")),
            Formula::not(Formula::sees("A", nonce("X"))),
            Formula::not(Formula::has("A", Key::new("K"))),
            Formula::believes("A", Formula::sees("A", nonce("X"))),
        ];
        for f in cases {
            assert!(!is_linguistically_stable(&f), "{f}");
        }
    }

    #[test]
    fn semantic_stability_of_sees() {
        let mut b = RunBuilder::new(0);
        b.principal("A", []);
        b.principal("B", []);
        b.send("A", nonce("X"), "B").unwrap();
        b.receive("B", &nonce("X")).unwrap();
        b.new_key("B", "K");
        let sys = System::new([b.build().unwrap()]);
        let sem = Semantics::new(&sys, GoodRuns::all_runs(&sys));
        assert!(is_semantically_stable(&sem, &Formula::sees("B", nonce("X"))).unwrap());
        // The negation of sees becomes false and stays false — unstable in
        // the formal sense only if it flips true→false; ¬sees flips
        // exactly that way here.
        assert!(
            !is_semantically_stable(&sem, &Formula::not(Formula::sees("B", nonce("X")))).unwrap()
        );
    }

    #[test]
    fn linguistic_check_is_sound_for_samples() {
        // Every linguistically stable sample formula is semantically
        // stable on a concrete system.
        let mut b = RunBuilder::new(-1);
        b.principal("A", [Key::new("K")]);
        b.principal("B", [Key::new("K")]);
        let c = Message::encrypted(nonce("X"), Key::new("K"), atl_lang::Principal::new("A"));
        b.send("A", c.clone(), "B").unwrap();
        b.receive("B", &c).unwrap();
        let sys = System::new([b.build().unwrap()]);
        let sem = Semantics::new(&sys, GoodRuns::all_runs(&sys));
        let samples = [
            Formula::sees("B", c.clone()),
            Formula::said("A", nonce("X")),
            Formula::has("A", Key::new("K")),
            Formula::fresh(nonce("Y")),
            Formula::shared_key("A", Key::new("K"), "B"),
            Formula::believes("B", Formula::shared_key("A", Key::new("K"), "B")),
        ];
        for f in samples {
            if is_linguistically_stable(&f) {
                assert!(is_semantically_stable(&sem, &f).unwrap(), "{f}");
            }
        }
    }
}
