//! Choosing the good runs (Section 7).
//!
//! Belief is defined relative to a vector `G = (G_1, …, G_n)` of good-run
//! sets. Section 7 shows how to *construct* `G` from each principal's
//! initial assumptions `I_i` (formulas `P_i believes φ`):
//!
//! - under restriction **I1** (no belief within a negation) the iterative
//!   construction below yields a `G` that *supports* `I` — every initial
//!   assumption holds at every time-0 point relative to `G` (Theorem 2);
//! - under **I1 + I2** (no mistaken cross-beliefs) the constructed `G` is
//!   *optimum*: the maximum, under pointwise inclusion, of all supporting
//!   vectors (Theorem 3);
//! - without I2 there is in general **no** optimum — see
//!   [`examples::coin_toss`](crate::examples) for the paper's
//!   counterexample.

use crate::budget::{Budget, BudgetMeter, Saturation};
use crate::parallel::Pool;
use crate::semantics::{EvalCache, GoodRuns, Semantics, SemanticsError};
use atl_lang::{Formula, Principal};
use atl_model::{Point, System};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// Error raised by the good-run construction and its checks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GoodRunsError {
    /// An assumption registered for `P` is not of the form `P believes ψ`.
    BadShape(Formula),
    /// An assumption violates restriction I1 (belief within a negation).
    ViolatesI1(Formula),
    /// Evaluation failed (unbound parameter or bad point).
    Semantics(SemanticsError),
    /// The optimality search space exceeds the caller's limit.
    SearchSpaceTooLarge {
        /// Candidate vectors that would need checking.
        candidates: u128,
        /// The configured cap.
        limit: u128,
    },
}

impl fmt::Display for GoodRunsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GoodRunsError::BadShape(formula) => {
                write!(
                    f,
                    "assumption {formula} is not of the form `P believes ψ` for its principal"
                )
            }
            GoodRunsError::ViolatesI1(formula) => {
                write!(
                    f,
                    "assumption {formula} places belief under negation (restriction I1)"
                )
            }
            GoodRunsError::Semantics(e) => write!(f, "{e}"),
            GoodRunsError::SearchSpaceTooLarge { candidates, limit } => {
                write!(
                    f,
                    "optimality search over {candidates} vectors exceeds limit {limit}"
                )
            }
        }
    }
}

impl Error for GoodRunsError {}

impl From<SemanticsError> for GoodRunsError {
    fn from(e: SemanticsError) -> Self {
        GoodRunsError::Semantics(e)
    }
}

/// The initial-assumption vector `I = (I_1, …, I_n)`: for each principal,
/// the formulas `P_i believes ψ` describing its preconceived beliefs.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InitialAssumptions {
    map: BTreeMap<Principal, Vec<Formula>>,
}

impl InitialAssumptions {
    /// An empty vector.
    pub fn new() -> Self {
        InitialAssumptions::default()
    }

    /// Registers the assumption `P believes body`.
    pub fn assume(&mut self, p: impl Into<Principal>, body: Formula) -> &mut Self {
        let p = p.into();
        self.map
            .entry(p.clone())
            .or_default()
            .push(Formula::believes(p, body));
        self
    }

    /// The principals with assumptions.
    pub fn principals(&self) -> impl Iterator<Item = &Principal> {
        self.map.keys()
    }

    /// `P`'s assumptions (each of the form `P believes ψ`).
    pub fn of(&self, p: &Principal) -> &[Formula] {
        self.map.get(p).map_or(&[], Vec::as_slice)
    }

    /// Every assumption, tagged with its principal.
    pub fn iter(&self) -> impl Iterator<Item = (&Principal, &Formula)> {
        self.map
            .iter()
            .flat_map(|(p, fs)| fs.iter().map(move |f| (p, f)))
    }

    /// Checks the structural requirements: each assumption for `P` has the
    /// shape `P believes ψ` and satisfies restriction I1.
    ///
    /// # Errors
    ///
    /// [`GoodRunsError::BadShape`] or [`GoodRunsError::ViolatesI1`].
    pub fn check(&self) -> Result<(), GoodRunsError> {
        for (p, f) in self.iter() {
            match f {
                Formula::Believes(q, _) if q == p => {}
                _ => return Err(GoodRunsError::BadShape(f.clone())),
            }
            if f.has_belief_under_negation() {
                return Err(GoodRunsError::ViolatesI1(f.clone()));
            }
        }
        Ok(())
    }

    /// Checks restriction **I2**: if `I_i` contains
    /// `P_i believes (P_j believes φ)`, then `I_j` contains
    /// `P_j believes φ` — one principal's assumptions make no claims about
    /// another's beliefs that the other does not itself assume.
    ///
    /// Returns the first offending assumption, if any.
    pub fn violates_i2(&self) -> Option<&Formula> {
        for (_, f) in self.iter() {
            let Formula::Believes(_, body) = f else {
                continue;
            };
            if let Formula::Believes(j, _) = &**body {
                let present = self.of(j).iter().any(|g| g == &**body);
                if !present {
                    return Some(f);
                }
            }
        }
        None
    }

    /// The maximum belief nesting depth across all assumptions.
    pub fn max_depth(&self) -> usize {
        self.iter()
            .map(|(_, f)| f.belief_depth())
            .max()
            .unwrap_or(0)
    }
}

/// A record of the Section 7 construction's progress: the size of each
/// principal's good-run set after every stage.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConstructionReport {
    /// `stages[j][p]` is |G_p^{j+1}| (stage 0 of the vector is `G^1`).
    pub stages: Vec<BTreeMap<Principal, usize>>,
}

impl ConstructionReport {
    /// The number of iteration stages performed (the maximum belief
    /// depth of the assumptions).
    pub fn depth(&self) -> usize {
        self.stages.len()
    }

    /// True if some principal's good-run set became empty — that
    /// principal believes the absurd relative to the constructed vector.
    pub fn emptied(&self) -> Vec<&Principal> {
        self.stages
            .last()
            .map(|m| m.iter().filter(|(_, n)| **n == 0).map(|(p, _)| p).collect())
            .unwrap_or_default()
    }
}

/// The iterative construction of Section 7.
///
/// `G⁰ = (R, …, R)`; at stage `j`, `G_i^j` keeps the runs of `G_i^{j-1}`
/// whose time-0 point satisfies, relative to `G^{j-1}`, the body of every
/// depth-`j` assumption of `P_i`; the result is `G_i = ⋂_j G_i^j`.
///
/// # Errors
///
/// Structural errors from [`InitialAssumptions::check`], or evaluation
/// errors.
pub fn construct(
    system: &System,
    assumptions: &InitialAssumptions,
) -> Result<GoodRuns, GoodRunsError> {
    construct_with_report(system, assumptions).map(|(g, _)| g)
}

/// As [`construct`], also returning the per-stage [`ConstructionReport`].
///
/// # Errors
///
/// As for [`construct`].
pub fn construct_with_report(
    system: &System,
    assumptions: &InitialAssumptions,
) -> Result<(GoodRuns, ConstructionReport), GoodRunsError> {
    construct_budgeted(system, assumptions, Budget::unlimited()).map(|(g, r, _)| (g, r))
}

/// As [`construct_with_report`], but metered against `budget`: each
/// semantic evaluation of an assumption body at a point charges one step.
///
/// When the budget runs out the refinement stops where it stands and the
/// vector built so far is returned with
/// [`Saturation::BudgetExhausted`] — a *coarser* (larger) vector than the
/// full construction would produce, whose completed stages are exact. In
/// the returned outcome, `steps` counts evaluations and `facts` counts
/// fully completed stages.
///
/// # Errors
///
/// As for [`construct`].
pub fn construct_budgeted(
    system: &System,
    assumptions: &InitialAssumptions,
    budget: Budget,
) -> Result<(GoodRuns, ConstructionReport, Saturation), GoodRunsError> {
    assumptions.check()?;
    let meter = BudgetMeter::start(budget);
    let mut current = GoodRuns::all_runs(system);
    let all: BTreeSet<usize> = (0..system.len()).collect();
    // Make every assuming principal explicit so `set` updates land.
    for p in assumptions.principals() {
        current.set(p.clone(), all.clone());
    }
    let mut report = ConstructionReport::default();
    // Term-level results depend only on the system, so one cache serves
    // every stage's evaluator despite their differing good-run vectors.
    let cache = Rc::new(RefCell::new(EvalCache::default()));
    'stages: for j in 1..=assumptions.max_depth() {
        let sem = Semantics::new_shared(system, current.clone(), Rc::clone(&cache));
        let mut next = current.clone();
        let mut stage = BTreeMap::new();
        for p in assumptions.principals() {
            let mut keep = current.get(p).clone();
            for f in assumptions.of(p) {
                if f.belief_depth() != j {
                    continue;
                }
                let Formula::Believes(_, body) = f else {
                    unreachable!("checked shape");
                };
                let mut surviving = BTreeSet::new();
                for &ri in &keep {
                    if !meter.charge(report.stages.len()) {
                        // Out of budget mid-stage: the partial stage is
                        // discarded and the last completed vector stands.
                        break 'stages;
                    }
                    if sem.eval(Point::new(ri, 0), body)? {
                        surviving.insert(ri);
                    }
                }
                keep = surviving;
            }
            stage.insert(p.clone(), keep.len());
            next.set(p.clone(), keep);
        }
        report.stages.push(stage);
        current = next;
    }
    let outcome = if meter.exhausted() {
        Saturation::BudgetExhausted {
            facts: report.stages.len(),
            steps: meter.steps(),
        }
    } else {
        Saturation::Complete {
            new_facts: report.stages.len(),
        }
    };
    Ok((current, report, outcome))
}

/// As [`construct_with_report`], with each stage's run-filtering sharded
/// over `pool` — see [`construct_budgeted_on`].
///
/// # Errors
///
/// As for [`construct`].
pub fn construct_on(
    system: &System,
    assumptions: &InitialAssumptions,
    pool: &Pool,
) -> Result<(GoodRuns, ConstructionReport), GoodRunsError> {
    construct_budgeted_on(system, assumptions, Budget::unlimited(), pool).map(|(g, r, _)| (g, r))
}

/// As [`construct_budgeted`], with each `G^j` stage's run-filtering
/// sharded across `pool`'s workers. The results are **bit-identical** to
/// the sequential construction:
///
/// - candidate runs are dealt to workers by index and the surviving set
///   is merged back in index order, so each stage's `G^j` vector is the
///   same `BTreeSet` the sequential filter builds;
/// - the budget is claimed *deterministically before* the fan-out: the
///   meter is charged once per candidate, in index order, and only the
///   prefix those charges cover — exactly the prefix the sequential
///   path would evaluate before latching — is evaluated at all. A
///   partial stage is discarded in both paths, so step counts, stage
///   counts, and the [`Saturation`] outcome agree;
/// - an evaluation error is reported for the earliest failing candidate
///   in index order, as the sequential loop would.
///
/// Workers share one concurrently-prewarmed [`EvalCache`]
/// (system-level facts only) and keep per-worker evaluators, so no
/// locks sit on the evaluation hot path.
///
/// # Errors
///
/// As for [`construct`].
pub fn construct_budgeted_on(
    system: &System,
    assumptions: &InitialAssumptions,
    budget: Budget,
    pool: &Pool,
) -> Result<(GoodRuns, ConstructionReport, Saturation), GoodRunsError> {
    if pool.jobs() == 1 {
        return construct_budgeted(system, assumptions, budget);
    }
    assumptions.check()?;
    let meter = BudgetMeter::start(budget);
    let mut current = GoodRuns::all_runs(system);
    let all: BTreeSet<usize> = (0..system.len()).collect();
    for p in assumptions.principals() {
        current.set(p.clone(), all.clone());
    }
    let mut report = ConstructionReport::default();
    let warmed = EvalCache::prewarm_on(system, pool);
    'stages: for j in 1..=assumptions.max_depth() {
        let mut next = current.clone();
        let mut stage = BTreeMap::new();
        for p in assumptions.principals() {
            let mut keep = current.get(p).clone();
            for f in assumptions.of(p) {
                if f.belief_depth() != j {
                    continue;
                }
                let Formula::Believes(_, body) = f else {
                    unreachable!("checked shape");
                };
                // Claim the budget up front, in candidate order: the
                // prefix these charges cover is exactly the prefix the
                // sequential loop would evaluate before its meter
                // latched, so steps and outcomes agree.
                let order: Vec<usize> = keep.iter().copied().collect();
                let mut budgeted = order.len();
                for i in 0..order.len() {
                    if !meter.charge(report.stages.len()) {
                        budgeted = i;
                        break;
                    }
                }
                let verdicts = pool.map_init(
                    &order[..budgeted],
                    || {
                        Semantics::new_shared(
                            system,
                            current.clone(),
                            Rc::new(RefCell::new(warmed.clone())),
                        )
                    },
                    |sem, _, &ri| sem.eval(Point::new(ri, 0), body),
                );
                let mut surviving = BTreeSet::new();
                for (i, v) in verdicts.into_iter().enumerate() {
                    if v? {
                        surviving.insert(order[i]);
                    }
                }
                if budgeted < order.len() {
                    // Out of budget mid-stage: the partial stage is
                    // discarded and the last completed vector stands,
                    // exactly as in the sequential path.
                    break 'stages;
                }
                keep = surviving;
            }
            stage.insert(p.clone(), keep.len());
            next.set(p.clone(), keep);
        }
        report.stages.push(stage);
        current = next;
    }
    let outcome = if meter.exhausted() {
        Saturation::BudgetExhausted {
            facts: report.stages.len(),
            steps: meter.steps(),
        }
    } else {
        Saturation::Complete {
            new_facts: report.stages.len(),
        }
    };
    Ok((current, report, outcome))
}

/// A per-stage record of a *completed* Section 7 construction, enough to
/// resume a later construction from the first stage an assumption edit
/// invalidates.
///
/// Stage `j` of the construction filters each `G_i^{j-1}` by the bodies
/// of `P_i`'s depth-`j` assumptions, relative to the whole vector
/// `G^{j-1}`. So the output of stage `j` is fully determined by the
/// vector after stage `j-1` together with the per-principal depth-`j`
/// assumption lists — the checkpoint stores exactly those two things per
/// stage, and [`resume_construct_on`] replays only the suffix whose
/// inputs changed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConstructionCheckpoint {
    /// `vectors[0]` is the initial vector `G^0`; `vectors[j]` is the
    /// vector after stage `j` completed.
    vectors: Vec<GoodRuns>,
    /// `inputs[j-1]` maps each principal with depth-`j` assumptions to
    /// those assumptions, in registration order. Principals *without*
    /// depth-`j` assumptions are omitted: stage `j` passes them through
    /// unchanged, so they cannot affect its output.
    inputs: Vec<BTreeMap<Principal, Vec<Formula>>>,
}

impl ConstructionCheckpoint {
    /// The number of completed stages recorded.
    pub fn stages(&self) -> usize {
        self.inputs.len()
    }

    /// How many leading stages a construction for `assumptions` could
    /// reuse from this checkpoint: the longest prefix of stages whose
    /// inputs are unchanged.
    pub fn reusable_stages(&self, assumptions: &InitialAssumptions) -> usize {
        self.inputs
            .iter()
            .zip(stage_inputs(assumptions))
            .take_while(|(old, new)| **old == *new)
            .count()
    }
}

/// The per-stage inputs of the construction for `assumptions`: element
/// `j-1` maps each principal to its depth-`j` assumptions (principals
/// with none at that depth omitted).
fn stage_inputs(assumptions: &InitialAssumptions) -> Vec<BTreeMap<Principal, Vec<Formula>>> {
    (1..=assumptions.max_depth())
        .map(|j| {
            assumptions
                .principals()
                .filter_map(|p| {
                    let fs: Vec<Formula> = assumptions
                        .of(p)
                        .iter()
                        .filter(|f| f.belief_depth() == j)
                        .cloned()
                        .collect();
                    (!fs.is_empty()).then(|| (p.clone(), fs))
                })
                .collect()
        })
        .collect()
}

/// As [`construct_on`], also returning a [`ConstructionCheckpoint`] that
/// a later [`resume_construct_on`] can pick up from.
///
/// # Errors
///
/// As for [`construct`].
pub fn construct_checkpointed_on(
    system: &System,
    assumptions: &InitialAssumptions,
    pool: &Pool,
) -> Result<(GoodRuns, ConstructionReport, ConstructionCheckpoint), GoodRunsError> {
    let warmed = EvalCache::prewarm_on(system, pool);
    construct_checkpointed_with(system, assumptions, pool, &warmed)
}

/// [`construct_checkpointed_on`] over a caller-prewarmed cache, so serve
/// sessions reuse the snapshot they already hold.
pub(crate) fn construct_checkpointed_with(
    system: &System,
    assumptions: &InitialAssumptions,
    pool: &Pool,
    warmed: &EvalCache,
) -> Result<(GoodRuns, ConstructionReport, ConstructionCheckpoint), GoodRunsError> {
    resume_construct_with(
        system,
        assumptions,
        &ConstructionCheckpoint::default(),
        pool,
        warmed,
    )
    .map(|(g, report, ckpt, _)| (g, report, ckpt))
}

/// Re-runs the construction for `assumptions`, reusing from `prior`
/// every leading stage whose inputs are unchanged and recomputing only
/// the suffix. Returns the vector, report, and a fresh checkpoint —
/// **identical** to what [`construct_checkpointed_on`] computes from
/// scratch on the same system — plus the number of stages reused.
///
/// `prior` must come from a construction over the *same* [`System`]
/// (same run set); the assumptions may differ arbitrarily.
///
/// # Errors
///
/// As for [`construct`].
pub fn resume_construct_on(
    system: &System,
    assumptions: &InitialAssumptions,
    prior: &ConstructionCheckpoint,
    pool: &Pool,
) -> Result<(GoodRuns, ConstructionReport, ConstructionCheckpoint, usize), GoodRunsError> {
    let warmed = EvalCache::prewarm_on(system, pool);
    resume_construct_with(system, assumptions, prior, pool, &warmed)
}

/// [`resume_construct_on`] over a caller-prewarmed cache.
pub(crate) fn resume_construct_with(
    system: &System,
    assumptions: &InitialAssumptions,
    prior: &ConstructionCheckpoint,
    pool: &Pool,
    warmed: &EvalCache,
) -> Result<(GoodRuns, ConstructionReport, ConstructionCheckpoint, usize), GoodRunsError> {
    assumptions.check()?;
    let reused = prior.reusable_stages(assumptions);
    let plain = GoodRuns::all_runs(system);
    // Re-anchor a stored vector to the *new* assuming-principal set:
    // explicit entries for exactly those principals, with the stored
    // (semantic) value of each — `get` defaults new principals to "all
    // runs", which is what the cold construction's initialization gives
    // them, since a genuinely new principal with depth ≤ `reused`
    // assumptions would have changed those stages' inputs.
    let anchor = |stored: Option<&GoodRuns>| {
        let stored = stored.unwrap_or(&plain);
        let mut v = GoodRuns::all_runs(system);
        for p in assumptions.principals() {
            v.set(p.clone(), stored.get(p).clone());
        }
        v
    };
    let mut checkpoint = ConstructionCheckpoint {
        vectors: (0..=reused).map(|j| anchor(prior.vectors.get(j))).collect(),
        inputs: stage_inputs(assumptions),
    };
    let mut report = ConstructionReport::default();
    for j in 1..=reused {
        report.stages.push(
            assumptions
                .principals()
                .map(|p| (p.clone(), checkpoint.vectors[j].get(p).len()))
                .collect(),
        );
    }
    let mut current = checkpoint.vectors[reused].clone();
    // The replayed suffix is the unbudgeted construction loop, stage
    // fan-out and merge order included, so the result is bit-identical
    // to a cold construction at any pool width.
    for j in (reused + 1)..=assumptions.max_depth() {
        let mut next = current.clone();
        let mut stage = BTreeMap::new();
        for p in assumptions.principals() {
            let mut keep = current.get(p).clone();
            for f in assumptions.of(p) {
                if f.belief_depth() != j {
                    continue;
                }
                let Formula::Believes(_, body) = f else {
                    unreachable!("checked shape");
                };
                let order: Vec<usize> = keep.iter().copied().collect();
                let verdicts = pool.map_init(
                    &order,
                    || {
                        Semantics::new_shared(
                            system,
                            current.clone(),
                            Rc::new(RefCell::new(warmed.clone())),
                        )
                    },
                    |sem, _, &ri| sem.eval(Point::new(ri, 0), body),
                );
                let mut surviving = BTreeSet::new();
                for (i, v) in verdicts.into_iter().enumerate() {
                    if v? {
                        surviving.insert(order[i]);
                    }
                }
                keep = surviving;
            }
            stage.insert(p.clone(), keep.len());
            next.set(p.clone(), keep);
        }
        report.stages.push(stage);
        checkpoint.vectors.push(next.clone());
        current = next;
    }
    Ok((current, report, checkpoint, reused))
}

/// True if `goods` *supports* `assumptions`: every assumption holds at
/// every time-0 point of the system, relative to `goods`.
///
/// # Errors
///
/// Evaluation errors.
pub fn supports(
    system: &System,
    goods: &GoodRuns,
    assumptions: &InitialAssumptions,
) -> Result<bool, GoodRunsError> {
    supports_with(
        system,
        goods,
        assumptions,
        Rc::new(RefCell::new(EvalCache::default())),
    )
}

/// [`supports`] over a shared evaluation cache, so a caller probing many
/// candidate vectors on one system (the optimality search) pays for each
/// term-level computation once.
fn supports_with(
    system: &System,
    goods: &GoodRuns,
    assumptions: &InitialAssumptions,
    cache: Rc<RefCell<EvalCache>>,
) -> Result<bool, GoodRunsError> {
    let sem = Semantics::new_shared(system, goods.clone(), cache);
    for (_, f) in assumptions.iter() {
        for point in system.initial_points() {
            if !sem.eval(point, f)? {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Exhaustively decides whether `goods` is the **optimum** supporting
/// vector: every supporting vector `G'` satisfies `G' ≤ goods`.
///
/// Only the principals carrying assumptions are varied (others are fixed
/// at "all runs", which is trivially maximal).
///
/// # Errors
///
/// [`GoodRunsError::SearchSpaceTooLarge`] if more than `limit` candidate
/// vectors would be examined; evaluation errors.
pub fn is_optimum(
    system: &System,
    goods: &GoodRuns,
    assumptions: &InitialAssumptions,
    limit: u128,
) -> Result<bool, GoodRunsError> {
    Ok(find_witness_above(system, goods, assumptions, limit)?.is_none())
}

/// If `goods` is not optimum, returns a supporting vector not below it.
///
/// # Errors
///
/// As for [`is_optimum`].
pub fn find_witness_above(
    system: &System,
    goods: &GoodRuns,
    assumptions: &InitialAssumptions,
    limit: u128,
) -> Result<Option<GoodRuns>, GoodRunsError> {
    let principals: Vec<&Principal> = assumptions.principals().collect();
    let n_runs = system.len() as u32;
    let per = 1u128 << n_runs;
    let candidates = per
        .checked_pow(principals.len() as u32)
        .unwrap_or(u128::MAX);
    if candidates > limit {
        return Err(GoodRunsError::SearchSpaceTooLarge { candidates, limit });
    }
    let mut counter = vec![0u128; principals.len()];
    let cache = Rc::new(RefCell::new(EvalCache::default()));
    loop {
        // Materialize the candidate vector from the counters.
        let mut candidate = GoodRuns::all_runs(system);
        for (i, p) in principals.iter().enumerate() {
            let mask = counter[i];
            let runs: BTreeSet<usize> =
                (0..system.len()).filter(|r| mask & (1 << r) != 0).collect();
            candidate.set((*p).clone(), runs);
        }
        if !candidate.le(goods)
            && supports_with(system, &candidate, assumptions, Rc::clone(&cache))?
        {
            return Ok(Some(candidate));
        }
        // Increment the mixed-radix counter.
        let mut i = 0;
        loop {
            if i == principals.len() {
                return Ok(None);
            }
            counter[i] += 1;
            if counter[i] < per {
                break;
            }
            counter[i] = 0;
            i += 1;
        }
        if principals.is_empty() {
            return Ok(None);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atl_lang::{Key, Message, Nonce};
    use atl_model::RunBuilder;

    fn nonce(s: &str) -> Message {
        Message::nonce(Nonce::new(s))
    }

    /// Two runs: in run 0 the environment never touches Kab; in run 1 the
    /// environment guesses Kab and encrypts with it (so Kab is not a good
    /// key there).
    fn two_run_system() -> System {
        let good = {
            let mut b = RunBuilder::new(0);
            b.principal("A", [Key::new("Kab")]);
            b.principal("B", [Key::new("Kab")]);
            let c = Message::encrypted(nonce("X"), Key::new("Kab"), Principal::new("A"));
            b.send("A", c.clone(), "B").unwrap();
            b.receive("B", &c).unwrap();
            b.build().unwrap()
        };
        let bad = {
            let mut b = RunBuilder::new(0);
            b.principal("A", [Key::new("Kab")]);
            b.principal("B", [Key::new("Kab")]);
            let env = Principal::environment();
            b.new_key(env.clone(), "Kab");
            let forged = Message::encrypted(nonce("X"), Key::new("Kab"), Principal::new("A"));
            b.send(env, forged.clone(), "B").unwrap();
            b.receive("B", &forged).unwrap();
            b.build().unwrap()
        };
        System::new([good, bad])
    }

    fn key_assumption() -> InitialAssumptions {
        let mut i = InitialAssumptions::new();
        i.assume("A", Formula::shared_key("A", Key::new("Kab"), "B"));
        i
    }

    #[test]
    fn knowledge_alone_cannot_support_key_beliefs() {
        // The Section 6 motivation: with G = all runs, A cannot believe
        // Kab is good, because a key-guessing run is indistinguishable.
        let sys = two_run_system();
        let goods = GoodRuns::all_runs(&sys);
        assert!(!supports(&sys, &goods, &key_assumption()).unwrap());
    }

    #[test]
    fn construction_supports_depth_one_assumptions() {
        let sys = two_run_system();
        let i = key_assumption();
        let goods = construct(&sys, &i).unwrap();
        // Run 1 (environment encrypts with Kab) is excluded from A's good
        // runs; run 0 stays.
        assert_eq!(
            goods.get(&Principal::new("A")),
            &[0usize].into_iter().collect()
        );
        assert!(supports(&sys, &goods, &i).unwrap());
    }

    #[test]
    fn construction_is_optimum_under_i1_i2_depth_one() {
        let sys = two_run_system();
        let i = key_assumption();
        assert!(i.violates_i2().is_none());
        let goods = construct(&sys, &i).unwrap();
        assert!(is_optimum(&sys, &goods, &i, 1 << 20).unwrap());
    }

    #[test]
    fn nested_assumptions_stratify() {
        let sys = two_run_system();
        let mut i = InitialAssumptions::new();
        let base = Formula::shared_key("A", Key::new("Kab"), "B");
        i.assume("A", base.clone());
        i.assume("B", base.clone());
        // Depth-2: A believes (B believes base); I2 satisfied since B
        // assumes base itself.
        i.assume("A", Formula::believes("B", base));
        assert!(i.violates_i2().is_none());
        assert_eq!(i.max_depth(), 2);
        let goods = construct(&sys, &i).unwrap();
        assert!(supports(&sys, &goods, &i).unwrap());
        assert!(is_optimum(&sys, &goods, &i, 1 << 20).unwrap());
    }

    #[test]
    fn i1_violations_rejected() {
        let mut i = InitialAssumptions::new();
        i.assume("A", Formula::not(Formula::believes("A", Formula::True)));
        let sys = two_run_system();
        assert!(matches!(
            construct(&sys, &i),
            Err(GoodRunsError::ViolatesI1(_))
        ));
    }

    #[test]
    fn negation_inside_belief_is_allowed_by_i1() {
        // "A believes K is not a good key" is fine.
        let sys = two_run_system();
        let mut i = InitialAssumptions::new();
        i.assume(
            "A",
            Formula::not(Formula::shared_key("A", Key::new("Kother"), "B")),
        );
        assert!(construct(&sys, &i).is_ok());
    }

    #[test]
    fn i2_detection() {
        let mut i = InitialAssumptions::new();
        i.assume("A", Formula::believes("B", Formula::True));
        assert!(i.violates_i2().is_some());
        let mut ok = InitialAssumptions::new();
        ok.assume("B", Formula::True);
        ok.assume("A", Formula::believes("B", Formula::True));
        assert!(ok.violates_i2().is_none());
    }

    #[test]
    fn search_space_guard() {
        let sys = two_run_system();
        let i = key_assumption();
        let goods = construct(&sys, &i).unwrap();
        let err = is_optimum(&sys, &goods, &i, 1).unwrap_err();
        assert!(matches!(err, GoodRunsError::SearchSpaceTooLarge { .. }));
    }

    #[test]
    fn unsatisfiable_assumption_empties_good_set() {
        // An assumption false at all time-0 points leaves no good runs:
        // the principal then believes everything (including the
        // assumption), so the construction still supports I.
        let sys = two_run_system();
        let mut i = InitialAssumptions::new();
        i.assume("A", Formula::falsum());
        let goods = construct(&sys, &i).unwrap();
        assert!(goods.get(&Principal::new("A")).is_empty());
        assert!(supports(&sys, &goods, &i).unwrap());
    }

    #[test]
    fn construction_report_tracks_stages() {
        let sys = two_run_system();
        let mut i = InitialAssumptions::new();
        let base = Formula::shared_key("A", Key::new("Kab"), "B");
        i.assume("A", base.clone());
        i.assume("B", base.clone());
        i.assume("A", Formula::believes("B", base));
        let (_, report) = construct_with_report(&sys, &i).unwrap();
        assert_eq!(report.depth(), 2);
        // Stage 1 trims both to the clean run; stage 2 keeps them there.
        assert_eq!(report.stages[0][&Principal::new("A")], 1);
        assert_eq!(report.stages[1][&Principal::new("A")], 1);
        assert!(report.emptied().is_empty());
    }

    #[test]
    fn construction_report_flags_absurd_believers() {
        let (sys, assumptions) = crate::examples::coin_toss();
        let (_, report) = construct_with_report(&sys, &assumptions).unwrap();
        let emptied = report.emptied();
        assert_eq!(emptied.len(), 2); // P1 and P3
    }

    #[test]
    fn budgeted_construction_degrades_to_coarser_vector() {
        let sys = two_run_system();
        let i = key_assumption();
        // One evaluation is not enough for the two runs of the system.
        let (goods, report, outcome) =
            construct_budgeted(&sys, &i, Budget::unlimited().steps(1)).unwrap();
        assert!(matches!(
            outcome,
            Saturation::BudgetExhausted { steps: 1, .. }
        ));
        assert!(report.stages.is_empty(), "partial stage must be discarded");
        // The degraded answer is the coarser, pre-refinement vector.
        assert_eq!(goods, {
            let mut g = GoodRuns::all_runs(&sys);
            g.set(Principal::new("A"), [0, 1].into_iter().collect());
            g
        });
        // An unlimited budget reproduces the exact construction.
        let (full, _, outcome) = construct_budgeted(&sys, &i, Budget::unlimited()).unwrap();
        assert!(outcome.is_complete());
        assert_eq!(full, construct(&sys, &i).unwrap());
    }

    fn depth_two_assumptions() -> InitialAssumptions {
        let mut i = InitialAssumptions::new();
        let base = Formula::shared_key("A", Key::new("Kab"), "B");
        i.assume("A", base.clone());
        i.assume("B", base.clone());
        i.assume("A", Formula::believes("B", base));
        i
    }

    #[test]
    fn checkpointed_construction_matches_plain() {
        let sys = two_run_system();
        let i = depth_two_assumptions();
        for jobs in [1, 2] {
            let pool = Pool::new(jobs);
            let (goods, report) = construct_on(&sys, &i, &pool).unwrap();
            let (g2, r2, ckpt) = construct_checkpointed_on(&sys, &i, &pool).unwrap();
            assert_eq!(goods, g2);
            assert_eq!(report, r2);
            assert_eq!(ckpt.stages(), 2);
            assert_eq!(ckpt.reusable_stages(&i), 2);
        }
    }

    #[test]
    fn resume_matches_cold_construction_for_every_edit_class() {
        let sys = two_run_system();
        let old = depth_two_assumptions();
        let base = Formula::shared_key("A", Key::new("Kab"), "B");

        // Each (edit, reusable-stage floor): depth-2 addition keeps
        // stage 1; depth-1 edits invalidate everything; pure reorders
        // and no-ops keep both stages.
        let mut add_depth2 = old.clone();
        add_depth2.assume("B", Formula::believes("A", base.clone()));
        let mut add_depth1 = old.clone();
        add_depth1.assume(
            "B",
            Formula::not(Formula::shared_key("B", Key::new("Kx"), "A")),
        );
        let mut removed = InitialAssumptions::new();
        removed.assume("A", base.clone());
        removed.assume("A", Formula::believes("B", base.clone()));
        let mut new_principal = old.clone();
        new_principal.assume("S", Formula::True);
        let edits: [(InitialAssumptions, usize); 5] = [
            (old.clone(), 2),
            (add_depth2, 1),
            (add_depth1, 0),
            (removed, 0),
            (new_principal, 0),
        ];

        for jobs in [1, 2] {
            let pool = Pool::new(jobs);
            let (_, _, ckpt) = construct_checkpointed_on(&sys, &old, &pool).unwrap();
            for (new, want_reused) in &edits {
                let (warm, warm_report, warm_ckpt, reused) =
                    resume_construct_on(&sys, new, &ckpt, &pool).unwrap();
                let (cold, cold_report, cold_ckpt) =
                    construct_checkpointed_on(&sys, new, &pool).unwrap();
                assert_eq!(warm, cold, "vector mismatch at jobs={jobs}");
                assert_eq!(warm_report, cold_report);
                assert_eq!(warm_ckpt, cold_ckpt, "checkpoint must be rebuilt as-cold");
                assert_eq!(reused, *want_reused);
            }
        }
    }

    #[test]
    fn resume_rejects_malformed_assumptions() {
        let sys = two_run_system();
        let pool = Pool::new(1);
        let (_, _, ckpt) = construct_checkpointed_on(&sys, &key_assumption(), &pool).unwrap();
        let mut bad = InitialAssumptions::new();
        bad.assume("A", Formula::not(Formula::believes("A", Formula::True)));
        assert!(matches!(
            resume_construct_on(&sys, &bad, &ckpt, &pool),
            Err(GoodRunsError::ViolatesI1(_))
        ));
    }

    #[test]
    fn empty_assumptions_yield_all_runs() {
        let sys = two_run_system();
        let i = InitialAssumptions::new();
        let goods = construct(&sys, &i).unwrap();
        assert_eq!(goods, GoodRuns::all_runs(&sys));
        assert!(supports(&sys, &goods, &i).unwrap());
    }
}
