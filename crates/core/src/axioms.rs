//! The axiomatization of the reformulated logic (Section 4.2).
//!
//! The proof system has two inference rules — modus ponens (R1) and
//! necessitation (R2) — and takes as axioms all instances of propositional
//! tautologies plus the schemas **A1–A21** below. Each function builds one
//! instance of a schema; [`AxiomName`] identifies schemas for reporting and
//! the soundness model-checker.
//!
//! Schemas with side conditions ([`a5`], [`a6`]) return `None` when the
//! side condition fails.

use atl_lang::{Formula, Key, KeyTerm, Message, Principal};
use std::fmt;

/// Identifies an axiom schema of Section 4.2 (plus the `says` analogues of
/// A12–A14, which the paper states hold as well).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(missing_docs)]
pub enum AxiomName {
    A1,
    A2,
    A3,
    A4,
    A5,
    A6,
    A7,
    A8,
    A9,
    A10,
    A11,
    A12,
    A12Says,
    A13,
    A13Says,
    A14,
    A14Says,
    A15,
    A16,
    A17,
    A18,
    A19,
    A20,
    A21Key,
    A21Secret,
    A22SigMeaning,
    A23SeesSigned,
    A24SeesPubEnc,
    A25FreshSigned,
    A26FreshPubEnc,
    A27BelievesSeesSigned,
    A28BelievesSeesPubEnc,
}

impl AxiomName {
    /// Every schema name, for exhaustive iteration by the model checker.
    pub const ALL: [AxiomName; 32] = [
        AxiomName::A1,
        AxiomName::A2,
        AxiomName::A3,
        AxiomName::A4,
        AxiomName::A5,
        AxiomName::A6,
        AxiomName::A7,
        AxiomName::A8,
        AxiomName::A9,
        AxiomName::A10,
        AxiomName::A11,
        AxiomName::A12,
        AxiomName::A12Says,
        AxiomName::A13,
        AxiomName::A13Says,
        AxiomName::A14,
        AxiomName::A14Says,
        AxiomName::A15,
        AxiomName::A16,
        AxiomName::A17,
        AxiomName::A18,
        AxiomName::A19,
        AxiomName::A20,
        AxiomName::A21Key,
        AxiomName::A21Secret,
        AxiomName::A22SigMeaning,
        AxiomName::A23SeesSigned,
        AxiomName::A24SeesPubEnc,
        AxiomName::A25FreshSigned,
        AxiomName::A26FreshPubEnc,
        AxiomName::A27BelievesSeesSigned,
        AxiomName::A28BelievesSeesPubEnc,
    ];

    /// A one-line description of the schema.
    pub fn description(self) -> &'static str {
        match self {
            AxiomName::A1 => "belief closed under consequence",
            AxiomName::A2 => "positive introspection",
            AxiomName::A3 => "negative introspection",
            AxiomName::A4 => "belief collects conjunctions (derived)",
            AxiomName::A5 => "message meaning (shared key)",
            AxiomName::A6 => "message meaning (shared secret)",
            AxiomName::A7 => "seeing tuple components",
            AxiomName::A8 => "seeing through held keys",
            AxiomName::A9 => "seeing combined bodies",
            AxiomName::A10 => "seeing forwarded bodies",
            AxiomName::A11 => "believing one sees decryptable ciphertext",
            AxiomName::A12 => "saying tuple components",
            AxiomName::A12Says => "recently saying tuple components",
            AxiomName::A13 => "saying combined bodies",
            AxiomName::A13Says => "recently saying combined bodies",
            AxiomName::A14 => "accountability for misused forwarding",
            AxiomName::A14Says => "recent accountability for misused forwarding",
            AxiomName::A15 => "jurisdiction over recent claims",
            AxiomName::A16 => "freshness of containing tuples",
            AxiomName::A17 => "freshness of encryptions",
            AxiomName::A18 => "freshness of combinations",
            AxiomName::A19 => "freshness of forwards",
            AxiomName::A20 => "nonce verification: fresh sayings are recent",
            AxiomName::A21Key => "shared keys are directionless",
            AxiomName::A21Secret => "shared secrets are directionless",
            AxiomName::A22SigMeaning => "message meaning (signature, public-key extension)",
            AxiomName::A23SeesSigned => "seeing signed contents with the public key",
            AxiomName::A24SeesPubEnc => "seeing public-key ciphertext with the private key",
            AxiomName::A25FreshSigned => "freshness of signatures",
            AxiomName::A26FreshPubEnc => "freshness of public-key encryptions",
            AxiomName::A27BelievesSeesSigned => "believing one sees verifiable signatures",
            AxiomName::A28BelievesSeesPubEnc => {
                "believing one sees decryptable public-key ciphertext"
            }
        }
    }
}

impl fmt::Display for AxiomName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// A1: `P believes φ ∧ P believes (φ ⊃ ψ) ⊃ P believes ψ`.
pub fn a1(p: &Principal, phi: &Formula, psi: &Formula) -> Formula {
    Formula::implies(
        Formula::and(
            Formula::believes(p.clone(), phi.clone()),
            Formula::believes(p.clone(), Formula::implies(phi.clone(), psi.clone())),
        ),
        Formula::believes(p.clone(), psi.clone()),
    )
}

/// A2: `P believes φ ⊃ P believes (P believes φ)`.
pub fn a2(p: &Principal, phi: &Formula) -> Formula {
    let b = Formula::believes(p.clone(), phi.clone());
    Formula::implies(b.clone(), Formula::believes(p.clone(), b))
}

/// A3: `¬P believes φ ⊃ P believes (¬P believes φ)`.
pub fn a3(p: &Principal, phi: &Formula) -> Formula {
    let nb = Formula::not(Formula::believes(p.clone(), phi.clone()));
    Formula::implies(nb.clone(), Formula::believes(p.clone(), nb))
}

/// A4 (derived from A1 and propositional reasoning, stated in the paper):
/// `P believes φ ∧ P believes ψ ⊃ P believes (φ ∧ ψ)`.
pub fn a4(p: &Principal, phi: &Formula, psi: &Formula) -> Formula {
    Formula::implies(
        Formula::and(
            Formula::believes(p.clone(), phi.clone()),
            Formula::believes(p.clone(), psi.clone()),
        ),
        Formula::believes(p.clone(), Formula::and(phi.clone(), psi.clone())),
    )
}

/// A5: `P ↔K↔ Q ∧ R sees {X^S}_K ⊃ Q said X`, provided `P ≠ S`.
///
/// Returns `None` when the side condition fails.
pub fn a5(
    p: &Principal,
    k: &KeyTerm,
    q: &Principal,
    r: &Principal,
    x: &Message,
    s: &Principal,
) -> Option<Formula> {
    if p == s {
        return None;
    }
    Some(Formula::implies(
        Formula::and(
            Formula::shared_key(p.clone(), k.clone(), q.clone()),
            Formula::sees(
                r.clone(),
                Message::encrypted(x.clone(), k.clone(), s.clone()),
            ),
        ),
        Formula::said(q.clone(), x.clone()),
    ))
}

/// A6: `P =Y= Q ∧ R sees (X^S)_Y ⊃ Q said X`, provided `P ≠ S`.
///
/// Returns `None` when the side condition fails.
pub fn a6(
    p: &Principal,
    y: &Message,
    q: &Principal,
    r: &Principal,
    x: &Message,
    s: &Principal,
) -> Option<Formula> {
    if p == s {
        return None;
    }
    Some(Formula::implies(
        Formula::and(
            Formula::shared_secret(p.clone(), y.clone(), q.clone()),
            Formula::sees(
                r.clone(),
                Message::combined(x.clone(), y.clone(), s.clone()),
            ),
        ),
        Formula::said(q.clone(), x.clone()),
    ))
}

/// A7: `P sees (X1, …, Xk) ⊃ P sees Xi`.
pub fn a7(p: &Principal, items: &[Message], i: usize) -> Formula {
    Formula::implies(
        Formula::sees(p.clone(), Message::Tuple(items.to_vec())),
        Formula::sees(p.clone(), items[i].clone()),
    )
}

/// A8: `P sees {X^Q}_K ∧ P has K ⊃ P sees X`.
pub fn a8(p: &Principal, x: &Message, q: &Principal, k: &KeyTerm) -> Formula {
    Formula::implies(
        Formula::and(
            Formula::sees(
                p.clone(),
                Message::encrypted(x.clone(), k.clone(), q.clone()),
            ),
            Formula::has(p.clone(), k.clone()),
        ),
        Formula::sees(p.clone(), x.clone()),
    )
}

/// A9: `P sees (X^Q)_Y ⊃ P sees X`.
pub fn a9(p: &Principal, x: &Message, q: &Principal, y: &Message) -> Formula {
    Formula::implies(
        Formula::sees(
            p.clone(),
            Message::combined(x.clone(), y.clone(), q.clone()),
        ),
        Formula::sees(p.clone(), x.clone()),
    )
}

/// A10: `P sees 'X' ⊃ P sees X`.
pub fn a10(p: &Principal, x: &Message) -> Formula {
    Formula::implies(
        Formula::sees(p.clone(), Message::forwarded(x.clone())),
        Formula::sees(p.clone(), x.clone()),
    )
}

/// A11: `P sees {X^Q}_K ∧ P has K ⊃ P believes (P sees {X^Q}_K)`.
pub fn a11(p: &Principal, x: &Message, q: &Principal, k: &KeyTerm) -> Formula {
    let cipher = Message::encrypted(x.clone(), k.clone(), q.clone());
    Formula::implies(
        Formula::and(
            Formula::sees(p.clone(), cipher.clone()),
            Formula::has(p.clone(), k.clone()),
        ),
        Formula::believes(p.clone(), Formula::sees(p.clone(), cipher)),
    )
}

/// A12: `P said (X1, …, Xk) ⊃ P said Xi` (`says` analogue via `says`).
pub fn a12(p: &Principal, items: &[Message], i: usize, says: bool) -> Formula {
    let tuple = Message::Tuple(items.to_vec());
    if says {
        Formula::implies(
            Formula::says(p.clone(), tuple),
            Formula::says(p.clone(), items[i].clone()),
        )
    } else {
        Formula::implies(
            Formula::said(p.clone(), tuple),
            Formula::said(p.clone(), items[i].clone()),
        )
    }
}

/// A13: `P said (X^Q)_Y ⊃ P said X` (`says` analogue via `says`).
pub fn a13(p: &Principal, x: &Message, q: &Principal, y: &Message, says: bool) -> Formula {
    let combined = Message::combined(x.clone(), y.clone(), q.clone());
    if says {
        Formula::implies(
            Formula::says(p.clone(), combined),
            Formula::says(p.clone(), x.clone()),
        )
    } else {
        Formula::implies(
            Formula::said(p.clone(), combined),
            Formula::said(p.clone(), x.clone()),
        )
    }
}

/// A14: `P said 'X' ∧ ¬P sees X ⊃ P said X` (`says` analogue via `says`).
///
/// Any principal misusing the forwarding syntax is held accountable for the
/// forwarded contents.
pub fn a14(p: &Principal, x: &Message, says: bool) -> Formula {
    let fwd = Message::forwarded(x.clone());
    let not_seen = Formula::not(Formula::sees(p.clone(), x.clone()));
    if says {
        Formula::implies(
            Formula::and(Formula::says(p.clone(), fwd), not_seen),
            Formula::says(p.clone(), x.clone()),
        )
    } else {
        Formula::implies(
            Formula::and(Formula::said(p.clone(), fwd), not_seen),
            Formula::said(p.clone(), x.clone()),
        )
    }
}

/// A15: `P controls φ ∧ P says φ ⊃ φ` — the honesty-free jurisdiction
/// axiom (Section 3.2).
pub fn a15(p: &Principal, phi: &Formula) -> Formula {
    Formula::implies(
        Formula::and(
            Formula::controls(p.clone(), phi.clone()),
            Formula::says(p.clone(), phi.clone().into_message()),
        ),
        phi.clone(),
    )
}

/// A16: `fresh(Xi) ⊃ fresh((X1, …, Xk))`.
pub fn a16(items: &[Message], i: usize) -> Formula {
    Formula::implies(
        Formula::fresh(items[i].clone()),
        Formula::fresh(Message::Tuple(items.to_vec())),
    )
}

/// A17: `fresh(X) ⊃ fresh({X^Q}_K)`.
pub fn a17(x: &Message, q: &Principal, k: &KeyTerm) -> Formula {
    Formula::implies(
        Formula::fresh(x.clone()),
        Formula::fresh(Message::encrypted(x.clone(), k.clone(), q.clone())),
    )
}

/// A18: `fresh(X) ⊃ fresh((X^Q)_Y)`.
pub fn a18(x: &Message, q: &Principal, y: &Message) -> Formula {
    Formula::implies(
        Formula::fresh(x.clone()),
        Formula::fresh(Message::combined(x.clone(), y.clone(), q.clone())),
    )
}

/// A19: `fresh(X) ⊃ fresh('X')`.
pub fn a19(x: &Message) -> Formula {
    Formula::implies(
        Formula::fresh(x.clone()),
        Formula::fresh(Message::forwarded(x.clone())),
    )
}

/// A20: `fresh(X) ∧ P said X ⊃ P says X` — the heart of
/// nonce-verification, now a definition of freshness.
pub fn a20(p: &Principal, x: &Message) -> Formula {
    Formula::implies(
        Formula::and(
            Formula::fresh(x.clone()),
            Formula::said(p.clone(), x.clone()),
        ),
        Formula::says(p.clone(), x.clone()),
    )
}

/// A21 (keys): `P ↔K↔ Q ≡ Q ↔K↔ P`.
pub fn a21_key(p: &Principal, k: &KeyTerm, q: &Principal) -> Formula {
    Formula::iff(
        Formula::shared_key(p.clone(), k.clone(), q.clone()),
        Formula::shared_key(q.clone(), k.clone(), p.clone()),
    )
}

/// A22 (public-key extension): `→K Q ∧ R sees {X^S}_K⁻¹ ⊃ Q said X` —
/// only `Q` signs with `K⁻¹`, so any verifiable signature traces to `Q`.
/// Unlike A5, no side condition is needed: signing capability, not the
/// from field, identifies the author.
pub fn a22(k: &KeyTerm, q: &Principal, r: &Principal, x: &Message, s: &Principal) -> Formula {
    Formula::implies(
        Formula::and(
            Formula::public_key(k.clone(), q.clone()),
            Formula::sees(r.clone(), Message::signed(x.clone(), k.clone(), s.clone())),
        ),
        Formula::said(q.clone(), x.clone()),
    )
}

/// A23 (public-key extension): `P sees {X^Q}_K⁻¹ ∧ P has K ⊃ P sees X` —
/// the verification key opens signatures.
pub fn a23(p: &Principal, x: &Message, q: &Principal, k: &KeyTerm) -> Formula {
    Formula::implies(
        Formula::and(
            Formula::sees(p.clone(), Message::signed(x.clone(), k.clone(), q.clone())),
            Formula::has(p.clone(), k.clone()),
        ),
        Formula::sees(p.clone(), x.clone()),
    )
}

/// A24 (public-key extension): `P sees {X^Q}_K ∧ P has K⁻¹ ⊃ P sees X` —
/// the private key opens public-key ciphertext.
pub fn a24(p: &Principal, x: &Message, q: &Principal, k: &Key) -> Formula {
    Formula::implies(
        Formula::and(
            Formula::sees(
                p.clone(),
                Message::pub_encrypted(x.clone(), k.clone(), q.clone()),
            ),
            Formula::has(p.clone(), k.inverse()),
        ),
        Formula::sees(p.clone(), x.clone()),
    )
}

/// A25 (public-key extension): `fresh(X) ⊃ fresh({X^Q}_K⁻¹)`.
pub fn a25(x: &Message, q: &Principal, k: &KeyTerm) -> Formula {
    Formula::implies(
        Formula::fresh(x.clone()),
        Formula::fresh(Message::signed(x.clone(), k.clone(), q.clone())),
    )
}

/// A26 (public-key extension): `fresh(X) ⊃ fresh({X^Q}_K)`.
pub fn a26(x: &Message, q: &Principal, k: &KeyTerm) -> Formula {
    Formula::implies(
        Formula::fresh(x.clone()),
        Formula::fresh(Message::pub_encrypted(x.clone(), k.clone(), q.clone())),
    )
}

/// A27 (public-key extension): the A11 analogue for signatures.
pub fn a27(p: &Principal, x: &Message, q: &Principal, k: &KeyTerm) -> Formula {
    let sig = Message::signed(x.clone(), k.clone(), q.clone());
    Formula::implies(
        Formula::and(
            Formula::sees(p.clone(), sig.clone()),
            Formula::has(p.clone(), k.clone()),
        ),
        Formula::believes(p.clone(), Formula::sees(p.clone(), sig)),
    )
}

/// A28 (public-key extension): the A11 analogue for public-key
/// ciphertext.
pub fn a28(p: &Principal, x: &Message, q: &Principal, k: &Key) -> Formula {
    let cipher = Message::pub_encrypted(x.clone(), k.clone(), q.clone());
    Formula::implies(
        Formula::and(
            Formula::sees(p.clone(), cipher.clone()),
            Formula::has(p.clone(), k.inverse()),
        ),
        Formula::believes(p.clone(), Formula::sees(p.clone(), cipher)),
    )
}

/// A21 (secrets): `P =Y= Q ≡ Q =Y= P`.
pub fn a21_secret(p: &Principal, y: &Message, q: &Principal) -> Formula {
    Formula::iff(
        Formula::shared_secret(p.clone(), y.clone(), q.clone()),
        Formula::shared_secret(q.clone(), y.clone(), p.clone()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use atl_lang::{Key, Nonce};

    fn setup() -> (Principal, Principal, Principal, KeyTerm, Message) {
        (
            Principal::new("A"),
            Principal::new("B"),
            Principal::new("S"),
            KeyTerm::Key(Key::new("Kab")),
            Message::nonce(Nonce::new("Na")),
        )
    }

    #[test]
    fn a5_respects_side_condition() {
        let (a, b, s, k, x) = setup();
        assert!(a5(&a, &k, &b, &a, &x, &a).is_none());
        let f = a5(&a, &k, &b, &a, &x, &s).unwrap();
        assert!(f.to_string().contains("B said"));
    }

    #[test]
    fn a6_respects_side_condition() {
        let (a, b, s, _, x) = setup();
        let y = Message::nonce(Nonce::new("pw"));
        assert!(a6(&a, &y, &b, &a, &x, &a).is_none());
        assert!(a6(&a, &y, &b, &a, &x, &s).is_some());
    }

    #[test]
    fn a15_embeds_formula_as_message() {
        let (a, b, s, k, _) = setup();
        let phi = Formula::shared_key(a.clone(), k, b);
        let f = a15(&s, &phi);
        assert!(f.to_string().contains("S says <<A <-Kab-> B>>"));
    }

    #[test]
    fn a12_says_variant_uses_says() {
        let (a, _, _, _, x) = setup();
        let items = vec![x.clone(), Message::nonce(Nonce::new("Nb"))];
        let said = a12(&a, &items, 0, false);
        let says = a12(&a, &items, 0, true);
        assert!(said.to_string().contains("said"));
        assert!(says.to_string().contains("says"));
        assert_ne!(said, says);
    }

    #[test]
    fn a21_is_a_biconditional() {
        let (a, b, _, k, _) = setup();
        let f = a21_key(&a, &k, &b);
        // iff = (⊃) ∧ (⊂), elaborated through ¬/∧.
        assert!(matches!(f, Formula::And(..)));
    }

    #[test]
    fn descriptions_exist_for_all() {
        for name in AxiomName::ALL {
            assert!(!name.description().is_empty());
        }
        assert_eq!(AxiomName::ALL.len(), 32);
    }

    #[test]
    fn a22_has_no_side_condition() {
        let (a, b, s, k, x) = setup();
        let f = a22(&k, &b, &a, &x, &s);
        assert!(f.to_string().contains("B said"));
        // Even with the from field naming the key owner, the instance is
        // well-formed (the signature itself is the evidence).
        let f2 = a22(&k, &b, &a, &x, &b);
        assert!(f2.to_string().contains("B said"));
    }

    #[test]
    fn a24_uses_the_inverse_key() {
        let (a, b, _, _, x) = setup();
        let f = a24(&a, &x, &b, &Key::new("Kb"));
        assert!(f.to_string().contains("Kb_inv"));
    }
}
