//! A streaming online monitor: O(delta)-per-event incremental
//! verification of a live protocol run.
//!
//! The semantics of Section 6 assigns truth to *points* `(r, k)`, which
//! makes verification prefix-monotone: extending a run never edits any
//! earlier state, so everything computed for the prefix stays valid. A
//! [`Monitor`] exploits that. It holds one live run prefix, fed one raw
//! trace line at a time through the same [`TraceFeed`] grammar the batch
//! parser uses, and after every event re-verdicts its watched formulas
//! at the new final point with three incremental moves instead of a
//! re-walk:
//!
//! - the run grows **in place** ([`System::extend_run`]), no rebuild;
//! - the per-point memo sets grow monotonically
//!   ([`EvalCache::extend_appended`]) — only the new point's hidden
//!   states and accountable sets are computed, everything earlier is
//!   kept by reference;
//! - the annotation closure advances by **one delta saturation** per
//!   level ([`AnalysisResume::advance`]), proportional to the new
//!   event's consequences only.
//!
//! Verdict lines are byte-identical to `atl eval` over a batch re-parse
//! of the same prefix at every event (`tests/e21_monitor.rs` proves
//! this), so a monitor is a drop-in for polling the batch CLI.
//!
//! A monitor session is durable: [`Monitor::checkpoint`] captures the
//! watched formula texts plus every line fed so far, and
//! [`Monitor::resume`] replays them through the identical path — a
//! resumed session cannot diverge from one that never went down.
//!
//! ```
//! use atl_core::monitor::Monitor;
//! use atl_core::parallel::Pool;
//! let pool = Pool::new(1);
//! let mut m = Monitor::new("demo", ["A has K".into()]).unwrap();
//! for line in ["run start 0", "principal A keys K", "newkey A K2"] {
//!     for verdict in m.feed_line(line, &pool).unwrap() {
//!         assert_eq!(verdict, "at (run 0, time 1): A has K = true");
//!     }
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::annotate::{analyze_at_resumable, AnalysisResume, AtProtocol};
use crate::parallel::Pool;
use crate::semantics::EvalCache;
use crate::semantics::{GoodRuns, Semantics};
use atl_lang::parser::{parse_formula, ParseError, Symbols};
use atl_lang::{Formula, Principal};
use atl_model::wire::MonitorCheckpoint;
use atl_model::{Action, FeedOutcome, Point, System, TraceError, TraceFeed};
use std::cell::RefCell;
use std::error::Error;
use std::fmt;
use std::rc::Rc;

/// The padding key [`atl_model::RunBuilder::idle`] reserves; idle events
/// carry no protocol content, so they advance time without a fact.
const PAD_KEY: &str = "__pad";

/// Why a monitor rejected input.
///
/// `Trace` and `Formula` are *parse* failures and carry a
/// `origin:position: message` diagnostic ([`MonitorError::diagnostic`])
/// in exactly the shape the batch CLI reports (exit code 3 there); both
/// the `atl monitor` command and the serve-mode `EVENT` verb surface
/// them through this one path, so the two frontends cannot drift.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MonitorError {
    /// A trace line failed the shared streaming grammar.
    Trace(TraceError),
    /// A watched formula failed to parse.
    Formula(ParseError),
    /// Evaluation over the extended run failed (a monitor bug — the
    /// final point of a built prefix is always in range).
    Eval(String),
}

impl MonitorError {
    /// True for the parse-failure variants (CLI exit code 3).
    pub fn is_parse(&self) -> bool {
        matches!(self, MonitorError::Trace(_) | MonitorError::Formula(_))
    }

    /// The `origin:position: message` diagnostic for parse failures;
    /// trace errors position by line, formula errors by byte offset
    /// (matching `atl eval`'s `<formula>` origin convention).
    pub fn diagnostic(&self, origin: &str) -> String {
        match self {
            MonitorError::Trace(e) => e.diagnostic(origin),
            MonitorError::Formula(e) => e.diagnostic("<formula>"),
            MonitorError::Eval(m) => format!("{origin}: {m}"),
        }
    }
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorError::Trace(e) => write!(f, "{e}"),
            MonitorError::Formula(e) => write!(f, "{e}"),
            MonitorError::Eval(m) => write!(f, "monitor evaluation: {m}"),
        }
    }
}

impl Error for MonitorError {}

impl From<TraceError> for MonitorError {
    fn from(e: TraceError) -> Self {
        MonitorError::Trace(e)
    }
}

/// Work counters a monitor accumulates, exposed by serve-mode `STATS`
/// and `METRICS`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Events ingested (action lines; directives don't count).
    pub events: usize,
    /// Memoized point sets carried over across extensions — the work
    /// the incremental path did *not* redo.
    pub points_reused: usize,
    /// Incremental advances: one delta saturation + one cache append.
    pub delta_saturations: usize,
    /// Full builds: the first buildable prefix costs one batch prewarm.
    pub full_saturations: usize,
}

/// A live monitor session: one growing run prefix, a set of watched
/// formulas, and the memoized state to re-verdict them at delta cost
/// per event (see the module docs for the three incremental moves).
#[derive(Clone, Debug)]
pub struct Monitor {
    name: String,
    feed: TraceFeed,
    formula_texts: Vec<String>,
    formulas: Vec<Formula>,
    system: Option<System>,
    warmed: EvalCache,
    proto: AtProtocol,
    resume: AnalysisResume,
    lines: Vec<String>,
    last_verdicts: Vec<bool>,
    header_locked: bool,
    stats: MonitorStats,
}

impl Monitor {
    /// Creates a monitor watching `formulas` (their concrete syntax).
    ///
    /// # Errors
    ///
    /// [`MonitorError::Formula`] if a formula is not syntactically
    /// valid. Identifier *classification* (which names are principals
    /// or keys) waits for the trace header, matching what `atl eval`
    /// sees after a batch parse; syntax errors surface immediately.
    pub fn new(
        name: impl Into<String>,
        formulas: impl IntoIterator<Item = String>,
    ) -> Result<Monitor, MonitorError> {
        let name = name.into();
        let formula_texts: Vec<String> = formulas.into_iter().collect();
        for text in &formula_texts {
            parse_formula(text, &Symbols::default()).map_err(MonitorError::Formula)?;
        }
        let proto = AtProtocol::new(name.clone());
        let resume = analyze_at_resumable(&proto);
        Ok(Monitor {
            name,
            feed: TraceFeed::new(),
            formula_texts,
            formulas: Vec::new(),
            system: None,
            warmed: EvalCache::default(),
            proto,
            resume,
            lines: Vec::new(),
            last_verdicts: Vec::new(),
            header_locked: false,
            stats: MonitorStats::default(),
        })
    }

    /// The number of watched formulas.
    pub fn formula_count(&self) -> usize {
        self.formula_texts.len()
    }

    /// The verdicts of the most recent event's formulas, in watch order
    /// (empty until the first post-epoch event).
    pub fn last_verdicts(&self) -> &[bool] {
        &self.last_verdicts
    }

    /// The accumulated work counters.
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// Feeds one raw trace line and returns the monitor's output lines:
    /// nothing for header directives, a `# time k: pre-epoch` marker
    /// for events before time 0 (no run exists to evaluate yet), and
    /// one `at (run 0, time k): {formula} = {verdict}` line per watched
    /// formula after every post-epoch event — byte-identical to `atl
    /// eval` over the same prefix.
    ///
    /// # Errors
    ///
    /// [`MonitorError::Trace`] on a malformed line (the line is *not*
    /// recorded; the session continues), [`MonitorError::Formula`] if a
    /// watched formula fails to parse against the header's symbols.
    pub fn feed_line(&mut self, raw: &str, pool: &Pool) -> Result<Vec<String>, MonitorError> {
        let outcome = self.feed.feed(raw)?;
        self.lines.push(raw.to_string());
        let time = match outcome {
            FeedOutcome::Directive => return Ok(Vec::new()),
            FeedOutcome::Event { time } => time,
        };
        self.stats.events += 1;
        if !self.header_locked {
            // The header is locked once actions start, so the symbol
            // table is now exactly what a batch parse of any prefix
            // would return; the declared starting key sets seed the
            // annotation closure the way initial assumptions seed a
            // protocol analysis.
            self.header_locked = true;
            let syms = self.feed.symbols();
            let mut proto = std::mem::replace(&mut self.proto, AtProtocol::new(""));
            for text in &self.formula_texts {
                let phi = parse_formula(text, syms).map_err(MonitorError::Formula)?;
                proto = proto.goal(phi.clone());
                self.formulas.push(phi);
            }
            let initial = self
                .feed
                .builder()
                .expect("events imply a builder")
                .initial_state();
            let mut seeds = Vec::new();
            for (p, local) in &initial.locals {
                for key in &local.key_set {
                    seeds.push(Formula::has(p.clone(), key.clone()));
                }
            }
            for key in &initial.env.key_set {
                seeds.push(Formula::has(Principal::environment(), key.clone()));
            }
            for f in &seeds {
                proto = proto.assume(f.clone());
            }
            self.proto = proto;
            self.resume.advance(&self.proto, &seeds);
        }
        self.ingest_fact();
        let builder = self.feed.builder().expect("events imply a builder");
        if builder.now() < 0 {
            return Ok(vec![format!(
                "# time {time}: pre-epoch (no verdicts before time 0)"
            )]);
        }

        match &mut self.system {
            None => {
                let run = self
                    .feed
                    .try_build()
                    .ok_or_else(|| MonitorError::Eval("prefix did not build".into()))?;
                let system = System::new([run]);
                self.warmed = EvalCache::prewarm_on(&system, pool);
                self.stats.full_saturations += 1;
                self.system = Some(system);
            }
            Some(system) => {
                let builder = self.feed.builder().expect("events imply a builder");
                let from = system.runs()[0].horizon();
                system.extend_run(
                    0,
                    builder.last_event().expect("just stepped").clone(),
                    builder.current_state().clone(),
                );
                let stats = self.warmed.extend_appended(system, 0, from);
                self.stats.points_reused += stats.reused;
                self.stats.delta_saturations += 1;
            }
        }
        self.verdict_lines()
    }

    /// Assumes the fed event's fact and advances the annotation closure
    /// by one delta saturation per level: `send` ⇒ `P said M`,
    /// `recv` ⇒ `P sees M`, `newkey` ⇒ `P has K`; idle padding steps
    /// carry no fact.
    fn ingest_fact(&mut self) {
        let Some(event) = self.feed.builder().and_then(|b| b.last_event()) else {
            return;
        };
        let actor = event.actor.clone();
        let fact = match &event.action {
            Action::Send { message, .. } => Formula::said(actor, message.clone()),
            Action::Receive { message } => Formula::sees(actor, message.clone()),
            Action::NewKey { key } => {
                if actor == Principal::environment() && key.as_str() == PAD_KEY {
                    return;
                }
                Formula::has(actor, key.clone())
            }
        };
        let proto = std::mem::replace(&mut self.proto, AtProtocol::new(""));
        self.proto = proto.assume(fact.clone());
        self.resume.advance(&self.proto, &[fact]);
    }

    /// Evaluates every watched formula at the run's final point over the
    /// shared cache, writing lazily-filled memo sets back so they carry
    /// to the next event.
    fn verdict_lines(&mut self) -> Result<Vec<String>, MonitorError> {
        let system = self.system.as_ref().expect("verdicts need a system");
        let k = system.runs()[0].horizon();
        let cache = Rc::new(RefCell::new(std::mem::take(&mut self.warmed)));
        let mut out = Vec::with_capacity(self.formulas.len());
        let mut verdicts = Vec::with_capacity(self.formulas.len());
        {
            let sem = Semantics::new_shared(system, GoodRuns::all_runs(system), Rc::clone(&cache));
            for phi in &self.formulas {
                let v = sem
                    .eval(Point::new(0, k), phi)
                    .map_err(|e| MonitorError::Eval(e.to_string()))?;
                out.push(format!("at (run 0, time {k}): {phi} = {v}"));
                verdicts.push(v);
            }
        }
        self.warmed = match Rc::try_unwrap(cache) {
            Ok(cell) => cell.into_inner(),
            Err(shared) => shared.borrow().clone(),
        };
        self.last_verdicts = verdicts;
        Ok(out)
    }

    /// The BAN-style annotation summary for everything ingested so far
    /// — byte-identical to a cold analysis of the same assumption set.
    pub fn summary(&self) -> String {
        self.resume.render(&self.proto)
    }

    /// Packages the session for durable storage (inputs, not derived
    /// state — see [`MonitorCheckpoint`]).
    pub fn checkpoint(&self, id: u64) -> MonitorCheckpoint {
        MonitorCheckpoint {
            id,
            name: self.name.clone(),
            formulas: self.formula_texts.clone(),
            lines: self.lines.clone(),
        }
    }

    /// Rebuilds a session from a checkpoint by replaying its recorded
    /// lines through the live path; the result is indistinguishable
    /// from a session that never went down.
    ///
    /// # Errors
    ///
    /// Any [`MonitorError`] the original session would have raised —
    /// a checkpoint only records lines that were accepted, so an error
    /// here means the checkpoint is stale or hand-edited.
    pub fn resume(cp: &MonitorCheckpoint, pool: &Pool) -> Result<Monitor, MonitorError> {
        let mut monitor = Monitor::new(cp.name.clone(), cp.formulas.clone())?;
        for line in &cp.lines {
            monitor.feed_line(line, pool)?;
        }
        Ok(monitor)
    }

    /// The monitor's name (used as the protocol name in [`Self::summary`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The protocol view of everything ingested so far: one assumption
    /// per seeded initial key and per event fact, the watched formulas
    /// as goals. A batch re-analysis of this protocol (`analyze_at`)
    /// recreates from scratch the closure the monitor advances
    /// incrementally — the comparison the benchmarks draw.
    pub fn protocol(&self) -> &AtProtocol {
        &self.proto
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &[&str] = &[
        "run start -1",
        "principal A keys Kab",
        "principal B keys Kab",
        "# past-epoch activity",
        "newkey A Spare",
        "send A -> B : {X}Kab@A",
        "recv B : {X}Kab@A",
    ];

    fn feed_all(monitor: &mut Monitor, pool: &Pool) -> Vec<String> {
        let mut out = Vec::new();
        for line in TRACE {
            out.extend(monitor.feed_line(line, pool).unwrap());
        }
        out
    }

    #[test]
    fn verdicts_track_the_run_and_match_batch_format() {
        let pool = Pool::new(1);
        let mut m = Monitor::new("t", ["B sees X".to_string()]).unwrap();
        let out = feed_all(&mut m, &pool);
        assert_eq!(
            out,
            [
                "at (run 0, time 0): B sees X = false",
                "at (run 0, time 1): B sees X = false",
                "at (run 0, time 2): B sees X = true",
            ]
        );
        assert_eq!(m.last_verdicts(), [true]);
        let stats = m.stats();
        assert_eq!(stats.events, 3);
        assert_eq!(stats.full_saturations, 1);
        assert_eq!(stats.delta_saturations, 2);
        assert!(stats.points_reused > 0);
    }

    #[test]
    fn checkpoint_resume_is_indistinguishable() {
        let pool = Pool::new(1);
        let mut m = Monitor::new("t", ["B sees X".to_string()]).unwrap();
        for line in &TRACE[..5] {
            m.feed_line(line, &pool).unwrap();
        }
        let cp = m.checkpoint(9);
        let mut resumed = Monitor::resume(&cp, &pool).unwrap();
        for line in &TRACE[5..] {
            assert_eq!(
                m.feed_line(line, &pool).unwrap(),
                resumed.feed_line(line, &pool).unwrap()
            );
        }
        assert_eq!(m.last_verdicts(), resumed.last_verdicts());
        assert_eq!(m.summary(), resumed.summary());
    }

    #[test]
    fn bad_lines_are_rejected_and_not_recorded() {
        let pool = Pool::new(1);
        let mut m = Monitor::new("t", ["B sees X".to_string()]).unwrap();
        m.feed_line("run start 0", &pool).unwrap();
        let err = m.feed_line("nonsense here", &pool).unwrap_err();
        assert!(err.is_parse());
        assert!(err.diagnostic("stdin").starts_with("stdin:2:"));
        // The session survives and the bad line is not checkpointed.
        m.feed_line("principal A keys K", &pool).unwrap();
        assert_eq!(m.checkpoint(0).lines.len(), 2);
    }

    #[test]
    fn formula_syntax_errors_surface_at_creation() {
        let err = Monitor::new("t", ["A believes (".to_string()]).unwrap_err();
        assert!(matches!(err, MonitorError::Formula(_)));
        assert!(err.diagnostic("x").starts_with("<formula>:"));
    }

    #[test]
    fn summary_advances_with_the_closure() {
        let pool = Pool::new(1);
        let mut m = Monitor::new("t", ["B sees X".to_string()]).unwrap();
        feed_all(&mut m, &pool);
        let summary = m.summary();
        assert!(summary.contains("[ok] B sees X"), "{summary}");
    }
}
