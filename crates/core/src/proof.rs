//! Proof objects for the axiomatic system (Section 4.2) and their checker.
//!
//! A proof is a sequence of steps, each justified as a premise, a
//! propositional tautology instance, an axiom-schema instance, or an
//! application of modus ponens (R1) or necessitation (R2). Necessitation
//! (`from ⊢ φ infer ⊢ P believes φ`) applies only to *theorems* — steps
//! whose derivation used no premises — which the checker tracks per step.

use crate::axioms::AxiomName;
use crate::tautology::is_tautology;
use atl_lang::{Formula, Principal};
use std::error::Error;
use std::fmt;

/// The justification of one proof step.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Justification {
    /// An undischarged premise (e.g. an initial assumption or a protocol
    /// annotation).
    Premise,
    /// An instance of a propositional tautology.
    Tautology,
    /// An instance of an axiom schema (checked by pattern, named for the
    /// record).
    Axiom(AxiomName),
    /// R1: modus ponens from steps `imp` (the implication) and `ant` (the
    /// antecedent).
    ModusPonens {
        /// Index of the step proving `φ ⊃ ψ`.
        imp: usize,
        /// Index of the step proving `φ`.
        ant: usize,
    },
    /// R2: necessitation of theorem step `of` by `believer`.
    Necessitation {
        /// Index of the theorem step proving `φ`.
        of: usize,
        /// The principal `P` in the conclusion `P believes φ`.
        believer: Principal,
    },
}

/// One step of a proof: a formula and its justification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProofStep {
    /// The formula asserted by this step.
    pub formula: Formula,
    /// Why it is asserted.
    pub justification: Justification,
}

/// Error describing why a proof fails to check.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProofError {
    /// Index of the offending step.
    pub step: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for ProofError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proof step {} invalid: {}", self.step, self.reason)
    }
}

impl Error for ProofError {}

/// A checkable proof: a sequence of steps ending in its conclusion.
///
/// # Examples
///
/// Deriving `A believes ψ` from premises `A believes φ` and
/// `A believes (φ ⊃ ψ)` via A1 and modus ponens:
///
/// ```
/// use atl_core::proof::{Justification, Proof};
/// use atl_core::axioms::{a1, AxiomName};
/// use atl_lang::{Formula, Principal, Prop};
/// let a = Principal::new("A");
/// let phi = Formula::prop(Prop::new("p"));
/// let psi = Formula::prop(Prop::new("q"));
/// let bp = Formula::believes(a.clone(), phi.clone());
/// let bimp = Formula::believes(a.clone(), Formula::implies(phi.clone(), psi.clone()));
/// let mut proof = Proof::new();
/// let s0 = proof.premise(bp.clone());
/// let s1 = proof.premise(bimp.clone());
/// let s2 = proof.axiom(a1(&a, &phi, &psi), AxiomName::A1);
/// // A1 is (bp ∧ bimp) ⊃ bψ; conjoin the premises first.
/// let s3 = proof.tautology(Formula::implies(bp.clone(),
///     Formula::implies(bimp.clone(), Formula::and(bp.clone(), bimp.clone()))));
/// let s4 = proof.modus_ponens(s3, s0);
/// let s5 = proof.modus_ponens(s4, s1);
/// let s6 = proof.modus_ponens(s2, s5);
/// assert_eq!(proof.step(s6).formula, Formula::believes(a, psi));
/// proof.check()?;
/// # Ok::<(), atl_core::proof::ProofError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Proof {
    steps: Vec<ProofStep>,
}

impl Proof {
    /// Creates an empty proof.
    pub fn new() -> Self {
        Proof::default()
    }

    /// The steps so far.
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// The step at `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn step(&self, i: usize) -> &ProofStep {
        &self.steps[i]
    }

    /// The conclusion (the last step's formula), if any step exists.
    pub fn conclusion(&self) -> Option<&Formula> {
        self.steps.last().map(|s| &s.formula)
    }

    fn push(&mut self, formula: Formula, justification: Justification) -> usize {
        self.steps.push(ProofStep {
            formula,
            justification,
        });
        self.steps.len() - 1
    }

    /// Appends a premise, returning its index.
    pub fn premise(&mut self, formula: Formula) -> usize {
        self.push(formula, Justification::Premise)
    }

    /// Appends a tautology instance, returning its index.
    pub fn tautology(&mut self, formula: Formula) -> usize {
        self.push(formula, Justification::Tautology)
    }

    /// Appends an axiom instance, returning its index.
    pub fn axiom(&mut self, formula: Formula, name: AxiomName) -> usize {
        self.push(formula, Justification::Axiom(name))
    }

    /// Appends a modus ponens step; the formula is computed from the
    /// implication at `imp`.
    ///
    /// # Panics
    ///
    /// Panics if `imp` does not hold an implication shape `¬(φ ∧ ¬ψ)`; the
    /// checker reports the error instead if you build steps manually.
    pub fn modus_ponens(&mut self, imp: usize, ant: usize) -> usize {
        let concl = consequent_of(&self.steps[imp].formula)
            .expect("modus_ponens target must be an implication")
            .clone();
        self.push(concl, Justification::ModusPonens { imp, ant })
    }

    /// Appends a necessitation step over theorem step `of`.
    pub fn necessitation(&mut self, of: usize, believer: impl Into<Principal>) -> usize {
        let believer = believer.into();
        let f = Formula::believes(believer.clone(), self.steps[of].formula.clone());
        self.push(f, Justification::Necessitation { of, believer })
    }

    /// Checks the whole proof.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProofError`]: an unsound tautology claim, a
    /// modus ponens mismatch, a forward reference, or necessitation of a
    /// premise-dependent step.
    pub fn check(&self) -> Result<(), ProofError> {
        // is_theorem[i]: step i's derivation uses no premises.
        let mut is_theorem = vec![false; self.steps.len()];
        for (i, step) in self.steps.iter().enumerate() {
            match &step.justification {
                Justification::Premise => {
                    is_theorem[i] = false;
                }
                Justification::Tautology => {
                    if !is_tautology(&step.formula) {
                        return Err(ProofError {
                            step: i,
                            reason: format!("{} is not a propositional tautology", step.formula),
                        });
                    }
                    is_theorem[i] = true;
                }
                Justification::Axiom(_) => {
                    // Axiom instances are constructed by the schema
                    // functions; the checker accepts them as theorems. (The
                    // soundness model-checker validates the schemas
                    // themselves against the semantics.)
                    is_theorem[i] = true;
                }
                Justification::ModusPonens { imp, ant } => {
                    let (imp, ant) = (*imp, *ant);
                    if imp >= i || ant >= i {
                        return Err(ProofError {
                            step: i,
                            reason: "modus ponens may only reference earlier steps".into(),
                        });
                    }
                    let Some(consequent) = consequent_of(&self.steps[imp].formula) else {
                        return Err(ProofError {
                            step: i,
                            reason: format!(
                                "step {imp} is not an implication: {}",
                                self.steps[imp].formula
                            ),
                        });
                    };
                    let Some(antecedent) = antecedent_of(&self.steps[imp].formula) else {
                        return Err(ProofError {
                            step: i,
                            reason: "implication missing antecedent".into(),
                        });
                    };
                    if antecedent != &self.steps[ant].formula {
                        return Err(ProofError {
                            step: i,
                            reason: format!(
                                "antecedent mismatch: expected {antecedent}, step {ant} proves {}",
                                self.steps[ant].formula
                            ),
                        });
                    }
                    if consequent != &step.formula {
                        return Err(ProofError {
                            step: i,
                            reason: format!("conclusion mismatch: implication yields {consequent}"),
                        });
                    }
                    is_theorem[i] = is_theorem[imp] && is_theorem[ant];
                }
                Justification::Necessitation { of, believer } => {
                    let of = *of;
                    if of >= i {
                        return Err(ProofError {
                            step: i,
                            reason: "necessitation may only reference earlier steps".into(),
                        });
                    }
                    if !is_theorem[of] {
                        return Err(ProofError {
                            step: i,
                            reason: format!(
                                "necessitation applies only to theorems; step {of} depends on premises"
                            ),
                        });
                    }
                    let expected =
                        Formula::believes(believer.clone(), self.steps[of].formula.clone());
                    if expected != step.formula {
                        return Err(ProofError {
                            step: i,
                            reason: format!("necessitation should conclude {expected}"),
                        });
                    }
                    is_theorem[i] = true;
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Proof {
    /// Renders the proof as a numbered Hilbert derivation:
    ///
    /// ```text
    /// 1. fresh(X)                         [premise]
    /// 2. S said X                         [premise]
    /// 3. fresh(X) & S said X -> S says X  [axiom A20]
    /// ...
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, step) in self.steps.iter().enumerate() {
            let just = match &step.justification {
                Justification::Premise => "premise".to_string(),
                Justification::Tautology => "tautology".to_string(),
                Justification::Axiom(name) => format!("axiom {name}"),
                Justification::ModusPonens { imp, ant } => {
                    format!("MP {}, {}", imp + 1, ant + 1)
                }
                Justification::Necessitation { of, believer } => {
                    format!("NEC {} by {believer}", of + 1)
                }
            };
            writeln!(f, "{:>3}. {}  [{just}]", i + 1, step.formula)?;
        }
        Ok(())
    }
}

/// If `f` has the implication shape `¬(φ ∧ ¬ψ)`, returns `φ`.
pub fn antecedent_of(f: &Formula) -> Option<&Formula> {
    let Formula::Not(inner) = f else { return None };
    let Formula::And(a, b) = &**inner else {
        return None;
    };
    let Formula::Not(_) = &**b else { return None };
    Some(a)
}

/// If `f` has the implication shape `¬(φ ∧ ¬ψ)`, returns `ψ`.
pub fn consequent_of(f: &Formula) -> Option<&Formula> {
    let Formula::Not(inner) = f else { return None };
    let Formula::And(_, b) = &**inner else {
        return None;
    };
    let Formula::Not(psi) = &**b else { return None };
    Some(psi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atl_lang::Prop;

    fn p() -> Formula {
        Formula::prop(Prop::new("p"))
    }

    fn q() -> Formula {
        Formula::prop(Prop::new("q"))
    }

    #[test]
    fn implication_shape_accessors() {
        let imp = Formula::implies(p(), q());
        assert_eq!(antecedent_of(&imp), Some(&p()));
        assert_eq!(consequent_of(&imp), Some(&q()));
        assert_eq!(antecedent_of(&p()), None);
    }

    #[test]
    fn simple_modus_ponens_checks() {
        let mut proof = Proof::new();
        let s0 = proof.premise(p());
        let s1 = proof.tautology(Formula::implies(p(), Formula::or(p(), q())));
        let s2 = proof.modus_ponens(s1, s0);
        assert_eq!(proof.step(s2).formula, Formula::or(p(), q()));
        proof.check().unwrap();
    }

    #[test]
    fn bogus_tautology_rejected() {
        let mut proof = Proof::new();
        proof.tautology(Formula::implies(p(), q()));
        let err = proof.check().unwrap_err();
        assert!(err.reason.contains("not a propositional tautology"));
    }

    #[test]
    fn necessitation_of_theorem_allowed() {
        let mut proof = Proof::new();
        let t = proof.tautology(Formula::or(p(), Formula::not(p())));
        proof.necessitation(t, "A");
        proof.check().unwrap();
    }

    #[test]
    fn necessitation_of_premise_rejected() {
        // `p ⊢ A believes p` would be wildly unsound; the checker refuses.
        let mut proof = Proof::new();
        let prem = proof.premise(p());
        proof.necessitation(prem, "A");
        let err = proof.check().unwrap_err();
        assert!(err.reason.contains("only to theorems"));
    }

    #[test]
    fn necessitation_propagates_through_modus_ponens() {
        // A theorem derived from theorems stays necessitatable; one derived
        // from a premise does not.
        let mut proof = Proof::new();
        let t0 = proof.tautology(Formula::implies(p(), Formula::implies(q(), p())));
        let prem = proof.premise(p());
        let mixed = proof.modus_ponens(t0, prem); // q ⊃ p, depends on premise
        proof.necessitation(mixed, "A");
        assert!(proof.check().is_err());
    }

    #[test]
    fn antecedent_mismatch_detected() {
        let mut proof = Proof::new();
        let s0 = proof.premise(q());
        let s1 = proof.tautology(Formula::implies(p(), Formula::or(p(), p())));
        let bad = ProofStep {
            formula: Formula::or(p(), p()),
            justification: Justification::ModusPonens { imp: s1, ant: s0 },
        };
        let mut steps = proof.steps().to_vec();
        steps.push(bad);
        let manual = Proof { steps };
        let err = manual.check().unwrap_err();
        assert!(err.reason.contains("antecedent mismatch"));
    }

    #[test]
    fn forward_references_rejected() {
        let manual = Proof {
            steps: vec![ProofStep {
                formula: p(),
                justification: Justification::ModusPonens { imp: 5, ant: 6 },
            }],
        };
        assert!(manual.check().is_err());
    }
}
