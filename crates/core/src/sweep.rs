//! Parallel fault sweeps with belief-survival reporting.
//!
//! [`atl_model`]'s sweep engine enumerates, deduplicates, and executes a
//! grid of [`FaultPlan`]s; this module is the bridge that turns those
//! executions into the *logic-level* robustness report an `atl inject
//! --sweep` prints:
//!
//! 1. the idealized protocol is enacted
//!    ([`enact_with`](crate::enact::enact_with)) and the grid executed
//!    over the pool ([`sweep_plans_on`]), with an [`ExecutionCache`] so
//!    overlapping grid points (and the inert baseline plan) run once;
//! 2. each surviving run is projected back onto the idealized protocol
//!    (which `→` steps were actually delivered) and re-annotated;
//!    distinct plans with identical delivery patterns share one
//!    annotation pass, and the passes are sharded across the same pool;
//! 3. the distinct faulted runs become a [`System`] fed to the
//!    parallel good-run construction and [`Semantics::valid_on`] sweep,
//!    so every goal also gets a *semantic* verdict over degraded
//!    traffic.
//!
//! Every stage merges by index or first-occurrence order, so the
//! rendered [`FaultSweepReport`] is byte-identical at every `--jobs`
//! count — `tests/e16_sweep.rs` holds it to that.

use crate::annotate::{analyze_at, AtProtocol, AtStep};
use crate::enact::{enact_with, EnactOptions};
use crate::goodruns::{construct_on, InitialAssumptions};
use crate::parallel::Pool;
use crate::semantics::{GoodRuns, Semantics};
use atl_lang::{Formula, Message, Principal};
use atl_model::{
    sweep_plans_on, validate_run, Action, ExecOptions, ExecutionCache, ExpectPolicy, FaultPlan,
    Run, SweepGrid, SweepOutcome, SweepStats,
};
use std::collections::BTreeMap;
use std::fmt;

/// How to run a fault sweep over an idealized protocol.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// The plan grid to enumerate.
    pub grid: SweepGrid,
    /// Execution options shared by every plan.
    pub options: ExecOptions,
    /// The degradation policy attached to every enacted expect step.
    pub expect_policy: ExpectPolicy,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            grid: SweepGrid::new(),
            options: ExecOptions::default(),
            expect_policy: ExpectPolicy::skip_after(6),
        }
    }
}

/// What one plan's execution meant for the protocol's beliefs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PlanVerdict {
    /// Execution failed (the plan starved a role past its policy, or the
    /// plan itself was invalid).
    Failed(String),
    /// Execution produced a well-formed run.
    Ok {
        /// Whether the run deviated from the clean interleaving at all.
        degraded: bool,
        /// Faults the executor applied.
        faults: usize,
        /// Expect steps abandoned by degrading roles.
        abandoned: usize,
        /// Idealized `→` steps whose message was actually delivered.
        delivered: usize,
        /// Goals achieved at baseline but lost under this plan.
        beliefs_lost: usize,
    },
}

/// Per-goal survival counts across the executed plans.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GoalSurvival {
    /// The goal formula.
    pub goal: Formula,
    /// Whether the baseline (fault-free) annotation derives it.
    pub baseline: bool,
    /// Plans (with well-formed runs) under which it is still derived.
    pub survived: usize,
    /// Plans under which the baseline derivation is lost.
    pub lost: usize,
    /// The semantic verdict of the goal over the system of distinct
    /// faulted runs, rendered (`valid` / `fails` / an error), if the
    /// sweep produced any runs.
    pub semantic: String,
}

/// The full result of a belief-survival fault sweep.
#[derive(Clone, Debug)]
pub struct FaultSweepReport {
    /// The protocol's name.
    pub protocol: String,
    /// Enumeration / dedup / cache / execution accounting.
    pub stats: SweepStats,
    /// One verdict per enumerated plan, in grid order.
    pub verdicts: Vec<(FaultPlan, PlanVerdict)>,
    /// Per-goal survival histogram.
    pub survival: Vec<GoalSurvival>,
    /// Total idealized `→` steps (the denominator of `delivered`).
    pub total_sends: usize,
    /// Distinct well-formed runs collected into the semantic system.
    pub distinct_runs: usize,
    /// Distinct runs violating restrictions 1–5 (always 0: the checked
    /// builder cannot emit them; audited anyway, as `inject` does).
    pub audit_violations: usize,
}

impl FaultSweepReport {
    /// True if every enumerated plan executed to a well-formed run.
    pub fn all_executed(&self) -> bool {
        self.stats.failed == 0
    }

    /// Plans whose runs lost at least one baseline belief.
    pub fn lossy_plans(&self) -> usize {
        self.verdicts
            .iter()
            .filter(|(_, v)| matches!(v, PlanVerdict::Ok { beliefs_lost, .. } if *beliefs_lost > 0))
            .count()
    }
}

impl fmt::Display for FaultSweepReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "fault sweep of {}:", self.protocol)?;
        writeln!(f, "  {}", self.stats)?;
        writeln!(
            f,
            "  {} distinct run(s); audit: {}",
            self.distinct_runs,
            if self.audit_violations == 0 {
                "restrictions 1-5 satisfied by every run".to_string()
            } else {
                format!("{} run(s) VIOLATE restrictions 1-5", self.audit_violations)
            }
        )?;
        writeln!(f, "plans:")?;
        for (plan, verdict) in &self.verdicts {
            match verdict {
                PlanVerdict::Failed(why) => writeln!(f, "  [failed]   {plan} — {why}")?,
                PlanVerdict::Ok {
                    degraded,
                    faults,
                    abandoned,
                    delivered,
                    beliefs_lost,
                } => {
                    let tag = if *degraded {
                        "[degraded]"
                    } else {
                        "[clean]   "
                    };
                    writeln!(
                        f,
                        "  {tag} {plan} — {faults} fault(s), {abandoned} abandoned, \
                         {delivered}/{} delivered, {beliefs_lost} belief(s) lost",
                        self.total_sends
                    )?;
                }
            }
        }
        let executed_ok = self.verdicts.len() - self.stats.failed;
        writeln!(f, "belief survival over {executed_ok} well-formed plan(s):")?;
        for s in &self.survival {
            if s.baseline {
                writeln!(
                    f,
                    "  [{}/{}] {}   (semantics: {})",
                    s.survived, executed_ok, s.goal, s.semantic
                )?;
            } else {
                writeln!(f, "  [unproven] {}   (semantics: {})", s.goal, s.semantic)?;
            }
        }
        Ok(())
    }
}

/// Is `message`, addressed to `to`, delivered somewhere in `run`?
/// (Sends to the environment count as delivered: there is no expect.)
fn delivered(run: &Run, to: &Principal, message: &Message) -> bool {
    *to == Principal::environment()
        || run.events().any(|(_, e)| {
            e.actor == *to && matches!(&e.action, Action::Receive { message: m } if m == message)
        })
}

/// The mask of idealized `→` steps whose message `run` delivered
/// (`true` = keep; `newkey` steps are always kept).
pub(crate) fn delivery_mask(at: &AtProtocol, run: &Run) -> Vec<bool> {
    at.steps
        .iter()
        .map(|s| match s {
            AtStep::Send { to, message, .. } => delivered(run, to, message),
            AtStep::NewKey { .. } => true,
        })
        .collect()
}

/// `at` restricted to the steps of `mask` — the degraded idealized
/// protocol a faulted run actually carried out.
pub fn degrade_at(at: &AtProtocol, mask: &[bool]) -> AtProtocol {
    let mut degraded = at.clone();
    degraded.steps = at
        .steps
        .iter()
        .zip(mask)
        .filter(|(_, keep)| **keep)
        .map(|(s, _)| s.clone())
        .collect();
    degraded
}

/// The belief-shaped assumptions of `at`, as the initial-assumption
/// vector the Section 7 good-run construction expects.
pub(crate) fn belief_assumptions(at: &AtProtocol) -> InitialAssumptions {
    let mut init = InitialAssumptions::new();
    for f in &at.assumptions {
        if let Formula::Believes(p, body) = f {
            init.assume(p.clone(), (**body).clone());
        }
    }
    init
}

/// Runs the full sweep → belief-survival pipeline over `pool`.
///
/// `cache` persists executions across calls: sweeping a refined grid
/// after a coarse one (or re-running the baseline plan) only executes
/// the new fingerprints. The returned report renders byte-identically
/// at every worker count.
pub fn fault_sweep_with_cache(
    at: &AtProtocol,
    config: &SweepConfig,
    pool: &Pool,
    cache: &ExecutionCache,
) -> FaultSweepReport {
    let proto = enact_with(
        at,
        EnactOptions {
            expect_policy: config.expect_policy,
        },
    );
    let outcome = sweep_plans_on(&proto, &config.options, &config.grid.plans(), pool, cache);
    survival_report(at, outcome, pool)
}

/// Turns a finished [`SweepOutcome`] into the belief-survival report —
/// the half of the pipeline *after* execution. Split out so callers
/// that resolve outcomes differently (the distributed fabric, which
/// executes plans on remote daemons and persisted stores) feed the very
/// same annotation/semantics/rendering path as a local sweep.
pub fn survival_report(at: &AtProtocol, outcome: SweepOutcome, pool: &Pool) -> FaultSweepReport {
    // One annotation pass per distinct delivery mask (many plans resolve
    // to the same delivered-step pattern), sharded over the pool
    // together with the baseline. Masks are keyed first-occurrence, so
    // job order — and with it the merged result order — is grid order.
    let masks: Vec<Option<Vec<bool>>> = outcome
        .results
        .iter()
        .map(|r| r.ok().map(|(run, _)| delivery_mask(at, run)))
        .collect();
    let mut mask_slot: BTreeMap<&[bool], usize> = BTreeMap::new();
    let mut jobs: Vec<Vec<bool>> = Vec::new();
    for mask in masks.iter().flatten() {
        if !mask_slot.contains_key(mask.as_slice()) {
            mask_slot.insert(mask, jobs.len());
            jobs.push(mask.clone());
        }
    }
    let goal_flags: Vec<Vec<bool>> = {
        let tasks: Vec<Box<dyn FnOnce() -> Vec<bool> + Send>> = std::iter::once(None)
            .chain(jobs.iter().map(Some))
            .map(|mask| {
                let degraded = match mask {
                    None => at.clone(),
                    Some(mask) => degrade_at(at, mask),
                };
                Box::new(move || {
                    analyze_at(&degraded)
                        .goals
                        .iter()
                        .map(|(_, ok)| *ok)
                        .collect::<Vec<bool>>()
                }) as Box<dyn FnOnce() -> Vec<bool> + Send>
            })
            .collect();
        pool.run(tasks)
    };
    let (baseline_flags, mask_flags) = goal_flags.split_first().expect("baseline job present");

    // Per-plan verdicts in grid order.
    let total_sends = at
        .steps
        .iter()
        .filter(|s| matches!(s, AtStep::Send { .. }))
        .count();
    let mut survived = vec![0usize; at.goals.len()];
    let mut lost = vec![0usize; at.goals.len()];
    let verdicts: Vec<(FaultPlan, PlanVerdict)> = outcome
        .results
        .iter()
        .zip(&masks)
        .map(|(r, mask)| {
            let verdict = match (r.ok(), mask) {
                (Some((_, report)), Some(mask)) => {
                    let flags = &mask_flags[mask_slot[mask.as_slice()]];
                    let mut beliefs_lost = 0;
                    for (g, (base, now)) in baseline_flags.iter().zip(flags).enumerate() {
                        if *base && *now {
                            survived[g] += 1;
                        } else if *base {
                            beliefs_lost += 1;
                            lost[g] += 1;
                        }
                    }
                    PlanVerdict::Ok {
                        degraded: report.degraded(),
                        faults: report.faults.len(),
                        abandoned: report.abandoned.len(),
                        delivered: mask
                            .iter()
                            .zip(&at.steps)
                            .filter(|(keep, s)| **keep && matches!(s, AtStep::Send { .. }))
                            .count(),
                        beliefs_lost,
                    }
                }
                _ => PlanVerdict::Failed(match r.outcome.as_ref() {
                    Err(e) => e.to_string(),
                    Ok(_) => "unreachable: ok run without mask".to_string(),
                }),
            };
            (r.plan.clone(), verdict)
        })
        .collect();

    // The semantic stage: distinct faulted runs, audited, then good-run
    // construction and a validity sweep per goal — all over the pool.
    let system = outcome.system();
    let audit_violations = pool
        .map(system.runs(), |_, run| validate_run(run).len())
        .into_iter()
        .filter(|n| *n > 0)
        .count();
    let goods = if system.is_empty() {
        None
    } else {
        Some(match construct_on(&system, &belief_assumptions(at), pool) {
            Ok((g, _)) => g,
            Err(_) => GoodRuns::all_runs(&system),
        })
    };
    let semantic_of = |goal: &Formula| -> String {
        let Some(goods) = &goods else {
            return "no runs".to_string();
        };
        match Semantics::valid_on(&system, goods, goal, pool) {
            Ok(true) => "valid".to_string(),
            Ok(false) => "fails".to_string(),
            Err(e) => format!("error: {e}"),
        }
    };
    let survival: Vec<GoalSurvival> = at
        .goals
        .iter()
        .enumerate()
        .map(|(g, goal)| GoalSurvival {
            goal: goal.clone(),
            baseline: baseline_flags[g],
            survived: survived[g],
            lost: lost[g],
            semantic: semantic_of(goal),
        })
        .collect();

    FaultSweepReport {
        protocol: at.name.clone(),
        stats: outcome.stats,
        verdicts,
        survival,
        total_sends,
        distinct_runs: system.len(),
        audit_violations,
    }
}

/// As [`fault_sweep_with_cache`] with a fresh cache — the common
/// one-shot entry point behind `atl inject --sweep`.
pub fn fault_sweep(at: &AtProtocol, config: &SweepConfig, pool: &Pool) -> FaultSweepReport {
    fault_sweep_with_cache(at, config, pool, &ExecutionCache::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use atl_lang::{Key, Nonce};

    /// Figure 1 (Kerberos fragment), as in the enact tests.
    fn figure1() -> AtProtocol {
        let kab = Formula::shared_key("A", Key::new("Kab"), "B");
        let ts = Message::nonce(Nonce::new("Ts"));
        let inner = Message::encrypted(
            Message::tuple([ts.clone(), kab.clone().into_message()]),
            Key::new("Kbs"),
            "S",
        );
        let outer = Message::encrypted(
            Message::tuple([ts, kab.clone().into_message(), inner.clone()]),
            Key::new("Kas"),
            "S",
        );
        AtProtocol::new("kerberos-sweep")
            .assume(Formula::has("A", Key::new("Kas")))
            .assume(Formula::has("B", Key::new("Kbs")))
            .assume(Formula::believes(
                "A",
                Formula::shared_key("A", Key::new("Kas"), "S"),
            ))
            .step("S", "A", outer)
            .step("A", "B", inner)
            .goal(Formula::sees("B", kab.into_message()))
    }

    fn config(grid: SweepGrid) -> SweepConfig {
        SweepConfig {
            grid,
            options: ExecOptions::default(),
            expect_policy: ExpectPolicy::skip_after(3),
        }
    }

    #[test]
    fn clean_grid_keeps_every_belief() {
        let report = fault_sweep(
            &figure1(),
            &config(SweepGrid::new().seeds(0..3)),
            &Pool::sequential(),
        );
        assert_eq!(report.stats.enumerated, 3);
        // Three inert seeds collapse to one execution.
        assert_eq!(report.stats.executed, 1);
        assert_eq!(report.stats.failed, 0);
        assert_eq!(report.lossy_plans(), 0);
        assert!(report.all_executed());
        assert_eq!(report.distinct_runs, 1);
        assert_eq!(report.audit_violations, 0);
        for s in &report.survival {
            if s.baseline {
                assert_eq!(s.survived, 3);
                assert_eq!(s.lost, 0);
            }
        }
        let shown = report.to_string();
        assert!(shown.contains("[clean]"), "{shown}");
        assert!(shown.contains("belief survival"), "{shown}");
    }

    #[test]
    fn total_loss_degrades_beliefs_and_report_is_jobs_invariant() {
        let grid = SweepGrid::new().seeds(0..2).drop_steps([0.0, 1.0]);
        let reference = fault_sweep(&figure1(), &config(grid.clone()), &Pool::sequential());
        // Certain drop starves B: its belief-relevant sight is lost.
        assert!(reference.lossy_plans() > 0, "{reference}");
        assert!(reference.stats.degraded > 0);
        // Dedup: 2 seeds × {clean, certain-drop} → 2 executions.
        assert_eq!(reference.stats.executed, 2);
        for jobs in [2, 4] {
            let report = fault_sweep(&figure1(), &config(grid.clone()), &Pool::new(jobs));
            assert_eq!(report.to_string(), reference.to_string(), "jobs={jobs}");
        }
    }

    #[test]
    fn cache_spans_sweep_stages() {
        let cache = ExecutionCache::new();
        let pool = Pool::sequential();
        let coarse = config(SweepGrid::new().seeds(0..2).drop_steps([0.0, 1.0]));
        let first = fault_sweep_with_cache(&figure1(), &coarse, &pool, &cache);
        assert_eq!(first.stats.cache_hits, 0);
        // A refined grid over the same axis: the shared points are hits.
        let refined = config(SweepGrid::new().seeds(0..2).drop_steps([0.0, 0.5, 1.0]));
        let second = fault_sweep_with_cache(&figure1(), &refined, &pool, &cache);
        assert_eq!(second.stats.cache_hits, 2);
        assert!(second.stats.executed < second.stats.unique);
    }
}
