//! Scrapeable serve-mode metrics: per-verb latency histograms over
//! fixed log-scale buckets, queue/worker gauges, and a Prometheus-style
//! text exposition.
//!
//! The daemon (`crate::serve`) keeps one [`ServeMetrics`] per server.
//! Connection workers record a [`Verb`] + latency observation per
//! dispatched request; the accept loop moves the queue gauges and the
//! backpressure counters. Everything is a plain atomic — recording a
//! request costs a few relaxed adds, never a lock — and the `METRICS`
//! verb renders the whole registry with [`ServeMetrics::render`], adding
//! whatever store-level counters the daemon supplies as
//! [`ExtraMetric`]s.
//!
//! The exposition follows the Prometheus text format (`# HELP` /
//! `# TYPE` headers; `_bucket{le="…"}`, `_sum`, `_count` histogram
//! series with cumulative buckets), so standard scrapers parse it
//! as-is. Bucket bounds are fixed at powers of 4 from 1 µs to ~262 ms
//! plus `+Inf`: warm cache hits land in the first buckets, cold `LOAD`s
//! in the last ones, and the fixed bounds keep every scrape comparable
//! with every other.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Histogram bucket upper bounds, in microseconds: powers of 4 from
/// 1 µs to ~262 ms. Observations beyond the last bound land in the
/// implicit `+Inf` bucket.
pub const BUCKET_BOUNDS_MICROS: [u64; 10] =
    [1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144];

/// A fixed-bucket latency histogram; recording is lock-free.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    /// Non-cumulative per-bucket counts, one slot per bound plus the
    /// trailing `+Inf` overflow slot; rendered cumulatively.
    buckets: [AtomicU64; BUCKET_BOUNDS_MICROS.len() + 1],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

impl LatencyHistogram {
    /// Records one observation.
    pub fn observe(&self, latency: Duration) {
        let micros = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        let slot = BUCKET_BOUNDS_MICROS
            .iter()
            .position(|&bound| micros <= bound)
            .unwrap_or(BUCKET_BOUNDS_MICROS.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded latencies, in microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    /// Cumulative bucket counts in bound order, the `+Inf` bucket last
    /// (equal to [`count`](Self::count) modulo in-flight updates).
    pub fn cumulative(&self) -> [u64; BUCKET_BOUNDS_MICROS.len() + 1] {
        let mut out = [0u64; BUCKET_BOUNDS_MICROS.len() + 1];
        let mut running = 0u64;
        for (slot, bucket) in self.buckets.iter().enumerate() {
            running += bucket.load(Ordering::Relaxed);
            out[slot] = running;
        }
        out
    }
}

/// The request verbs the daemon distinguishes in its metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verb {
    /// `LOAD`
    Load,
    /// `RELOAD`
    Reload,
    /// `ANALYZE`
    Analyze,
    /// `EVAL`
    Eval,
    /// `INJECT`
    Inject,
    /// `SWEEP`
    Sweep,
    /// `HUNT`
    Hunt,
    /// `MONITOR`
    Monitor,
    /// `EVENT`
    Event,
    /// `STATS`
    Stats,
    /// `METRICS`
    Metrics,
    /// `SHUTDOWN`
    Shutdown,
    /// Anything unrecognized (dispatch answers `ERR`).
    Other,
}

impl Verb {
    /// Every verb, in the order the exposition lists them.
    pub const ALL: [Verb; 13] = [
        Verb::Load,
        Verb::Reload,
        Verb::Analyze,
        Verb::Eval,
        Verb::Inject,
        Verb::Sweep,
        Verb::Hunt,
        Verb::Monitor,
        Verb::Event,
        Verb::Stats,
        Verb::Metrics,
        Verb::Shutdown,
        Verb::Other,
    ];

    /// The `verb=` label value.
    pub fn label(self) -> &'static str {
        match self {
            Verb::Load => "load",
            Verb::Reload => "reload",
            Verb::Analyze => "analyze",
            Verb::Eval => "eval",
            Verb::Inject => "inject",
            Verb::Sweep => "sweep",
            Verb::Hunt => "hunt",
            Verb::Monitor => "monitor",
            Verb::Event => "event",
            Verb::Stats => "stats",
            Verb::Metrics => "metrics",
            Verb::Shutdown => "shutdown",
            Verb::Other => "other",
        }
    }

    /// Classifies the first token of a request line.
    pub fn of_command(cmd: &str) -> Verb {
        match cmd {
            "LOAD" => Verb::Load,
            "RELOAD" => Verb::Reload,
            "ANALYZE" => Verb::Analyze,
            "EVAL" => Verb::Eval,
            "INJECT" => Verb::Inject,
            "SWEEP" => Verb::Sweep,
            "HUNT" => Verb::Hunt,
            "MONITOR" => Verb::Monitor,
            "EVENT" => Verb::Event,
            "STATS" => Verb::Stats,
            "METRICS" => Verb::Metrics,
            "SHUTDOWN" => Verb::Shutdown,
            _ => Verb::Other,
        }
    }

    fn index(self) -> usize {
        Verb::ALL
            .iter()
            .position(|&v| v == self)
            .expect("every verb is in ALL")
    }
}

/// Whether an [`ExtraMetric`] renders as a `counter` or a `gauge`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing.
    Counter,
    /// Point-in-time value.
    Gauge,
}

/// One single-valued metric the daemon appends to the exposition
/// (session counts, cache sizes, store-level counters).
#[derive(Clone, Copy, Debug)]
pub struct ExtraMetric {
    /// Full metric name (`atl_serve_…`).
    pub name: &'static str,
    /// One-line `# HELP` text.
    pub help: &'static str,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// Current value.
    pub value: u64,
}

/// The daemon's metric registry: one latency histogram per [`Verb`],
/// accept-queue gauges, and backpressure counters.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    verbs: [LatencyHistogram; Verb::ALL.len()],
    /// Connections waiting in the accept queue right now.
    queue_depth: AtomicU64,
    /// High-water mark of `queue_depth`.
    queue_depth_peak: AtomicU64,
    /// Connection workers currently handling a connection.
    busy_workers: AtomicU64,
    /// High-water mark of `busy_workers` — a bounded pool can never push
    /// this above its configured width.
    busy_workers_peak: AtomicU64,
    /// Connections refused with `ERR busy` because the queue was full.
    rejected: AtomicU64,
    /// Connections answered `ERR shutting down` after the shutdown flag
    /// was raised (accepted-but-unserved, including queued ones).
    shutdown_refused: AtomicU64,
}

impl ServeMetrics {
    /// An empty registry.
    pub fn new() -> Self {
        ServeMetrics::default()
    }

    /// Records one dispatched request.
    pub fn observe(&self, verb: Verb, latency: Duration) {
        self.verbs[verb.index()].observe(latency);
    }

    /// The latency histogram for `verb`.
    pub fn histogram(&self, verb: Verb) -> &LatencyHistogram {
        &self.verbs[verb.index()]
    }

    /// Records a connection entering the accept queue (gauge up, peak
    /// tracked).
    pub fn queue_entered(&self) {
        let depth = self.queue_depth.fetch_add(1, Ordering::SeqCst) + 1;
        self.queue_depth_peak.fetch_max(depth, Ordering::SeqCst);
    }

    /// Records a connection leaving the accept queue.
    pub fn queue_left(&self) {
        self.queue_depth.fetch_sub(1, Ordering::SeqCst);
    }

    /// Connections waiting in the accept queue right now.
    pub fn queue_depth(&self) -> u64 {
        self.queue_depth.load(Ordering::SeqCst)
    }

    /// High-water mark of the accept-queue depth.
    pub fn queue_depth_peak(&self) -> u64 {
        self.queue_depth_peak.load(Ordering::SeqCst)
    }

    /// Records a worker picking up a connection (gauge up, peak
    /// tracked).
    pub fn worker_busy(&self) {
        let busy = self.busy_workers.fetch_add(1, Ordering::SeqCst) + 1;
        self.busy_workers_peak.fetch_max(busy, Ordering::SeqCst);
    }

    /// Records a worker finishing its connection.
    pub fn worker_idle(&self) {
        self.busy_workers.fetch_sub(1, Ordering::SeqCst);
    }

    /// Connection workers handling a connection right now.
    pub fn busy_workers(&self) -> u64 {
        self.busy_workers.load(Ordering::SeqCst)
    }

    /// High-water mark of concurrently busy workers.
    pub fn busy_workers_peak(&self) -> u64 {
        self.busy_workers_peak.load(Ordering::SeqCst)
    }

    /// Records one `ERR busy` rejection.
    pub fn rejected(&self) {
        self.rejected.fetch_add(1, Ordering::SeqCst);
    }

    /// Connections refused with `ERR busy` so far.
    pub fn rejected_total(&self) -> u64 {
        self.rejected.load(Ordering::SeqCst)
    }

    /// Records one `ERR shutting down` response to an accepted-but-
    /// unserved connection.
    pub fn shutdown_refused(&self) {
        self.shutdown_refused.fetch_add(1, Ordering::SeqCst);
    }

    /// Connections answered `ERR shutting down` so far.
    pub fn shutdown_refused_total(&self) -> u64 {
        self.shutdown_refused.load(Ordering::SeqCst)
    }

    /// Renders the full registry plus `extras` as Prometheus text
    /// exposition. Deterministic ordering: request counters, latency
    /// histograms (verbs in [`Verb::ALL`] order), the registry's own
    /// gauges/counters, then `extras` in the given order.
    pub fn render(&self, extras: &[ExtraMetric]) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();

        out.push_str("# HELP atl_serve_requests_total Requests dispatched, by verb.\n");
        out.push_str("# TYPE atl_serve_requests_total counter\n");
        for verb in Verb::ALL {
            let _ = writeln!(
                out,
                "atl_serve_requests_total{{verb=\"{}\"}} {}",
                verb.label(),
                self.histogram(verb).count()
            );
        }

        out.push_str(
            "# HELP atl_serve_request_duration_seconds Request latency from dispatch to \
             response assembly, by verb.\n",
        );
        out.push_str("# TYPE atl_serve_request_duration_seconds histogram\n");
        for verb in Verb::ALL {
            let hist = self.histogram(verb);
            let cumulative = hist.cumulative();
            for (slot, &bound) in BUCKET_BOUNDS_MICROS.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "atl_serve_request_duration_seconds_bucket{{verb=\"{}\",le=\"{}\"}} {}",
                    verb.label(),
                    bound as f64 / 1e6,
                    cumulative[slot]
                );
            }
            let _ = writeln!(
                out,
                "atl_serve_request_duration_seconds_bucket{{verb=\"{}\",le=\"+Inf\"}} {}",
                verb.label(),
                cumulative[BUCKET_BOUNDS_MICROS.len()]
            );
            let _ = writeln!(
                out,
                "atl_serve_request_duration_seconds_sum{{verb=\"{}\"}} {}",
                verb.label(),
                hist.sum_micros() as f64 / 1e6
            );
            let _ = writeln!(
                out,
                "atl_serve_request_duration_seconds_count{{verb=\"{}\"}} {}",
                verb.label(),
                hist.count()
            );
        }

        let own: [ExtraMetric; 6] = [
            ExtraMetric {
                name: "atl_serve_queue_depth",
                help: "Connections waiting in the accept queue.",
                kind: MetricKind::Gauge,
                value: self.queue_depth(),
            },
            ExtraMetric {
                name: "atl_serve_queue_depth_peak",
                help: "High-water mark of the accept-queue depth.",
                kind: MetricKind::Gauge,
                value: self.queue_depth_peak(),
            },
            ExtraMetric {
                name: "atl_serve_busy_workers",
                help: "Connection workers currently handling a connection.",
                kind: MetricKind::Gauge,
                value: self.busy_workers(),
            },
            ExtraMetric {
                name: "atl_serve_busy_workers_peak",
                help: "High-water mark of concurrently busy connection workers.",
                kind: MetricKind::Gauge,
                value: self.busy_workers_peak(),
            },
            ExtraMetric {
                name: "atl_serve_rejected_total",
                help: "Connections refused with ERR busy (accept queue full).",
                kind: MetricKind::Counter,
                value: self.rejected_total(),
            },
            ExtraMetric {
                name: "atl_serve_shutdown_refused_total",
                help: "Connections answered ERR shutting down during wind-down.",
                kind: MetricKind::Counter,
                value: self.shutdown_refused_total(),
            },
        ];
        for metric in own.iter().chain(extras) {
            let kind = match metric.kind {
                MetricKind::Counter => "counter",
                MetricKind::Gauge => "gauge",
            };
            let _ = writeln!(out, "# HELP {} {}", metric.name, metric.help);
            let _ = writeln!(out, "# TYPE {} {}", metric.name, kind);
            let _ = writeln!(out, "{} {}", metric.name, metric.value);
        }
        out
    }
}

/// Checks that `text` is well-formed Prometheus text exposition, as far
/// as this crate needs: every line is a comment or a
/// `name[{labels}] value` sample with a parseable float value, every
/// sample's name was declared by a preceding `# TYPE` line, and
/// histogram `_bucket` series are cumulative in `le` order. Returns the
/// number of samples.
///
/// # Errors
///
/// A one-line description of the first malformed line.
pub fn check_exposition(text: &str) -> Result<usize, String> {
    let mut declared: Vec<&str> = Vec::new();
    let mut samples = 0usize;
    let mut last_bucket: Option<(String, u64)> = None;
    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.is_empty() {
            return Err(format!("line {ln}: empty line"));
        }
        if let Some(rest) = line.strip_prefix("# ") {
            if let Some(decl) = rest.strip_prefix("TYPE ") {
                let name = decl
                    .split_whitespace()
                    .next()
                    .ok_or(format!("line {ln}: TYPE without a name"))?;
                declared.push(name);
            } else if !rest.starts_with("HELP ") {
                return Err(format!("line {ln}: unknown comment {line:?}"));
            }
            continue;
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {ln}: no value in {line:?}"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {ln}: bad value in {line:?}"))?;
        let name = series.split('{').next().unwrap_or(series);
        let base = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|base| declared.contains(base))
            .unwrap_or(name);
        if !declared.contains(&base) {
            return Err(format!("line {ln}: undeclared metric {name:?}"));
        }
        if name.ends_with("_bucket") {
            let series_key: String = series.split(",le=").next().unwrap_or(series).to_string();
            let cumulative = value as u64;
            if let Some((prev_key, prev)) = &last_bucket {
                if *prev_key == series_key && cumulative < *prev {
                    return Err(format!("line {ln}: bucket counts not cumulative"));
                }
            }
            last_bucket = Some((series_key, cumulative));
        } else {
            last_bucket = None;
        }
        samples += 1;
    }
    if samples == 0 {
        return Err("no samples in exposition".to_string());
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log_scale_and_cumulative() {
        let hist = LatencyHistogram::default();
        hist.observe(Duration::from_micros(1)); // first bucket (≤ 1 µs)
        hist.observe(Duration::from_micros(3)); // second (≤ 4 µs)
        hist.observe(Duration::from_micros(5)); // third (≤ 16 µs)
        hist.observe(Duration::from_secs(10)); // beyond every bound: +Inf
        assert_eq!(hist.count(), 4);
        let cumulative = hist.cumulative();
        assert_eq!(cumulative[0], 1);
        assert_eq!(cumulative[1], 2);
        assert_eq!(cumulative[2], 3);
        // Every later finite bucket stays at 3; +Inf catches the 10 s.
        assert!(cumulative[3..BUCKET_BOUNDS_MICROS.len()]
            .iter()
            .all(|&c| c == 3));
        assert_eq!(cumulative[BUCKET_BOUNDS_MICROS.len()], 4);
        assert_eq!(hist.sum_micros(), 1 + 3 + 5 + 10_000_000);
    }

    #[test]
    fn verb_classification_covers_the_wire_protocol() {
        assert_eq!(Verb::of_command("LOAD"), Verb::Load);
        assert_eq!(Verb::of_command("RELOAD"), Verb::Reload);
        assert_eq!(Verb::of_command("METRICS"), Verb::Metrics);
        assert_eq!(Verb::of_command("MONITOR"), Verb::Monitor);
        assert_eq!(Verb::of_command("EVENT"), Verb::Event);
        assert_eq!(Verb::of_command("FROBNICATE"), Verb::Other);
        assert_eq!(Verb::of_command(""), Verb::Other);
        for verb in Verb::ALL {
            assert_eq!(Verb::ALL[verb.index()], verb);
        }
    }

    #[test]
    fn gauges_track_peaks() {
        let m = ServeMetrics::new();
        m.queue_entered();
        m.queue_entered();
        m.queue_left();
        assert_eq!(m.queue_depth(), 1);
        assert_eq!(m.queue_depth_peak(), 2);
        m.worker_busy();
        m.worker_idle();
        m.worker_busy();
        assert_eq!(m.busy_workers(), 1);
        assert_eq!(m.busy_workers_peak(), 1, "peak is concurrent, not total");
        m.rejected();
        m.shutdown_refused();
        assert_eq!(m.rejected_total(), 1);
        assert_eq!(m.shutdown_refused_total(), 1);
    }

    #[test]
    fn exposition_renders_and_validates() {
        let m = ServeMetrics::new();
        m.observe(Verb::Analyze, Duration::from_micros(7));
        m.observe(Verb::Analyze, Duration::from_micros(120));
        m.observe(Verb::Load, Duration::from_millis(900));
        m.queue_entered();
        m.rejected();
        let text = m.render(&[ExtraMetric {
            name: "atl_serve_sessions_live",
            help: "Warmed sessions currently resident.",
            kind: MetricKind::Gauge,
            value: 3,
        }]);
        let samples = check_exposition(&text).expect("exposition parses");
        assert!(samples > 10 * (BUCKET_BOUNDS_MICROS.len() + 3));
        assert!(text.contains("atl_serve_requests_total{verb=\"analyze\"} 2"));
        assert!(text.contains(
            "atl_serve_request_duration_seconds_bucket{verb=\"analyze\",le=\"0.000016\"} 1"
        ));
        assert!(
            text.contains("atl_serve_request_duration_seconds_bucket{verb=\"load\",le=\"+Inf\"} 1")
        );
        assert!(text.contains("atl_serve_rejected_total 1"));
        assert!(text.contains("atl_serve_sessions_live 3"));
        // The validator actually rejects malformed expositions.
        assert!(check_exposition("atl_no_type_decl 1").is_err());
        assert!(check_exposition("# TYPE x counter\nx notanumber").is_err());
        assert!(check_exposition("").is_err());
    }
}
