//! The single-plan fault-injection report, shared by `atl inject` and
//! the serve-mode daemon.
//!
//! [`inject_report`] runs one [`FaultPlan`] against an idealized
//! protocol and renders the belief-survival report the CLI has always
//! printed: execution summary, injected faults, the restriction 1–5
//! audit, and which annotation-procedure beliefs survive the
//! degradation. Execution is routed through
//! [`sweep_plans_on`](atl_model::sweep_plans_on) with a caller-supplied
//! [`ExecutionCache`], so a long-lived process (the daemon) answers
//! repeated plans as reference bumps while a one-shot CLI invocation
//! just passes a fresh cache — the report bytes are identical either
//! way (the e16 suite pins swept outcomes to direct execution).

use crate::annotate::{analyze_at, AtProtocol, AtStep};
use crate::enact::{enact_with, EnactOptions};
use crate::parallel::Pool;
use atl_lang::{Formula, Key, KeyTerm, Message, Principal};
use atl_model::{
    sweep_plans_on, validate_run, Action, ExecOptions, ExecutionCache, ExpectPolicy, FaultPlan,
    ModelError, Run,
};
use std::fmt::Write as _;

/// Everything that determines one `inject` execution: the plan, the
/// expect policy the roles are enacted with, and the executor options.
#[derive(Clone, Debug)]
pub struct InjectRequest {
    /// The fault plan to execute.
    pub plan: FaultPlan,
    /// How waiting roles cope with missing messages.
    pub policy: ExpectPolicy,
    /// Executor options (public channel, round caps, …).
    pub options: ExecOptions,
}

/// The result of a single-plan injection: the rendered report plus the
/// pieces callers layer extras on (the CLI's `--emit-trace`, the
/// daemon's cache counters).
#[derive(Clone, Debug)]
pub struct InjectOutcome {
    /// The canonical report text (every line newline-terminated).
    pub report: String,
    /// The faulted run.
    pub run: Run,
    /// True if the run satisfied restrictions 1–5.
    pub ok: bool,
    /// True if the execution was answered by `cache` rather than run.
    pub cache_hit: bool,
}

/// Executes `req` against `at` and renders the belief-survival report.
///
/// The baseline/degraded annotation pair is sharded over `pool`;
/// execution goes through the sweep engine so `cache` can answer
/// repeats.
///
/// # Errors
///
/// [`ModelError`] if the plan is invalid or execution stalls.
pub fn inject_report(
    at: &AtProtocol,
    req: &InjectRequest,
    pool: &Pool,
    cache: &ExecutionCache,
) -> Result<InjectOutcome, ModelError> {
    let proto = enact_with(
        at,
        EnactOptions {
            expect_policy: req.policy,
        },
    );
    let outcome = sweep_plans_on(
        &proto,
        &req.options,
        std::slice::from_ref(&req.plan),
        pool,
        cache,
    );
    let cache_hit = outcome.stats.cache_hits > 0;
    let result = outcome.results.into_iter().next().expect("one plan in");
    let (run, report) = match result.outcome.as_ref() {
        Ok((run, report)) => (run.clone(), report.clone()),
        Err(e) => return Err(e.clone()),
    };

    let mut out = String::new();
    let _ = writeln!(
        out,
        "protocol {}: {} roles, seed {}",
        at.name,
        proto.roles().len(),
        req.plan.seed
    );
    let _ = writeln!(
        out,
        "execution: {} rounds, times {}..={}, {} sends, {} retransmissions",
        report.rounds,
        run.start_time(),
        run.horizon(),
        run.send_records().len(),
        report.retries
    );
    if report.faults.is_empty() {
        let _ = writeln!(out, "faults injected: none");
    } else {
        let _ = writeln!(out, "faults injected:");
        for f in &report.faults {
            let _ = writeln!(out, "  t={} {}: {}", f.time, f.kind, f.detail);
        }
    }
    for a in &report.abandoned {
        let _ = writeln!(
            out,
            "  !! {} abandoned step {}: {}",
            a.principal, a.step_index, a.detail
        );
    }

    let violations = validate_run(&run);
    if violations.is_empty() {
        let _ = writeln!(
            out,
            "audit: restrictions 1-5 all satisfied by the faulted run"
        );
    } else {
        for v in &violations {
            let _ = writeln!(out, "  !! {v}");
        }
    }

    // Belief survival: re-run the annotation procedure over only the
    // steps whose messages were actually delivered in the faulted run.
    let delivered = |to: &Principal, m: &Message| {
        *to == Principal::environment()
            || run.events().any(|(_, e)| {
                e.actor == *to && matches!(&e.action, Action::Receive { message } if message == m)
            })
    };
    let mut degraded = at.clone();
    degraded.steps = at
        .steps
        .iter()
        .filter(|s| match s {
            AtStep::Send { to, message, .. } => delivered(to, message),
            AtStep::NewKey { .. } => true,
        })
        .cloned()
        .collect();
    let sends = |steps: &[AtStep]| {
        steps
            .iter()
            .filter(|s| matches!(s, AtStep::Send { .. }))
            .count()
    };
    let dropped_steps = sends(&at.steps) - sends(&degraded.steps);
    // The baseline and degraded analyses are independent; prove the
    // pair concurrently when the pool has more than one worker.
    let (at_job, degraded_job) = (at.clone(), degraded.clone());
    let mut analyses = pool.run(vec![
        Box::new(move || analyze_at(&at_job)) as Box<dyn FnOnce() -> _ + Send>,
        Box::new(move || analyze_at(&degraded_job)),
    ]);
    let after = analyses.pop().expect("two analyses");
    let baseline = analyses.pop().expect("two analyses");
    let _ = writeln!(
        out,
        "beliefs: {} of {} idealized messages delivered",
        sends(&degraded.steps),
        sends(&at.steps)
    );
    let mut lost = 0;
    for ((goal, base_ok), (_, now_ok)) in baseline.goals.iter().zip(&after.goals) {
        let tag = match (base_ok, now_ok) {
            (true, true) => "survives",
            (true, false) => {
                lost += 1;
                "degraded"
            }
            (false, _) => "unproven",
        };
        let _ = writeln!(out, "  [{tag}] {goal}");
        for (key, t) in &req.plan.compromises {
            if formula_mentions_key(goal, key) {
                let _ = writeln!(
                    out,
                    "      note: mentions {key}, compromised at t={t} — the \
                     environment holds this key from then on"
                );
            }
        }
    }
    if dropped_steps == 0 && lost == 0 && violations.is_empty() {
        let _ = writeln!(
            out,
            "verdict: run well-formed; all idealized beliefs survive this plan"
        );
    } else {
        let _ = writeln!(
            out,
            "verdict: run {}; {lost} belief(s) degraded, {dropped_steps} message(s) undelivered",
            if violations.is_empty() {
                "well-formed"
            } else {
                "ILL-FORMED"
            }
        );
    }
    Ok(InjectOutcome {
        report: out,
        run,
        ok: violations.is_empty(),
        cache_hit,
    })
}

/// Does `f` mention the key `k` anywhere (directly or inside a message)?
pub fn formula_mentions_key(f: &Formula, k: &Key) -> bool {
    let kt = |t: &KeyTerm| matches!(t, KeyTerm::Key(key) if key == k || &key.inverse() == k);
    match f {
        Formula::Prop(_) | Formula::True => false,
        Formula::Not(g) => formula_mentions_key(g, k),
        Formula::And(a, b) => formula_mentions_key(a, k) || formula_mentions_key(b, k),
        Formula::Believes(_, g) | Formula::Controls(_, g) => formula_mentions_key(g, k),
        Formula::Sees(_, m) | Formula::Said(_, m) | Formula::Says(_, m) | Formula::Fresh(m) => {
            message_mentions_key(m, k)
        }
        Formula::SharedSecret(_, m, _) => message_mentions_key(m, k),
        Formula::SharedKey(_, t, _) | Formula::Has(_, t) | Formula::PublicKey(t, _) => kt(t),
    }
}

/// Does `m` mention the key `k` anywhere (directly, as an encryption
/// key, or inside an embedded formula)?
pub fn message_mentions_key(m: &Message, k: &Key) -> bool {
    let kt = |t: &KeyTerm| matches!(t, KeyTerm::Key(key) if key == k || &key.inverse() == k);
    match m {
        Message::Key(key) => key == k,
        Message::Formula(f) => formula_mentions_key(f, k),
        Message::Tuple(items) => items.iter().any(|i| message_mentions_key(i, k)),
        Message::Encrypted { body, key, .. }
        | Message::Signed { body, key, .. }
        | Message::PubEncrypted { body, key, .. } => kt(key) || message_mentions_key(body, k),
        Message::Combined { body, secret, .. } => {
            message_mentions_key(body, k) || message_mentions_key(secret, k)
        }
        Message::Forwarded(body) => message_mentions_key(body, k),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atl_lang::Nonce;

    fn toy() -> AtProtocol {
        let a = Principal::new("A");
        let b = Principal::new("B");
        let k = Key::new("Kab");
        AtProtocol::new("toy")
            .assume(Formula::believes(
                a.clone(),
                Formula::shared_key(a.clone(), k.clone(), b.clone()),
            ))
            .step(
                a.clone(),
                b.clone(),
                Message::encrypted(Message::nonce(Nonce::new("Na")), k.clone(), a.clone()),
            )
            .goal(Formula::sees(
                b,
                Message::encrypted(Message::nonce(Nonce::new("Na")), k, a),
            ))
    }

    fn req(plan: FaultPlan) -> InjectRequest {
        InjectRequest {
            plan,
            policy: ExpectPolicy::resend_after(6, 2),
            options: ExecOptions::default(),
        }
    }

    #[test]
    fn report_is_deterministic_and_cache_aware() {
        let at = toy();
        let pool = Pool::new(1);
        let cache = ExecutionCache::new();
        let first = inject_report(&at, &req(FaultPlan::new(3)), &pool, &cache).expect("clean run");
        assert!(!first.cache_hit);
        assert!(first.ok);
        assert!(first.report.starts_with("protocol toy: "));
        let second = inject_report(&at, &req(FaultPlan::new(3)), &pool, &cache).expect("clean run");
        assert!(second.cache_hit, "second identical plan must hit the cache");
        assert_eq!(first.report, second.report);
    }

    #[test]
    fn mentions_key_sees_inverse_and_nesting() {
        let k = Key::new("Kab");
        let f = Formula::shared_key(Principal::new("A"), k.clone(), Principal::new("B"));
        assert!(formula_mentions_key(&f, &k));
        assert!(!formula_mentions_key(&Formula::True, &k));
        let m = Message::encrypted(Message::key(k.clone()), Key::new("Kother"), "A");
        assert!(message_mentions_key(&m, &k));
    }
}
