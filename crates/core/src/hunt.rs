//! The logic-level attack hunt behind `atl hunt` and the daemon's
//! `HUNT` verb.
//!
//! [`atl_model`]'s search engine ([`hunt_plans_on`]) is
//! signature-agnostic: it mutates plans, executes them through the
//! sweep engine, and grows one [`DegradationClass`] per distinct
//! signature string. This module supplies the *logic-level* signature —
//! the belief-survival verdict vector the paper's semantics makes
//! checkable — and the deterministic report the CLI and daemon render:
//!
//! 1. the idealized protocol is enacted and hunted over the pool with a
//!    shared [`ExecutionCache`];
//! 2. each executed plan's run is projected onto the idealized protocol
//!    ([`delivery_mask`]) and the degraded protocol re-annotated
//!    ([`analyze_at`]), memoized per distinct mask — the signature is
//!    the per-goal survived/lost/unproven vector plus which fault kinds
//!    fired and how many steps were abandoned;
//! 3. the report lists every class in discovery order with its witness
//!    and shrunk minimal plan, byte-identical at every worker count.
//!
//! [`default_space`] derives the mutation bounds from the protocol
//! itself (every mentioned key becomes a compromise candidate), and
//! [`seeds_from_checkpoint`] turns a persisted monitor prefix (PR 9's
//! `MONITOR` sessions) into a starting corpus, so a hunt can pick up
//! from live traffic.

use crate::annotate::{analyze_at, AtProtocol, AtStep};
use crate::enact::{enact_with, EnactOptions};
use crate::parallel::Pool;
use crate::sweep::{degrade_at, delivery_mask};
use atl_lang::{Formula, Key, KeyTerm, Message, Principal};
use atl_model::wire::parse_checkpoint;
use atl_model::{
    hunt_plans_on, Action, DegradationClass, ExecOptions, ExecOutcome, ExecutionCache,
    ExpectPolicy, FaultKind, FaultPlan, HuntConfig, HuntOutcome, HuntStore, ModelError, TraceFeed,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How to run an attack hunt over an idealized protocol.
#[derive(Clone, Debug)]
pub struct HuntSettings {
    /// The search configuration (seed, budget, batch, mutation space,
    /// seed corpus).
    pub config: HuntConfig,
    /// Execution options shared by every plan.
    pub options: ExecOptions,
    /// The degradation policy attached to every enacted expect step.
    pub expect_policy: ExpectPolicy,
}

impl Default for HuntSettings {
    fn default() -> Self {
        HuntSettings {
            config: HuntConfig::default(),
            options: ExecOptions::default(),
            // `inject`'s default: wait 6 rounds, resend twice, then skip.
            expect_policy: ExpectPolicy::resend_after(6, 2),
        }
    }
}

/// The full result of an attack hunt, ready to render.
#[derive(Clone, Debug)]
pub struct HuntReport {
    /// The protocol's name.
    pub protocol: String,
    /// The goals, in spec order (the signature's `goals=` positions).
    pub goals: Vec<Formula>,
    /// Whether the baseline (fault-free) annotation derives each goal.
    pub baseline_flags: Vec<bool>,
    /// The seed and budget the hunt ran with.
    pub seed: u64,
    /// The execution budget the hunt ran with.
    pub budget: usize,
    /// The search outcome: classes, baseline signature, accounting.
    pub outcome: HuntOutcome,
}

impl HuntReport {
    /// The classes whose signature differs from the fault-free
    /// baseline — the distinct attacks found.
    pub fn attacks(&self) -> Vec<&DegradationClass> {
        self.outcome.attacks().collect()
    }
}

impl fmt::Display for HuntReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "attack hunt of {}: seed {}, budget {}",
            self.protocol, self.seed, self.budget
        )?;
        writeln!(f, "  {}", self.outcome.stats)?;
        writeln!(f, "goals (signature positions, left to right):")?;
        for (goal, ok) in self.goals.iter().zip(&self.baseline_flags) {
            writeln!(f, "  [{}] {goal}", if *ok { "ok" } else { "unproven" })?;
        }
        writeln!(f, "baseline signature: {}", self.outcome.baseline)?;
        let attacks = self.attacks().len();
        writeln!(
            f,
            "classes: {} distinct signature(s), {attacks} attack(s)",
            self.outcome.classes.len()
        )?;
        for (i, class) in self.outcome.classes.iter().enumerate() {
            let tag = if class.signature == self.outcome.baseline {
                " (baseline)"
            } else {
                ""
            };
            writeln!(f, "class {}: {}{tag}", i + 1, class.signature)?;
            writeln!(f, "  members: {}", class.members)?;
            writeln!(f, "  witness: {}", class.witness)?;
            writeln!(f, "  minimal: {}", class.minimal)?;
        }
        Ok(())
    }
}

/// Fixed `faults=` positions of the signature, left to right.
const FAULT_POSITIONS: [(FaultKind, char); 6] = [
    (FaultKind::Drop, 'd'),
    (FaultKind::Duplicate, 'u'),
    (FaultKind::Delay, 'y'),
    (FaultKind::Reorder, 'r'),
    (FaultKind::Replay, 'p'),
    (FaultKind::Compromise, 'c'),
];

/// A memoizing belief-survival classifier over `at`: each distinct
/// delivery mask is annotated once, however many plans resolve to it.
/// The signature is `goals=<S|L|U per goal> faults=<fired kinds>
/// abandoned=<n>` for well-formed runs (S survived, L lost vs. the
/// baseline, U unproven at baseline) and `failed <error class>` when
/// execution stalls or the plan is invalid.
pub struct SignatureClassifier {
    at: AtProtocol,
    baseline_flags: Vec<bool>,
    memo: BTreeMap<Vec<bool>, Vec<bool>>,
}

impl SignatureClassifier {
    /// Builds the classifier, running the baseline annotation once.
    pub fn new(at: &AtProtocol) -> Self {
        let baseline_flags = analyze_at(at).goals.iter().map(|(_, ok)| *ok).collect();
        SignatureClassifier {
            at: at.clone(),
            baseline_flags,
            memo: BTreeMap::new(),
        }
    }

    /// Whether the baseline annotation derives each goal, in order.
    pub fn baseline_flags(&self) -> &[bool] {
        &self.baseline_flags
    }

    /// The signature of one executed plan.
    pub fn signature(&mut self, outcome: &ExecOutcome) -> String {
        let (run, report) = match outcome {
            Ok(ok) => ok,
            Err(e) => return format!("failed {}", error_class(e)),
        };
        let mask = delivery_mask(&self.at, run);
        let flags = self.memo.entry(mask.clone()).or_insert_with(|| {
            analyze_at(&degrade_at(&self.at, &mask))
                .goals
                .iter()
                .map(|(_, ok)| *ok)
                .collect()
        });
        let goals: String = self
            .baseline_flags
            .iter()
            .zip(flags.iter())
            .map(|(base, now)| match (base, now) {
                (true, true) => 'S',
                (true, false) => 'L',
                (false, _) => 'U',
            })
            .collect();
        let faults: String = FAULT_POSITIONS
            .iter()
            .map(|(kind, letter)| {
                if report.faults_of(*kind).next().is_some() {
                    *letter
                } else {
                    '-'
                }
            })
            .collect();
        format!(
            "goals={goals} faults={faults} abandoned={}",
            report.abandoned.len()
        )
    }
}

/// The stable error class of a failed execution (the signature must not
/// embed message text, which varies with the faulted interleaving).
fn error_class(e: &ModelError) -> String {
    match e {
        ModelError::Stalled { principal, .. } => format!("stalled {principal}"),
        ModelError::Fault(_) => "invalid-plan".to_string(),
        other => {
            let text = other.to_string();
            text.split_whitespace()
                .next()
                .unwrap_or("error")
                .to_string()
        }
    }
}

/// Every key mentioned anywhere in the protocol's steps, in sorted
/// order — the compromise candidates of [`default_space`].
pub fn protocol_keys(at: &AtProtocol) -> Vec<Key> {
    let mut keys = BTreeSet::new();
    for step in &at.steps {
        match step {
            AtStep::Send { message, .. } => message_keys(message, &mut keys),
            AtStep::NewKey { key, .. } => {
                keys.insert(key.clone());
            }
        }
    }
    keys.into_iter().collect()
}

fn key_term(t: &KeyTerm, out: &mut BTreeSet<Key>) {
    if let KeyTerm::Key(k) = t {
        out.insert(k.clone());
    }
}

fn message_keys(m: &Message, out: &mut BTreeSet<Key>) {
    match m {
        Message::Key(k) => {
            out.insert(k.clone());
        }
        Message::Formula(f) => formula_keys(f, out),
        Message::Tuple(items) => items.iter().for_each(|i| message_keys(i, out)),
        Message::Encrypted { body, key, .. }
        | Message::Signed { body, key, .. }
        | Message::PubEncrypted { body, key, .. } => {
            key_term(key, out);
            message_keys(body, out);
        }
        Message::Combined { body, secret, .. } => {
            message_keys(body, out);
            message_keys(secret, out);
        }
        Message::Forwarded(body) => message_keys(body, out),
        _ => {}
    }
}

fn formula_keys(f: &Formula, out: &mut BTreeSet<Key>) {
    match f {
        Formula::Prop(_) | Formula::True => {}
        Formula::Not(g) => formula_keys(g, out),
        Formula::And(a, b) => {
            formula_keys(a, out);
            formula_keys(b, out);
        }
        Formula::Believes(_, g) | Formula::Controls(_, g) => formula_keys(g, out),
        Formula::Sees(_, m) | Formula::Said(_, m) | Formula::Says(_, m) | Formula::Fresh(m) => {
            message_keys(m, out)
        }
        Formula::SharedSecret(_, m, _) => message_keys(m, out),
        Formula::SharedKey(_, t, _) | Formula::Has(_, t) | Formula::PublicKey(t, _) => {
            key_term(t, out)
        }
    }
}

/// The default mutation space for `at`: the standard five-point
/// probability palette and seed pair, plus one compromise candidate per
/// protocol key at each of the early times 0 and 2 (the epoch boundary
/// and the mid-protocol point the committed attack fixtures use).
pub fn default_space(at: &AtProtocol) -> atl_model::MutationSpace {
    let mut space = atl_model::MutationSpace::new();
    for key in protocol_keys(at) {
        for t in [0i64, 2] {
            space = space.candidate(key.clone(), t);
        }
    }
    space
}

/// Reconstructs a seed corpus from a persisted monitor checkpoint: the
/// live run prefix is rebuilt by replay, every key some principal
/// acquired mid-run becomes a compromise plan at its acquisition time,
/// and adversarial environment traffic adds a certain-replay plan.
///
/// # Errors
///
/// A rendered diagnostic if the checkpoint or its recorded trace lines
/// do not parse, or the prefix builds no run.
pub fn seeds_from_checkpoint(text: &str) -> Result<Vec<FaultPlan>, String> {
    let checkpoint = parse_checkpoint(text).map_err(|e| format!("bad checkpoint: {e}"))?;
    let mut feed = TraceFeed::new();
    for line in &checkpoint.lines {
        feed.feed(line)
            .map_err(|e| format!("bad checkpoint line: {}", e.diagnostic("checkpoint")))?;
    }
    let Some(run) = feed.try_build() else {
        return Err("checkpoint holds no buildable run prefix".to_string());
    };
    let mut plans: Vec<FaultPlan> = Vec::new();
    let mut compromises: BTreeSet<(Key, i64)> = BTreeSet::new();
    let mut env_sent = false;
    for (time, event) in run.events() {
        if let Action::NewKey { key } = &event.action {
            compromises.insert((key.clone(), time));
        }
        if event.actor == Principal::environment() && matches!(event.action, Action::Send { .. }) {
            env_sent = true;
        }
    }
    for (key, time) in compromises {
        plans.push(FaultPlan::new(0).compromise(key.clone(), time));
        if env_sent {
            plans.push(FaultPlan::new(0).compromise(key, time).replay(1.0));
        }
    }
    if env_sent {
        plans.push(FaultPlan::new(0).replay(1.0));
    }
    Ok(plans)
}

/// Runs the full enact → search → belief-survival pipeline over `pool`,
/// persisting and resuming discoveries through `store` when given. The
/// report renders byte-identically at every worker count.
pub fn hunt_report(
    at: &AtProtocol,
    settings: &HuntSettings,
    pool: &Pool,
    cache: &ExecutionCache,
    store: Option<&HuntStore>,
) -> HuntReport {
    let proto = enact_with(
        at,
        EnactOptions {
            expect_policy: settings.expect_policy,
        },
    );
    let mut classifier = SignatureClassifier::new(at);
    let outcome = hunt_plans_on(
        &proto,
        &settings.options,
        &settings.config,
        pool,
        cache,
        store,
        |_, exec| classifier.signature(exec),
    );
    HuntReport {
        protocol: at.name.clone(),
        goals: at.goals.clone(),
        baseline_flags: classifier.baseline_flags().to_vec(),
        seed: settings.config.seed,
        budget: settings.config.budget,
        outcome,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atl_lang::Nonce;
    use atl_model::MutationSpace;

    /// Figure 1 (Kerberos fragment), as in the sweep tests.
    fn figure1() -> AtProtocol {
        let kab = Formula::shared_key("A", Key::new("Kab"), "B");
        let ts = Message::nonce(Nonce::new("Ts"));
        let inner = Message::encrypted(
            Message::tuple([ts.clone(), kab.clone().into_message()]),
            Key::new("Kbs"),
            "S",
        );
        let outer = Message::encrypted(
            Message::tuple([ts, kab.clone().into_message(), inner.clone()]),
            Key::new("Kas"),
            "S",
        );
        AtProtocol::new("kerberos-hunt")
            .assume(Formula::has("A", Key::new("Kas")))
            .assume(Formula::has("B", Key::new("Kbs")))
            .assume(Formula::believes(
                "A",
                Formula::shared_key("A", Key::new("Kas"), "S"),
            ))
            .step("S", "A", outer)
            .step("A", "B", inner)
            .goal(Formula::sees("B", kab.into_message()))
    }

    fn settings() -> HuntSettings {
        HuntSettings {
            config: HuntConfig {
                seed: 7,
                budget: 48,
                batch: 8,
                space: default_space(&figure1()).prob_steps([0.0, 0.5, 1.0]),
                seed_plans: Vec::new(),
            },
            options: ExecOptions::default(),
            expect_policy: ExpectPolicy::skip_after(3),
        }
    }

    #[test]
    fn protocol_keys_walks_nested_messages() {
        let keys = protocol_keys(&figure1());
        let names: Vec<String> = keys.iter().map(|k| k.to_string()).collect();
        assert_eq!(names, ["Kab", "Kas", "Kbs"]);
    }

    #[test]
    fn hunt_finds_the_drop_attack_and_renders_deterministically() {
        let reference = hunt_report(
            &figure1(),
            &settings(),
            &Pool::sequential(),
            &ExecutionCache::new(),
            None,
        );
        // A certain drop starves B of the ticket: at least one class
        // must lose the baseline belief.
        assert!(
            reference
                .attacks()
                .iter()
                .any(|c| c.signature.contains('L')),
            "{reference}"
        );
        for jobs in [2, 4] {
            let report = hunt_report(
                &figure1(),
                &settings(),
                &Pool::new(jobs),
                &ExecutionCache::new(),
                None,
            );
            assert_eq!(report.to_string(), reference.to_string(), "jobs={jobs}");
        }
    }

    #[test]
    fn signature_distinguishes_baseline_from_total_loss() {
        let at = figure1();
        let mut classifier = SignatureClassifier::new(&at);
        let proto = enact_with(
            &at,
            EnactOptions {
                expect_policy: ExpectPolicy::skip_after(3),
            },
        );
        let clean = atl_model::execute_with_report(&proto, &ExecOptions::default());
        let lossy = atl_model::execute_with_faults(
            &proto,
            &ExecOptions::default(),
            &FaultPlan::new(0).drop(1.0),
        );
        let clean_sig = classifier.signature(&clean);
        let lossy_sig = classifier.signature(&lossy);
        assert_ne!(clean_sig, lossy_sig);
        assert!(clean_sig.starts_with("goals=S"), "{clean_sig}");
        assert!(lossy_sig.starts_with("goals=L"), "{lossy_sig}");
    }

    #[test]
    fn default_space_offers_each_key_as_candidate() {
        let space = default_space(&figure1());
        assert_eq!(space.compromise_candidates.len(), 6);
        assert!(space
            .compromise_candidates
            .iter()
            .any(|(k, t)| k.to_string() == "Kab" && *t == 2));
        // And the derived exhaustive grid carries the same choices.
        let grid = space.grid();
        assert_eq!(grid.compromise_choices.len(), 7);
        let _ = MutationSpace::new();
    }
}
