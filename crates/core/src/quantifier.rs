//! Bounded universal quantification over constants (Section 8).
//!
//! The paper observes that since the set of keys (or principals, or
//! nonces) in use is finite in practice, a formula like
//! `A believes ∀K.(S controls A ↔K↔ B)` is equivalent to a finite
//! conjunction of instances. This module performs that expansion: a
//! parameter plays the role of the bound variable, and the quantifier
//! elaborates to the conjunction of the body under each substitution.

use atl_lang::{Bindings, Formula, Key, Message, Param, SubstError};

/// Expands `∀param ∈ domain. body` into the conjunction of instances,
/// where the parameter ranges over keys.
///
/// # Errors
///
/// [`SubstError`] if the parameter occurs in a non-key position
/// incompatible with a key value — impossible here since keys are bound —
/// or if other parameters remain unbound in `body` (they are left in
/// place; only `param` is substituted).
///
/// # Examples
///
/// ```
/// use atl_core::quantifier::forall_keys;
/// use atl_lang::{Formula, Key, Param};
/// let body = Formula::controls(
///     "S",
///     Formula::shared_key("A", Param::new("K"), "B"),
/// );
/// let f = forall_keys(&Param::new("K"), [Key::new("K1"), Key::new("K2")], &body)?;
/// assert_eq!(
///     f.to_string(),
///     "S controls (A <-K1-> B) & S controls (A <-K2-> B)"
/// );
/// # Ok::<(), atl_lang::SubstError>(())
/// ```
pub fn forall_keys(
    param: &Param,
    domain: impl IntoIterator<Item = Key>,
    body: &Formula,
) -> Result<Formula, SubstError> {
    let mut instances = Vec::new();
    for k in domain {
        let mut b = Bindings::new();
        b.bind_key(param.clone(), k);
        instances.push(b.apply_formula_partial(body)?);
    }
    Ok(Formula::conj(instances))
}

/// Expands `∀param ∈ domain. body` where the parameter ranges over
/// arbitrary message constants (nonces, principals-as-data, …).
///
/// # Errors
///
/// [`SubstError::NotAKey`] if `param` occurs in a key position but a
/// non-key value is supplied.
pub fn forall_messages(
    param: &Param,
    domain: impl IntoIterator<Item = Message>,
    body: &Formula,
) -> Result<Formula, SubstError> {
    let mut instances = Vec::new();
    for m in domain {
        let mut b = Bindings::new();
        b.bind(param.clone(), m);
        instances.push(b.apply_formula_partial(body)?);
    }
    Ok(Formula::conj(instances))
}

#[cfg(test)]
mod tests {
    use super::*;
    use atl_lang::Nonce;

    #[test]
    fn empty_domain_gives_true() {
        let body = Formula::has("A", Param::new("K"));
        let f = forall_keys(&Param::new("K"), [], &body).unwrap();
        assert_eq!(f, Formula::True);
    }

    #[test]
    fn single_instance_collapses() {
        let body = Formula::has("A", Param::new("K"));
        let f = forall_keys(&Param::new("K"), [Key::new("K7")], &body).unwrap();
        assert_eq!(f, Formula::has("A", Key::new("K7")));
    }

    #[test]
    fn message_domain_expansion() {
        let body = Formula::fresh(Message::param(Param::new("N")));
        let f = forall_messages(
            &Param::new("N"),
            [
                Message::nonce(Nonce::new("N1")),
                Message::nonce(Nonce::new("N2")),
            ],
            &body,
        )
        .unwrap();
        assert_eq!(f.to_string(), "fresh(N1) & fresh(N2)");
    }

    #[test]
    fn key_position_rejects_message_value() {
        let body = Formula::has("A", Param::new("K"));
        let err = forall_messages(&Param::new("K"), [Message::nonce(Nonce::new("N"))], &body)
            .unwrap_err();
        assert!(matches!(err, SubstError::NotAKey(_)));
    }

    #[test]
    fn untouched_parameters_survive() {
        let body = Formula::and(
            Formula::has("A", Param::new("K")),
            Formula::fresh(Message::param(Param::new("N"))),
        );
        let f = forall_keys(&Param::new("K"), [Key::new("K1")], &body).unwrap();
        assert!(f.to_string().contains("$N"));
    }
}
