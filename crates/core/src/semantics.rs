//! The semantics of the reformulated logic (Section 6).
//!
//! Truth of a formula is defined at a *point* `(r, k)` of a [`System`],
//! relative to a vector `G = (G_1, …, G_n)` of **good runs** ([`GoodRuns`])
//! that parameterizes belief:
//!
//! - `P sees X` — `X` is readable, under `P`'s current keys, in some
//!   message `P` has received;
//! - `P said X` — `X` is among the accountable components of some message
//!   `P` has sent (with `P`'s keys and received set *at send time*);
//! - `P says X` — likewise, restricted to sends in the current epoch;
//! - `P controls φ` — at every time ≥ 0 of the run, `P says φ` implies
//!   `φ` (so jurisdiction is more than `P says φ ⊃ φ`);
//! - `fresh(X)` — `X` is not a submessage of anything sent before time 0;
//! - `P ↔K↔ Q` — at all times, anyone who said ciphertext under `K`
//!   either saw it first or is `P` or `Q`;
//! - `P =Y= Q` — likewise for messages combined with `Y`;
//! - `P has K` — `K` is in `P`'s key set;
//! - `P believes φ` — `φ` holds at every point of a *good* run (for `P`)
//!   whose hidden local state matches `P`'s current hidden local state.
//!
//! Run parameters (Section 8) are resolved against the outer run's
//! bindings before the inductive definition is applied.

use crate::parallel::Pool;
use atl_lang::{
    can_see, submsgs_of_set, CacheStats, Formula, Interner, KeyTerm, Message, MessageSet,
    Principal, TermCache,
};
use atl_model::{LocalState, Point, Run, SendRecord, System};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

/// Error produced during evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SemanticsError {
    /// The formula still contains a parameter the run does not bind.
    NotGround(Formula),
    /// The point's run index or time is outside the system.
    BadPoint(Point),
    /// Parameter substitution failed (non-key bound in key position).
    Subst(String),
}

impl fmt::Display for SemanticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemanticsError::NotGround(formula) => {
                write!(f, "formula {formula} has parameters unbound by the run")
            }
            SemanticsError::BadPoint(p) => {
                write!(
                    f,
                    "point (run {}, time {}) outside the system",
                    p.run, p.time
                )
            }
            SemanticsError::Subst(why) => write!(f, "parameter substitution failed: {why}"),
        }
    }
}

impl Error for SemanticsError {}

/// The vector `G = (G_1, …, G_n)` of good-run sets, one per principal;
/// principals without an entry default to *all* runs (belief as plain
/// hidden-state knowledge).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GoodRuns {
    all: BTreeSet<usize>,
    map: BTreeMap<Principal, BTreeSet<usize>>,
}

impl GoodRuns {
    /// The trivial vector: every run is good for every principal.
    pub fn all_runs(system: &System) -> Self {
        GoodRuns {
            all: (0..system.len()).collect(),
            map: BTreeMap::new(),
        }
    }

    /// Sets `P`'s good-run set.
    pub fn set(&mut self, p: impl Into<Principal>, runs: BTreeSet<usize>) -> &mut Self {
        self.map.insert(p.into(), runs);
        self
    }

    /// `P`'s good-run set.
    pub fn get(&self, p: &Principal) -> &BTreeSet<usize> {
        self.map.get(p).unwrap_or(&self.all)
    }

    /// The principals with explicit (non-default) entries.
    pub fn principals(&self) -> impl Iterator<Item = &Principal> {
        self.map.keys()
    }

    /// Pointwise order: `self ≤ other` iff `G_i ⊆ G'_i` for every
    /// principal mentioned by either (Section 7).
    pub fn le(&self, other: &GoodRuns) -> bool {
        let names: BTreeSet<&Principal> = self.map.keys().chain(other.map.keys()).collect();
        names
            .into_iter()
            .all(|p| self.get(p).is_subset(other.get(p)))
    }
}

/// Memoized per-system evaluation state: a [`TermCache`] for the term
/// operators (`hide`, seen submessages) plus point-level sets the hot
/// evaluation paths recompute otherwise — the seen set per `(point,
/// principal)`, each send record's accountable (said) submessages, and
/// each run's pre-epoch submessage closure.
///
/// Everything here depends only on the [`System`], not on the good-run
/// vector, so one cache can be shared by many [`Semantics`] evaluators
/// over the same system (see [`Semantics::new_shared`]).
///
/// Values are [`Arc`]-shared and the cache is `Send + Clone`: the
/// parallel paths prewarm one cache ([`EvalCache::prewarm_on`]) and hand
/// each worker a clone, which shares every memoized set by reference.
#[derive(Clone, Debug, Default)]
pub(crate) struct EvalCache {
    terms: TermCache,
    // Keyed principal-first so hits borrow the principal instead of
    // cloning it into a composite key.
    seen_at: BTreeMap<Principal, BTreeMap<(usize, i64), Arc<MessageSet>>>,
    hidden_at: BTreeMap<Principal, BTreeMap<(usize, i64), Arc<LocalState>>>,
    said_rec: BTreeMap<(usize, usize), Arc<MessageSet>>,
    past: BTreeMap<usize, Arc<MessageSet>>,
}

/// How much of a prior cache [`EvalCache::prewarm_delta_on`] kept: the
/// entries carried over by reference versus the rewarmed cache's size.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct RewarmStats {
    /// Memoized sets carried over from the prior cache.
    pub(crate) reused: usize,
    /// Memoized sets in the rewarmed cache.
    pub(crate) total: usize,
}

/// The per-run slice of a prewarmed cache, computed on one worker.
struct RunWarm {
    ri: usize,
    past: Arc<MessageSet>,
    said: Vec<(usize, Arc<MessageSet>)>,
    hidden: Vec<(Principal, i64, Arc<LocalState>)>,
}

impl EvalCache {
    /// Builds the system-level sets of the cache concurrently: each run's
    /// pre-epoch closure, per-send accountable sets, and every
    /// principal's hidden local state at every point, sharded run-wise
    /// over `pool`. Workers share a frozen interner seeded with the
    /// system's sent messages (base IDs stable across workers) and keep
    /// per-worker scratch [`TermCache`]s that are merged back at join —
    /// so the result is one coherent cache, whatever the scheduling.
    pub(crate) fn prewarm_on(system: &System, pool: &Pool) -> EvalCache {
        let mut seed = Interner::new();
        for run in system.runs() {
            for rec in run.send_records() {
                seed.message(&rec.message);
            }
        }
        let frozen = Arc::new(seed.freeze());
        let mut principals: BTreeSet<Principal> = system.principals();
        principals.insert(Principal::environment());

        let runs: Vec<usize> = (0..system.len()).collect();
        let (warmed, scratches): (Vec<RunWarm>, Vec<TermCache>) = pool.map_init_collect(
            &runs,
            || TermCache::with_base(Arc::clone(&frozen)),
            |terms, _, &ri| {
                let run = &system.runs()[ri];
                let sent: MessageSet = run.sent_before_epoch();
                let past = Arc::new(submsgs_of_set(sent.iter()));
                let said = run
                    .send_records()
                    .iter()
                    .enumerate()
                    .map(|(i, rec)| (i, Arc::new(rec.said_submsgs())))
                    .collect();
                let mut hidden = Vec::new();
                for p in &principals {
                    for k in run.times() {
                        let state = run.state(k).expect("time in range");
                        hidden.push((p.clone(), k, Arc::new(state.local(p).hidden_with(terms))));
                    }
                }
                RunWarm {
                    ri,
                    past,
                    said,
                    hidden,
                }
            },
        );

        let mut cache = EvalCache {
            terms: TermCache::with_base(frozen),
            ..EvalCache::default()
        };
        // Runs are disjoint, so inserting per-run slices in run order is
        // a deterministic merge regardless of which worker built which.
        for w in warmed {
            cache.past.insert(w.ri, w.past);
            for (i, s) in w.said {
                cache.said_rec.insert((w.ri, i), s);
            }
            for (p, k, h) in w.hidden {
                cache.hidden_at.entry(p).or_default().insert((w.ri, k), h);
            }
        }
        for scratch in scratches {
            cache.terms.absorb(scratch);
        }
        cache
    }

    /// Rewarms a cache for an *edited* system, carrying over from `old`
    /// (prewarmed for `old_system`) every memoized set whose inputs are
    /// untouched by the edit — reuse is decided pointwise, by comparing
    /// the model-level input of each entry:
    ///
    /// - a run's pre-epoch closure, iff its pre-epoch sent set is equal;
    /// - a send record's accountable set, iff the record is equal;
    /// - a `(principal, point)` hidden state, iff the principal's local
    ///   state at that point is equal.
    ///
    /// The frozen interner snapshot is kept from `old` when it has one:
    /// messages new to the edited system intern into per-worker scratch
    /// layers exactly as evaluation-time terms do, so no snapshot is
    /// rebuilt. Term ids never reach any output, so the rewarmed cache
    /// answers byte-identically to [`EvalCache::prewarm_on`] on the
    /// edited system.
    pub(crate) fn prewarm_delta_on(
        system: &System,
        old_system: &System,
        old: &EvalCache,
        pool: &Pool,
    ) -> (EvalCache, RewarmStats) {
        let frozen = match old.frozen_base() {
            Some(base) => Arc::clone(base),
            None => {
                let mut seed = Interner::new();
                for run in system.runs() {
                    for rec in run.send_records() {
                        seed.message(&rec.message);
                    }
                }
                Arc::new(seed.freeze())
            }
        };
        let mut principals: BTreeSet<Principal> = system.principals();
        principals.insert(Principal::environment());

        // Borrow the Arc-valued maps individually: the `TermCache` layer
        // is not shared across workers, but these are.
        let (old_past, old_said, old_hidden) = (&old.past, &old.said_rec, &old.hidden_at);

        let runs: Vec<usize> = (0..system.len()).collect();
        let (warmed, scratches): (Vec<(RunWarm, RewarmStats)>, Vec<TermCache>) = pool
            .map_init_collect(
                &runs,
                || TermCache::with_base(Arc::clone(&frozen)),
                |terms, _, &ri| {
                    let run = &system.runs()[ri];
                    let old_run = old_system.runs().get(ri);
                    let mut stats = RewarmStats::default();

                    let sent: MessageSet = run.sent_before_epoch();
                    stats.total += 1;
                    let past = match old_run.filter(|o| o.sent_before_epoch() == sent) {
                        Some(_) if old_past.contains_key(&ri) => {
                            stats.reused += 1;
                            Arc::clone(&old_past[&ri])
                        }
                        _ => Arc::new(submsgs_of_set(sent.iter())),
                    };

                    let said = run
                        .send_records()
                        .iter()
                        .enumerate()
                        .map(|(i, rec)| {
                            stats.total += 1;
                            let cached = old_run
                                .filter(|o| o.send_records().get(i) == Some(rec))
                                .and_then(|_| old_said.get(&(ri, i)));
                            let set = match cached {
                                Some(s) => {
                                    stats.reused += 1;
                                    Arc::clone(s)
                                }
                                None => Arc::new(rec.said_submsgs()),
                            };
                            (i, set)
                        })
                        .collect();

                    let mut hidden = Vec::new();
                    for p in &principals {
                        let old_p = old_hidden.get(p);
                        for k in run.times() {
                            let state = run.state(k).expect("time in range");
                            stats.total += 1;
                            let cached = old_run
                                .and_then(|o| o.state(k))
                                .filter(|os| os.local(p) == state.local(p))
                                .and_then(|_| old_p.and_then(|m| m.get(&(ri, k))));
                            let h = match cached {
                                Some(h) => {
                                    stats.reused += 1;
                                    Arc::clone(h)
                                }
                                None => Arc::new(state.local(p).hidden_with(terms)),
                            };
                            hidden.push((p.clone(), k, h));
                        }
                    }
                    (
                        RunWarm {
                            ri,
                            past,
                            said,
                            hidden,
                        },
                        stats,
                    )
                },
            );

        let mut cache = EvalCache {
            terms: TermCache::with_base(frozen),
            ..EvalCache::default()
        };
        let mut stats = RewarmStats::default();
        for (w, s) in warmed {
            stats.reused += s.reused;
            stats.total += s.total;
            cache.past.insert(w.ri, w.past);
            for (i, set) in w.said {
                cache.said_rec.insert((w.ri, i), set);
            }
            for (p, k, h) in w.hidden {
                cache.hidden_at.entry(p).or_default().insert((w.ri, k), h);
            }
        }
        for scratch in scratches {
            cache.terms.absorb(scratch);
        }
        (cache, stats)
    }

    /// Extends the cache in place after run `ri` of `system` was grown by
    /// [`System::extend_run`]: every entry computed before the append is
    /// kept by reference and only sets the new suffix can introduce are
    /// computed, so the cost per appended event is O(principals), not
    /// O(points) — the streaming monitor's per-event path.
    ///
    /// `from_time` is the run's horizon *before* the append. Appending is
    /// safe for every map in the cache:
    ///
    /// - `past`: appended events carry times ≥ 1 (a built run's horizon
    ///   is ≥ 0), so the pre-epoch sent set cannot grow;
    /// - `said_rec`: send records are append-only, existing indices are
    ///   untouched;
    /// - `hidden_at` / `seen_at`: the only retroactive edit an append
    ///   makes is popping a delivered message from an env *buffer* at the
    ///   old final state ([`Run::extend_unchecked`]), and no local view —
    ///   hence no hidden state and no seen set — reads buffers.
    pub(crate) fn extend_appended(
        &mut self,
        system: &System,
        ri: usize,
        from_time: i64,
    ) -> RewarmStats {
        let reused = self.entry_count();
        let run = &system.runs()[ri];
        let mut principals: BTreeSet<Principal> = system.principals();
        principals.insert(Principal::environment());

        let EvalCache {
            terms,
            hidden_at,
            said_rec,
            past,
            ..
        } = self;

        past.entry(ri)
            .or_insert_with(|| Arc::new(submsgs_of_set(run.sent_before_epoch().iter())));

        let known = said_rec.range((ri, 0)..(ri, usize::MAX)).count();
        for (i, rec) in run.send_records().iter().enumerate().skip(known) {
            said_rec.insert((ri, i), Arc::new(rec.said_submsgs()));
        }

        for p in &principals {
            let map = hidden_at.entry(p.clone()).or_default();
            let mut k = from_time + 1;
            while k <= run.horizon() {
                let state = run.state(k).expect("time in range");
                map.entry((ri, k))
                    .or_insert_with(|| Arc::new(state.local(p).hidden_with(terms)));
                k += 1;
            }
        }

        RewarmStats {
            reused,
            total: self.entry_count(),
        }
    }

    /// The frozen interner snapshot backing this cache's term layer, if
    /// the cache was prewarmed (a default-constructed cache has none).
    pub(crate) fn frozen_base(&self) -> Option<&Arc<atl_lang::FrozenInterner>> {
        self.terms.interner().base()
    }

    /// How many `(principal, point)` hidden-state entries the cache holds
    /// (the bulk of a prewarmed cache; surfaced by serve-mode `STATS`).
    pub(crate) fn hidden_entries(&self) -> usize {
        self.hidden_at.values().map(BTreeMap::len).sum()
    }

    /// Total memoized points across the three point-indexed maps — the
    /// denominator serve-mode `RELOAD` reports cache reuse against.
    pub(crate) fn entry_count(&self) -> usize {
        self.past.len() + self.said_rec.len() + self.hidden_entries()
    }
}

/// An evaluator for a fixed system and good-run vector.
///
/// Belief evaluation groups the points of each principal's good runs by
/// hidden local state once, up front; [`Semantics::without_belief_cache`]
/// disables this (the ablation measured by `bench_ablation_belief_cache`).
/// Term-level operations (`hide`, seen/said submessage sets, the
/// pre-epoch closure) are memoized in an [`EvalCache`];
/// [`Semantics::without_term_cache`] disables that layer alone.
///
/// # Examples
///
/// ```
/// use atl_core::semantics::{GoodRuns, Semantics};
/// use atl_lang::{Formula, Key, Message, Nonce};
/// use atl_model::{Point, RunBuilder, System};
/// let mut b = RunBuilder::new(0);
/// b.principal("A", [Key::new("K")]);
/// b.principal("B", []);
/// b.send("A", Message::nonce(Nonce::new("X")), "B")?;
/// b.receive("B", &Message::nonce(Nonce::new("X")))?;
/// let sys = System::new([b.build()?]);
/// let sem = Semantics::new(&sys, GoodRuns::all_runs(&sys));
/// let sees = Formula::sees("B", Message::nonce(Nonce::new("X")));
/// assert!(sem.eval(Point::new(0, 2), &sees)?);
/// assert!(!sem.eval(Point::new(0, 1), &sees)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Semantics<'a> {
    system: &'a System,
    goods: GoodRuns,
    // Possibility groups are built lazily, one principal at a time, on
    // the first belief query that mentions the principal — so an
    // evaluator that never evaluates `believes` never pays for grouping
    // (the `semantics_constructor` cost is O(1) again), while repeated
    // belief queries still amortize to a point lookup.
    belief_cache: Option<RefCell<BTreeMap<Principal, Arc<PrincipalBelief>>>>,
    cache: Option<Rc<RefCell<EvalCache>>>,
    // `P believes φ` is constant across a possibility group (every member
    // sees the same group), so one verdict per (φ, P, group) suffices.
    // Groups partition the good points, making the first point a sound
    // group key. Per-evaluator: verdicts depend on the good-run vector.
    believes_memo: RefCell<BelievesMemo>,
}

/// Belief verdicts by formula, then believer, then group representative —
/// nested so lookups borrow every key component.
type BelievesMemo = BTreeMap<Formula, BTreeMap<Principal, BTreeMap<Point, bool>>>;

/// One principal's precomputed possibility relation: good points grouped
/// by hidden local state, plus the inverse index from each good point to
/// its (shared) group — so the hot belief path is a cheap `Point` lookup
/// instead of a deep hidden-state comparison.
#[derive(Debug, Default)]
struct PrincipalBelief {
    by_state: BTreeMap<Arc<LocalState>, Arc<Vec<Point>>>,
    by_point: BTreeMap<Point, Arc<Vec<Point>>>,
}

/// `p`'s hidden local state at `(ri, k)`, memoized per point so repeated
/// belief queries against the same evaluator (and the lazy group build)
/// hide each state once.
fn hidden_at(
    cache: &Option<Rc<RefCell<EvalCache>>>,
    ri: usize,
    k: i64,
    state: &atl_model::GlobalState,
    p: &Principal,
) -> Arc<LocalState> {
    let Some(cache) = cache else {
        return Arc::new(state.local(p).hidden());
    };
    let c = &mut *cache.borrow_mut();
    if let Some(h) = c.hidden_at.get(p).and_then(|m| m.get(&(ri, k))) {
        return Arc::clone(h);
    }
    let rc = Arc::new(state.local(p).hidden_with(&mut c.terms));
    c.hidden_at
        .entry(p.clone())
        .or_default()
        .insert((ri, k), Arc::clone(&rc));
    rc
}

impl<'a> Semantics<'a> {
    /// Creates an evaluator with the belief and term caches enabled.
    pub fn new(system: &'a System, goods: GoodRuns) -> Self {
        Semantics::new_shared(system, goods, Rc::new(RefCell::new(EvalCache::default())))
    }

    /// Creates an evaluator over a shared [`EvalCache`]. The cache holds
    /// facts about the *system* only, so evaluators for different good-run
    /// vectors over the same system may share one (as the good-run
    /// construction does across its stages). Sharing a cache across
    /// *different* systems is a logic error.
    pub(crate) fn new_shared(
        system: &'a System,
        goods: GoodRuns,
        cache: Rc<RefCell<EvalCache>>,
    ) -> Self {
        Semantics {
            system,
            goods,
            belief_cache: Some(RefCell::new(BTreeMap::new())),
            cache: Some(cache),
            believes_memo: RefCell::new(BTreeMap::new()),
        }
    }

    /// Creates an evaluator with the belief cache but no term cache, so
    /// every `hide`/seen/said query recomputes from scratch (the no-intern
    /// ablation measured by `bench_ablation_term_cache`).
    pub fn without_term_cache(system: &'a System, goods: GoodRuns) -> Self {
        Semantics {
            system,
            goods,
            belief_cache: Some(RefCell::new(BTreeMap::new())),
            cache: None,
            believes_memo: RefCell::new(BTreeMap::new()),
        }
    }

    /// Creates an evaluator that recomputes the possibility relation on
    /// every belief query and caches nothing at all (for the ablation
    /// benchmark).
    pub fn without_belief_cache(system: &'a System, goods: GoodRuns) -> Self {
        Semantics {
            system,
            goods,
            belief_cache: None,
            cache: None,
            believes_memo: RefCell::new(BTreeMap::new()),
        }
    }

    /// `p`'s possibility groups, built on first use. Grouping enumerates
    /// every point of `p`'s good runs, which is exactly what the scan
    /// fallback compares against — so a lazily built group answers every
    /// later query identically, while evaluators that never touch
    /// `believes` for `p` never pay for it.
    fn group_for(
        &self,
        groups: &RefCell<BTreeMap<Principal, Arc<PrincipalBelief>>>,
        p: &Principal,
    ) -> Arc<PrincipalBelief> {
        if let Some(pb) = groups.borrow().get(p) {
            return Arc::clone(pb);
        }
        let mut by_hidden: BTreeMap<Arc<LocalState>, Vec<Point>> = BTreeMap::new();
        for &ri in self.goods.get(p) {
            let Some(run) = self.system.runs().get(ri) else {
                continue;
            };
            for k in run.times() {
                let state = run.state(k).expect("time in range");
                let hidden = hidden_at(&self.cache, ri, k, state, p);
                by_hidden.entry(hidden).or_default().push(Point::new(ri, k));
            }
        }
        let mut pb = PrincipalBelief::default();
        for (hidden, points) in by_hidden {
            let points = Arc::new(points);
            for &pt in points.iter() {
                pb.by_point.insert(pt, Arc::clone(&points));
            }
            pb.by_state.insert(hidden, points);
        }
        let pb = Arc::new(pb);
        groups.borrow_mut().insert(p.clone(), Arc::clone(&pb));
        pb
    }

    /// Term-cache hit/miss counters (`None` when the term cache is off).
    pub fn term_cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(|c| c.borrow().terms.stats())
    }

    /// The underlying system.
    pub fn system(&self) -> &System {
        self.system
    }

    /// The good-run vector.
    pub fn goods(&self) -> &GoodRuns {
        &self.goods
    }

    fn run(&self, point: Point) -> Result<&Run, SemanticsError> {
        self.system
            .runs()
            .get(point.run)
            .filter(|r| r.state(point.time).is_some())
            .ok_or(SemanticsError::BadPoint(point))
    }

    /// Evaluates `φ` at `point`, resolving run parameters first
    /// (Section 8).
    ///
    /// # Errors
    ///
    /// [`SemanticsError::NotGround`] if a parameter is unbound by the run;
    /// [`SemanticsError::BadPoint`] for a point outside the system.
    pub fn eval(&self, point: Point, phi: &Formula) -> Result<bool, SemanticsError> {
        let run = self.run(point)?;
        // Substitution is the identity on ground formulas; skip the
        // deep clone it would otherwise pay on every point.
        if phi.is_ground() {
            return Ok(self.eval_ground(point, phi));
        }
        let resolved = run
            .bindings()
            .apply_formula_partial(phi)
            .map_err(|e| SemanticsError::Subst(e.to_string()))?;
        if !resolved.is_ground() {
            return Err(SemanticsError::NotGround(resolved));
        }
        Ok(self.eval_ground(point, &resolved))
    }

    /// True if `φ` holds at every point of the system.
    ///
    /// # Errors
    ///
    /// As for [`Semantics::eval`].
    pub fn valid(&self, phi: &Formula) -> Result<bool, SemanticsError> {
        for point in self.system.points() {
            if !self.eval(point, phi)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Evaluates `φ` at every point of `system`, sharded run-wise over
    /// `pool`, returning the verdicts in [`System::points`] order.
    ///
    /// The cache is prewarmed concurrently ([`EvalCache::prewarm_on`]);
    /// each worker then evaluates with its own cache clone, so verdicts
    /// are exactly those of a sequential sweep — `tests/e15_parallel.rs`
    /// holds this path to the single-worker reference.
    ///
    /// # Errors
    ///
    /// As for [`Semantics::eval`], reporting the error of the earliest
    /// failing point in [`System::points`] order (as a sequential sweep
    /// would).
    pub fn sweep_on(
        system: &'a System,
        goods: &GoodRuns,
        phi: &Formula,
        pool: &Pool,
    ) -> Result<Vec<bool>, SemanticsError> {
        Self::sweep_results(system, goods, phi, pool)
            .into_iter()
            .collect()
    }

    /// As [`Semantics::valid`], sharded over `pool`: true iff `φ` holds
    /// at every point. Verdict and error agree exactly with the
    /// sequential `valid` — in particular the answer for a sweep whose
    /// earliest anomaly (in point order) is a false point is `Ok(false)`
    /// even if a later point would error, matching `valid`'s early exit.
    ///
    /// # Errors
    ///
    /// As for [`Semantics::eval`].
    pub fn valid_on(
        system: &'a System,
        goods: &GoodRuns,
        phi: &Formula,
        pool: &Pool,
    ) -> Result<bool, SemanticsError> {
        for r in Self::sweep_results(system, goods, phi, pool) {
            if !r? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Per-point evaluation outcomes in [`System::points`] order. With
    /// one job this *is* the sequential sweep; otherwise runs are dealt
    /// to workers, each with its own evaluator over a clone of one
    /// prewarmed cache, and the per-run verdict vectors are merged back
    /// in run order (deterministic whatever the stealing did).
    fn sweep_results(
        system: &'a System,
        goods: &GoodRuns,
        phi: &Formula,
        pool: &Pool,
    ) -> Vec<Result<bool, SemanticsError>> {
        if pool.jobs() == 1 {
            let sem = Semantics::new(system, goods.clone());
            return system.points().map(|pt| sem.eval(pt, phi)).collect();
        }
        let warmed = EvalCache::prewarm_on(system, pool);
        let runs: Vec<usize> = (0..system.len()).collect();
        let per_run: Vec<Vec<Result<bool, SemanticsError>>> = pool.map_init(
            &runs,
            || Semantics::new_shared(system, goods.clone(), Rc::new(RefCell::new(warmed.clone()))),
            |sem, _, &ri| {
                let run = &system.runs()[ri];
                run.times()
                    .map(|k| sem.eval(Point::new(ri, k), phi))
                    .collect()
            },
        );
        per_run.into_iter().flatten().collect()
    }

    /// Evaluates a ground formula (callers must have resolved parameters).
    fn eval_ground(&self, point: Point, phi: &Formula) -> bool {
        let run = &self.system.runs()[point.run];
        match phi {
            Formula::True => true,
            Formula::Prop(p) => self.system.interpretation().holds(p, run, point),
            Formula::Not(f) => !self.eval_ground(point, f),
            Formula::And(a, b) => self.eval_ground(point, a) && self.eval_ground(point, b),
            Formula::Believes(p, f) => self.eval_believes(point, p, f),
            Formula::Controls(p, f) => self.eval_controls(point, p, f),
            Formula::Sees(p, m) => self.eval_sees(point, p, m),
            Formula::Said(p, m) => self.eval_said(point, p, m, false),
            Formula::Says(p, m) => self.eval_said(point, p, m, true),
            Formula::SharedSecret(p, y, q) => self.eval_shared_secret(point, p, y, q),
            Formula::SharedKey(p, k, q) => self.eval_shared_key(point, p, k, q),
            Formula::Fresh(m) => self.eval_fresh(point, m),
            Formula::Has(p, k) => self.eval_has(point, p, k),
            Formula::PublicKey(k, p) => self.eval_public_key(point, k, p),
        }
    }

    /// `→K P` (public-key extension): whoever signed with `K⁻¹`, at any
    /// time of the run, saw the signature first or is `P` — the signing
    /// analogue of the shared-key definition.
    fn eval_public_key(&self, point: Point, k: &KeyTerm, p: &Principal) -> bool {
        let KeyTerm::Key(key) = k else { return false };
        let run = &self.system.runs()[point.run];
        run.send_records().iter().enumerate().all(|(i, rec)| {
            if rec.sender == *p {
                return true;
            }
            self.said_set(point.run, i, rec).iter().all(|sub| {
                let Message::Signed { key: kk, .. } = sub else {
                    return true;
                };
                if kk.as_key() != Some(key) {
                    return true;
                }
                self.eval_sees(Point::new(point.run, rec.time + 1), &rec.sender, sub)
            })
        })
    }

    /// `P sees X` at `(r, k)`: some received message reveals `X` under
    /// `P`'s keys at time `k`.
    fn eval_sees(&self, point: Point, p: &Principal, x: &Message) -> bool {
        let run = &self.system.runs()[point.run];
        let Some(state) = run.state(point.time) else {
            return false;
        };
        if let Some(cache) = &self.cache {
            // Membership in the memoized seen set is `can_see` by another
            // name: both walk exactly the readable submessages. A cache hit
            // skips materializing the local state entirely.
            let seen = {
                let c = &mut *cache.borrow_mut();
                if let Some(s) = c
                    .seen_at
                    .get(p)
                    .and_then(|m| m.get(&(point.run, point.time)))
                {
                    Arc::clone(s)
                } else {
                    let local = state.local(p);
                    let mut set = MessageSet::new();
                    for m in &local.received() {
                        set.extend(c.terms.seen_submsgs(m, &local.key_set).iter().cloned());
                    }
                    let rc = Arc::new(set);
                    c.seen_at
                        .entry(p.clone())
                        .or_default()
                        .insert((point.run, point.time), Arc::clone(&rc));
                    rc
                }
            };
            return seen.contains(x);
        }
        let local = state.local(p);
        local
            .received()
            .iter()
            .any(|m| can_see(x, m, &local.key_set))
    }

    /// The accountable submessages of the `idx`-th send record of run
    /// `run`, memoized when the term cache is on ([`SendRecord::
    /// said_submsgs`] redoes the seen-set closure on every call).
    fn said_set(&self, run: usize, idx: usize, rec: &SendRecord) -> Arc<MessageSet> {
        if let Some(cache) = &self.cache {
            let c = &mut *cache.borrow_mut();
            if let Some(s) = c.said_rec.get(&(run, idx)) {
                return Arc::clone(s);
            }
            let rc = Arc::new(rec.said_submsgs());
            c.said_rec.insert((run, idx), Arc::clone(&rc));
            return rc;
        }
        Arc::new(rec.said_submsgs())
    }

    /// `P said X` (or `P says X` when `recent`) at `(r, k)`.
    fn eval_said(&self, point: Point, p: &Principal, x: &Message, recent: bool) -> bool {
        let run = &self.system.runs()[point.run];
        run.send_records().iter().enumerate().any(|(i, rec)| {
            rec.sender == *p
                && rec.time < point.time
                && (!recent || rec.time >= 0)
                && self.said_set(point.run, i, rec).contains(x)
        })
    }

    /// `P controls φ` at `(r, k)`: for every time `k' ≥ 0` of the run,
    /// `P says φ` at `k'` implies `φ` at `k'`. (Holds at one point of a
    /// run iff at all points of it.)
    fn eval_controls(&self, point: Point, p: &Principal, phi: &Formula) -> bool {
        let run = &self.system.runs()[point.run];
        let claim = phi.clone().into_message();
        run.times().filter(|k| *k >= 0).all(|k| {
            let here = Point::new(point.run, k);
            !self.eval_said(here, p, &claim, true) || self.eval_ground(here, phi)
        })
    }

    /// `fresh(X)` at `(r, k)`: `X` is not a submessage of any message sent
    /// before time 0.
    fn eval_fresh(&self, point: Point, x: &Message) -> bool {
        let run = &self.system.runs()[point.run];
        if let Some(cache) = &self.cache {
            let c = &mut *cache.borrow_mut();
            let past = if let Some(s) = c.past.get(&point.run) {
                Arc::clone(s)
            } else {
                let sent: MessageSet = run.sent_before_epoch();
                let rc = Arc::new(submsgs_of_set(sent.iter()));
                c.past.insert(point.run, Arc::clone(&rc));
                rc
            };
            return !past.contains(x);
        }
        let past: MessageSet = run.sent_before_epoch();
        !submsgs_of_set(past.iter()).contains(x)
    }

    /// `P has K` at `(r, k)`.
    fn eval_has(&self, point: Point, p: &Principal, k: &KeyTerm) -> bool {
        let KeyTerm::Key(key) = k else { return false };
        let run = &self.system.runs()[point.run];
        run.state(point.time)
            .is_some_and(|s| s.key_set(p).contains(key))
    }

    /// `P ↔K↔ Q`: whoever said ciphertext under `K`, at any time of the
    /// run, saw it first or is `P` or `Q`.
    fn eval_shared_key(&self, point: Point, p: &Principal, k: &KeyTerm, q: &Principal) -> bool {
        let KeyTerm::Key(key) = k else { return false };
        let run = &self.system.runs()[point.run];
        run.send_records().iter().enumerate().all(|(i, rec)| {
            if rec.sender == *p || rec.sender == *q {
                return true;
            }
            self.said_set(point.run, i, rec).iter().all(|sub| {
                let Message::Encrypted { key: kk, .. } = sub else {
                    return true;
                };
                if kk.as_key() != Some(key) {
                    return true;
                }
                // The sender must have seen the ciphertext by the time the
                // send lands in its history (sees is monotone, so checking
                // at rec.time + 1 decides all later times; at earlier
                // times "said" is false and the implication vacuous).
                self.eval_sees(Point::new(point.run, rec.time + 1), &rec.sender, sub)
            })
        })
    }

    /// `P =Y= Q`: likewise for messages combined with the secret `Y`.
    fn eval_shared_secret(&self, point: Point, p: &Principal, y: &Message, q: &Principal) -> bool {
        let run = &self.system.runs()[point.run];
        run.send_records().iter().enumerate().all(|(i, rec)| {
            if rec.sender == *p || rec.sender == *q {
                return true;
            }
            self.said_set(point.run, i, rec).iter().all(|sub| {
                let Message::Combined { secret, .. } = sub else {
                    return true;
                };
                if **secret != *y {
                    return true;
                }
                self.eval_sees(Point::new(point.run, rec.time + 1), &rec.sender, sub)
            })
        })
    }

    /// The points `P` considers possible at `point`: points of `P`-good
    /// runs whose hidden local state equals `P`'s here.
    pub fn possible_points(&self, point: Point, p: &Principal) -> Vec<Point> {
        (*self.possible_points_shared(point, p)).clone()
    }

    fn possible_points_shared(&self, point: Point, p: &Principal) -> Arc<Vec<Point>> {
        if let Some(groups) = self.belief_cache.as_ref() {
            let pb = self.group_for(groups, p);
            // The group enumerated every point of `p`'s good runs, so a
            // point inside them resolves by index alone.
            if let Some(points) = pb.by_point.get(&point) {
                return Arc::clone(points);
            }
            // Outside the good runs (or off the end of one): match the
            // hidden state here against the precomputed groups.
            let run = &self.system.runs()[point.run];
            let Some(state) = run.state(point.time) else {
                return Arc::new(Vec::new());
            };
            let hidden = hidden_at(&self.cache, point.run, point.time, state, p);
            return pb
                .by_state
                .get(&hidden)
                .map(Arc::clone)
                .unwrap_or_else(|| Arc::new(Vec::new()));
        }
        // No belief cache: scan.
        let run = &self.system.runs()[point.run];
        let Some(state) = run.state(point.time) else {
            return Arc::new(Vec::new());
        };
        let hidden = hidden_at(&self.cache, point.run, point.time, state, p);
        let mut out = Vec::new();
        for &ri in self.goods.get(p) {
            let Some(r2) = self.system.runs().get(ri) else {
                continue;
            };
            for k in r2.times() {
                let s2 = r2.state(k).expect("time in range");
                if hidden_at(&self.cache, ri, k, s2, p) == hidden {
                    out.push(Point::new(ri, k));
                }
            }
        }
        Arc::new(out)
    }

    /// `P believes φ` at `point`.
    fn eval_believes(&self, point: Point, p: &Principal, phi: &Formula) -> bool {
        let points = self.possible_points_shared(point, p);
        let Some(&rep) = points.first() else {
            return true; // no possible points: vacuously believed
        };
        // The memo rides with the belief cache; the uncached ablation
        // evaluator recomputes from scratch, as advertised.
        if self.belief_cache.is_none() {
            return points.iter().all(|&pt| self.eval_ground(pt, phi));
        }
        if let Some(&v) = self
            .believes_memo
            .borrow()
            .get(phi)
            .and_then(|m| m.get(p))
            .and_then(|m| m.get(&rep))
        {
            return v;
        }
        let v = points.iter().all(|&pt| self.eval_ground(pt, phi));
        self.believes_memo
            .borrow_mut()
            .entry(phi.clone())
            .or_default()
            .entry(p.clone())
            .or_default()
            .insert(rep, v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atl_lang::{Key, Nonce};
    use atl_model::RunBuilder;

    fn nonce(s: &str) -> Message {
        Message::nonce(Nonce::new(s))
    }

    /// A ↦ B : {X}Kab, with both holding Kab; one run.
    fn simple_system() -> System {
        let mut b = RunBuilder::new(-1);
        b.principal("A", [Key::new("Kab")]);
        b.principal("B", [Key::new("Kab")]);
        b.new_key("A", "Spare"); // past-epoch activity
        let cipher = Message::encrypted(nonce("X"), Key::new("Kab"), Principal::new("A"));
        b.send("A", cipher.clone(), "B").unwrap();
        b.receive("B", &cipher).unwrap();
        System::new([b.build().unwrap()])
    }

    fn sem(sys: &System) -> Semantics<'_> {
        Semantics::new(sys, GoodRuns::all_runs(sys))
    }

    #[test]
    fn sees_becomes_true_after_receive_and_stays() {
        let sys = simple_system();
        let s = sem(&sys);
        let f = Formula::sees("B", nonce("X"));
        assert!(!s.eval(Point::new(0, 1), &f).unwrap());
        assert!(s.eval(Point::new(0, 2), &f).unwrap());
    }

    #[test]
    fn said_and_says_track_epoch() {
        let mut b = RunBuilder::new(-1);
        b.principal("A", []);
        b.principal("B", []);
        b.send("A", nonce("old"), "B").unwrap(); // time -1 (past)
        b.send("A", nonce("new"), "B").unwrap(); // time 0 (present)
        let sys = System::new([b.build().unwrap()]);
        let s = sem(&sys);
        let at = Point::new(0, 1);
        assert!(s.eval(at, &Formula::said("A", nonce("old"))).unwrap());
        assert!(!s.eval(at, &Formula::says("A", nonce("old"))).unwrap());
        assert!(s.eval(at, &Formula::said("A", nonce("new"))).unwrap());
        assert!(s.eval(at, &Formula::says("A", nonce("new"))).unwrap());
    }

    #[test]
    fn said_descends_ciphertext_only_with_key_at_send_time() {
        let sys = simple_system();
        let s = sem(&sys);
        let end = Point::new(0, 2);
        assert!(s.eval(end, &Formula::said("A", nonce("X"))).unwrap());
    }

    #[test]
    fn fresh_is_relative_to_epoch() {
        let mut b = RunBuilder::new(-1);
        b.principal("A", []);
        b.principal("B", []);
        b.send("A", nonce("old"), "B").unwrap();
        b.send("A", nonce("new"), "B").unwrap();
        let sys = System::new([b.build().unwrap()]);
        let s = sem(&sys);
        let at = Point::new(0, 1);
        assert!(!s.eval(at, &Formula::fresh(nonce("old"))).unwrap());
        assert!(s.eval(at, &Formula::fresh(nonce("new"))).unwrap());
        assert!(s.eval(at, &Formula::fresh(nonce("unseen"))).unwrap());
    }

    #[test]
    fn has_reflects_key_set_growth() {
        let mut b = RunBuilder::new(0);
        b.principal("A", []);
        b.new_key("A", "K");
        let sys = System::new([b.build().unwrap()]);
        let s = sem(&sys);
        let f = Formula::has("A", Key::new("K"));
        assert!(!s.eval(Point::new(0, 0), &f).unwrap());
        assert!(s.eval(Point::new(0, 1), &f).unwrap());
    }

    #[test]
    fn shared_key_holds_when_only_pair_encrypts() {
        let sys = simple_system();
        let s = sem(&sys);
        let f = Formula::shared_key("A", Key::new("Kab"), "B");
        assert!(s.eval(Point::new(0, 0), &f).unwrap());
    }

    #[test]
    fn shared_key_fails_when_third_party_encrypts() {
        let mut b = RunBuilder::new(0);
        b.principal("A", [Key::new("Kab")]);
        b.principal("B", [Key::new("Kab")]);
        b.principal("C", [Key::new("Kab")]);
        let cipher = Message::encrypted(nonce("X"), Key::new("Kab"), Principal::new("C"));
        b.send("C", cipher, "B").unwrap();
        let sys = System::new([b.build().unwrap()]);
        let s = sem(&sys);
        let f = Formula::shared_key("A", Key::new("Kab"), "B");
        assert!(!s.eval(Point::new(0, 0), &f).unwrap());
    }

    #[test]
    fn shared_key_tolerates_replay_by_third_party() {
        // C resends A's ciphertext (having received it): still a good key —
        // the Section 3.1 point that who *sends copies* is irrelevant.
        let mut b = RunBuilder::new(0);
        b.principal("A", [Key::new("Kab")]);
        b.principal("B", [Key::new("Kab")]);
        b.principal("C", []);
        let cipher = Message::encrypted(nonce("X"), Key::new("Kab"), Principal::new("A"));
        b.send("A", cipher.clone(), "C").unwrap();
        b.receive("C", &cipher).unwrap();
        b.send("C", cipher, "B").unwrap();
        let sys = System::new([b.build().unwrap()]);
        let s = sem(&sys);
        let f = Formula::shared_key("A", Key::new("Kab"), "B");
        assert!(s.eval(Point::new(0, 0), &f).unwrap());
    }

    #[test]
    fn shared_key_is_time_independent_within_run() {
        let sys = simple_system();
        let s = sem(&sys);
        let f = Formula::shared_key("A", Key::new("Kab"), "B");
        let vals: BTreeSet<bool> = sys
            .run(0)
            .times()
            .map(|k| s.eval(Point::new(0, k), &f).unwrap())
            .collect();
        assert_eq!(vals.len(), 1);
    }

    #[test]
    fn belief_requires_truth_at_indistinguishable_points() {
        // Two runs: in run 0 the ciphertext contains X, in run 1 it
        // contains Y. B holds no key, so the runs are indistinguishable to
        // B after hiding: B cannot believe the ciphertext contains X.
        let mk = |inner: &str| {
            let mut b = RunBuilder::new(0);
            b.principal("A", [Key::new("K")]);
            b.principal("B", []);
            let cipher = Message::encrypted(nonce(inner), Key::new("K"), Principal::new("A"));
            b.send("A", cipher.clone(), "B").unwrap();
            b.receive("B", &cipher).unwrap();
            b.build().unwrap()
        };
        let sys = System::new([mk("X"), mk("Y")]);
        let s = sem(&sys);
        let cipher_x = Message::encrypted(nonce("X"), Key::new("K"), Principal::new("A"));
        let believes_sees = Formula::believes("B", Formula::sees("B", cipher_x.clone()));
        assert!(!s.eval(Point::new(0, 2), &believes_sees).unwrap());
        // A holds the key, so A CAN distinguish and does believe it said X.
        let believes_said = Formula::believes("A", Formula::said("A", nonce("X")));
        assert!(s.eval(Point::new(0, 2), &believes_said).unwrap());
    }

    #[test]
    fn good_runs_enable_preconceived_beliefs() {
        // Same two-run system; restrict B's good runs to run 0. Now B
        // believes everything true across run 0's matching points.
        let mk = |inner: &str| {
            let mut b = RunBuilder::new(0);
            b.principal("A", [Key::new("K")]);
            b.principal("B", []);
            let cipher = Message::encrypted(nonce(inner), Key::new("K"), Principal::new("A"));
            b.send("A", cipher.clone(), "B").unwrap();
            b.receive("B", &cipher).unwrap();
            b.build().unwrap()
        };
        let sys = System::new([mk("X"), mk("Y")]);
        let mut goods = GoodRuns::all_runs(&sys);
        goods.set("B", [0usize].into_iter().collect());
        let s = Semantics::new(&sys, goods);
        let said_x = Formula::believes("B", Formula::said("A", nonce("X")));
        // At the end of run 0 — and even of run 1! — B's possible points
        // lie in run 0 only.
        assert!(s.eval(Point::new(0, 2), &said_x).unwrap());
        assert!(s.eval(Point::new(1, 2), &said_x).unwrap());
    }

    #[test]
    fn belief_cache_matches_uncached() {
        let sys = simple_system();
        let cached = Semantics::new(&sys, GoodRuns::all_runs(&sys));
        let uncached = Semantics::without_belief_cache(&sys, GoodRuns::all_runs(&sys));
        let f = Formula::believes("A", Formula::said("A", nonce("X")));
        for point in sys.points() {
            assert_eq!(
                cached.eval(point, &f).unwrap(),
                uncached.eval(point, &f).unwrap(),
                "mismatch at {point:?}"
            );
        }
    }

    #[test]
    fn term_cache_matches_uncached_semantics() {
        // As `simple_system`, plus a second receiver of the same
        // ciphertext holding the same key set — so the term cache has
        // genuine cross-principal repeats to dedupe (B's and C's hides
        // of the cipher share one `(term, keyset)` entry), not just
        // repeats the point-level memos absorb.
        let mut b = RunBuilder::new(-1);
        b.principal("A", [Key::new("Kab")]);
        b.principal("B", [Key::new("Kab")]);
        b.principal("C", [Key::new("Kab")]);
        b.new_key("A", "Spare");
        let cipher = Message::encrypted(nonce("X"), Key::new("Kab"), Principal::new("A"));
        b.send("A", cipher.clone(), "B").unwrap();
        b.receive("B", &cipher).unwrap();
        b.send("A", cipher.clone(), "C").unwrap();
        b.receive("C", &cipher).unwrap();
        let sys = System::new([b.build().unwrap()]);
        let cached = sem(&sys);
        let no_terms = Semantics::without_term_cache(&sys, GoodRuns::all_runs(&sys));
        let bare = Semantics::without_belief_cache(&sys, GoodRuns::all_runs(&sys));
        let formulas = [
            Formula::sees("B", nonce("X")),
            Formula::said("A", nonce("X")),
            Formula::says("A", nonce("X")),
            Formula::fresh(nonce("X")),
            Formula::fresh(Message::key(Key::new("Spare"))),
            Formula::shared_key("A", Key::new("Kab"), "B"),
            Formula::believes("B", Formula::said("A", nonce("X"))),
        ];
        for point in sys.points() {
            for f in &formulas {
                let want = bare.eval(point, f).unwrap();
                assert_eq!(cached.eval(point, f).unwrap(), want, "{f} at {point:?}");
                assert_eq!(no_terms.eval(point, f).unwrap(), want, "{f} at {point:?}");
            }
        }
        assert!(cached.term_cache_stats().unwrap().hits > 0);
        assert!(no_terms.term_cache_stats().is_none());
    }

    #[test]
    fn controls_is_not_just_material_implication() {
        // S never says φ in this run, so `S controls φ` holds vacuously at
        // every point — including points where φ is false.
        let mut b = RunBuilder::new(0);
        b.principal("S", []);
        b.principal("A", []);
        b.new_key("S", "K");
        let sys = System::new([b.build().unwrap()]);
        let s = sem(&sys);
        let phi = Formula::has("A", Key::new("Kx"));
        let f = Formula::controls("S", phi);
        assert!(s.eval(Point::new(0, 0), &f).unwrap());
    }

    #[test]
    fn controls_fails_when_claim_is_false() {
        // S says "A has Kx" but A never acquires it: no jurisdiction.
        let mut b = RunBuilder::new(0);
        b.principal("S", []);
        b.principal("A", []);
        let phi = Formula::has("A", Key::new("Kx"));
        b.send("S", phi.clone().into_message(), "A").unwrap();
        let sys = System::new([b.build().unwrap()]);
        let s = sem(&sys);
        assert!(!s
            .eval(Point::new(0, 0), &Formula::controls("S", phi))
            .unwrap());
    }

    #[test]
    fn controls_holds_when_claims_are_true() {
        let mut b = RunBuilder::new(0);
        b.principal("S", []);
        b.principal("A", []);
        b.new_key("A", "Kx"); // time 0: A has Kx from time 1 on
        let phi = Formula::has("A", Key::new("Kx"));
        b.send("S", phi.clone().into_message(), "A").unwrap(); // says at time 2+
        let sys = System::new([b.build().unwrap()]);
        let s = sem(&sys);
        assert!(s
            .eval(Point::new(0, 0), &Formula::controls("S", phi))
            .unwrap());
    }

    #[test]
    fn parameters_resolve_per_run() {
        let mut b = RunBuilder::new(0);
        b.principal("A", [Key::new("K9")]);
        b.bind_param(atl_lang::Param::new("Kab"), Message::Key(Key::new("K9")));
        b.new_key("A", "K10");
        let sys = System::new([b.build().unwrap()]);
        let s = sem(&sys);
        let schematic = Formula::has("A", atl_lang::Param::new("Kab"));
        assert!(s.eval(Point::new(0, 0), &schematic).unwrap());
        let unbound = Formula::has("A", atl_lang::Param::new("Nope"));
        assert!(matches!(
            s.eval(Point::new(0, 0), &unbound),
            Err(SemanticsError::NotGround(_))
        ));
    }

    #[test]
    fn bad_points_are_errors() {
        let sys = simple_system();
        let s = sem(&sys);
        assert!(matches!(
            s.eval(Point::new(7, 0), &Formula::True),
            Err(SemanticsError::BadPoint(_))
        ));
        assert!(matches!(
            s.eval(Point::new(0, 99), &Formula::True),
            Err(SemanticsError::BadPoint(_))
        ));
    }

    #[test]
    fn goodruns_partial_order() {
        let sys = simple_system();
        let all = GoodRuns::all_runs(&sys);
        let mut smaller = all.clone();
        smaller.set("A", BTreeSet::new());
        assert!(smaller.le(&all));
        assert!(!all.le(&smaller));
        assert!(all.le(&all));
    }

    #[test]
    fn valid_checks_every_point() {
        let sys = simple_system();
        let s = sem(&sys);
        assert!(s.valid(&Formula::True).unwrap());
        assert!(!s.valid(&Formula::sees("B", nonce("X"))).unwrap());
    }

    #[test]
    fn prewarmed_cache_answers_like_a_fresh_evaluator() {
        let sys = simple_system();
        let goods = GoodRuns::all_runs(&sys);
        let formulas = [
            Formula::sees("B", nonce("X")),
            Formula::said("A", nonce("X")),
            Formula::says("A", nonce("X")),
            Formula::fresh(nonce("X")),
            Formula::believes("B", Formula::sees("B", nonce("X"))),
            Formula::shared_key("A", Key::new("Kab"), "B"),
        ];
        for jobs in [1, 2] {
            let warmed = EvalCache::prewarm_on(&sys, &Pool::new(jobs));
            let shared =
                Semantics::new_shared(&sys, goods.clone(), Rc::new(RefCell::new(warmed.clone())));
            let fresh = Semantics::new(&sys, goods.clone());
            for k in sys.runs()[0].times() {
                let at = Point::new(0, k);
                for f in &formulas {
                    assert_eq!(
                        shared.eval(at, f).unwrap(),
                        fresh.eval(at, f).unwrap(),
                        "jobs {jobs}, point {at:?}, formula {f}"
                    );
                }
            }
        }
    }

    #[test]
    fn delta_prewarm_reuses_untouched_points_and_answers_like_cold() {
        let old_sys = simple_system();
        // The edited system: same shape, different payload in the sent
        // cipher — states before the send are untouched.
        let edited = {
            let mut b = RunBuilder::new(-1);
            b.principal("A", [Key::new("Kab")]);
            b.principal("B", [Key::new("Kab")]);
            b.new_key("A", "Spare");
            let cipher = Message::encrypted(nonce("Y"), Key::new("Kab"), Principal::new("A"));
            b.send("A", cipher.clone(), "B").unwrap();
            b.receive("B", &cipher).unwrap();
            System::new([b.build().unwrap()])
        };
        let formulas = [
            Formula::sees("B", nonce("Y")),
            Formula::sees("B", nonce("X")),
            Formula::said("A", nonce("Y")),
            Formula::fresh(nonce("Y")),
            Formula::believes("B", Formula::sees("B", nonce("Y"))),
            Formula::shared_key("A", Key::new("Kab"), "B"),
        ];
        for jobs in [1, 2] {
            let pool = Pool::new(jobs);
            let old = EvalCache::prewarm_on(&old_sys, &pool);
            let (delta, stats) = EvalCache::prewarm_delta_on(&edited, &old_sys, &old, &pool);
            // The pre-edit prefix is carried over, the suffix is not.
            assert!(stats.reused > 0, "untouched points must be reused");
            assert!(stats.reused < stats.total, "edited points must not be");
            assert_eq!(
                stats.total,
                EvalCache::prewarm_on(&edited, &pool).hidden_entries()
                    + 1
                    + edited.runs()[0].send_records().len()
            );
            // The interner snapshot is the old one, kept by reference.
            assert!(Arc::ptr_eq(
                delta.frozen_base().unwrap(),
                old.frozen_base().unwrap()
            ));
            // And evaluation over the rewarmed cache matches a fresh
            // evaluator on the edited system, everywhere.
            let goods = GoodRuns::all_runs(&edited);
            let shared =
                Semantics::new_shared(&edited, goods.clone(), Rc::new(RefCell::new(delta)));
            let fresh = Semantics::new(&edited, goods);
            for k in edited.runs()[0].times() {
                let at = Point::new(0, k);
                for f in &formulas {
                    assert_eq!(
                        shared.eval(at, f).unwrap(),
                        fresh.eval(at, f).unwrap(),
                        "jobs {jobs}, point {at:?}, formula {f}"
                    );
                }
            }
        }
    }

    #[test]
    fn extend_appended_matches_fresh_prewarm_at_every_prefix() {
        let formulas = [
            Formula::sees("B", nonce("X")),
            Formula::said("A", nonce("X")),
            Formula::fresh(nonce("X")),
            Formula::believes("B", Formula::sees("B", nonce("X"))),
            Formula::shared_key("A", Key::new("Kab"), "B"),
        ];
        for jobs in [1, 2] {
            let pool = Pool::new(jobs);
            let mut b = RunBuilder::new(-1);
            b.principal("A", [Key::new("Kab")]);
            b.principal("B", [Key::new("Kab")]);
            b.new_key("A", "Spare");
            let mut sys = System::new([b.build().unwrap()]);
            let mut warmed = EvalCache::prewarm_on(&sys, &pool);

            let cipher = Message::encrypted(nonce("X"), Key::new("Kab"), Principal::new("A"));
            b.send("A", cipher.clone(), "B").unwrap();
            let extend = |b: &mut RunBuilder, sys: &mut System, warmed: &mut EvalCache| {
                let from = sys.runs()[0].horizon();
                let before = warmed.entry_count();
                sys.extend_run(
                    0,
                    b.last_event().unwrap().clone(),
                    b.current_state().clone(),
                );
                let stats = warmed.extend_appended(sys, 0, from);
                // Every pre-append entry is kept; only the new point's
                // sets are added.
                assert_eq!(stats.reused, before, "jobs {jobs}");
                assert_eq!(
                    stats.total,
                    EvalCache::prewarm_on(sys, &pool).entry_count(),
                    "jobs {jobs}"
                );
            };
            extend(&mut b, &mut sys, &mut warmed);
            b.receive("B", &cipher).unwrap();
            extend(&mut b, &mut sys, &mut warmed);
            b.new_key("B", "Late");
            extend(&mut b, &mut sys, &mut warmed);

            // The extended cache answers exactly like a cold evaluator
            // over the extended system, at every point.
            let goods = GoodRuns::all_runs(&sys);
            let shared = Semantics::new_shared(&sys, goods.clone(), Rc::new(RefCell::new(warmed)));
            let fresh = Semantics::new(&sys, goods);
            for k in sys.runs()[0].times() {
                let at = Point::new(0, k);
                for f in &formulas {
                    assert_eq!(
                        shared.eval(at, f).unwrap(),
                        fresh.eval(at, f).unwrap(),
                        "jobs {jobs}, point {at:?}, formula {f}"
                    );
                }
            }
        }
    }

    #[test]
    fn delta_prewarm_of_an_empty_system_is_empty() {
        let empty = System::new([]);
        let pool = Pool::new(2);
        let (cache, stats) =
            EvalCache::prewarm_delta_on(&empty, &empty, &EvalCache::default(), &pool);
        assert_eq!(
            stats,
            RewarmStats {
                reused: 0,
                total: 0
            }
        );
        assert_eq!(cache.entry_count(), 0);
    }

    #[test]
    fn delta_prewarm_of_a_single_point_run() {
        // One state, no events: the smallest run a monitor can hold.
        let mut b = RunBuilder::new(0);
        b.principal("A", [Key::new("K")]);
        let sys = System::new([b.build().unwrap()]);
        assert_eq!(sys.runs()[0].times().count(), 1);
        let pool = Pool::new(1);
        let old = EvalCache::prewarm_on(&sys, &pool);
        let (delta, stats) = EvalCache::prewarm_delta_on(&sys, &sys, &old, &pool);
        assert_eq!(stats.reused, stats.total);
        assert_eq!(delta.entry_count(), old.entry_count());
        let s = Semantics::new_shared(&sys, GoodRuns::all_runs(&sys), Rc::new(RefCell::new(delta)));
        assert!(s
            .eval(Point::new(0, 0), &Formula::has("A", Key::new("K")))
            .unwrap());
    }

    #[test]
    fn delta_prewarm_after_append_invalidates_zero_points() {
        // Appending an event leaves every old point's inputs untouched
        // (the popped env buffer is invisible to local views), so a
        // delta prewarm over the extension reuses the old cache whole.
        let mut b = RunBuilder::new(-1);
        b.principal("A", [Key::new("Kab")]);
        b.principal("B", [Key::new("Kab")]);
        b.new_key("A", "Spare");
        let cipher = Message::encrypted(nonce("X"), Key::new("Kab"), Principal::new("A"));
        b.send("A", cipher.clone(), "B").unwrap();
        b.receive("B", &cipher).unwrap();
        let old_sys = System::new([b.build().unwrap()]);
        let pool = Pool::new(1);
        let old = EvalCache::prewarm_on(&old_sys, &pool);
        let mut extended = old_sys.clone();
        b.new_key("B", "Late");
        extended.extend_run(
            0,
            b.last_event().unwrap().clone(),
            b.current_state().clone(),
        );
        let (_, stats) = EvalCache::prewarm_delta_on(&extended, &old_sys, &old, &pool);
        assert_eq!(stats.reused, old.entry_count(), "zero points invalidated");
        assert!(stats.total > stats.reused, "the new point is fresh work");
    }

    #[test]
    fn delta_prewarm_of_an_identical_system_reuses_everything() {
        let sys = simple_system();
        let pool = Pool::new(1);
        let old = EvalCache::prewarm_on(&sys, &pool);
        let (delta, stats) = EvalCache::prewarm_delta_on(&sys, &sys, &old, &pool);
        assert_eq!(stats.reused, stats.total);
        assert_eq!(delta.hidden_entries(), old.hidden_entries());
    }

    #[test]
    fn prewarm_covers_every_principal_point_and_pins_the_snapshot() {
        let sys = simple_system();
        let warmed = EvalCache::prewarm_on(&sys, &Pool::new(1));
        // One hidden state per (principal ∪ environment) × point.
        let times = sys.runs()[0].times().count();
        let principals = sys.principals().len() + 1;
        assert_eq!(warmed.hidden_entries(), principals * times);
        // The frozen snapshot holds every sent message; a
        // default-constructed cache holds no snapshot at all.
        let base = warmed.frozen_base().expect("prewarmed cache has a base");
        assert!(base.message_count() >= 1);
        assert!(EvalCache::default().frozen_base().is_none());
        // A clone shares the memoized sets (the daemon's per-query
        // path): same base counts, same hidden coverage.
        let clone = warmed.clone();
        assert_eq!(clone.hidden_entries(), warmed.hidden_entries());
        assert_eq!(
            clone.frozen_base().map(|b| b.message_count()),
            warmed.frozen_base().map(|b| b.message_count())
        );
    }
}
