//! The semantics of the reformulated logic (Section 6).
//!
//! Truth of a formula is defined at a *point* `(r, k)` of a [`System`],
//! relative to a vector `G = (G_1, …, G_n)` of **good runs** ([`GoodRuns`])
//! that parameterizes belief:
//!
//! - `P sees X` — `X` is readable, under `P`'s current keys, in some
//!   message `P` has received;
//! - `P said X` — `X` is among the accountable components of some message
//!   `P` has sent (with `P`'s keys and received set *at send time*);
//! - `P says X` — likewise, restricted to sends in the current epoch;
//! - `P controls φ` — at every time ≥ 0 of the run, `P says φ` implies
//!   `φ` (so jurisdiction is more than `P says φ ⊃ φ`);
//! - `fresh(X)` — `X` is not a submessage of anything sent before time 0;
//! - `P ↔K↔ Q` — at all times, anyone who said ciphertext under `K`
//!   either saw it first or is `P` or `Q`;
//! - `P =Y= Q` — likewise for messages combined with `Y`;
//! - `P has K` — `K` is in `P`'s key set;
//! - `P believes φ` — `φ` holds at every point of a *good* run (for `P`)
//!   whose hidden local state matches `P`'s current hidden local state.
//!
//! Run parameters (Section 8) are resolved against the outer run's
//! bindings before the inductive definition is applied.

use atl_lang::{can_see, submsgs_of_set, Formula, KeyTerm, Message, MessageSet, Principal};
use atl_model::{LocalState, Point, Run, System};
use std::collections::{BTreeMap, BTreeSet};
use std::error::Error;
use std::fmt;

/// Error produced during evaluation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SemanticsError {
    /// The formula still contains a parameter the run does not bind.
    NotGround(Formula),
    /// The point's run index or time is outside the system.
    BadPoint(Point),
    /// Parameter substitution failed (non-key bound in key position).
    Subst(String),
}

impl fmt::Display for SemanticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemanticsError::NotGround(formula) => {
                write!(f, "formula {formula} has parameters unbound by the run")
            }
            SemanticsError::BadPoint(p) => {
                write!(
                    f,
                    "point (run {}, time {}) outside the system",
                    p.run, p.time
                )
            }
            SemanticsError::Subst(why) => write!(f, "parameter substitution failed: {why}"),
        }
    }
}

impl Error for SemanticsError {}

/// The vector `G = (G_1, …, G_n)` of good-run sets, one per principal;
/// principals without an entry default to *all* runs (belief as plain
/// hidden-state knowledge).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GoodRuns {
    all: BTreeSet<usize>,
    map: BTreeMap<Principal, BTreeSet<usize>>,
}

impl GoodRuns {
    /// The trivial vector: every run is good for every principal.
    pub fn all_runs(system: &System) -> Self {
        GoodRuns {
            all: (0..system.len()).collect(),
            map: BTreeMap::new(),
        }
    }

    /// Sets `P`'s good-run set.
    pub fn set(&mut self, p: impl Into<Principal>, runs: BTreeSet<usize>) -> &mut Self {
        self.map.insert(p.into(), runs);
        self
    }

    /// `P`'s good-run set.
    pub fn get(&self, p: &Principal) -> &BTreeSet<usize> {
        self.map.get(p).unwrap_or(&self.all)
    }

    /// The principals with explicit (non-default) entries.
    pub fn principals(&self) -> impl Iterator<Item = &Principal> {
        self.map.keys()
    }

    /// Pointwise order: `self ≤ other` iff `G_i ⊆ G'_i` for every
    /// principal mentioned by either (Section 7).
    pub fn le(&self, other: &GoodRuns) -> bool {
        let names: BTreeSet<&Principal> = self.map.keys().chain(other.map.keys()).collect();
        names
            .into_iter()
            .all(|p| self.get(p).is_subset(other.get(p)))
    }
}

/// An evaluator for a fixed system and good-run vector.
///
/// Belief evaluation groups the points of each principal's good runs by
/// hidden local state once, up front; [`Semantics::without_belief_cache`]
/// disables this (the ablation measured by `bench_ablation_belief_cache`).
///
/// # Examples
///
/// ```
/// use atl_core::semantics::{GoodRuns, Semantics};
/// use atl_lang::{Formula, Key, Message, Nonce};
/// use atl_model::{Point, RunBuilder, System};
/// let mut b = RunBuilder::new(0);
/// b.principal("A", [Key::new("K")]);
/// b.principal("B", []);
/// b.send("A", Message::nonce(Nonce::new("X")), "B")?;
/// b.receive("B", &Message::nonce(Nonce::new("X")))?;
/// let sys = System::new([b.build()?]);
/// let sem = Semantics::new(&sys, GoodRuns::all_runs(&sys));
/// let sees = Formula::sees("B", Message::nonce(Nonce::new("X")));
/// assert!(sem.eval(Point::new(0, 2), &sees)?);
/// assert!(!sem.eval(Point::new(0, 1), &sees)?);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct Semantics<'a> {
    system: &'a System,
    goods: GoodRuns,
    belief_cache: Option<BTreeMap<Principal, BTreeMap<LocalState, Vec<Point>>>>,
}

impl<'a> Semantics<'a> {
    /// Creates an evaluator with the belief cache enabled.
    pub fn new(system: &'a System, goods: GoodRuns) -> Self {
        Semantics {
            system,
            goods,
            belief_cache: Some(BTreeMap::new()),
        }
        .warm()
    }

    /// Creates an evaluator that recomputes the possibility relation on
    /// every belief query (for the ablation benchmark).
    pub fn without_belief_cache(system: &'a System, goods: GoodRuns) -> Self {
        Semantics {
            system,
            goods,
            belief_cache: None,
        }
    }

    fn warm(mut self) -> Self {
        let Some(cache) = self.belief_cache.as_mut() else {
            return self;
        };
        let mut principals: BTreeSet<Principal> = self.system.principals();
        principals.insert(Principal::environment());
        for p in &self.goods.map {
            principals.insert(p.0.clone());
        }
        for p in principals {
            let mut by_state: BTreeMap<LocalState, Vec<Point>> = BTreeMap::new();
            for &ri in self.goods.get(&p) {
                let Some(run) = self.system.runs().get(ri) else {
                    continue;
                };
                for k in run.times() {
                    let state = run.state(k).expect("time in range");
                    let hidden = state.local(&p).hidden();
                    by_state.entry(hidden).or_default().push(Point::new(ri, k));
                }
            }
            cache.insert(p, by_state);
        }
        self
    }

    /// The underlying system.
    pub fn system(&self) -> &System {
        self.system
    }

    /// The good-run vector.
    pub fn goods(&self) -> &GoodRuns {
        &self.goods
    }

    fn run(&self, point: Point) -> Result<&Run, SemanticsError> {
        self.system
            .runs()
            .get(point.run)
            .filter(|r| r.state(point.time).is_some())
            .ok_or(SemanticsError::BadPoint(point))
    }

    /// Evaluates `φ` at `point`, resolving run parameters first
    /// (Section 8).
    ///
    /// # Errors
    ///
    /// [`SemanticsError::NotGround`] if a parameter is unbound by the run;
    /// [`SemanticsError::BadPoint`] for a point outside the system.
    pub fn eval(&self, point: Point, phi: &Formula) -> Result<bool, SemanticsError> {
        let run = self.run(point)?;
        let resolved = run
            .bindings()
            .apply_formula_partial(phi)
            .map_err(|e| SemanticsError::Subst(e.to_string()))?;
        if !resolved.is_ground() {
            return Err(SemanticsError::NotGround(resolved));
        }
        Ok(self.eval_ground(point, &resolved))
    }

    /// True if `φ` holds at every point of the system.
    ///
    /// # Errors
    ///
    /// As for [`Semantics::eval`].
    pub fn valid(&self, phi: &Formula) -> Result<bool, SemanticsError> {
        for point in self.system.points() {
            if !self.eval(point, phi)? {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Evaluates a ground formula (callers must have resolved parameters).
    fn eval_ground(&self, point: Point, phi: &Formula) -> bool {
        let run = &self.system.runs()[point.run];
        match phi {
            Formula::True => true,
            Formula::Prop(p) => self.system.interpretation().holds(p, run, point),
            Formula::Not(f) => !self.eval_ground(point, f),
            Formula::And(a, b) => self.eval_ground(point, a) && self.eval_ground(point, b),
            Formula::Believes(p, f) => self.eval_believes(point, p, f),
            Formula::Controls(p, f) => self.eval_controls(point, p, f),
            Formula::Sees(p, m) => self.eval_sees(point, p, m),
            Formula::Said(p, m) => self.eval_said(point, p, m, false),
            Formula::Says(p, m) => self.eval_said(point, p, m, true),
            Formula::SharedSecret(p, y, q) => self.eval_shared_secret(point, p, y, q),
            Formula::SharedKey(p, k, q) => self.eval_shared_key(point, p, k, q),
            Formula::Fresh(m) => self.eval_fresh(point, m),
            Formula::Has(p, k) => self.eval_has(point, p, k),
            Formula::PublicKey(k, p) => self.eval_public_key(point, k, p),
        }
    }

    /// `→K P` (public-key extension): whoever signed with `K⁻¹`, at any
    /// time of the run, saw the signature first or is `P` — the signing
    /// analogue of the shared-key definition.
    fn eval_public_key(&self, point: Point, k: &KeyTerm, p: &Principal) -> bool {
        let KeyTerm::Key(key) = k else { return false };
        let run = &self.system.runs()[point.run];
        run.send_records().iter().all(|rec| {
            if rec.sender == *p {
                return true;
            }
            rec.said_submsgs().iter().all(|sub| {
                let Message::Signed { key: kk, .. } = sub else {
                    return true;
                };
                if kk.as_key() != Some(key) {
                    return true;
                }
                self.eval_sees(Point::new(point.run, rec.time + 1), &rec.sender, sub)
            })
        })
    }

    /// `P sees X` at `(r, k)`: some received message reveals `X` under
    /// `P`'s keys at time `k`.
    fn eval_sees(&self, point: Point, p: &Principal, x: &Message) -> bool {
        let run = &self.system.runs()[point.run];
        let Some(state) = run.state(point.time) else {
            return false;
        };
        let local = state.local(p);
        local
            .received()
            .iter()
            .any(|m| can_see(x, m, &local.key_set))
    }

    /// `P said X` (or `P says X` when `recent`) at `(r, k)`.
    fn eval_said(&self, point: Point, p: &Principal, x: &Message, recent: bool) -> bool {
        let run = &self.system.runs()[point.run];
        run.send_records().iter().any(|rec| {
            rec.sender == *p
                && rec.time < point.time
                && (!recent || rec.time >= 0)
                && rec.said_submsgs().contains(x)
        })
    }

    /// `P controls φ` at `(r, k)`: for every time `k' ≥ 0` of the run,
    /// `P says φ` at `k'` implies `φ` at `k'`. (Holds at one point of a
    /// run iff at all points of it.)
    fn eval_controls(&self, point: Point, p: &Principal, phi: &Formula) -> bool {
        let run = &self.system.runs()[point.run];
        let claim = phi.clone().into_message();
        run.times().filter(|k| *k >= 0).all(|k| {
            let here = Point::new(point.run, k);
            !self.eval_said(here, p, &claim, true) || self.eval_ground(here, phi)
        })
    }

    /// `fresh(X)` at `(r, k)`: `X` is not a submessage of any message sent
    /// before time 0.
    fn eval_fresh(&self, point: Point, x: &Message) -> bool {
        let run = &self.system.runs()[point.run];
        let past: MessageSet = run.sent_before_epoch();
        !submsgs_of_set(past.iter()).contains(x)
    }

    /// `P has K` at `(r, k)`.
    fn eval_has(&self, point: Point, p: &Principal, k: &KeyTerm) -> bool {
        let KeyTerm::Key(key) = k else { return false };
        let run = &self.system.runs()[point.run];
        run.state(point.time)
            .is_some_and(|s| s.key_set(p).contains(key))
    }

    /// `P ↔K↔ Q`: whoever said ciphertext under `K`, at any time of the
    /// run, saw it first or is `P` or `Q`.
    fn eval_shared_key(&self, point: Point, p: &Principal, k: &KeyTerm, q: &Principal) -> bool {
        let KeyTerm::Key(key) = k else { return false };
        let run = &self.system.runs()[point.run];
        run.send_records().iter().all(|rec| {
            if rec.sender == *p || rec.sender == *q {
                return true;
            }
            rec.said_submsgs().iter().all(|sub| {
                let Message::Encrypted { key: kk, .. } = sub else {
                    return true;
                };
                if kk.as_key() != Some(key) {
                    return true;
                }
                // The sender must have seen the ciphertext by the time the
                // send lands in its history (sees is monotone, so checking
                // at rec.time + 1 decides all later times; at earlier
                // times "said" is false and the implication vacuous).
                self.eval_sees(Point::new(point.run, rec.time + 1), &rec.sender, sub)
            })
        })
    }

    /// `P =Y= Q`: likewise for messages combined with the secret `Y`.
    fn eval_shared_secret(&self, point: Point, p: &Principal, y: &Message, q: &Principal) -> bool {
        let run = &self.system.runs()[point.run];
        run.send_records().iter().all(|rec| {
            if rec.sender == *p || rec.sender == *q {
                return true;
            }
            rec.said_submsgs().iter().all(|sub| {
                let Message::Combined { secret, .. } = sub else {
                    return true;
                };
                if **secret != *y {
                    return true;
                }
                self.eval_sees(Point::new(point.run, rec.time + 1), &rec.sender, sub)
            })
        })
    }

    /// The points `P` considers possible at `point`: points of `P`-good
    /// runs whose hidden local state equals `P`'s here.
    pub fn possible_points(&self, point: Point, p: &Principal) -> Vec<Point> {
        let run = &self.system.runs()[point.run];
        let Some(state) = run.state(point.time) else {
            return Vec::new();
        };
        let hidden = state.local(p).hidden();
        if let Some(by_state) = self.belief_cache.as_ref().and_then(|c| c.get(p)) {
            // Cached principals were enumerated at construction; fall
            // through to the scan for principals the cache never saw.
            return by_state.get(&hidden).cloned().unwrap_or_default();
        }
        let mut out = Vec::new();
        for &ri in self.goods.get(p) {
            let Some(r2) = self.system.runs().get(ri) else {
                continue;
            };
            for k in r2.times() {
                let s2 = r2.state(k).expect("time in range");
                if s2.local(p).hidden() == hidden {
                    out.push(Point::new(ri, k));
                }
            }
        }
        out
    }

    /// `P believes φ` at `point`.
    fn eval_believes(&self, point: Point, p: &Principal, phi: &Formula) -> bool {
        self.possible_points(point, p)
            .into_iter()
            .all(|pt| self.eval_ground(pt, phi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atl_lang::{Key, Nonce};
    use atl_model::RunBuilder;

    fn nonce(s: &str) -> Message {
        Message::nonce(Nonce::new(s))
    }

    /// A ↦ B : {X}Kab, with both holding Kab; one run.
    fn simple_system() -> System {
        let mut b = RunBuilder::new(-1);
        b.principal("A", [Key::new("Kab")]);
        b.principal("B", [Key::new("Kab")]);
        b.new_key("A", "Spare"); // past-epoch activity
        let cipher = Message::encrypted(nonce("X"), Key::new("Kab"), Principal::new("A"));
        b.send("A", cipher.clone(), "B").unwrap();
        b.receive("B", &cipher).unwrap();
        System::new([b.build().unwrap()])
    }

    fn sem(sys: &System) -> Semantics<'_> {
        Semantics::new(sys, GoodRuns::all_runs(sys))
    }

    #[test]
    fn sees_becomes_true_after_receive_and_stays() {
        let sys = simple_system();
        let s = sem(&sys);
        let f = Formula::sees("B", nonce("X"));
        assert!(!s.eval(Point::new(0, 1), &f).unwrap());
        assert!(s.eval(Point::new(0, 2), &f).unwrap());
    }

    #[test]
    fn said_and_says_track_epoch() {
        let mut b = RunBuilder::new(-1);
        b.principal("A", []);
        b.principal("B", []);
        b.send("A", nonce("old"), "B").unwrap(); // time -1 (past)
        b.send("A", nonce("new"), "B").unwrap(); // time 0 (present)
        let sys = System::new([b.build().unwrap()]);
        let s = sem(&sys);
        let at = Point::new(0, 1);
        assert!(s.eval(at, &Formula::said("A", nonce("old"))).unwrap());
        assert!(!s.eval(at, &Formula::says("A", nonce("old"))).unwrap());
        assert!(s.eval(at, &Formula::said("A", nonce("new"))).unwrap());
        assert!(s.eval(at, &Formula::says("A", nonce("new"))).unwrap());
    }

    #[test]
    fn said_descends_ciphertext_only_with_key_at_send_time() {
        let sys = simple_system();
        let s = sem(&sys);
        let end = Point::new(0, 2);
        assert!(s.eval(end, &Formula::said("A", nonce("X"))).unwrap());
    }

    #[test]
    fn fresh_is_relative_to_epoch() {
        let mut b = RunBuilder::new(-1);
        b.principal("A", []);
        b.principal("B", []);
        b.send("A", nonce("old"), "B").unwrap();
        b.send("A", nonce("new"), "B").unwrap();
        let sys = System::new([b.build().unwrap()]);
        let s = sem(&sys);
        let at = Point::new(0, 1);
        assert!(!s.eval(at, &Formula::fresh(nonce("old"))).unwrap());
        assert!(s.eval(at, &Formula::fresh(nonce("new"))).unwrap());
        assert!(s.eval(at, &Formula::fresh(nonce("unseen"))).unwrap());
    }

    #[test]
    fn has_reflects_key_set_growth() {
        let mut b = RunBuilder::new(0);
        b.principal("A", []);
        b.new_key("A", "K");
        let sys = System::new([b.build().unwrap()]);
        let s = sem(&sys);
        let f = Formula::has("A", Key::new("K"));
        assert!(!s.eval(Point::new(0, 0), &f).unwrap());
        assert!(s.eval(Point::new(0, 1), &f).unwrap());
    }

    #[test]
    fn shared_key_holds_when_only_pair_encrypts() {
        let sys = simple_system();
        let s = sem(&sys);
        let f = Formula::shared_key("A", Key::new("Kab"), "B");
        assert!(s.eval(Point::new(0, 0), &f).unwrap());
    }

    #[test]
    fn shared_key_fails_when_third_party_encrypts() {
        let mut b = RunBuilder::new(0);
        b.principal("A", [Key::new("Kab")]);
        b.principal("B", [Key::new("Kab")]);
        b.principal("C", [Key::new("Kab")]);
        let cipher = Message::encrypted(nonce("X"), Key::new("Kab"), Principal::new("C"));
        b.send("C", cipher, "B").unwrap();
        let sys = System::new([b.build().unwrap()]);
        let s = sem(&sys);
        let f = Formula::shared_key("A", Key::new("Kab"), "B");
        assert!(!s.eval(Point::new(0, 0), &f).unwrap());
    }

    #[test]
    fn shared_key_tolerates_replay_by_third_party() {
        // C resends A's ciphertext (having received it): still a good key —
        // the Section 3.1 point that who *sends copies* is irrelevant.
        let mut b = RunBuilder::new(0);
        b.principal("A", [Key::new("Kab")]);
        b.principal("B", [Key::new("Kab")]);
        b.principal("C", []);
        let cipher = Message::encrypted(nonce("X"), Key::new("Kab"), Principal::new("A"));
        b.send("A", cipher.clone(), "C").unwrap();
        b.receive("C", &cipher).unwrap();
        b.send("C", cipher, "B").unwrap();
        let sys = System::new([b.build().unwrap()]);
        let s = sem(&sys);
        let f = Formula::shared_key("A", Key::new("Kab"), "B");
        assert!(s.eval(Point::new(0, 0), &f).unwrap());
    }

    #[test]
    fn shared_key_is_time_independent_within_run() {
        let sys = simple_system();
        let s = sem(&sys);
        let f = Formula::shared_key("A", Key::new("Kab"), "B");
        let vals: BTreeSet<bool> = sys
            .run(0)
            .times()
            .map(|k| s.eval(Point::new(0, k), &f).unwrap())
            .collect();
        assert_eq!(vals.len(), 1);
    }

    #[test]
    fn belief_requires_truth_at_indistinguishable_points() {
        // Two runs: in run 0 the ciphertext contains X, in run 1 it
        // contains Y. B holds no key, so the runs are indistinguishable to
        // B after hiding: B cannot believe the ciphertext contains X.
        let mk = |inner: &str| {
            let mut b = RunBuilder::new(0);
            b.principal("A", [Key::new("K")]);
            b.principal("B", []);
            let cipher = Message::encrypted(nonce(inner), Key::new("K"), Principal::new("A"));
            b.send("A", cipher.clone(), "B").unwrap();
            b.receive("B", &cipher).unwrap();
            b.build().unwrap()
        };
        let sys = System::new([mk("X"), mk("Y")]);
        let s = sem(&sys);
        let cipher_x = Message::encrypted(nonce("X"), Key::new("K"), Principal::new("A"));
        let believes_sees = Formula::believes("B", Formula::sees("B", cipher_x.clone()));
        assert!(!s.eval(Point::new(0, 2), &believes_sees).unwrap());
        // A holds the key, so A CAN distinguish and does believe it said X.
        let believes_said = Formula::believes("A", Formula::said("A", nonce("X")));
        assert!(s.eval(Point::new(0, 2), &believes_said).unwrap());
    }

    #[test]
    fn good_runs_enable_preconceived_beliefs() {
        // Same two-run system; restrict B's good runs to run 0. Now B
        // believes everything true across run 0's matching points.
        let mk = |inner: &str| {
            let mut b = RunBuilder::new(0);
            b.principal("A", [Key::new("K")]);
            b.principal("B", []);
            let cipher = Message::encrypted(nonce(inner), Key::new("K"), Principal::new("A"));
            b.send("A", cipher.clone(), "B").unwrap();
            b.receive("B", &cipher).unwrap();
            b.build().unwrap()
        };
        let sys = System::new([mk("X"), mk("Y")]);
        let mut goods = GoodRuns::all_runs(&sys);
        goods.set("B", [0usize].into_iter().collect());
        let s = Semantics::new(&sys, goods);
        let said_x = Formula::believes("B", Formula::said("A", nonce("X")));
        // At the end of run 0 — and even of run 1! — B's possible points
        // lie in run 0 only.
        assert!(s.eval(Point::new(0, 2), &said_x).unwrap());
        assert!(s.eval(Point::new(1, 2), &said_x).unwrap());
    }

    #[test]
    fn belief_cache_matches_uncached() {
        let sys = simple_system();
        let cached = Semantics::new(&sys, GoodRuns::all_runs(&sys));
        let uncached = Semantics::without_belief_cache(&sys, GoodRuns::all_runs(&sys));
        let f = Formula::believes("A", Formula::said("A", nonce("X")));
        for point in sys.points() {
            assert_eq!(
                cached.eval(point, &f).unwrap(),
                uncached.eval(point, &f).unwrap(),
                "mismatch at {point:?}"
            );
        }
    }

    #[test]
    fn controls_is_not_just_material_implication() {
        // S never says φ in this run, so `S controls φ` holds vacuously at
        // every point — including points where φ is false.
        let mut b = RunBuilder::new(0);
        b.principal("S", []);
        b.principal("A", []);
        b.new_key("S", "K");
        let sys = System::new([b.build().unwrap()]);
        let s = sem(&sys);
        let phi = Formula::has("A", Key::new("Kx"));
        let f = Formula::controls("S", phi);
        assert!(s.eval(Point::new(0, 0), &f).unwrap());
    }

    #[test]
    fn controls_fails_when_claim_is_false() {
        // S says "A has Kx" but A never acquires it: no jurisdiction.
        let mut b = RunBuilder::new(0);
        b.principal("S", []);
        b.principal("A", []);
        let phi = Formula::has("A", Key::new("Kx"));
        b.send("S", phi.clone().into_message(), "A").unwrap();
        let sys = System::new([b.build().unwrap()]);
        let s = sem(&sys);
        assert!(!s
            .eval(Point::new(0, 0), &Formula::controls("S", phi))
            .unwrap());
    }

    #[test]
    fn controls_holds_when_claims_are_true() {
        let mut b = RunBuilder::new(0);
        b.principal("S", []);
        b.principal("A", []);
        b.new_key("A", "Kx"); // time 0: A has Kx from time 1 on
        let phi = Formula::has("A", Key::new("Kx"));
        b.send("S", phi.clone().into_message(), "A").unwrap(); // says at time 2+
        let sys = System::new([b.build().unwrap()]);
        let s = sem(&sys);
        assert!(s
            .eval(Point::new(0, 0), &Formula::controls("S", phi))
            .unwrap());
    }

    #[test]
    fn parameters_resolve_per_run() {
        let mut b = RunBuilder::new(0);
        b.principal("A", [Key::new("K9")]);
        b.bind_param(atl_lang::Param::new("Kab"), Message::Key(Key::new("K9")));
        b.new_key("A", "K10");
        let sys = System::new([b.build().unwrap()]);
        let s = sem(&sys);
        let schematic = Formula::has("A", atl_lang::Param::new("Kab"));
        assert!(s.eval(Point::new(0, 0), &schematic).unwrap());
        let unbound = Formula::has("A", atl_lang::Param::new("Nope"));
        assert!(matches!(
            s.eval(Point::new(0, 0), &unbound),
            Err(SemanticsError::NotGround(_))
        ));
    }

    #[test]
    fn bad_points_are_errors() {
        let sys = simple_system();
        let s = sem(&sys);
        assert!(matches!(
            s.eval(Point::new(7, 0), &Formula::True),
            Err(SemanticsError::BadPoint(_))
        ));
        assert!(matches!(
            s.eval(Point::new(0, 99), &Formula::True),
            Err(SemanticsError::BadPoint(_))
        ));
    }

    #[test]
    fn goodruns_partial_order() {
        let sys = simple_system();
        let all = GoodRuns::all_runs(&sys);
        let mut smaller = all.clone();
        smaller.set("A", BTreeSet::new());
        assert!(smaller.le(&all));
        assert!(!all.le(&smaller));
        assert!(all.le(&all));
    }

    #[test]
    fn valid_checks_every_point() {
        let sys = simple_system();
        let s = sem(&sys);
        assert!(s.valid(&Formula::True).unwrap());
        assert!(!s.valid(&Formula::sees("B", nonce("X"))).unwrap());
    }
}
