//! The soundness model-checker (Theorem 1).
//!
//! Theorem 1 states that the axiomatization of Section 4.2 is sound for
//! the semantics of Section 6. This module checks it mechanically: every
//! axiom schema is instantiated over pools of principals, keys, and
//! messages drawn from a system, and every instance is evaluated at every
//! point. [`check_axioms`] returns a report with instance counts and any
//! counterexamples (there are none on well-formed systems — that is the
//! theorem).
//!
//! One subtlety surfaced by mechanization: A5's side condition `P ≠ S`
//! identifies the sender through the from field, which restriction 4
//! guarantees honest for *system* principals only. When the shared-key
//! formula names the environment as `P` **and** the environment forges
//! from fields on ciphertext it constructs, A5 has counterexamples (see
//! `a5_needs_from_honesty` below). On from-honest runs — which the random
//! generator produces, and which the paper implicitly assumes — the schema
//! is sound.

use crate::axioms::{self, AxiomName};
use crate::semantics::{GoodRuns, Semantics, SemanticsError};
use atl_lang::{Formula, Key, KeyTerm, Message, Nonce, Principal};
use atl_model::{Point, System};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Instantiation pools and caps for the model checker.
#[derive(Clone, Debug)]
pub struct SoundnessConfig {
    /// Maximum messages drawn into the instantiation pool.
    pub max_messages: usize,
    /// Maximum formulas drawn into the instantiation pool.
    pub max_formulas: usize,
    /// Cap on instances checked per axiom schema.
    pub max_instances_per_axiom: usize,
}

impl Default for SoundnessConfig {
    fn default() -> Self {
        SoundnessConfig {
            max_messages: 8,
            max_formulas: 6,
            max_instances_per_axiom: 400,
        }
    }
}

/// A falsified instance: which schema, the concrete formula, and where.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counterexample {
    /// The schema violated.
    pub axiom: AxiomName,
    /// The falsified instance.
    pub instance: Formula,
    /// The point at which it is false.
    pub point: Point,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} falsified at (run {}, time {}): {}",
            self.axiom, self.point.run, self.point.time, self.instance
        )
    }
}

/// The outcome of a soundness check.
#[derive(Clone, Debug, Default)]
pub struct SoundnessReport {
    /// Instances checked per schema.
    pub instances: BTreeMap<AxiomName, usize>,
    /// All falsified instances found.
    pub counterexamples: Vec<Counterexample>,
}

impl SoundnessReport {
    /// True if no instance was falsified.
    pub fn sound(&self) -> bool {
        self.counterexamples.is_empty()
    }

    /// Total instances checked across schemas.
    pub fn total_instances(&self) -> usize {
        self.instances.values().sum()
    }
}

impl fmt::Display for SoundnessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "soundness: {} instances across {} schemas, {} counterexample(s)",
            self.total_instances(),
            self.instances.len(),
            self.counterexamples.len()
        )?;
        for (name, n) in &self.instances {
            writeln!(f, "  {name:10} {n:6} instances — {}", name.description())?;
        }
        for ce in &self.counterexamples {
            writeln!(f, "  !! {ce}")?;
        }
        Ok(())
    }
}

/// The instantiation pools extracted from a system.
#[derive(Clone, Debug)]
pub struct Pools {
    /// Principals (system principals plus the environment).
    pub principals: Vec<Principal>,
    /// Keys occurring in key sets or messages.
    pub keys: Vec<Key>,
    /// Messages: sent submessages plus a few synthetics, smallest first.
    pub messages: Vec<Message>,
    /// Formulas: atomic facts over the other pools.
    pub formulas: Vec<Formula>,
}

impl Pools {
    /// Extracts pools from `system`, bounded by `config`.
    pub fn from_system(system: &System, config: &SoundnessConfig) -> Self {
        let mut principals: BTreeSet<Principal> = system.principals();
        principals.insert(Principal::environment());
        let principals: Vec<Principal> = principals.into_iter().collect();

        let mut keys: BTreeSet<Key> = BTreeSet::new();
        let mut messages: BTreeSet<Message> = BTreeSet::new();
        for run in system.runs() {
            for rec in run.send_records() {
                keys.extend(rec.message.keys());
                keys.extend(rec.key_set.iter().cloned());
                messages.extend(atl_lang::submsgs(&rec.message));
            }
            if let Some(s0) = run.state(run.start_time()) {
                for p in s0.principals() {
                    keys.extend(s0.key_set(p).iter().cloned());
                }
            }
        }
        if keys.is_empty() {
            keys.insert(Key::new("Kpool"));
        }
        messages.insert(Message::nonce(Nonce::new("Zfresh")));
        let mut messages: Vec<Message> = messages.into_iter().collect();
        messages.sort_by_key(Message::size);
        messages.truncate(config.max_messages);
        let keys: Vec<Key> = keys.into_iter().collect();

        let mut formulas: Vec<Formula> = Vec::new();
        if let (Some(p), Some(q)) = (principals.first(), principals.last()) {
            if let Some(k) = keys.first() {
                formulas.push(Formula::shared_key(p.clone(), k.clone(), q.clone()));
                formulas.push(Formula::has(p.clone(), k.clone()));
            }
            if let Some(m) = messages.first() {
                formulas.push(Formula::sees(p.clone(), m.clone()));
                formulas.push(Formula::said(q.clone(), m.clone()));
                formulas.push(Formula::fresh(m.clone()));
            }
            formulas.push(Formula::True);
            if let Some(k) = keys.last() {
                formulas.push(Formula::not(Formula::has(q.clone(), k.clone())));
            }
        }
        formulas.truncate(config.max_formulas);

        Pools {
            principals,
            keys,
            messages,
            formulas,
        }
    }
}

/// Enumerates instances of one axiom schema over the pools, up to `cap`.
pub fn instances_of(name: AxiomName, pools: &Pools, cap: usize) -> Vec<Formula> {
    let mut out: Vec<Formula> = Vec::new();
    let ps = &pools.principals;
    let ks: Vec<KeyTerm> = pools.keys.iter().cloned().map(KeyTerm::Key).collect();
    let ms = &pools.messages;
    let fs = &pools.formulas;
    let full = &mut |f: Formula, out: &mut Vec<Formula>| -> bool {
        out.push(f);
        out.len() >= cap
    };
    match name {
        AxiomName::A1 => {
            'outer: for p in ps {
                for phi in fs {
                    for psi in fs {
                        if full(axioms::a1(p, phi, psi), &mut out) {
                            break 'outer;
                        }
                    }
                }
            }
        }
        AxiomName::A2 => {
            'outer: for p in ps {
                for phi in fs {
                    if full(axioms::a2(p, phi), &mut out) {
                        break 'outer;
                    }
                }
            }
        }
        AxiomName::A3 => {
            'outer: for p in ps {
                for phi in fs {
                    if full(axioms::a3(p, phi), &mut out) {
                        break 'outer;
                    }
                }
            }
        }
        AxiomName::A4 => {
            'outer: for p in ps {
                for phi in fs {
                    for psi in fs {
                        if full(axioms::a4(p, phi, psi), &mut out) {
                            break 'outer;
                        }
                    }
                }
            }
        }
        AxiomName::A5 => {
            'outer: for p in ps {
                for q in ps {
                    for r in ps {
                        for s in ps {
                            for k in &ks {
                                for x in ms {
                                    if let Some(f) = axioms::a5(p, k, q, r, x, s) {
                                        if full(f, &mut out) {
                                            break 'outer;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        AxiomName::A6 => {
            'outer: for p in ps {
                for q in ps {
                    for r in ps {
                        for s in ps {
                            for y in ms.iter().take(3) {
                                for x in ms.iter().take(3) {
                                    if let Some(f) = axioms::a6(p, y, q, r, x, s) {
                                        if full(f, &mut out) {
                                            break 'outer;
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        AxiomName::A7 => {
            'outer: for p in ps {
                for a in ms.iter().take(4) {
                    for b in ms.iter().take(4) {
                        let items = [a.clone(), b.clone()];
                        for i in 0..2 {
                            if full(axioms::a7(p, &items, i), &mut out) {
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
        AxiomName::A8 => {
            'outer: for p in ps {
                for q in ps {
                    for k in &ks {
                        for x in ms {
                            if full(axioms::a8(p, x, q, k), &mut out) {
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
        AxiomName::A9 => {
            'outer: for p in ps {
                for q in ps {
                    for y in ms.iter().take(3) {
                        for x in ms.iter().take(3) {
                            if full(axioms::a9(p, x, q, y), &mut out) {
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
        AxiomName::A10 => {
            'outer: for p in ps {
                for x in ms {
                    if full(axioms::a10(p, x), &mut out) {
                        break 'outer;
                    }
                }
            }
        }
        AxiomName::A11 => {
            'outer: for p in ps {
                for q in ps {
                    for k in &ks {
                        for x in ms {
                            if full(axioms::a11(p, x, q, k), &mut out) {
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
        AxiomName::A12 | AxiomName::A12Says => {
            let says = name == AxiomName::A12Says;
            'outer: for p in ps {
                for a in ms.iter().take(4) {
                    for b in ms.iter().take(4) {
                        let items = [a.clone(), b.clone()];
                        for i in 0..2 {
                            if full(axioms::a12(p, &items, i, says), &mut out) {
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
        AxiomName::A13 | AxiomName::A13Says => {
            let says = name == AxiomName::A13Says;
            'outer: for p in ps {
                for q in ps {
                    for y in ms.iter().take(3) {
                        for x in ms.iter().take(3) {
                            if full(axioms::a13(p, x, q, y, says), &mut out) {
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
        AxiomName::A14 | AxiomName::A14Says => {
            let says = name == AxiomName::A14Says;
            'outer: for p in ps {
                for x in ms {
                    if full(axioms::a14(p, x, says), &mut out) {
                        break 'outer;
                    }
                }
            }
        }
        AxiomName::A15 => {
            'outer: for p in ps {
                for phi in fs {
                    if full(axioms::a15(p, phi), &mut out) {
                        break 'outer;
                    }
                }
            }
        }
        AxiomName::A16 => {
            'outer: for a in ms.iter().take(5) {
                for b in ms.iter().take(5) {
                    let items = [a.clone(), b.clone()];
                    for i in 0..2 {
                        if full(axioms::a16(&items, i), &mut out) {
                            break 'outer;
                        }
                    }
                }
            }
        }
        AxiomName::A17 => {
            'outer: for q in ps {
                for k in &ks {
                    for x in ms {
                        if full(axioms::a17(x, q, k), &mut out) {
                            break 'outer;
                        }
                    }
                }
            }
        }
        AxiomName::A18 => {
            'outer: for q in ps {
                for y in ms.iter().take(3) {
                    for x in ms.iter().take(3) {
                        if full(axioms::a18(x, q, y), &mut out) {
                            break 'outer;
                        }
                    }
                }
            }
        }
        AxiomName::A19 => {
            for x in ms {
                if full(axioms::a19(x), &mut out) {
                    break;
                }
            }
        }
        AxiomName::A20 => {
            'outer: for p in ps {
                for x in ms {
                    if full(axioms::a20(p, x), &mut out) {
                        break 'outer;
                    }
                }
            }
        }
        AxiomName::A21Key => {
            'outer: for p in ps {
                for q in ps {
                    for k in &ks {
                        if full(axioms::a21_key(p, k, q), &mut out) {
                            break 'outer;
                        }
                    }
                }
            }
        }
        AxiomName::A21Secret => {
            'outer: for p in ps {
                for q in ps {
                    for y in ms.iter().take(4) {
                        if full(axioms::a21_secret(p, y, q), &mut out) {
                            break 'outer;
                        }
                    }
                }
            }
        }
        AxiomName::A22SigMeaning => {
            'outer: for q in ps {
                for r in ps {
                    for s in ps {
                        for k in &ks {
                            for x in ms.iter().take(4) {
                                if full(axioms::a22(k, q, r, x, s), &mut out) {
                                    break 'outer;
                                }
                            }
                        }
                    }
                }
            }
        }
        AxiomName::A23SeesSigned => {
            'outer: for p in ps {
                for q in ps {
                    for k in &ks {
                        for x in ms {
                            if full(axioms::a23(p, x, q, k), &mut out) {
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
        AxiomName::A24SeesPubEnc => {
            'outer: for p in ps {
                for q in ps {
                    for k in pools.keys.iter() {
                        for x in ms {
                            if full(axioms::a24(p, x, q, k), &mut out) {
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
        AxiomName::A25FreshSigned => {
            'outer: for q in ps {
                for k in &ks {
                    for x in ms {
                        if full(axioms::a25(x, q, k), &mut out) {
                            break 'outer;
                        }
                    }
                }
            }
        }
        AxiomName::A26FreshPubEnc => {
            'outer: for q in ps {
                for k in &ks {
                    for x in ms {
                        if full(axioms::a26(x, q, k), &mut out) {
                            break 'outer;
                        }
                    }
                }
            }
        }
        AxiomName::A27BelievesSeesSigned => {
            'outer: for p in ps {
                for q in ps {
                    for k in &ks {
                        for x in ms {
                            if full(axioms::a27(p, x, q, k), &mut out) {
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
        AxiomName::A28BelievesSeesPubEnc => {
            'outer: for p in ps {
                for q in ps {
                    for k in pools.keys.iter() {
                        for x in ms {
                            if full(axioms::a28(p, x, q, k), &mut out) {
                                break 'outer;
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

/// Checks every axiom schema over `system` relative to `goods`.
///
/// # Errors
///
/// Propagates evaluation errors (none occur for ground pools).
pub fn check_axioms(
    system: &System,
    goods: GoodRuns,
    config: &SoundnessConfig,
) -> Result<SoundnessReport, SemanticsError> {
    let pools = Pools::from_system(system, config);
    let sem = Semantics::new(system, goods);
    let mut report = SoundnessReport::default();
    for name in AxiomName::ALL {
        let instances = instances_of(name, &pools, config.max_instances_per_axiom);
        report.instances.insert(name, instances.len());
        for instance in instances {
            for point in system.points() {
                if !sem.eval(point, &instance)? {
                    report.counterexamples.push(Counterexample {
                        axiom: name,
                        instance: instance.clone(),
                        point,
                    });
                    break; // one point per instance suffices
                }
            }
        }
    }
    Ok(report)
}

/// The paper's incompleteness example (Section 6): a valid formula that
/// does not appear derivable from A1–A21:
///
/// `P controls (P has K) ∧ P says (P has K, {X^P}_K) ⊃ P says X`.
pub fn incompleteness_example(p: &Principal, k: &Key, x: &Message) -> Formula {
    let has = Formula::has(p.clone(), k.clone());
    let tuple = Message::tuple([
        has.clone().into_message(),
        Message::encrypted(x.clone(), k.clone(), p.clone()),
    ]);
    Formula::implies(
        Formula::and(
            Formula::controls(p.clone(), has),
            Formula::says(p.clone(), tuple),
        ),
        Formula::says(p.clone(), x.clone()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use atl_model::{random_system, GenConfig, RunBuilder};

    #[test]
    fn axioms_sound_on_random_adversarial_systems() {
        let config = SoundnessConfig {
            max_instances_per_axiom: 60,
            ..SoundnessConfig::default()
        };
        for seed in 0..3 {
            let sys = random_system(&GenConfig::default(), 3, seed);
            let report = check_axioms(&sys, GoodRuns::all_runs(&sys), &config).unwrap();
            assert!(report.sound(), "seed {seed}: {}", report);
            assert!(report.total_instances() > 0);
        }
    }

    #[test]
    fn report_display_lists_schemas() {
        let sys = random_system(&GenConfig::default(), 1, 5);
        let config = SoundnessConfig {
            max_instances_per_axiom: 5,
            ..SoundnessConfig::default()
        };
        let report = check_axioms(&sys, GoodRuns::all_runs(&sys), &config).unwrap();
        let text = report.to_string();
        assert!(text.contains("A20"));
        assert!(text.contains("message meaning"));
    }

    #[test]
    fn a5_needs_from_honesty() {
        // The documented subtlety: the environment guesses K, constructs
        // ciphertext with a forged from field A, and sends it. The
        // shared-key formula naming the environment itself as one end is
        // then true, yet the A5 instance concluding "B said X" is false.
        let env = Principal::environment();
        let mut b = RunBuilder::new(0);
        b.principal("A", []);
        b.principal("B", []);
        b.env_keys([Key::new("K")]);
        let x = Message::nonce(Nonce::new("X"));
        let forged = Message::encrypted(x.clone(), Key::new("K"), Principal::new("A"));
        b.send(env.clone(), forged.clone(), "B").unwrap();
        b.receive("B", &forged).unwrap();
        let sys = atl_model::System::new([b.build().unwrap()]);
        let sem = Semantics::new(&sys, GoodRuns::all_runs(&sys));
        let end = Point::new(0, 2);
        // Env–K–B is a good key by the semantic definition (only the
        // environment encrypts with K)…
        let sk = Formula::shared_key(env.clone(), Key::new("K"), "B");
        assert!(sem.eval(end, &sk).unwrap());
        // …and B sees the ciphertext, whose (forged) from field is A ≠ Env.
        let instance = axioms::a5(
            &env,
            &KeyTerm::Key(Key::new("K")),
            &Principal::new("B"),
            &Principal::new("B"),
            &x,
            &Principal::new("A"),
        )
        .unwrap();
        assert!(
            !sem.eval(end, &instance).unwrap(),
            "A5 falsified as expected"
        );
    }

    #[test]
    fn incompleteness_example_is_valid_on_random_systems() {
        let p = Principal::new("A");
        let k = Key::new("Kas");
        let x = Message::nonce(Nonce::new("Na"));
        let f = incompleteness_example(&p, &k, &x);
        for seed in 0..4 {
            let sys = random_system(&GenConfig::default(), 3, seed);
            let sem = Semantics::new(&sys, GoodRuns::all_runs(&sys));
            assert!(sem.valid(&f).unwrap(), "seed {seed}");
        }
    }

    #[test]
    fn pools_are_nonempty_even_for_quiet_systems() {
        let mut b = RunBuilder::new(0);
        b.principal("A", []);
        b.new_key("A", "K");
        let sys = atl_model::System::new([b.build().unwrap()]);
        let pools = Pools::from_system(&sys, &SoundnessConfig::default());
        assert!(!pools.principals.is_empty());
        assert!(!pools.keys.is_empty());
        assert!(!pools.messages.is_empty());
        assert!(!pools.formulas.is_empty());
    }
}
