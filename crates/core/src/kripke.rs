//! Exporting the possibility relation as a Kripke structure.
//!
//! The Section 6 semantics is a Kripke model whose worlds are the points
//! of the system and whose per-principal accessibility is the
//! hidden-state/good-run possibility relation. This module materializes
//! that structure — for inspection, for graph rendering (Graphviz DOT),
//! and for tests that reason about the relation's shape (e.g. its
//! euclidean-transitivity on good runs, which is what makes A2/A3 sound).

use crate::semantics::Semantics;
use atl_lang::Principal;
use atl_model::Point;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// The materialized possibility relation of one principal: for each point,
/// the points it considers possible.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PossibilityRelation {
    /// The principal whose relation this is.
    pub principal: Principal,
    /// `edges[w]` lists the worlds accessible from `w`.
    pub edges: BTreeMap<Point, Vec<Point>>,
}

impl PossibilityRelation {
    /// Materializes `p`'s possibility relation over every point of the
    /// evaluator's system.
    pub fn of(sem: &Semantics<'_>, p: &Principal) -> Self {
        let mut edges = BTreeMap::new();
        for point in sem.system().points() {
            edges.insert(point, sem.possible_points(point, p));
        }
        PossibilityRelation {
            principal: p.clone(),
            edges,
        }
    }

    /// Successor sets, one per world, for O(log n) membership checks (the
    /// edge lists are plain `Vec`s, and scanning them per query made the
    /// frame-property checks cubic).
    fn successor_sets(&self) -> BTreeMap<&Point, BTreeSet<&Point>> {
        self.edges
            .iter()
            .map(|(w, vs)| (w, vs.iter().collect()))
            .collect()
    }

    /// True if the relation is *transitive*: `w → u` and `u → v` imply
    /// `w → v`.
    pub fn is_transitive(&self) -> bool {
        let succ = self.successor_sets();
        self.edges.iter().all(|(w, succs)| {
            succs.iter().all(|u| {
                self.edges
                    .get(u)
                    .is_none_or(|vs| vs.iter().all(|v| succ[w].contains(v)))
            })
        })
    }

    /// True if the relation is *euclidean*: `w → u` and `w → v` imply
    /// `u → v`.
    pub fn is_euclidean(&self) -> bool {
        let succ = self.successor_sets();
        self.edges.values().all(|succs| {
            succs.iter().all(|u| {
                succ.get(u)
                    .is_none_or(|us| succs.iter().all(|v| us.contains(v)))
            })
        })
    }

    /// True if the relation is *serial* (every world accesses something) —
    /// fails exactly where a principal's good-run set excludes every
    /// matching point, i.e. where it believes the absurd.
    pub fn is_serial(&self) -> bool {
        self.edges.values().all(|succs| !succs.is_empty())
    }

    /// Renders the relation as a Graphviz DOT digraph. Worlds are labeled
    /// `rR/tT`; reflexive edges are drawn dotted for legibility.
    pub fn to_dot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "digraph possibility_{} {{", self.principal);
        let _ = writeln!(out, "  label=\"~ for {}\";", self.principal);
        let _ = writeln!(out, "  node [shape=circle, fontsize=10];");
        let id = |p: &Point| format!("\"r{}t{}\"", p.run, p.time);
        for (w, succs) in &self.edges {
            let _ = writeln!(out, "  {};", id(w));
            for v in succs {
                if v == w {
                    let _ = writeln!(out, "  {} -> {} [style=dotted];", id(w), id(v));
                } else {
                    let _ = writeln!(out, "  {} -> {};", id(w), id(v));
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::semantics::GoodRuns;
    use atl_lang::{Key, Message, Nonce};
    use atl_model::{RunBuilder, System};
    use std::collections::BTreeSet;

    fn two_run_system() -> System {
        let mk = |inner: &str| {
            let mut b = RunBuilder::new(0);
            b.principal("A", [Key::new("K")]);
            b.principal("B", []);
            let c = Message::encrypted(
                Message::nonce(Nonce::new(inner)),
                Key::new("K"),
                atl_lang::Principal::new("A"),
            );
            b.send("A", c.clone(), "B").unwrap();
            b.receive("B", &c).unwrap();
            b.build().unwrap()
        };
        System::new([mk("X"), mk("Y")])
    }

    #[test]
    fn relation_is_transitive_and_euclidean() {
        // These two frame properties are exactly what A2 (positive) and A3
        // (negative introspection) need.
        let sys = two_run_system();
        let sem = Semantics::new(&sys, GoodRuns::all_runs(&sys));
        for p in ["A", "B"] {
            let rel = PossibilityRelation::of(&sem, &Principal::new(p));
            assert!(rel.is_transitive(), "{p} not transitive");
            assert!(rel.is_euclidean(), "{p} not euclidean");
            assert!(rel.is_serial(), "{p} not serial with all runs good");
        }
    }

    #[test]
    fn frame_properties_survive_good_run_restriction() {
        let sys = two_run_system();
        let mut goods = GoodRuns::all_runs(&sys);
        goods.set("B", [0usize].into_iter().collect());
        let sem = Semantics::new(&sys, goods);
        let rel = PossibilityRelation::of(&sem, &Principal::new("B"));
        assert!(rel.is_transitive());
        assert!(rel.is_euclidean());
        // Still serial here: B's states in run 1 match states in run 0.
        assert!(rel.is_serial());
    }

    #[test]
    fn empty_good_set_breaks_seriality_only() {
        let sys = two_run_system();
        let mut goods = GoodRuns::all_runs(&sys);
        goods.set("B", BTreeSet::new());
        let sem = Semantics::new(&sys, goods);
        let rel = PossibilityRelation::of(&sem, &Principal::new("B"));
        assert!(!rel.is_serial()); // B believes the absurd…
        assert!(rel.is_transitive()); // …but introspection is intact.
        assert!(rel.is_euclidean());
    }

    #[test]
    fn hiding_merges_worlds_for_the_keyless() {
        // B (no key) cannot distinguish the X-run from the Y-run: its
        // relation connects points ACROSS the two runs.
        let sys = two_run_system();
        let sem = Semantics::new(&sys, GoodRuns::all_runs(&sys));
        let rel = PossibilityRelation::of(&sem, &Principal::new("B"));
        let cross = rel.edges[&Point::new(0, 2)].iter().any(|p| p.run == 1);
        assert!(cross, "hiding should merge the two runs for B");
        // A (key holder) keeps them apart at the post-send points.
        let rel_a = PossibilityRelation::of(&sem, &Principal::new("A"));
        let cross_a = rel_a.edges[&Point::new(0, 1)].iter().any(|p| p.run == 1);
        assert!(!cross_a, "A distinguishes the plaintexts it encrypted");
    }

    #[test]
    fn dot_export_is_wellformed() {
        let sys = two_run_system();
        let sem = Semantics::new(&sys, GoodRuns::all_runs(&sys));
        let rel = PossibilityRelation::of(&sem, &Principal::new("B"));
        let dot = rel.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("\"r0t0\""));
        assert!(dot.trim_end().ends_with('}'));
        // Every edge endpoint is a declared world.
        assert!(dot.matches(" -> ").count() >= sys.points().count());
    }
}
