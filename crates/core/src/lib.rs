//! # atl-core
//!
//! The primary contribution of *A Semantics for a Logic of Authentication*
//! (Abadi & Tuttle, PODC 1991): the reformulated logic and its
//! possible-worlds semantics.
//!
//! - [`axioms`] — the axiomatization A1–A21 of Section 4.2;
//! - [`proof`] — checkable Hilbert proofs with modus ponens and
//!   (theorem-only) necessitation;
//! - [`tautology`] — deciding instances of propositional tautologies;
//! - [`prover`] — a derived-rule saturation engine and the protocol
//!   annotation style of Section 4.3;
//! - [`budget`] — graceful-degradation budgets (steps/facts/wall-clock)
//!   for the prover and the good-run construction, with three-valued
//!   verdicts under exhaustion;
//! - [`parallel`] — a work-stealing pool with deterministic ordered
//!   merges (re-exported from `atl_model`, where it also shards fault
//!   sweeps), behind the sharded good-run construction, concurrent
//!   belief sweeps, and batch proving;
//! - [`stability`] — the stability requirement on annotations;
//! - [`semantics`] — truth at points of a system, with belief as
//!   resource-bounded defensible knowledge (Section 6);
//! - [`monitor`] — the streaming online monitor: a live run prefix,
//!   fed one trace event at a time, re-verdicted at delta cost per
//!   event instead of a batch re-walk;
//! - [`goodruns`] — the Section 7 construction of good-run vectors, with
//!   support and optimality checks (Theorems 2 and 3);
//! - [`soundness`] — the Theorem 1 model-checker over generated systems;
//! - [`quantifier`] — bounded universal quantification (Section 8);
//! - [`enact`] — turning an idealized protocol into an executable model
//!   protocol, so runs can be produced, audited, and fault-injected;
//! - [`sweep`] — parallel fault sweeps over plan grids, with
//!   belief-survival and semantic-validity reporting per goal;
//! - [`fabric`] — the distributed sweep coordinator: shards plan grids
//!   across serve-mode daemons with retries, requeues, and a crash-safe
//!   persistent outcome store, degrading to local execution;
//! - [`hunt`] — coverage-guided attack search: a feedback-directed
//!   fuzzer over fault plans whose coverage signal is the belief-survival
//!   signature, with shrunk minimal plans per degradation class;
//! - [`examples`] — the coin-toss counterexample;
//! - [`theorems`] — machine-checked reconstructions of the BAN rules;
//! - [`secrecy`] — the semantic secrecy audit (the paper's future work);
//! - [`kripke`] — the possibility relation as an exportable Kripke frame;
//! - [`spec`] — a textual protocol format for the `atl` CLI.
//!
//! ```
//! use atl_core::prover::Prover;
//! use atl_lang::{Formula, Key, Message, Nonce};
//! // Nonce verification, honesty-free: a fresh said message was said
//! // recently (A20), and jurisdiction applies to says, not believes (A15).
//! let n = Message::nonce(Nonce::new("N"));
//! let mut prover = Prover::new([
//!     Formula::fresh(n.clone()),
//!     Formula::said("S", n.clone()),
//! ]);
//! prover.saturate();
//! assert!(prover.holds(&Formula::says("S", n)));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod annotate;
pub mod axioms;
pub mod budget;
pub mod enact;
pub mod examples;
pub mod fabric;
pub mod goodruns;
pub mod hunt;
pub mod inject;
pub mod kripke;
pub mod metrics;
pub mod monitor;
pub mod proof;
pub mod prover;
pub mod quantifier;
pub mod secrecy;
pub mod semantics;
pub mod serve;
pub mod soundness;
pub mod spec;
pub mod stability;
pub mod sweep;
pub use atl_model::parallel;
pub mod tautology;
pub mod theorems;
