//! The annotation procedure for the reformulated logic (Section 4.3).
//!
//! Analysis proceeds as with the original logic — initial assumptions,
//! then an assertion after each step, closed under the derived rules —
//! with two novelties:
//!
//! 1. formulas annotating protocols must be **stable** (the language now
//!    has negation); the analyzer reports any assumption that fails the
//!    linguistic check of Section 4.3;
//! 2. idealized protocols may contain steps `P : newkey(K)`, after which
//!    `P has K` is asserted.

use crate::prover::{Prover, ProverConfig};
use crate::stability::is_linguistically_stable;
use atl_lang::{Formula, Key, Message, Principal};
use std::collections::BTreeSet;
use std::fmt;

/// One step of an idealized protocol in the reformulated logic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AtStep {
    /// `from → to : message`.
    Send {
        /// The sender.
        from: Principal,
        /// The receiver (who is asserted to see the message).
        to: Principal,
        /// The idealized message.
        message: Message,
    },
    /// `P : newkey(K)` — `P` adds `K` to its key set.
    NewKey {
        /// The acquiring principal.
        principal: Principal,
        /// The key acquired.
        key: Key,
    },
}

impl fmt::Display for AtStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtStep::Send { from, to, message } => write!(f, "{from} -> {to} : {message}"),
            AtStep::NewKey { principal, key } => write!(f, "{principal} : newkey({key})"),
        }
    }
}

/// An idealized protocol for the reformulated logic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AtProtocol {
    /// The protocol's name.
    pub name: String,
    /// Initial assumptions (should be stable; the analysis reports
    /// violations).
    pub assumptions: Vec<Formula>,
    /// The steps, in order.
    pub steps: Vec<AtStep>,
    /// Expected correctness conditions at the final step.
    pub goals: Vec<Formula>,
}

impl AtProtocol {
    /// Creates an empty protocol.
    pub fn new(name: impl Into<String>) -> Self {
        AtProtocol {
            name: name.into(),
            assumptions: Vec::new(),
            steps: Vec::new(),
            goals: Vec::new(),
        }
    }

    /// Adds an initial assumption.
    pub fn assume(mut self, f: Formula) -> Self {
        self.assumptions.push(f);
        self
    }

    /// Adds a send step.
    pub fn step(
        mut self,
        from: impl Into<Principal>,
        to: impl Into<Principal>,
        message: Message,
    ) -> Self {
        self.steps.push(AtStep::Send {
            from: from.into(),
            to: to.into(),
            message,
        });
        self
    }

    /// Adds a `newkey` step.
    pub fn new_key(mut self, principal: impl Into<Principal>, key: impl Into<Key>) -> Self {
        self.steps.push(AtStep::NewKey {
            principal: principal.into(),
            key: key.into(),
        });
        self
    }

    /// Adds a goal.
    pub fn goal(mut self, f: Formula) -> Self {
        self.goals.push(f);
        self
    }
}

/// The result of annotating an [`AtProtocol`].
#[derive(Clone, Debug)]
pub struct AtAnalysis {
    /// `annotations[0]` is the closure of the assumptions;
    /// `annotations[i + 1]` the closure after step `i`.
    pub annotations: Vec<BTreeSet<Formula>>,
    /// The prover in its final state (with the full trace).
    pub prover: Prover,
    /// `(goal, achieved)` for each goal.
    pub goals: Vec<(Formula, bool)>,
    /// Assumptions that fail the linguistic stability check of
    /// Section 4.3 (the annotation procedure's soundness is not guaranteed
    /// for these).
    pub unstable_assumptions: Vec<Formula>,
}

impl AtAnalysis {
    /// True if every goal was derived.
    pub fn succeeded(&self) -> bool {
        self.goals.iter().all(|(_, ok)| *ok)
    }

    /// The goals that failed.
    pub fn failed_goals(&self) -> impl Iterator<Item = &Formula> {
        self.goals.iter().filter(|(_, ok)| !*ok).map(|(g, _)| g)
    }
}

/// Renders an analysis as the canonical report text: the summary line,
/// one warning per linguistically unstable assumption, then one
/// `[ok]`/`[--]` line per goal. Both `atl analyze` and the serve-mode
/// daemon print exactly this string, so their outputs are byte-identical
/// by construction.
pub fn render_analysis(protocol: &AtProtocol, analysis: &AtAnalysis) -> String {
    render_report(
        protocol,
        analysis.prover.facts().len(),
        &analysis.unstable_assumptions,
        &analysis.goals,
    )
}

/// The one report renderer behind both [`render_analysis`] and
/// [`AnalysisResume::render`]: byte-identity between a cold analysis and
/// a resumed one is then a statement about the inputs, not the printing.
fn render_report(
    protocol: &AtProtocol,
    facts_derived: usize,
    unstable_assumptions: &[Formula],
    goals: &[(Formula, bool)],
) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "protocol {}: {} assumptions, {} steps, {} facts derived\n",
        protocol.name,
        protocol.assumptions.len(),
        protocol.steps.len(),
        facts_derived
    );
    for f in unstable_assumptions {
        let _ = writeln!(out, "  warning: assumption not linguistically stable: {f}");
    }
    for (goal, achieved) in goals {
        let _ = writeln!(out, "  [{}] {}", if *achieved { "ok" } else { "--" }, goal);
    }
    out
}

/// Runs the Section 4.3 annotation procedure with default prover options.
pub fn analyze_at(protocol: &AtProtocol) -> AtAnalysis {
    analyze_at_with(protocol, ProverConfig::default())
}

/// Runs the annotation procedure with explicit prover options.
pub fn analyze_at_with(protocol: &AtProtocol, config: ProverConfig) -> AtAnalysis {
    let unstable_assumptions = protocol
        .assumptions
        .iter()
        .filter(|f| !is_linguistically_stable(f))
        .cloned()
        .collect();
    let mut prover = Prover::with_config(protocol.assumptions.iter().cloned(), config);
    prover.saturate();
    let mut annotations = vec![prover.facts().clone()];
    for step in &protocol.steps {
        match step {
            AtStep::Send { to, message, .. } => {
                prover.assume(Formula::sees(to.clone(), message.clone()));
            }
            AtStep::NewKey { principal, key } => {
                prover.assume(Formula::has(principal.clone(), key.clone()));
            }
        }
        prover.saturate();
        annotations.push(prover.facts().clone());
    }
    let goals = protocol
        .goals
        .iter()
        .map(|g| (g.clone(), prover.holds(g)))
        .collect();
    AtAnalysis {
        annotations,
        prover,
        goals,
        unstable_assumptions,
    }
}

/// Incrementally re-runs the annotation procedure after an edit that
/// only **added** assumptions, starting from a previous analysis.
///
/// Each annotation level of the edited protocol is the closure of the
/// previous run's level plus the new assumptions — for a closure
/// operator, `cl(S ∪ A) = cl(cl(S) ∪ A)` — so every level, the final
/// fact set, the goal verdicts, and with them the rendered report bytes
/// are identical to a cold [`analyze_at`] of `new`. Only the derivation
/// trace differs: facts resumed from a stored level reappear as given.
/// The saved work is substantial: a cold analysis re-fires the full
/// rule set once per step, while the resume pays one delta saturation
/// per level, each proportional to the added assumptions' consequences.
///
/// The caller guarantees that `new.steps` equals the analyzed
/// protocol's steps and that `new.assumptions` is the old assumption
/// multiset plus `added` (in any order); goals may differ freely — they
/// never feed the closure. Prover options are [`ProverConfig::default`],
/// matching [`analyze_at`].
pub fn reanalyze_at(old: &AtAnalysis, new: &AtProtocol, added: &[Formula]) -> AtAnalysis {
    // Intermediate levels: rebuild each stored closure at its fixpoint
    // and extend it with the added assumptions alone.
    let intermediate = old.annotations.len().saturating_sub(1);
    let mut annotations: Vec<BTreeSet<Formula>> = old.annotations[..intermediate]
        .iter()
        .map(|level| {
            let mut p = Prover::at_fixpoint(level.iter().cloned(), ProverConfig::default());
            p.saturate_delta(added.iter().cloned());
            p.facts().clone()
        })
        .collect();
    // Final level: extend the stored prover itself, keeping its trace.
    let mut prover = old.prover.clone();
    prover.saturate_delta(added.iter().cloned());
    annotations.push(prover.facts().clone());
    finish_reanalysis(new, annotations, prover)
}

fn finish_reanalysis(
    new: &AtProtocol,
    annotations: Vec<BTreeSet<Formula>>,
    prover: Prover,
) -> AtAnalysis {
    let unstable_assumptions = new
        .assumptions
        .iter()
        .filter(|f| !is_linguistically_stable(f))
        .cloned()
        .collect();
    let goals = new
        .goals
        .iter()
        .map(|g| (g.clone(), prover.holds(g)))
        .collect();
    AtAnalysis {
        annotations,
        prover,
        goals,
        unstable_assumptions,
    }
}

/// An annotation run packaged for repeated in-place resumption (the
/// serve daemon's `RELOAD`): the saturated prover at every annotation
/// level — `levels[i]`'s fact set is annotation level `i`, the last
/// entry is the final closure — **with trigger indexes intact**, plus
/// the computed goal verdicts and stability warnings.
///
/// Unlike [`reanalyze_at`], which rebuilds each stored closure via
/// [`Prover::at_fixpoint`] (re-indexing every fact), advancing a resume
/// mutates its provers in place: an edit that adds assumptions costs one
/// delta saturation per level, proportional to the *new* consequences
/// only. An owner that threads the same resume through a chain of edits
/// never clones a prover at all.
#[derive(Clone, Debug)]
pub struct AnalysisResume {
    levels: Vec<Prover>,
    unstable_assumptions: Vec<Formula>,
    goals: Vec<(Formula, bool)>,
}

/// Runs the Section 4.3 annotation procedure like [`analyze_at`], but
/// returns the run packaged for in-place resumption. The extra cost over
/// a plain analysis is one prover clone per protocol step.
pub fn analyze_at_resumable(protocol: &AtProtocol) -> AnalysisResume {
    let mut prover = Prover::with_config(
        protocol.assumptions.iter().cloned(),
        ProverConfig::default(),
    );
    prover.saturate();
    let mut levels = Vec::with_capacity(protocol.steps.len() + 1);
    for step in &protocol.steps {
        levels.push(prover.clone());
        match step {
            AtStep::Send { to, message, .. } => {
                prover.assume(Formula::sees(to.clone(), message.clone()));
            }
            AtStep::NewKey { principal, key } => {
                prover.assume(Formula::has(principal.clone(), key.clone()));
            }
        }
        prover.saturate();
    }
    levels.push(prover);
    let mut resume = AnalysisResume {
        levels,
        unstable_assumptions: Vec::new(),
        goals: Vec::new(),
    };
    resume.reverdict(protocol);
    resume
}

impl AnalysisResume {
    /// Re-verifies for an edited protocol by extending every level with
    /// `added` **in place** — one delta saturation each, no re-indexing,
    /// no clone. The same contract as [`reanalyze_at`]: `new.steps`
    /// equals the analyzed steps and `new.assumptions` is the old
    /// multiset plus `added` (goals may differ freely; `added` may be
    /// empty for a goal-only edit). Afterwards this resume is exactly
    /// what [`analyze_at_resumable`] of `new` would have built — same
    /// levels, verdicts, warnings, and report bytes — by the closure
    /// argument `cl(S ∪ A) = cl(cl(S) ∪ A)`.
    pub fn advance(&mut self, new: &AtProtocol, added: &[Formula]) {
        for p in &mut self.levels {
            p.saturate_delta(added.iter().cloned());
        }
        self.reverdict(new);
    }

    fn reverdict(&mut self, protocol: &AtProtocol) {
        self.unstable_assumptions = protocol
            .assumptions
            .iter()
            .filter(|f| !is_linguistically_stable(f))
            .cloned()
            .collect();
        let last = self.final_prover();
        self.goals = protocol
            .goals
            .iter()
            .map(|g| (g.clone(), last.holds(g)))
            .collect();
    }

    fn final_prover(&self) -> &Prover {
        self.levels.last().expect("at least the initial level")
    }

    /// The canonical report for the current state — byte-identical to
    /// [`render_analysis`] over a cold analysis of the same protocol.
    pub fn render(&self, protocol: &AtProtocol) -> String {
        render_report(
            protocol,
            self.final_prover().facts().len(),
            &self.unstable_assumptions,
            &self.goals,
        )
    }

    /// Extracts the full [`AtAnalysis`] view (cloning every level) —
    /// for callers that need the annotation sets themselves rather than
    /// the report.
    pub fn to_analysis(&self) -> AtAnalysis {
        AtAnalysis {
            annotations: self.levels.iter().map(|p| p.facts().clone()).collect(),
            prover: self.final_prover().clone(),
            goals: self.goals.clone(),
            unstable_assumptions: self.unstable_assumptions.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atl_lang::Nonce;

    fn kab() -> Formula {
        Formula::shared_key("A", Key::new("Kab"), "B")
    }

    fn figure1_at() -> AtProtocol {
        let ts = Message::nonce(Nonce::new("Ts"));
        let inner = Message::encrypted(
            Message::tuple([ts.clone(), kab().into_message()]),
            Key::new("Kbs"),
            "S",
        );
        let outer = Message::encrypted(
            Message::tuple([ts.clone(), kab().into_message(), inner.clone()]),
            Key::new("Kas"),
            "S",
        );
        AtProtocol::new("kerberos-figure1-at")
            .assume(Formula::believes(
                "A",
                Formula::shared_key("A", Key::new("Kas"), "S"),
            ))
            .assume(Formula::believes(
                "B",
                Formula::shared_key("B", Key::new("Kbs"), "S"),
            ))
            .assume(Formula::believes("A", Formula::controls("S", kab())))
            .assume(Formula::believes("B", Formula::controls("S", kab())))
            .assume(Formula::believes("A", Formula::fresh(ts.clone())))
            .assume(Formula::believes("B", Formula::fresh(ts)))
            .assume(Formula::has("A", Key::new("Kas")))
            .assume(Formula::has("B", Key::new("Kbs")))
            .step("S", "A", outer)
            .step("A", "B", inner)
            .goal(Formula::believes("A", kab()))
            .goal(Formula::believes("B", kab()))
    }

    #[test]
    fn figure1_succeeds_in_reformulated_logic() {
        let analysis = analyze_at(&figure1_at());
        assert!(
            analysis.succeeded(),
            "failed: {:?}",
            analysis.failed_goals().collect::<Vec<_>>()
        );
        assert!(analysis.unstable_assumptions.is_empty());
    }

    #[test]
    fn annotations_grow_monotonically() {
        let analysis = analyze_at(&figure1_at());
        assert_eq!(analysis.annotations.len(), 3);
        for w in analysis.annotations.windows(2) {
            assert!(w[0].is_subset(&w[1]));
        }
    }

    #[test]
    fn possession_is_load_bearing() {
        // Remove `B has Kbs`: B cannot decrypt, so the goal fails — the
        // has/believes decoupling of Section 3.1 made explicit.
        let mut proto = figure1_at();
        proto
            .assumptions
            .retain(|a| a != &Formula::has("B", Key::new("Kbs")));
        let analysis = analyze_at(&proto);
        assert!(!analysis.succeeded());
        assert!(analysis
            .failed_goals()
            .any(|g| g == &Formula::believes("B", kab())));
    }

    #[test]
    fn newkey_steps_assert_possession() {
        let proto = AtProtocol::new("newkey")
            .new_key("A", "K")
            .goal(Formula::has("A", Key::new("K")));
        let analysis = analyze_at(&proto);
        assert!(analysis.succeeded());
    }

    #[test]
    fn unstable_assumptions_reported() {
        let proto = AtProtocol::new("unstable").assume(Formula::not(Formula::sees(
            "A",
            Message::nonce(Nonce::new("X")),
        )));
        let analysis = analyze_at(&proto);
        assert_eq!(analysis.unstable_assumptions.len(), 1);
    }

    #[test]
    fn reanalysis_matches_cold_analysis_for_added_assumptions() {
        let full = figure1_at();
        // Hold back each assumption in turn; resuming the reduced
        // analysis with the held-out assumption must reproduce the cold
        // analysis of the full protocol: every annotation level, the
        // goal verdicts, and the rendered report bytes.
        for held_out in 0..full.assumptions.len() {
            let mut reduced = full.clone();
            let added = reduced.assumptions.remove(held_out);
            let old = analyze_at(&reduced);
            let resumed = reanalyze_at(&old, &full, std::slice::from_ref(&added));
            let cold = analyze_at(&full);
            assert_eq!(resumed.annotations, cold.annotations, "level {held_out}");
            assert_eq!(resumed.goals, cold.goals);
            assert_eq!(resumed.prover.facts(), cold.prover.facts());
            assert_eq!(
                render_analysis(&full, &resumed),
                render_analysis(&full, &cold)
            );
        }
    }

    #[test]
    fn resumable_analysis_advances_in_place_and_matches_cold_analysis() {
        // Start from a protocol holding back two assumptions, then feed
        // them back one edit at a time through the same in-place resume.
        // After every edit the resume must be indistinguishable from a
        // cold analysis of the current protocol — annotation levels,
        // verdicts, prover closure, and report bytes.
        let full = figure1_at();
        let mut proto = full.clone();
        let second = proto.assumptions.remove(5);
        let first = proto.assumptions.remove(1);
        let mut resume = analyze_at_resumable(&proto);
        assert_eq!(
            resume.to_analysis().annotations,
            analyze_at(&proto).annotations
        );
        for added in [first, second] {
            proto = proto.clone().assume(added.clone());
            resume.advance(&proto, std::slice::from_ref(&added));
            let cold = analyze_at(&proto);
            let resumed = resume.to_analysis();
            assert_eq!(resumed.annotations, cold.annotations);
            assert_eq!(resumed.goals, cold.goals);
            assert_eq!(resumed.prover.facts(), cold.prover.facts());
            assert_eq!(resume.render(&proto), render_analysis(&proto, &cold));
        }
        // A goal-only edit advances with an empty delta: the closure is
        // untouched and only the verdict lines move.
        proto = proto.goal(Formula::has("A", Key::new("Kmissing")));
        resume.advance(&proto, &[]);
        let cold = analyze_at(&proto);
        assert_eq!(resume.to_analysis().goals, cold.goals);
        assert_eq!(resume.render(&proto), render_analysis(&proto, &cold));
    }

    #[test]
    fn reanalysis_with_no_additions_recomputes_goals_only() {
        // Goal-only edits resume with an empty delta: the closure is
        // untouched and only the verdict lines change.
        let base = figure1_at();
        let old = analyze_at(&base);
        let mut goal_edit = base.clone();
        goal_edit
            .goals
            .push(Formula::has("A", Key::new("Kmissing")));
        let resumed = reanalyze_at(&old, &goal_edit, &[]);
        let cold = analyze_at(&goal_edit);
        assert_eq!(resumed.annotations, cold.annotations);
        assert_eq!(resumed.goals, cold.goals);
        assert_eq!(
            render_analysis(&goal_edit, &resumed),
            render_analysis(&goal_edit, &cold)
        );
    }

    #[test]
    fn reanalysis_recomputes_stability_warnings() {
        let unstable = Formula::not(Formula::sees("A", Message::nonce(Nonce::new("X"))));
        let base = AtProtocol::new("t").assume(Formula::has("A", Key::new("K")));
        let old = analyze_at(&base);
        let edited = base.clone().assume(unstable.clone());
        let resumed = reanalyze_at(&old, &edited, std::slice::from_ref(&unstable));
        assert_eq!(resumed.unstable_assumptions, vec![unstable]);
    }

    #[test]
    fn step_display() {
        let s = AtStep::Send {
            from: Principal::new("A"),
            to: Principal::new("B"),
            message: Message::nonce(Nonce::new("X")),
        };
        assert_eq!(s.to_string(), "A -> B : X");
        let k = AtStep::NewKey {
            principal: Principal::new("A"),
            key: Key::new("K"),
        };
        assert_eq!(k.to_string(), "A : newkey(K)");
    }
}
