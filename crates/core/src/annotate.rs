//! The annotation procedure for the reformulated logic (Section 4.3).
//!
//! Analysis proceeds as with the original logic — initial assumptions,
//! then an assertion after each step, closed under the derived rules —
//! with two novelties:
//!
//! 1. formulas annotating protocols must be **stable** (the language now
//!    has negation); the analyzer reports any assumption that fails the
//!    linguistic check of Section 4.3;
//! 2. idealized protocols may contain steps `P : newkey(K)`, after which
//!    `P has K` is asserted.

use crate::prover::{Prover, ProverConfig};
use crate::stability::is_linguistically_stable;
use atl_lang::{Formula, Key, Message, Principal};
use std::collections::BTreeSet;
use std::fmt;

/// One step of an idealized protocol in the reformulated logic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AtStep {
    /// `from → to : message`.
    Send {
        /// The sender.
        from: Principal,
        /// The receiver (who is asserted to see the message).
        to: Principal,
        /// The idealized message.
        message: Message,
    },
    /// `P : newkey(K)` — `P` adds `K` to its key set.
    NewKey {
        /// The acquiring principal.
        principal: Principal,
        /// The key acquired.
        key: Key,
    },
}

impl fmt::Display for AtStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtStep::Send { from, to, message } => write!(f, "{from} -> {to} : {message}"),
            AtStep::NewKey { principal, key } => write!(f, "{principal} : newkey({key})"),
        }
    }
}

/// An idealized protocol for the reformulated logic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AtProtocol {
    /// The protocol's name.
    pub name: String,
    /// Initial assumptions (should be stable; the analysis reports
    /// violations).
    pub assumptions: Vec<Formula>,
    /// The steps, in order.
    pub steps: Vec<AtStep>,
    /// Expected correctness conditions at the final step.
    pub goals: Vec<Formula>,
}

impl AtProtocol {
    /// Creates an empty protocol.
    pub fn new(name: impl Into<String>) -> Self {
        AtProtocol {
            name: name.into(),
            assumptions: Vec::new(),
            steps: Vec::new(),
            goals: Vec::new(),
        }
    }

    /// Adds an initial assumption.
    pub fn assume(mut self, f: Formula) -> Self {
        self.assumptions.push(f);
        self
    }

    /// Adds a send step.
    pub fn step(
        mut self,
        from: impl Into<Principal>,
        to: impl Into<Principal>,
        message: Message,
    ) -> Self {
        self.steps.push(AtStep::Send {
            from: from.into(),
            to: to.into(),
            message,
        });
        self
    }

    /// Adds a `newkey` step.
    pub fn new_key(mut self, principal: impl Into<Principal>, key: impl Into<Key>) -> Self {
        self.steps.push(AtStep::NewKey {
            principal: principal.into(),
            key: key.into(),
        });
        self
    }

    /// Adds a goal.
    pub fn goal(mut self, f: Formula) -> Self {
        self.goals.push(f);
        self
    }
}

/// The result of annotating an [`AtProtocol`].
#[derive(Clone, Debug)]
pub struct AtAnalysis {
    /// `annotations[0]` is the closure of the assumptions;
    /// `annotations[i + 1]` the closure after step `i`.
    pub annotations: Vec<BTreeSet<Formula>>,
    /// The prover in its final state (with the full trace).
    pub prover: Prover,
    /// `(goal, achieved)` for each goal.
    pub goals: Vec<(Formula, bool)>,
    /// Assumptions that fail the linguistic stability check of
    /// Section 4.3 (the annotation procedure's soundness is not guaranteed
    /// for these).
    pub unstable_assumptions: Vec<Formula>,
}

impl AtAnalysis {
    /// True if every goal was derived.
    pub fn succeeded(&self) -> bool {
        self.goals.iter().all(|(_, ok)| *ok)
    }

    /// The goals that failed.
    pub fn failed_goals(&self) -> impl Iterator<Item = &Formula> {
        self.goals.iter().filter(|(_, ok)| !*ok).map(|(g, _)| g)
    }
}

/// Renders an analysis as the canonical report text: the summary line,
/// one warning per linguistically unstable assumption, then one
/// `[ok]`/`[--]` line per goal. Both `atl analyze` and the serve-mode
/// daemon print exactly this string, so their outputs are byte-identical
/// by construction.
pub fn render_analysis(protocol: &AtProtocol, analysis: &AtAnalysis) -> String {
    use std::fmt::Write as _;
    let mut out = format!(
        "protocol {}: {} assumptions, {} steps, {} facts derived\n",
        protocol.name,
        protocol.assumptions.len(),
        protocol.steps.len(),
        analysis.prover.facts().len()
    );
    for f in &analysis.unstable_assumptions {
        let _ = writeln!(out, "  warning: assumption not linguistically stable: {f}");
    }
    for (goal, achieved) in &analysis.goals {
        let _ = writeln!(out, "  [{}] {}", if *achieved { "ok" } else { "--" }, goal);
    }
    out
}

/// Runs the Section 4.3 annotation procedure with default prover options.
pub fn analyze_at(protocol: &AtProtocol) -> AtAnalysis {
    analyze_at_with(protocol, ProverConfig::default())
}

/// Runs the annotation procedure with explicit prover options.
pub fn analyze_at_with(protocol: &AtProtocol, config: ProverConfig) -> AtAnalysis {
    let unstable_assumptions = protocol
        .assumptions
        .iter()
        .filter(|f| !is_linguistically_stable(f))
        .cloned()
        .collect();
    let mut prover = Prover::with_config(protocol.assumptions.iter().cloned(), config);
    prover.saturate();
    let mut annotations = vec![prover.facts().clone()];
    for step in &protocol.steps {
        match step {
            AtStep::Send { to, message, .. } => {
                prover.assume(Formula::sees(to.clone(), message.clone()));
            }
            AtStep::NewKey { principal, key } => {
                prover.assume(Formula::has(principal.clone(), key.clone()));
            }
        }
        prover.saturate();
        annotations.push(prover.facts().clone());
    }
    let goals = protocol
        .goals
        .iter()
        .map(|g| (g.clone(), prover.holds(g)))
        .collect();
    AtAnalysis {
        annotations,
        prover,
        goals,
        unstable_assumptions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atl_lang::Nonce;

    fn kab() -> Formula {
        Formula::shared_key("A", Key::new("Kab"), "B")
    }

    fn figure1_at() -> AtProtocol {
        let ts = Message::nonce(Nonce::new("Ts"));
        let inner = Message::encrypted(
            Message::tuple([ts.clone(), kab().into_message()]),
            Key::new("Kbs"),
            "S",
        );
        let outer = Message::encrypted(
            Message::tuple([ts.clone(), kab().into_message(), inner.clone()]),
            Key::new("Kas"),
            "S",
        );
        AtProtocol::new("kerberos-figure1-at")
            .assume(Formula::believes(
                "A",
                Formula::shared_key("A", Key::new("Kas"), "S"),
            ))
            .assume(Formula::believes(
                "B",
                Formula::shared_key("B", Key::new("Kbs"), "S"),
            ))
            .assume(Formula::believes("A", Formula::controls("S", kab())))
            .assume(Formula::believes("B", Formula::controls("S", kab())))
            .assume(Formula::believes("A", Formula::fresh(ts.clone())))
            .assume(Formula::believes("B", Formula::fresh(ts)))
            .assume(Formula::has("A", Key::new("Kas")))
            .assume(Formula::has("B", Key::new("Kbs")))
            .step("S", "A", outer)
            .step("A", "B", inner)
            .goal(Formula::believes("A", kab()))
            .goal(Formula::believes("B", kab()))
    }

    #[test]
    fn figure1_succeeds_in_reformulated_logic() {
        let analysis = analyze_at(&figure1_at());
        assert!(
            analysis.succeeded(),
            "failed: {:?}",
            analysis.failed_goals().collect::<Vec<_>>()
        );
        assert!(analysis.unstable_assumptions.is_empty());
    }

    #[test]
    fn annotations_grow_monotonically() {
        let analysis = analyze_at(&figure1_at());
        assert_eq!(analysis.annotations.len(), 3);
        for w in analysis.annotations.windows(2) {
            assert!(w[0].is_subset(&w[1]));
        }
    }

    #[test]
    fn possession_is_load_bearing() {
        // Remove `B has Kbs`: B cannot decrypt, so the goal fails — the
        // has/believes decoupling of Section 3.1 made explicit.
        let mut proto = figure1_at();
        proto
            .assumptions
            .retain(|a| a != &Formula::has("B", Key::new("Kbs")));
        let analysis = analyze_at(&proto);
        assert!(!analysis.succeeded());
        assert!(analysis
            .failed_goals()
            .any(|g| g == &Formula::believes("B", kab())));
    }

    #[test]
    fn newkey_steps_assert_possession() {
        let proto = AtProtocol::new("newkey")
            .new_key("A", "K")
            .goal(Formula::has("A", Key::new("K")));
        let analysis = analyze_at(&proto);
        assert!(analysis.succeeded());
    }

    #[test]
    fn unstable_assumptions_reported() {
        let proto = AtProtocol::new("unstable").assume(Formula::not(Formula::sees(
            "A",
            Message::nonce(Nonce::new("X")),
        )));
        let analysis = analyze_at(&proto);
        assert_eq!(analysis.unstable_assumptions.len(), 1);
    }

    #[test]
    fn step_display() {
        let s = AtStep::Send {
            from: Principal::new("A"),
            to: Principal::new("B"),
            message: Message::nonce(Nonce::new("X")),
        };
        assert_eq!(s.to_string(), "A -> B : X");
        let k = AtStep::NewKey {
            principal: Principal::new("A"),
            key: Key::new("K"),
        };
        assert_eq!(k.to_string(), "A : newkey(K)");
    }
}
