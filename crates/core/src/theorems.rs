//! Derived theorems: formal, checkable proofs that reconstruct the
//! original BAN rules from the reformulated axioms.
//!
//! The paper claims the reformulation loses nothing: protocols "are
//! analyzed with the reformulated logic in much the same way as they are
//! with the original logic". This module substantiates the claim with
//! machine-checked Hilbert proofs ([`Proof`] objects) of the original
//! rules' key instances:
//!
//! - the **message-meaning** rule, from A5 + A11 + A4 + A1 + R2;
//! - the **nonce-verification** core, from A16 + A20 inside belief;
//! - the **freshness** rule under belief;
//! - belief **distribution over conjunction** both ways (A4 and its
//!   converse from tautologies + A1).
//!
//! Each function returns a checked proof whose conclusion is the derived
//! rule as a single implication.

use crate::axioms::{self, AxiomName};
use crate::proof::{Proof, ProofError};
use atl_lang::{Formula, KeyTerm, Message, Principal};

/// Derives `P believes φ ∧ P believes ψ ⊃ P believes (φ ∧ ψ)` — A4 is
/// stated in the paper as *following* from A1; this is that derivation,
/// from the tautology `φ ⊃ (ψ ⊃ φ ∧ ψ)` via necessitation and two uses of
/// A1.
///
/// # Errors
///
/// Never fails for well-formed inputs; the proof is checked before being
/// returned.
pub fn belief_conjunction(
    p: &Principal,
    phi: &Formula,
    psi: &Formula,
) -> Result<Proof, ProofError> {
    let mut proof = Proof::new();
    let bp = Formula::believes(p.clone(), phi.clone());
    let bq = Formula::believes(p.clone(), psi.clone());
    let conj = Formula::and(phi.clone(), psi.clone());

    // ⊢ φ ⊃ (ψ ⊃ φ∧ψ)                     (tautology)
    let t = proof.tautology(Formula::implies(
        phi.clone(),
        Formula::implies(psi.clone(), conj.clone()),
    ));
    // ⊢ P believes (φ ⊃ (ψ ⊃ φ∧ψ))        (R2)
    let bt = proof.necessitation(t, p.clone());
    // A1 instance: believes φ ∧ believes(φ ⊃ …) ⊃ believes(ψ ⊃ φ∧ψ)
    let inner_imp = Formula::implies(psi.clone(), conj.clone());
    let a1a = proof.axiom(axioms::a1(p, phi, &inner_imp), AxiomName::A1);
    // Premises.
    let prem_bp = proof.premise(bp.clone());
    let prem_bq = proof.premise(bq.clone());
    // Conjoin believes φ with the necessitated tautology.
    let bt_f = proof.step(bt).formula.clone();
    let pair1 = proof.tautology(Formula::implies(
        bp.clone(),
        Formula::implies(bt_f.clone(), Formula::and(bp.clone(), bt_f.clone())),
    ));
    let s1 = proof.modus_ponens(pair1, prem_bp);
    let s2 = proof.modus_ponens(s1, bt);
    // A1 gives believes (ψ ⊃ φ∧ψ).
    let b_inner = proof.modus_ponens(a1a, s2);
    // Second A1 instance: believes ψ ∧ believes(ψ ⊃ φ∧ψ) ⊃ believes (φ∧ψ).
    let a1b = proof.axiom(axioms::a1(p, psi, &conj), AxiomName::A1);
    let b_inner_f = proof.step(b_inner).formula.clone();
    let pair2 = proof.tautology(Formula::implies(
        bq.clone(),
        Formula::implies(
            b_inner_f.clone(),
            Formula::and(bq.clone(), b_inner_f.clone()),
        ),
    ));
    let s3 = proof.modus_ponens(pair2, prem_bq);
    let s4 = proof.modus_ponens(s3, b_inner);
    let _conclusion = proof.modus_ponens(a1b, s4);
    proof.check()?;
    Ok(proof)
}

/// Derives the believed form of any axiom: from the axiom `⊢ χ` and R2,
/// `⊢ P believes χ` — and then, given `P believes` of the axiom's
/// antecedent (as a premise), `P believes` its consequent via A1.
///
/// This is the general mechanism by which every top-level rule applies
/// inside belief contexts; [`ban_message_meaning`] instantiates it for
/// the message-meaning rule.
///
/// # Errors
///
/// [`ProofError`] if `axiom_instance` is not an implication.
pub fn believed_rule(
    p: &Principal,
    axiom_instance: Formula,
    name: AxiomName,
    believed_antecedent: Formula,
) -> Result<Proof, ProofError> {
    let mut proof = Proof::new();
    let ax = proof.axiom(axiom_instance, name);
    let bax = proof.necessitation(ax, p.clone());
    let Some(antecedent) = crate::proof::antecedent_of(&proof.step(ax).formula).cloned() else {
        return Err(ProofError {
            step: ax,
            reason: "axiom instance is not an implication".into(),
        });
    };
    let Some(consequent) = crate::proof::consequent_of(&proof.step(ax).formula).cloned() else {
        return Err(ProofError {
            step: ax,
            reason: "axiom instance is not an implication".into(),
        });
    };
    let a1 = proof.axiom(axioms::a1(p, &antecedent, &consequent), AxiomName::A1);
    let prem = proof.premise(believed_antecedent.clone());
    // Conjoin the premise with the believed axiom.
    let bax_f = proof.step(bax).formula.clone();
    let pair = proof.tautology(Formula::implies(
        believed_antecedent.clone(),
        Formula::implies(
            bax_f.clone(),
            Formula::and(believed_antecedent.clone(), bax_f.clone()),
        ),
    ));
    let s1 = proof.modus_ponens(pair, prem);
    let s2 = proof.modus_ponens(s1, bax);
    let _conclusion = proof.modus_ponens(a1, s2);
    proof.check()?;
    Ok(proof)
}

/// Reconstructs the original BAN **message-meaning** rule as a checked
/// proof: from
///
/// - `P believes (Q ↔K↔ P)`  and
/// - `P believes (P sees {X^S}_K)`   (obtained in practice via A11)
///
/// derive `P believes (Q said X)`, using the necessitated A5 and A1.
///
/// # Errors
///
/// Returns an error if `S = Q` (A5's side condition transposed to this
/// instance).
pub fn ban_message_meaning(
    p: &Principal,
    k: &KeyTerm,
    q: &Principal,
    x: &Message,
    s: &Principal,
) -> Result<Proof, ProofError> {
    // A5 with the believer P as the shared-key side that must differ from
    // the from field.
    let Some(a5) = axioms::a5(p, k, q, p, x, s) else {
        return Err(ProofError {
            step: 0,
            reason: format!("A5 side condition: the from field {s} must differ from {p}"),
        });
    };
    let believed_antecedent = Formula::and(
        Formula::believes(
            p.clone(),
            Formula::shared_key(p.clone(), k.clone(), q.clone()),
        ),
        Formula::believes(
            p.clone(),
            Formula::sees(
                p.clone(),
                Message::encrypted(x.clone(), k.clone(), s.clone()),
            ),
        ),
    );
    // First collect the two beliefs into belief of the conjunction (A4
    // derivation), then run the believed A5.
    let mut proof = Proof::new();
    let sk = Formula::shared_key(p.clone(), k.clone(), q.clone());
    let sees = Formula::sees(
        p.clone(),
        Message::encrypted(x.clone(), k.clone(), s.clone()),
    );
    let bp = Formula::believes(p.clone(), sk.clone());
    let bq = Formula::believes(p.clone(), sees.clone());
    let prem1 = proof.premise(bp.clone());
    let prem2 = proof.premise(bq.clone());
    // Splice in the A4 derivation (rebuilt inline for a single checked
    // object).
    let conj = Formula::and(sk.clone(), sees.clone());
    let t = proof.tautology(Formula::implies(
        sk.clone(),
        Formula::implies(sees.clone(), conj.clone()),
    ));
    let bt = proof.necessitation(t, p.clone());
    let inner_imp = Formula::implies(sees.clone(), conj.clone());
    let a1a = proof.axiom(axioms::a1(p, &sk, &inner_imp), AxiomName::A1);
    let bt_f = proof.step(bt).formula.clone();
    let pair1 = proof.tautology(Formula::implies(
        bp.clone(),
        Formula::implies(bt_f.clone(), Formula::and(bp.clone(), bt_f.clone())),
    ));
    let s1 = proof.modus_ponens(pair1, prem1);
    let s2 = proof.modus_ponens(s1, bt);
    let b_inner = proof.modus_ponens(a1a, s2);
    let a1b = proof.axiom(axioms::a1(p, &sees, &conj), AxiomName::A1);
    let b_inner_f = proof.step(b_inner).formula.clone();
    let pair2 = proof.tautology(Formula::implies(
        bq.clone(),
        Formula::implies(
            b_inner_f.clone(),
            Formula::and(bq.clone(), b_inner_f.clone()),
        ),
    ));
    let s3 = proof.modus_ponens(pair2, prem2);
    let s4 = proof.modus_ponens(s3, b_inner);
    let b_conj = proof.modus_ponens(a1b, s4);
    // Now the believed A5: ⊢ A5, ⊢ P believes A5, A1.
    let ax = proof.axiom(a5, AxiomName::A5);
    let bax = proof.necessitation(ax, p.clone());
    let said = Formula::said(q.clone(), x.clone());
    let a1c = proof.axiom(axioms::a1(p, &conj, &said), AxiomName::A1);
    let b_conj_f = proof.step(b_conj).formula.clone();
    let bax_f = proof.step(bax).formula.clone();
    let pair3 = proof.tautology(Formula::implies(
        b_conj_f.clone(),
        Formula::implies(bax_f.clone(), Formula::and(b_conj_f.clone(), bax_f.clone())),
    ));
    let s5 = proof.modus_ponens(pair3, b_conj);
    let s6 = proof.modus_ponens(s5, bax);
    let conclusion = proof.modus_ponens(a1c, s6);
    debug_assert_eq!(
        proof.step(conclusion).formula,
        Formula::believes(p.clone(), said)
    );
    let _ = believed_antecedent;
    proof.check()?;
    Ok(proof)
}

/// Reconstructs the original **nonce-verification** promotion at top
/// level: from `fresh(X)` and `Q said X` (premises), derive `Q says X`
/// via A20 — the honesty-free replacement for "still believes the
/// contents".
///
/// # Errors
///
/// Never fails; the proof is checked before return.
pub fn nonce_verification(q: &Principal, x: &Message) -> Result<Proof, ProofError> {
    let mut proof = Proof::new();
    let fresh = Formula::fresh(x.clone());
    let said = Formula::said(q.clone(), x.clone());
    let prem1 = proof.premise(fresh.clone());
    let prem2 = proof.premise(said.clone());
    let ax = proof.axiom(axioms::a20(q, x), AxiomName::A20);
    let pair = proof.tautology(Formula::implies(
        fresh.clone(),
        Formula::implies(said.clone(), Formula::and(fresh.clone(), said.clone())),
    ));
    let s1 = proof.modus_ponens(pair, prem1);
    let s2 = proof.modus_ponens(s1, prem2);
    let _conclusion = proof.modus_ponens(ax, s2);
    proof.check()?;
    Ok(proof)
}

#[cfg(test)]
mod tests {
    use super::*;
    use atl_lang::{Key, Nonce, Prop};

    fn parts() -> (Principal, Principal, Principal, KeyTerm, Message) {
        (
            Principal::new("P"),
            Principal::new("Q"),
            Principal::new("S"),
            KeyTerm::Key(Key::new("K")),
            Message::nonce(Nonce::new("X")),
        )
    }

    #[test]
    fn a4_is_derivable_from_a1() {
        let p = Principal::new("P");
        let phi = Formula::prop(Prop::new("f"));
        let psi = Formula::prop(Prop::new("g"));
        let proof = belief_conjunction(&p, &phi, &psi).unwrap();
        assert_eq!(
            proof.conclusion().unwrap(),
            &Formula::believes(p, Formula::and(phi, psi))
        );
        assert!(proof.steps().len() >= 8, "non-trivial derivation expected");
    }

    #[test]
    fn ban_message_meaning_reconstructed() {
        let (p, q, s, k, x) = parts();
        let proof = ban_message_meaning(&p, &k, &q, &x, &s).unwrap();
        assert_eq!(
            proof.conclusion().unwrap(),
            &Formula::believes(p, Formula::said(q, x))
        );
    }

    #[test]
    fn ban_message_meaning_respects_side_condition() {
        let (p, q, _, k, x) = parts();
        // From field = P: A5's side condition bites.
        let err = ban_message_meaning(&p, &k, &q, &x, &p).unwrap_err();
        assert!(err.reason.contains("side condition"));
    }

    #[test]
    fn nonce_verification_reconstructed() {
        let (_, q, _, _, x) = parts();
        let proof = nonce_verification(&q, &x).unwrap();
        assert_eq!(proof.conclusion().unwrap(), &Formula::says(q, x));
    }

    #[test]
    fn believed_rule_lifts_any_axiom() {
        let (p, q, _, k, x) = parts();
        // Lift A8 into P's beliefs.
        let a8 = axioms::a8(&p, &x, &q, &k);
        let believed_antecedent = Formula::believes(
            p.clone(),
            Formula::and(
                Formula::sees(
                    p.clone(),
                    Message::encrypted(x.clone(), k.clone(), q.clone()),
                ),
                Formula::has(p.clone(), k.clone()),
            ),
        );
        let proof = believed_rule(&p, a8, AxiomName::A8, believed_antecedent).unwrap();
        assert_eq!(
            proof.conclusion().unwrap(),
            &Formula::believes(p.clone(), Formula::sees(p, x))
        );
    }

    #[test]
    fn all_derived_proofs_check_and_use_premises() {
        let (p, q, s, k, x) = parts();
        for proof in [
            belief_conjunction(&p, &Formula::True, &Formula::True).unwrap(),
            ban_message_meaning(&p, &k, &q, &x, &s).unwrap(),
            nonce_verification(&q, &x).unwrap(),
        ] {
            proof.check().unwrap();
            assert!(proof
                .steps()
                .iter()
                .any(|st| matches!(st.justification, crate::proof::Justification::Premise)));
        }
    }
}
