//! Worked examples from the paper.
//!
//! Currently: the three-principal coin-toss system of Section 7, with
//! which the paper shows that initial assumptions violating restriction
//! **I2** admit *no* optimum good-run vector.

use crate::goodruns::InitialAssumptions;
use atl_lang::{Formula, Prop};
use atl_model::{Interpretation, RunBuilder, System};

/// The coin-toss counterexample (Section 7).
///
/// Three principals `P1`, `P2`, `P3`; each principal's state records a
/// coin outcome. The two runs differ only in `P2`'s coin — heads in run 0,
/// tails in run 1 — which neither `P1` nor `P3` can observe. The
/// assumptions make `P1` and `P3` *mistaken about each other's beliefs*:
///
/// - `P1` believes the coin landed tails, and believes `P3` believes the
///   same;
/// - `P3` believes the coin landed heads, and believes `P1` believes the
///   same.
///
/// These violate I2, and the paper shows `G_1` can contain the tails run
/// or `G_3` the heads run, **but not both** — so no maximum supporting
/// vector exists.
pub fn coin_toss() -> (System, InitialAssumptions) {
    let mk = |p2_coin: &str| {
        let mut b = RunBuilder::new(0);
        b.principal("P1", []);
        b.principal("P2", []);
        b.principal("P3", []);
        b.datum("P1", "coin", "T");
        b.datum("P2", "coin", p2_coin);
        b.datum("P3", "coin", "H");
        b.build().expect("single-state run reaches time 0")
    };
    let system = System::new([mk("H"), mk("T")])
        .with_interpretation(Interpretation::empty().with_data_props());

    let heads = Formula::prop(Prop::new("P2.coin=H"));
    let tails = Formula::prop(Prop::new("P2.coin=T"));
    let mut assumptions = InitialAssumptions::new();
    assumptions.assume("P1", tails.clone());
    assumptions.assume("P1", Formula::believes("P3", tails));
    assumptions.assume("P3", heads.clone());
    assumptions.assume("P3", Formula::believes("P1", heads));
    (system, assumptions)
}

/// Index of the heads run in the [`coin_toss`] system.
pub const HEADS_RUN: usize = 0;
/// Index of the tails run in the [`coin_toss`] system.
pub const TAILS_RUN: usize = 1;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goodruns::{construct, find_witness_above, supports};
    use crate::semantics::GoodRuns;
    use atl_lang::Principal;
    use std::collections::BTreeSet;

    fn set(runs: &[usize]) -> BTreeSet<usize> {
        runs.iter().copied().collect()
    }

    #[test]
    fn assumptions_violate_i2() {
        let (_, assumptions) = coin_toss();
        assert!(assumptions.violates_i2().is_some());
    }

    #[test]
    fn the_two_maximal_vectors_both_support() {
        let (sys, assumptions) = coin_toss();
        // G1 = {tails run}, G3 = ∅.
        let mut via_p1 = GoodRuns::all_runs(&sys);
        via_p1.set("P1", set(&[TAILS_RUN]));
        via_p1.set("P3", set(&[]));
        assert!(supports(&sys, &via_p1, &assumptions).unwrap());
        // G1 = ∅, G3 = {heads run}.
        let mut via_p3 = GoodRuns::all_runs(&sys);
        via_p3.set("P1", set(&[]));
        via_p3.set("P3", set(&[HEADS_RUN]));
        assert!(supports(&sys, &via_p3, &assumptions).unwrap());
        // They are incomparable.
        assert!(!via_p1.le(&via_p3));
        assert!(!via_p3.le(&via_p1));
    }

    #[test]
    fn their_join_does_not_support() {
        // The would-be maximum — G1 = {tails}, G3 = {heads} — fails:
        // relative to it, P1 believes P3 believes tails is false at the
        // tails run (P3's possible points lie in the heads run).
        let (sys, assumptions) = coin_toss();
        let mut join = GoodRuns::all_runs(&sys);
        join.set("P1", set(&[TAILS_RUN]));
        join.set("P3", set(&[HEADS_RUN]));
        assert!(!supports(&sys, &join, &assumptions).unwrap());
    }

    #[test]
    fn construction_supports_but_is_not_optimum() {
        // Theorem 2 still applies (I1 holds): the construction supports I.
        // Theorem 3 does not (I2 fails): the result is not optimum.
        let (sys, assumptions) = coin_toss();
        let goods = construct(&sys, &assumptions).unwrap();
        assert!(supports(&sys, &goods, &assumptions).unwrap());
        // Stage 2 empties both belief sets.
        assert!(goods.get(&Principal::new("P1")).is_empty());
        assert!(goods.get(&Principal::new("P3")).is_empty());
        // And a supporting vector strictly above exists.
        let witness = find_witness_above(&sys, &goods, &assumptions, 1 << 20)
            .unwrap()
            .expect("no optimum without I2");
        assert!(supports(&sys, &witness, &assumptions).unwrap());
        assert!(!witness.le(&goods));
    }
}
