//! Semantic secrecy analysis — the paper's first "interesting problem …
//! for the future": *elaborating the logic and semantics to deal with
//! secrecy (in addition to authentication)*.
//!
//! Under perfect encryption, everything a principal can ever learn from
//! traffic is the `seen-submsgs` closure of what it has received, given
//! its key set. That makes secrecy decidable on a run: `X` is secret from
//! `P` at `(r, k)` iff `P` cannot see `X` there — i.e. iff the semantic
//! `P sees X` is false. This module packages the judgments the protocol
//! analyses need:
//!
//! - [`known_messages`] — a principal's full derivable set at a time;
//! - [`is_secret_from`] — pointwise secrecy;
//! - [`secrecy_horizon`] — the first time a principal learns a message;
//! - [`leaks`] — every (run, principal) pair outside an allowed set that
//!   learns the message anywhere in a system.
//!
//! These are *semantic* checks on concrete runs, complementing the logic:
//! Nessett's protocol proves a belief while [`leaks`] flags the key, and
//! Lowe's attack leaves every derived belief true while [`leaks`] flags
//! `Nb` (see `atl-protocols`).

use atl_lang::{seen_submsgs_of_set, Message, MessageSet, Principal};
use atl_model::{Run, System};

/// Everything `p` can read at time `k` of `run`: the `seen-submsgs`
/// closure of its received messages under its current key set.
///
/// Returns an empty set for times outside the run.
pub fn known_messages(run: &Run, p: &Principal, k: i64) -> MessageSet {
    let Some(state) = run.state(k) else {
        return MessageSet::new();
    };
    let local = state.local(p);
    seen_submsgs_of_set(local.received().iter(), &local.key_set)
}

/// True if `p` cannot derive `x` at `(run, k)`.
pub fn is_secret_from(run: &Run, x: &Message, p: &Principal, k: i64) -> bool {
    let Some(state) = run.state(k) else {
        return true;
    };
    let local = state.local(p);
    !local
        .received()
        .iter()
        .any(|m| atl_lang::can_see(x, m, &local.key_set))
}

/// The first time at which `p` can derive `x` in `run`, if ever.
pub fn secrecy_horizon(run: &Run, x: &Message, p: &Principal) -> Option<i64> {
    run.times().find(|&k| !is_secret_from(run, x, p, k))
}

/// A secrecy violation: someone outside the allowed set derives the
/// message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Leak {
    /// Index of the run in the system.
    pub run: usize,
    /// Who learned the message.
    pub principal: Principal,
    /// The first time they could derive it.
    pub time: i64,
}

/// Finds every (run, principal) outside `allowed` that can derive `x`
/// anywhere in `system`. The environment principal is always audited.
pub fn leaks(system: &System, x: &Message, allowed: &[Principal]) -> Vec<Leak> {
    let mut out = Vec::new();
    for (ri, run) in system.runs().iter().enumerate() {
        let mut audit: Vec<Principal> = run.principals().cloned().collect();
        audit.push(Principal::environment());
        for p in audit {
            if allowed.contains(&p) {
                continue;
            }
            if let Some(time) = secrecy_horizon(run, x, &p) {
                out.push(Leak {
                    run: ri,
                    principal: p,
                    time,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use atl_lang::{Key, Nonce};
    use atl_model::RunBuilder;

    fn nonce(s: &str) -> Message {
        Message::nonce(Nonce::new(s))
    }

    fn keyed_run() -> Run {
        let mut b = RunBuilder::new(0);
        b.principal("A", [Key::new("K")]);
        b.principal("B", [Key::new("K")]);
        b.principal("C", []);
        let cipher = Message::encrypted(nonce("X"), Key::new("K"), Principal::new("A"));
        b.send("A", cipher.clone(), "B").unwrap();
        b.send("A", cipher.clone(), "C").unwrap();
        b.receive("B", &cipher).unwrap();
        b.receive("C", &cipher).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn keys_gate_knowledge() {
        let run = keyed_run();
        let end = run.horizon();
        // B (with K) derives X; C (without) does not.
        assert!(!is_secret_from(
            &run,
            &nonce("X"),
            &Principal::new("B"),
            end
        ));
        assert!(is_secret_from(&run, &nonce("X"), &Principal::new("C"), end));
        assert!(known_messages(&run, &Principal::new("B"), end).contains(&nonce("X")));
        assert!(!known_messages(&run, &Principal::new("C"), end).contains(&nonce("X")));
    }

    #[test]
    fn secrecy_horizon_tracks_delivery() {
        let run = keyed_run();
        let b = Principal::new("B");
        // B receives at time 2, so it derives X from time 3 onward.
        assert_eq!(secrecy_horizon(&run, &nonce("X"), &b), Some(3));
        assert_eq!(secrecy_horizon(&run, &nonce("never"), &b), None);
    }

    #[test]
    fn late_keys_unlock_old_traffic() {
        // C receives ciphertext it cannot read, then acquires the key: the
        // old traffic opens up — secrecy is not forward-secure here, by
        // design of the model (sees uses the *current* key set).
        let mut bld = RunBuilder::new(0);
        bld.principal("A", [Key::new("K")]);
        bld.principal("C", []);
        let cipher = Message::encrypted(nonce("X"), Key::new("K"), Principal::new("A"));
        bld.send("A", cipher.clone(), "C").unwrap();
        bld.receive("C", &cipher).unwrap();
        bld.new_key("C", "K");
        let run = bld.build().unwrap();
        let c = Principal::new("C");
        assert!(is_secret_from(&run, &nonce("X"), &c, 2));
        assert!(!is_secret_from(&run, &nonce("X"), &c, 3));
    }

    #[test]
    fn leaks_audits_whole_systems() {
        let sys = System::new([keyed_run()]);
        let allowed = [Principal::new("A"), Principal::new("B")];
        let found = leaks(&sys, &nonce("X"), &allowed);
        // Nobody outside {A, B} learns X (C lacks the key; the environment
        // never receives anything).
        assert!(found.is_empty(), "{found:?}");
        // Auditing with an empty allowlist flags B (the legitimate
        // recipient), demonstrating sensitivity.
        let found_all = leaks(&sys, &nonce("X"), &[]);
        assert_eq!(found_all.len(), 1);
        assert_eq!(found_all[0].principal, Principal::new("B"));
        assert_eq!(found_all[0].time, 3);
    }

    #[test]
    fn senders_are_not_charged_with_knowledge() {
        // `sees` is about received traffic: A *constructed* X but never
        // received it, so the traffic-derivability audit does not list A.
        // (A's own knowledge of its plaintext is not a secrecy question.)
        let run = keyed_run();
        let end = run.horizon();
        assert!(is_secret_from(&run, &nonce("X"), &Principal::new("A"), end));
    }
}
