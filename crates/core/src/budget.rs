//! Graceful-degradation budgets for expensive analyses.
//!
//! Saturation ([`Prover::saturate`](crate::prover::Prover::saturate)) and
//! the good-run construction
//! ([`construct_budgeted`](crate::goodruns::construct_budgeted)) are
//! fixpoint computations whose cost grows with the fact set and the
//! system. A [`Budget`] caps that work along three independent axes —
//! derivation steps, total facts, and wall-clock time — and the
//! [`Saturation`] outcome says whether the fixpoint was actually reached.
//! Analyses never *lose* work when a budget runs out: everything derived
//! up to that point is kept, and queries answer with a three-valued
//! [`Verdict`] so "not derived" under an exhausted budget reads as
//! *unknown*, not as a refutation.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Resource limits for a saturation-style analysis. The default is
/// unlimited on every axis.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum derivation steps (rule applications / evaluations).
    pub max_steps: Option<u64>,
    /// Maximum size of the fact set; derivation stops once reached.
    pub max_facts: Option<usize>,
    /// Wall-clock cap in milliseconds.
    pub max_millis: Option<u64>,
}

impl Budget {
    /// No limits: saturation always runs to the fixpoint.
    pub fn unlimited() -> Self {
        Budget::default()
    }

    /// Caps derivation steps.
    pub fn steps(mut self, n: u64) -> Self {
        self.max_steps = Some(n);
        self
    }

    /// Caps the fact-set size.
    pub fn facts(mut self, n: usize) -> Self {
        self.max_facts = Some(n);
        self
    }

    /// Caps wall-clock time, in milliseconds.
    pub fn millis(mut self, ms: u64) -> Self {
        self.max_millis = Some(ms);
        self
    }

    /// True if any axis is capped.
    pub fn is_limited(&self) -> bool {
        self.max_steps.is_some() || self.max_facts.is_some() || self.max_millis.is_some()
    }
}

impl fmt::Display for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.is_limited() {
            return f.write_str("unlimited");
        }
        let mut sep = "";
        if let Some(n) = self.max_steps {
            write!(f, "{sep}steps≤{n}")?;
            sep = ", ";
        }
        if let Some(n) = self.max_facts {
            write!(f, "{sep}facts≤{n}")?;
            sep = ", ";
        }
        if let Some(ms) = self.max_millis {
            write!(f, "{sep}time≤{ms}ms")?;
        }
        Ok(())
    }
}

/// Shared state behind every handle to one logical meter.
#[derive(Debug)]
struct MeterState {
    budget: Budget,
    steps: AtomicU64,
    started: Instant,
    exhausted: AtomicBool,
}

/// Running consumption against a [`Budget`]. Once any axis is exceeded
/// the meter latches exhausted and refuses all further charges.
///
/// A `BudgetMeter` is a *handle*: cloning it yields another handle onto
/// the same counters, so a single budget can meter several workers at
/// once. The step axis is charged with a compare-and-swap below the cap,
/// so under any interleaving exactly `cap` charges succeed in total —
/// two workers racing a 1-step budget never both proceed — and the
/// exhausted latch, once set by any handle, is visible to all of them.
#[derive(Clone, Debug)]
pub struct BudgetMeter {
    inner: Arc<MeterState>,
}

impl BudgetMeter {
    /// Starts metering against `budget` (the wall clock starts now).
    ///
    /// A zero cap on any axis is exhausted before any work: the meter
    /// starts latched, so callers observe `BudgetExhausted` instead of
    /// performing (and keeping) one charge's worth of work for free.
    pub fn start(budget: Budget) -> Self {
        let born_exhausted = budget.max_steps == Some(0)
            || budget.max_facts == Some(0)
            || budget.max_millis == Some(0);
        BudgetMeter {
            inner: Arc::new(MeterState {
                budget,
                steps: AtomicU64::new(0),
                started: Instant::now(),
                exhausted: AtomicBool::new(born_exhausted),
            }),
        }
    }

    /// Steps charged so far (across every handle to this meter).
    pub fn steps(&self) -> u64 {
        self.inner.steps.load(Ordering::Acquire)
    }

    /// True once any axis has been exceeded (by any handle).
    pub fn exhausted(&self) -> bool {
        self.inner.exhausted.load(Ordering::Acquire)
    }

    /// Attempts to charge one derivation step while the tracked fact set
    /// holds `facts_now` entries. Returns false — latching the exhausted
    /// state — if the budget does not cover it.
    pub fn charge(&self, facts_now: usize) -> bool {
        let s = &*self.inner;
        if s.exhausted.load(Ordering::Acquire) {
            return false;
        }
        let over = s.budget.max_facts.is_some_and(|cap| facts_now >= cap)
            || s.budget.max_millis.is_some_and(|cap| {
                // Saturate rather than truncate: a cap near u64::MAX must
                // not wrap a long elapsed time into "under budget".
                u64::try_from(s.started.elapsed().as_millis()).unwrap_or(u64::MAX) >= cap
            });
        if over {
            s.exhausted.store(true, Ordering::Release);
            return false;
        }
        // Claim a step only while strictly below the cap: the CAS loop
        // guarantees exactly `cap` charges succeed, no matter how many
        // handles race.
        let claim = s
            .steps
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                match s.budget.max_steps {
                    Some(cap) if n >= cap => None,
                    _ => Some(n.saturating_add(1)),
                }
            });
        if claim.is_err() {
            s.exhausted.store(true, Ordering::Release);
            return false;
        }
        true
    }
}

/// The outcome of a budgeted fixpoint computation.
///
/// Not `#[must_use]`: callers that saturate purely for the side effect of
/// growing the fact set may discard it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Saturation {
    /// The fixpoint was reached; nothing more is derivable.
    Complete {
        /// Facts added by this saturation call.
        new_facts: usize,
    },
    /// The budget ran out first. All facts derived before exhaustion are
    /// retained, but absence of a fact is inconclusive.
    BudgetExhausted {
        /// Size of the fact set when the budget ran out.
        facts: usize,
        /// Derivation steps performed.
        steps: u64,
    },
}

impl Saturation {
    /// True if the fixpoint was reached.
    pub fn is_complete(&self) -> bool {
        matches!(self, Saturation::Complete { .. })
    }
}

impl fmt::Display for Saturation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Saturation::Complete { new_facts } => {
                write!(f, "complete ({new_facts} new facts)")
            }
            Saturation::BudgetExhausted { facts, steps } => {
                write!(
                    f,
                    "budget exhausted after {steps} steps ({facts} facts held)"
                )
            }
        }
    }
}

/// Three-valued answer for a goal queried against a budgeted analysis.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The goal is derivable from the facts on hand.
    Proved,
    /// Saturation completed and the goal is not derivable.
    NotProved,
    /// The goal is not (yet) derivable, but the budget ran out before the
    /// fixpoint — derivability is undecided.
    Unknown,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Proved => "proved",
            Verdict::NotProved => "not proved",
            Verdict::Unknown => "unknown (budget exhausted)",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_exhausts() {
        let m = BudgetMeter::start(Budget::unlimited());
        for i in 0..10_000 {
            assert!(m.charge(i));
        }
        assert!(!m.exhausted());
        assert_eq!(m.steps(), 10_000);
    }

    #[test]
    fn step_cap_latches() {
        let m = BudgetMeter::start(Budget::unlimited().steps(3));
        assert!(m.charge(0));
        assert!(m.charge(0));
        assert!(m.charge(0));
        assert!(!m.charge(0));
        assert!(m.exhausted());
        // Latched: even a charge that would otherwise fit is refused.
        assert!(!m.charge(0));
        assert_eq!(m.steps(), 3);
    }

    #[test]
    fn zero_budgets_exhaust_before_any_work() {
        for b in [
            Budget::unlimited().steps(0),
            Budget::unlimited().facts(0),
            Budget::unlimited().millis(0),
        ] {
            let m = BudgetMeter::start(b);
            assert!(m.exhausted(), "{b} should start exhausted");
            assert!(!m.charge(0));
            assert_eq!(m.steps(), 0);
        }
    }

    #[test]
    fn huge_millis_cap_is_not_truncated() {
        // `as u64` on the elapsed u128 would wrap for huge caps compared
        // against; with saturation the charge fits comfortably.
        let m = BudgetMeter::start(Budget::unlimited().millis(u64::MAX));
        assert!(m.charge(0));
        assert!(!m.exhausted());
    }

    #[test]
    fn fact_cap_checks_current_size() {
        let m = BudgetMeter::start(Budget::unlimited().facts(5));
        assert!(m.charge(4));
        assert!(!m.charge(5));
        assert!(m.exhausted());
    }

    #[test]
    fn clones_share_the_meter() {
        let m = BudgetMeter::start(Budget::unlimited().steps(2));
        let h = m.clone();
        assert!(m.charge(0));
        assert!(h.charge(0));
        // Both handles observe the shared totals and the shared latch.
        assert_eq!(m.steps(), 2);
        assert!(!m.charge(0));
        assert!(h.exhausted());
    }

    #[test]
    fn two_workers_racing_a_one_step_budget_never_both_proceed() {
        // Satellite: the CAS claim means exactly one of two racing
        // charges can succeed on a 1-step budget, on every interleaving.
        for _ in 0..200 {
            let m = BudgetMeter::start(Budget::unlimited().steps(1));
            let (a, b) = std::thread::scope(|scope| {
                let h1 = m.clone();
                let h2 = m.clone();
                let t1 = scope.spawn(move || h1.charge(0));
                let t2 = scope.spawn(move || h2.charge(0));
                (t1.join().expect("worker ok"), t2.join().expect("worker ok"))
            });
            assert!(
                a ^ b,
                "exactly one racing charge may win a 1-step budget (got {a}, {b})"
            );
            assert_eq!(m.steps(), 1);
            assert!(m.exhausted());
        }
    }

    #[test]
    fn racing_workers_never_oversubscribe_a_step_cap() {
        let m = BudgetMeter::start(Budget::unlimited().steps(64));
        let wins: usize = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let h = m.clone();
                    scope.spawn(move || (0..100).filter(|_| h.charge(0)).count())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|t| t.join().expect("worker ok"))
                .sum()
        });
        assert_eq!(wins, 64, "exactly cap charges succeed across workers");
        assert_eq!(m.steps(), 64);
        assert!(m.exhausted());
    }

    #[test]
    fn zero_budget_latch_holds_under_concurrency() {
        let m = BudgetMeter::start(Budget::unlimited().steps(0));
        let wins: usize = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let h = m.clone();
                    scope.spawn(move || (0..50).filter(|_| h.charge(0)).count())
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|t| t.join().expect("worker ok"))
                .sum()
        });
        assert_eq!(wins, 0, "a born-exhausted meter admits no charge at all");
        assert_eq!(m.steps(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Budget::unlimited().to_string(), "unlimited");
        let b = Budget::unlimited().steps(7).millis(20);
        assert_eq!(b.to_string(), "steps≤7, time≤20ms");
        assert!(Saturation::Complete { new_facts: 2 }.is_complete());
        assert!(!Saturation::BudgetExhausted { facts: 9, steps: 7 }.is_complete());
        assert_eq!(Verdict::Unknown.to_string(), "unknown (budget exhausted)");
    }
}
