//! A derivation engine for the reformulated logic, and the annotation
//! procedure of Section 4.3.
//!
//! Protocol analyses do not build raw Hilbert proofs; they close an
//! assertion set under *derived rules*, each justified by the axioms of
//! Section 4.2 together with R1/R2 (every axiom is believed by every
//! principal, so a rule valid at top level applies inside any belief
//! context — that is A1 + necessitation). The engine therefore works on
//! facts grouped by their *belief prefix*.
//!
//! Two optional rules go beyond the axioms but are validated against the
//! semantics (they are instances of the incompleteness the paper notes):
//!
//! - **sees-promotion**: `P sees X ⊢ P believes (P sees X)` when every
//!   ciphertext in `X` is under a key `P` has — `X` then survives `hide`
//!   unchanged, so the receive event is visible in every possible point.
//!   (A11 is the special case of an outermost decryptable ciphertext.)
//! - **has-promotion**: `P has K ⊢ P believes (P has K)` — key sets are
//!   part of the local state and preserved by `hide`.
//!
//! Both are enabled by default and can be disabled with
//! [`ProverConfig::axioms_only`].

use crate::budget::{Budget, BudgetMeter, Saturation, Verdict};
use crate::parallel::Pool;
use atl_lang::{Formula, KeyTerm, Message, Principal};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Names of the derived rules (with their justifying axioms).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DerivedRule {
    /// A seeded fact (assumption or annotation).
    Given,
    /// Conjunction elimination (tautology + A1 under beliefs).
    AndSplit,
    /// Conjunction introduction within a context (A4), applied on demand
    /// during goal checking.
    AndIntro,
    /// A5: message meaning for keys.
    MessageMeaningKey,
    /// A6: message meaning for secrets.
    MessageMeaningSecret,
    /// A7: seeing tuple components.
    SeesTuple,
    /// A8: seeing through held keys.
    SeesDecrypt,
    /// A9: seeing combined bodies.
    SeesCombined,
    /// A10: seeing forwarded bodies.
    SeesForwarded,
    /// A11: believing one sees decryptable ciphertext.
    BelievesSeesCipher,
    /// A12 (and its `says` analogue): saying tuple components.
    SaidTuple,
    /// A13 (and its `says` analogue): saying combined bodies.
    SaidCombined,
    /// A15: jurisdiction.
    Jurisdiction,
    /// A16: fresh component makes the tuple fresh.
    FreshTuple,
    /// A17: fresh body makes the encryption fresh.
    FreshEncrypted,
    /// A18: fresh body makes the combination fresh.
    FreshCombined,
    /// A19: fresh body makes the forward fresh.
    FreshForwarded,
    /// A20: fresh sayings are recent (nonce verification).
    NonceVerification,
    /// A21: shared keys/secrets are directionless.
    Symmetry,
    /// A22 (public-key extension): signature message meaning.
    SignatureMeaning,
    /// A23 (public-key extension): seeing signed contents.
    SeesSigned,
    /// A24 (public-key extension): seeing public-key ciphertext contents.
    SeesPubEnc,
    /// A25 (public-key extension): fresh body makes the signature fresh.
    FreshSigned,
    /// A26 (public-key extension): fresh body makes the encryption fresh.
    FreshPubEnc,
    /// A27 (public-key extension): believing one sees signatures.
    BelievesSeesSigned,
    /// A28 (public-key extension): believing one sees pk-ciphertext.
    BelievesSeesPubEnc,
    /// Semantically validated: fully-readable seen messages are believed
    /// seen.
    SeesPromotion,
    /// Semantically validated: held keys are believed held.
    HasPromotion,
}

impl fmt::Display for DerivedRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DerivedRule::Given => "given",
            DerivedRule::AndSplit => "and-split",
            DerivedRule::AndIntro => "and-intro (A4)",
            DerivedRule::MessageMeaningKey => "message-meaning key (A5)",
            DerivedRule::MessageMeaningSecret => "message-meaning secret (A6)",
            DerivedRule::SeesTuple => "sees tuple (A7)",
            DerivedRule::SeesDecrypt => "sees decrypt (A8)",
            DerivedRule::SeesCombined => "sees combined (A9)",
            DerivedRule::SeesForwarded => "sees forwarded (A10)",
            DerivedRule::BelievesSeesCipher => "believes-sees cipher (A11)",
            DerivedRule::SaidTuple => "said tuple (A12)",
            DerivedRule::SaidCombined => "said combined (A13)",
            DerivedRule::Jurisdiction => "jurisdiction (A15)",
            DerivedRule::FreshTuple => "fresh tuple (A16)",
            DerivedRule::FreshEncrypted => "fresh encrypted (A17)",
            DerivedRule::FreshCombined => "fresh combined (A18)",
            DerivedRule::FreshForwarded => "fresh forwarded (A19)",
            DerivedRule::NonceVerification => "nonce-verification (A20)",
            DerivedRule::Symmetry => "symmetry (A21)",
            DerivedRule::SignatureMeaning => "signature meaning (A22)",
            DerivedRule::SeesSigned => "sees signed (A23)",
            DerivedRule::SeesPubEnc => "sees pk-encrypted (A24)",
            DerivedRule::FreshSigned => "fresh signed (A25)",
            DerivedRule::FreshPubEnc => "fresh pk-encrypted (A26)",
            DerivedRule::BelievesSeesSigned => "believes-sees signed (A27)",
            DerivedRule::BelievesSeesPubEnc => "believes-sees pk-encrypted (A28)",
            DerivedRule::SeesPromotion => "sees-promotion (semantic)",
            DerivedRule::HasPromotion => "has-promotion (semantic)",
        };
        f.write_str(s)
    }
}

/// One recorded derivation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Step {
    /// The derived fact.
    pub conclusion: Formula,
    /// The rule applied.
    pub rule: DerivedRule,
    /// The facts it came from.
    pub premises: Vec<Formula>,
}

/// Prover options.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProverConfig {
    /// If true, disable the two semantically-validated promotion rules and
    /// use only rules derivable from A1–A21 + R1/R2.
    pub axioms_only: bool,
    /// Use the indexed worklist saturation (the default): each rule fires
    /// only when one of its triggers — a new fact of the matching kind in
    /// the matching belief context, or a new universe message — arrives.
    /// When false, fall back to the rescan-everything fixpoint that
    /// re-fires every rule on every fact each pass; it computes the same
    /// closure and is kept as an ablation baseline and cross-check.
    pub use_worklist: bool,
    /// Cap on saturation passes of the rescan path (`use_worklist: false`);
    /// a safety net — protocols converge in a handful. The worklist path
    /// has no passes and runs to its fixpoint (or budget).
    pub max_passes: usize,
    /// Cap on the belief-prefix depth that the promotion rules (A11,
    /// sees-promotion, has-promotion) may create — without it, repeated
    /// introspection would generate `P believes P believes …` forever.
    pub max_belief_depth: usize,
    /// Resource budget for [`Prover::saturate`]. When it runs out,
    /// saturation stops early (keeping everything derived so far) and
    /// reports [`Saturation::BudgetExhausted`]; [`Prover::verdict`] then
    /// answers [`Verdict::Unknown`] for underivable goals instead of
    /// refuting them.
    pub budget: Budget,
}

impl Default for ProverConfig {
    fn default() -> Self {
        ProverConfig {
            axioms_only: false,
            use_worklist: true,
            max_passes: 64,
            max_belief_depth: 3,
            budget: Budget::unlimited(),
        }
    }
}

/// The derivation engine.
///
/// # Examples
///
/// B's half of Figure 1 in the reformulated logic (note the explicit
/// `B has Kbs` — the decoupling of possession from belief that Section 3.1
/// motivates):
///
/// ```
/// use atl_core::prover::Prover;
/// use atl_lang::{Formula, Key, Message, Nonce};
/// let kab = Formula::shared_key("A", Key::new("Kab"), "B");
/// let msg = Message::encrypted(
///     Message::tuple([
///         Message::nonce(Nonce::new("Ts")),
///         kab.clone().into_message(),
///     ]),
///     Key::new("Kbs"),
///     "S",
/// );
/// let mut prover = Prover::new([
///     Formula::believes("B", Formula::shared_key("B", Key::new("Kbs"), "S")),
///     Formula::believes("B", Formula::fresh(Message::nonce(Nonce::new("Ts")))),
///     Formula::believes("B", Formula::controls("S", kab.clone())),
///     Formula::has("B", Key::new("Kbs")),
///     Formula::sees("B", msg),
/// ]);
/// prover.saturate();
/// assert!(prover.holds(&Formula::believes("B", kab)));
/// ```
#[derive(Clone, Debug)]
pub struct Prover {
    facts: BTreeSet<Formula>,
    trace: Vec<Step>,
    config: ProverConfig,
    meter: BudgetMeter,
    /// True iff `facts` is the closure a completed saturation reached and
    /// nothing was assumed since — the precondition for
    /// [`saturate_delta`](Self::saturate_delta) to skip re-firing it.
    saturated: bool,
    /// The worklist indexes as a completed saturation left them (every
    /// current fact indexed), cached so the next
    /// [`saturate_delta`](Self::saturate_delta) — including on a clone of
    /// this prover — starts from them instead of re-indexing the whole
    /// closure, which otherwise dominates an incremental re-analysis.
    /// `None` whenever the cache could be stale (facts assumed since, a
    /// saturation cut short, or a prover rebuilt from bare facts).
    idx: Option<Indexes>,
}

/// Splits off the belief prefix of a formula.
fn strip(f: &Formula) -> (Vec<Principal>, &Formula) {
    let mut chain = Vec::new();
    let mut cur = f;
    while let Formula::Believes(p, inner) = cur {
        chain.push(p.clone());
        cur = inner;
    }
    (chain, cur)
}

/// Rewraps a body in a belief prefix.
fn wrap(prefix: &[Principal], body: Formula) -> Formula {
    prefix
        .iter()
        .rev()
        .fold(body, |acc, p| Formula::believes(p.clone(), acc))
}

impl Prover {
    /// Creates a prover seeded with facts.
    pub fn new(facts: impl IntoIterator<Item = Formula>) -> Self {
        Prover::with_config(facts, ProverConfig::default())
    }

    /// Creates a prover with explicit options.
    pub fn with_config(facts: impl IntoIterator<Item = Formula>, config: ProverConfig) -> Self {
        let mut prover = Prover {
            facts: BTreeSet::new(),
            trace: Vec::new(),
            config,
            meter: BudgetMeter::start(Budget::unlimited()),
            saturated: false,
            idx: None,
        };
        for f in facts {
            prover.add(f, DerivedRule::Given, Vec::new());
        }
        prover
    }

    /// Reconstructs a prover directly at a known fixpoint: `facts` must
    /// be the exact fact set of a completed saturation (e.g. a stored
    /// annotation level from [`analyze_at`](crate::annotate::analyze_at)).
    /// The facts are seeded as given — the original derivation trace is
    /// not recoverable — and
    /// [`saturate_delta`](Self::saturate_delta) extends from them
    /// incrementally instead of re-firing the full rule set.
    pub fn at_fixpoint(facts: impl IntoIterator<Item = Formula>, config: ProverConfig) -> Self {
        let mut prover = Prover::with_config(facts, config);
        prover.saturated = true;
        prover
    }

    /// Adds a fact (e.g. an annotation `Q sees X` after a step).
    pub fn assume(&mut self, f: Formula) {
        if self.add(f, DerivedRule::Given, Vec::new()) {
            self.saturated = false;
            self.idx = None;
        }
    }

    /// The current fact set.
    pub fn facts(&self) -> &BTreeSet<Formula> {
        &self.facts
    }

    /// The derivation trace.
    pub fn trace(&self) -> &[Step] {
        &self.trace
    }

    /// The step that concluded `f`, if derived.
    pub fn derivation_of(&self, f: &Formula) -> Option<&Step> {
        self.trace.iter().find(|s| &s.conclusion == f)
    }

    fn add(&mut self, f: Formula, rule: DerivedRule, premises: Vec<Formula>) -> bool {
        // Seeding (`Given`) is free; every rule application during
        // saturation charges the budget, whether or not it is novel.
        if rule != DerivedRule::Given && !self.meter.charge(self.facts.len()) {
            return false;
        }
        if self.facts.insert(f.clone()) {
            self.trace.push(Step {
                conclusion: f,
                rule,
                premises,
            });
            true
        } else {
            false
        }
    }

    /// True if `goal` is derivable, decomposing conjunctions (A4 /
    /// and-intro applied on demand) at any belief depth.
    pub fn holds(&self, goal: &Formula) -> bool {
        if self.facts.contains(goal) {
            return true;
        }
        let (prefix, body) = strip(goal);
        if let Formula::And(a, b) = body {
            return self.holds(&wrap(&prefix, (**a).clone()))
                && self.holds(&wrap(&prefix, (**b).clone()));
        }
        false
    }

    /// Saturates to a fixpoint — or until the configured budget runs out.
    ///
    /// Facts derived before exhaustion are always kept; resaturating
    /// (e.g. with a larger budget via [`saturate_with`](Self::saturate_with))
    /// resumes from them.
    pub fn saturate(&mut self) -> Saturation {
        self.saturate_with(self.config.budget)
    }

    /// As [`saturate`](Self::saturate), but against an explicit budget
    /// (overriding the configured one for this call only).
    pub fn saturate_with(&mut self, budget: Budget) -> Saturation {
        self.saturate_metered(BudgetMeter::start(budget))
    }

    /// As [`saturate_with`](Self::saturate_with), but against a caller-
    /// supplied meter. A [`BudgetMeter`] is a shareable handle, so the
    /// same meter can be installed into several provers at once — one
    /// *global* budget that degrades gracefully across concurrent
    /// saturations (see [`BatchProver::with_shared_budget`]). A prover
    /// whose fixpoint races another's exhaustion of the shared meter
    /// reports [`Saturation::BudgetExhausted`] conservatively.
    pub fn saturate_metered(&mut self, meter: BudgetMeter) -> Saturation {
        self.meter = meter;
        self.idx = None;
        let before = self.facts.len();
        if self.config.use_worklist {
            self.saturate_worklist();
        } else {
            for _ in 0..self.config.max_passes {
                if self.meter.exhausted() || self.pass() == 0 {
                    break;
                }
            }
        }
        self.saturated = !self.meter.exhausted();
        if self.meter.exhausted() {
            Saturation::BudgetExhausted {
                facts: self.facts.len(),
                steps: self.meter.steps(),
            }
        } else {
            Saturation::Complete {
                new_facts: self.facts.len() - before,
            }
        }
    }

    /// Adds `added` as given facts and re-saturates **incrementally**:
    /// the current fact set — already a fixpoint after a completed
    /// [`saturate`](Self::saturate) — is indexed without re-firing any
    /// rule, and only the genuinely novel facts (and their consequences)
    /// enter the worklist. The closure is a unique fixpoint, so the
    /// resulting fact set is identical to seeding a fresh prover with
    /// the enlarged assumption set and saturating from scratch: every
    /// rule instance with at least one novel premise fires when its last
    /// novel premise is processed — the same last-arrival trigger
    /// discipline the full worklist relies on — and instances over only
    /// old facts already fired before the delta. Falls back to a full
    /// [`saturate`](Self::saturate) for the rescan engine
    /// (`use_worklist: false`), or when the fact set is not a completed
    /// fixpoint (never saturated, budget-exhausted, or assumed-into
    /// since).
    pub fn saturate_delta(&mut self, added: impl IntoIterator<Item = Formula>) -> Saturation {
        if !self.config.use_worklist || !self.saturated {
            for f in added {
                self.add(f, DerivedRule::Given, Vec::new());
            }
            return self.saturate();
        }
        let mut novel: BTreeSet<Formula> = BTreeSet::new();
        for f in added {
            if self.add(f.clone(), DerivedRule::Given, Vec::new()) {
                novel.insert(f);
            }
        }
        if novel.is_empty() {
            return Saturation::Complete { new_facts: 0 };
        }
        self.meter = BudgetMeter::start(self.config.budget);
        let before = self.facts.len();
        // A cached index from the last completed saturation already
        // covers every pre-delta fact (the novel ones were only just
        // added), so reuse it; otherwise index the old closure once.
        let mut idx = match self.idx.take() {
            Some(idx) => idx,
            None => {
                let mut idx = Indexes::default();
                for f in &self.facts {
                    if novel.contains(f) {
                        continue;
                    }
                    let (prefix, body) = strip(f);
                    idx.insert(&prefix, body);
                }
                idx
            }
        };
        // Novel facts drain in BTreeSet order, matching the full
        // saturation's deterministic seeding.
        let mut queue: VecDeque<Formula> = novel.into_iter().collect();
        self.drain_worklist(&mut idx, &mut queue);
        self.saturated = !self.meter.exhausted();
        self.idx = if self.saturated { Some(idx) } else { None };
        if self.meter.exhausted() {
            Saturation::BudgetExhausted {
                facts: self.facts.len(),
                steps: self.meter.steps(),
            }
        } else {
            Saturation::Complete {
                new_facts: self.facts.len() - before,
            }
        }
    }

    /// True if the most recent saturation ran out of budget, making
    /// negative [`holds`](Self::holds) answers inconclusive.
    pub fn budget_exhausted(&self) -> bool {
        self.meter.exhausted()
    }

    /// Three-valued query: [`Verdict::Proved`] if `goal` is derivable,
    /// [`Verdict::Unknown`] if it is not but the last saturation was cut
    /// short by its budget, [`Verdict::NotProved`] otherwise.
    pub fn verdict(&self, goal: &Formula) -> Verdict {
        if self.holds(goal) {
            Verdict::Proved
        } else if self.budget_exhausted() {
            Verdict::Unknown
        } else {
            Verdict::NotProved
        }
    }

    /// Facts grouped by belief prefix (a fact contributes its body to the
    /// context named by its prefix).
    fn contexts(&self) -> BTreeMap<Vec<Principal>, BTreeSet<Formula>> {
        let mut out: BTreeMap<Vec<Principal>, BTreeSet<Formula>> = BTreeMap::new();
        for f in &self.facts {
            let (prefix, body) = strip(f);
            out.entry(prefix).or_default().insert(body.clone());
        }
        out
    }

    /// All messages occurring in the facts (for the freshness rules'
    /// bounded conclusions).
    fn message_universe(&self) -> BTreeSet<Message> {
        let mut out = BTreeSet::new();
        for f in &self.facts {
            collect_messages(f, &mut out);
        }
        out
    }

    /// One rescan pass (`use_worklist: false`): re-fires every rule on
    /// every fact against snapshots of the contexts and universe.
    fn pass(&mut self) -> usize {
        let contexts = self.contexts();
        let universe = self.message_universe();
        let mut added = 0;
        let mut out = Vec::new();
        for (prefix, body_set) in &contexts {
            for body in body_set {
                rules_for(&self.config, prefix, body, body_set, &universe, &mut out);
                added += self.apply(&mut out, None);
            }
        }
        added
    }

    /// Worklist saturation: each dequeued fact is indexed by its trigger
    /// shape (fact kind × belief prefix), fires the rules it drives
    /// forward, and re-fires the already-indexed facts it completes a
    /// premise pair with. Novel conclusions join the queue; the loop runs
    /// to the least fixpoint (the same one the rescan path reaches, since
    /// every rule is monotone) or until the budget runs out.
    fn saturate_worklist(&mut self) {
        let mut idx = Indexes::default();
        // Seed in BTreeSet order so saturation is deterministic; rebuilt
        // from scratch each call, which also makes an exhausted saturation
        // resumable with a larger budget.
        let mut queue: VecDeque<Formula> = self.facts.iter().cloned().collect();
        self.drain_worklist(&mut idx, &mut queue);
        // A fully drained queue means `idx` covers the whole closure —
        // keep it so the next delta skips the re-index entirely.
        if !self.meter.exhausted() {
            self.idx = Some(idx);
        }
    }

    /// Drains the worklist to its fixpoint (or budget): each popped fact
    /// is indexed, then fires the forward, reverse, and freshness rules
    /// against everything indexed so far.
    fn drain_worklist(&mut self, idx: &mut Indexes, queue: &mut VecDeque<Formula>) {
        let mut out: Vec<Emission> = Vec::new();
        while let Some(fact) = queue.pop_front() {
            if self.meter.exhausted() {
                break;
            }
            let (prefix, body) = strip(&fact);
            let body = body.clone();
            let new_msgs = idx.insert(&prefix, &body);
            if let Some(ctx) = idx.ctx.get(&prefix) {
                rules_for(
                    &self.config,
                    &prefix,
                    &body,
                    &ctx.bodies,
                    &idx.universe,
                    &mut out,
                );
                reverse_rules(&self.config, &prefix, &body, ctx, &mut out);
            }
            fresh_closure(idx, &new_msgs, &mut out);
            self.apply(&mut out, Some(queue));
        }
    }

    /// Applies pending emissions, charging the budget per attempt exactly
    /// as the rules did when they fired inline. Returns the number of
    /// novel facts; those are also pushed onto `queue` when one is given.
    fn apply(
        &mut self,
        out: &mut Vec<Emission>,
        mut queue: Option<&mut VecDeque<Formula>>,
    ) -> usize {
        let mut added = 0;
        for e in out.drain(..) {
            let novel = if let Some(q) = queue.as_deref_mut() {
                let novel = self.add(e.conclusion.clone(), e.rule, e.premises);
                if novel {
                    q.push_back(e.conclusion);
                }
                novel
            } else {
                self.add(e.conclusion, e.rule, e.premises)
            };
            if novel {
                added += 1;
            }
        }
        added
    }
}

/// A rule firing waiting to be applied: the shared currency of the
/// worklist and rescan saturation paths, so both apply the same rules in
/// the same per-trigger order by construction.
struct Emission {
    conclusion: Formula,
    rule: DerivedRule,
    premises: Vec<Formula>,
}

impl Emission {
    fn new(conclusion: Formula, rule: DerivedRule, premises: Vec<Formula>) -> Self {
        Emission {
            conclusion,
            rule,
            premises,
        }
    }
}

/// One belief context's trigger-shape index: the bodies (for membership
/// guards) plus the fact kinds that participate in two-premise rules and
/// so must be re-firable when their partner arrives later.
#[derive(Clone, Debug, Default)]
struct CtxIndex {
    bodies: BTreeSet<Formula>,
    sees: Vec<(Principal, Message)>,
    said: Vec<(Principal, Message)>,
    says: Vec<(Principal, Message)>,
}

/// The worklist saturation's indices: per-prefix contexts, the message
/// universe, and the `fresh` facts by their message (for the freshness
/// closure against later universe arrivals).
#[derive(Clone, Debug, Default)]
struct Indexes {
    ctx: BTreeMap<Vec<Principal>, CtxIndex>,
    universe: BTreeSet<Message>,
    fresh: BTreeMap<Message, BTreeSet<Vec<Principal>>>,
}

impl Indexes {
    /// Indexes a fact, returning the messages it newly added to the
    /// universe (the freshness rules must be re-checked against those).
    fn insert(&mut self, prefix: &[Principal], body: &Formula) -> Vec<Message> {
        let ctx = self.ctx.entry(prefix.to_vec()).or_default();
        if !ctx.bodies.insert(body.clone()) {
            return Vec::new();
        }
        match body {
            Formula::Sees(p, m) => ctx.sees.push((p.clone(), (**m).clone())),
            Formula::Said(p, m) => ctx.said.push((p.clone(), (**m).clone())),
            Formula::Says(p, m) => ctx.says.push((p.clone(), (**m).clone())),
            Formula::Fresh(m) => {
                self.fresh
                    .entry((**m).clone())
                    .or_default()
                    .insert(prefix.to_vec());
            }
            _ => {}
        }
        let mut msgs = BTreeSet::new();
        collect_messages(body, &mut msgs);
        msgs.into_iter()
            .filter(|m| self.universe.insert(m.clone()))
            .collect()
    }
}

/// Collects the messages a fact contributes to the universe.
fn collect_messages(f: &Formula, out: &mut BTreeSet<Message>) {
    match f {
        Formula::Sees(_, m) | Formula::Said(_, m) | Formula::Says(_, m) => {
            out.extend(atl_lang::submsgs(m));
        }
        Formula::SharedSecret(_, m, _) | Formula::Fresh(m) => {
            out.extend(atl_lang::submsgs(m));
        }
        Formula::Not(g) => collect_messages(g, out),
        Formula::And(a, b) => {
            collect_messages(a, out);
            collect_messages(b, out);
        }
        Formula::Believes(_, g) | Formula::Controls(_, g) => collect_messages(g, out),
        _ => {}
    }
}

/// Rules driven by one fact (possibly consulting its context): the
/// forward direction, fired when the fact itself is (re)visited.
fn rules_for(
    config: &ProverConfig,
    prefix: &[Principal],
    body: &Formula,
    ctx: &BTreeSet<Formula>,
    universe: &BTreeSet<Message>,
    out: &mut Vec<Emission>,
) {
    match body {
        Formula::And(a, b) => {
            let fact = wrap(prefix, body.clone());
            out.push(Emission::new(
                wrap(prefix, (**a).clone()),
                DerivedRule::AndSplit,
                vec![fact.clone()],
            ));
            out.push(Emission::new(
                wrap(prefix, (**b).clone()),
                DerivedRule::AndSplit,
                vec![fact],
            ));
        }
        Formula::Sees(p, m) => sees_rules(config, prefix, p, m, ctx, out),
        Formula::Has(p, k) if !config.axioms_only && prefix.len() < config.max_belief_depth => {
            let fact = wrap(prefix, body.clone());
            let mut deeper = prefix.to_vec();
            deeper.push(p.clone());
            out.push(Emission::new(
                wrap(&deeper, Formula::Has(p.clone(), k.clone())),
                DerivedRule::HasPromotion,
                vec![fact],
            ));
        }
        Formula::Said(p, m) => said_rules(prefix, p, m, false, ctx, out),
        Formula::Says(p, m) => said_rules(prefix, p, m, true, ctx, out),
        Formula::Fresh(x) => fresh_rules(prefix, x, universe, out),
        Formula::SharedKey(p, k, q) => {
            let fact = wrap(prefix, body.clone());
            out.push(Emission::new(
                wrap(prefix, Formula::shared_key(q.clone(), k.clone(), p.clone())),
                DerivedRule::Symmetry,
                vec![fact],
            ));
        }
        Formula::SharedSecret(p, y, q) => {
            let fact = wrap(prefix, body.clone());
            out.push(Emission::new(
                wrap(
                    prefix,
                    Formula::shared_secret(q.clone(), (**y).clone(), p.clone()),
                ),
                DerivedRule::Symmetry,
                vec![fact],
            ));
        }
        _ => {}
    }
}

/// The reverse direction of the two-premise rules: a newly arrived
/// context fact re-fires the indexed facts it can pair with. Re-firing
/// re-emits earlier single-premise conclusions too; applying an emission
/// deduplicates against the fact set, so that costs a budget charge
/// (exactly as a rescan pass would) but never a spurious fact.
fn reverse_rules(
    config: &ProverConfig,
    prefix: &[Principal],
    body: &Formula,
    ctx: &CtxIndex,
    out: &mut Vec<Emission>,
) {
    match body {
        // Has guards decryption, the believes-sees rules, and promotion —
        // all for the key holder's own sees facts.
        Formula::Has(p, _) => {
            for (seer, m) in &ctx.sees {
                if seer == p {
                    sees_rules(config, prefix, seer, m, &ctx.bodies, out);
                }
            }
        }
        // Message-meaning premises pair with any sees fact in context.
        Formula::SharedKey(..) | Formula::SharedSecret(..) | Formula::PublicKey(..) => {
            for (seer, m) in &ctx.sees {
                sees_rules(config, prefix, seer, m, &ctx.bodies, out);
            }
        }
        // A20: freshness of exactly the said message.
        Formula::Fresh(x) => {
            for (p, m) in &ctx.said {
                if m == &**x {
                    said_rules(prefix, p, m, false, &ctx.bodies, out);
                }
            }
        }
        // A15: jurisdiction pairs with says facts of the controller.
        Formula::Controls(p, _) => {
            for (q, m) in &ctx.says {
                if q == p {
                    said_rules(prefix, q, m, true, &ctx.bodies, out);
                }
            }
        }
        _ => {}
    }
}

/// The freshness rules re-checked against messages that just entered the
/// universe: `fresh(x)` facts already indexed (in any context) conclude
/// freshness of every new construction with `x` as a direct component.
fn fresh_closure(idx: &Indexes, new_msgs: &[Message], out: &mut Vec<Emission>) {
    for m in new_msgs {
        let mut fire = |x: &Message, rule: DerivedRule| {
            if let Some(prefixes) = idx.fresh.get(x) {
                for prefix in prefixes {
                    out.push(Emission::new(
                        wrap(prefix, Formula::fresh(m.clone())),
                        rule,
                        vec![wrap(prefix, Formula::fresh(x.clone()))],
                    ));
                }
            }
        };
        match m {
            Message::Tuple(items) => {
                for item in items {
                    fire(item, DerivedRule::FreshTuple);
                }
            }
            Message::Encrypted { body, .. } => fire(body, DerivedRule::FreshEncrypted),
            Message::Combined { body, .. } => fire(body, DerivedRule::FreshCombined),
            Message::Forwarded(body) => fire(body, DerivedRule::FreshForwarded),
            Message::Signed { body, .. } => fire(body, DerivedRule::FreshSigned),
            Message::PubEncrypted { body, .. } => fire(body, DerivedRule::FreshPubEnc),
            _ => {}
        }
    }
}

/// The rules a `sees` fact drives (A7–A11, A23/A24/A27/A28, message
/// meaning, sees-promotion).
fn sees_rules(
    config: &ProverConfig,
    prefix: &[Principal],
    p: &Principal,
    m: &Message,
    ctx: &BTreeSet<Formula>,
    out: &mut Vec<Emission>,
) {
    let fact = wrap(prefix, Formula::sees(p.clone(), m.clone()));
    match m {
        Message::Tuple(items) => {
            for item in items {
                out.push(Emission::new(
                    wrap(prefix, Formula::sees(p.clone(), item.clone())),
                    DerivedRule::SeesTuple,
                    vec![fact.clone()],
                ));
            }
        }
        Message::Encrypted { body: x, key, .. }
            if ctx.contains(&Formula::Has(p.clone(), key.clone())) =>
        {
            out.push(Emission::new(
                wrap(prefix, Formula::sees(p.clone(), (**x).clone())),
                DerivedRule::SeesDecrypt,
                vec![
                    fact.clone(),
                    wrap(prefix, Formula::Has(p.clone(), key.clone())),
                ],
            ));
            // A11: believing one sees the ciphertext.
            if prefix.len() < config.max_belief_depth {
                let mut deeper = prefix.to_vec();
                deeper.push(p.clone());
                out.push(Emission::new(
                    wrap(&deeper, Formula::sees(p.clone(), m.clone())),
                    DerivedRule::BelievesSeesCipher,
                    vec![fact.clone()],
                ));
            }
        }
        Message::Signed { body: x, key, .. }
            // A23: the verification key opens the signature.
            if ctx.contains(&Formula::Has(p.clone(), key.clone())) =>
        {
            out.push(Emission::new(
                wrap(prefix, Formula::sees(p.clone(), (**x).clone())),
                DerivedRule::SeesSigned,
                vec![fact.clone()],
            ));
            // A27: believing one sees the signature.
            if prefix.len() < config.max_belief_depth {
                let mut deeper = prefix.to_vec();
                deeper.push(p.clone());
                out.push(Emission::new(
                    wrap(&deeper, Formula::sees(p.clone(), m.clone())),
                    DerivedRule::BelievesSeesSigned,
                    vec![fact.clone()],
                ));
            }
        }
        Message::PubEncrypted { body: x, key, .. } => {
            // A24: the private key opens public-key ciphertext.
            let has_inverse = key.as_key().is_some_and(|k| {
                ctx.contains(&Formula::Has(p.clone(), KeyTerm::Key(k.inverse())))
            });
            if has_inverse {
                out.push(Emission::new(
                    wrap(prefix, Formula::sees(p.clone(), (**x).clone())),
                    DerivedRule::SeesPubEnc,
                    vec![fact.clone()],
                ));
                // A28: believing one sees the ciphertext.
                if prefix.len() < config.max_belief_depth {
                    let mut deeper = prefix.to_vec();
                    deeper.push(p.clone());
                    out.push(Emission::new(
                        wrap(&deeper, Formula::sees(p.clone(), m.clone())),
                        DerivedRule::BelievesSeesPubEnc,
                        vec![fact.clone()],
                    ));
                }
            }
        }
        Message::Combined { body: x, .. } => {
            out.push(Emission::new(
                wrap(prefix, Formula::sees(p.clone(), (**x).clone())),
                DerivedRule::SeesCombined,
                vec![fact.clone()],
            ));
        }
        Message::Forwarded(x) => {
            out.push(Emission::new(
                wrap(prefix, Formula::sees(p.clone(), (**x).clone())),
                DerivedRule::SeesForwarded,
                vec![fact.clone()],
            ));
        }
        _ => {}
    }
    // Message-meaning: find a shared key/secret in context.
    message_meaning(prefix, m, ctx, &fact, out);
    // Sees-promotion (semantic rule).
    if !config.axioms_only
        && prefix.len() < config.max_belief_depth
        && readable_with_held_keys(m, p, ctx)
    {
        let mut deeper = prefix.to_vec();
        deeper.push(p.clone());
        out.push(Emission::new(
            wrap(&deeper, Formula::sees(p.clone(), m.clone())),
            DerivedRule::SeesPromotion,
            vec![fact],
        ));
    }
}

/// The rules a `said`/`says` fact drives (A12/A13 analogues, A20, A15).
fn said_rules(
    prefix: &[Principal],
    p: &Principal,
    m: &Message,
    says: bool,
    ctx: &BTreeSet<Formula>,
    out: &mut Vec<Emission>,
) {
    let rebuild = |p: &Principal, x: Message| {
        if says {
            Formula::says(p.clone(), x)
        } else {
            Formula::said(p.clone(), x)
        }
    };
    let fact = wrap(prefix, rebuild(p, m.clone()));
    match m {
        Message::Tuple(items) => {
            for item in items {
                out.push(Emission::new(
                    wrap(prefix, rebuild(p, item.clone())),
                    DerivedRule::SaidTuple,
                    vec![fact.clone()],
                ));
            }
        }
        Message::Combined { body: x, .. } => {
            out.push(Emission::new(
                wrap(prefix, rebuild(p, (**x).clone())),
                DerivedRule::SaidCombined,
                vec![fact.clone()],
            ));
        }
        _ => {}
    }
    if !says {
        // A20: fresh + said ⊃ says.
        if ctx.contains(&Formula::fresh(m.clone())) {
            out.push(Emission::new(
                wrap(prefix, Formula::says(p.clone(), m.clone())),
                DerivedRule::NonceVerification,
                vec![fact, wrap(prefix, Formula::fresh(m.clone()))],
            ));
        }
    } else {
        // A15: jurisdiction over recently said formulas.
        if let Message::Formula(phi) = m {
            if ctx.contains(&Formula::controls(p.clone(), (**phi).clone())) {
                out.push(Emission::new(
                    wrap(prefix, (**phi).clone()),
                    DerivedRule::Jurisdiction,
                    vec![
                        wrap(prefix, Formula::controls(p.clone(), (**phi).clone())),
                        fact,
                    ],
                ));
            }
        }
    }
}

/// The freshness rules a `fresh` fact drives against the current message
/// universe (A16–A19, A25/A26).
fn fresh_rules(
    prefix: &[Principal],
    x: &Message,
    universe: &BTreeSet<Message>,
    out: &mut Vec<Emission>,
) {
    let fact = wrap(prefix, Formula::fresh(x.clone()));
    for m in universe {
        let (rule, fires) = match m {
            Message::Tuple(items) => (DerivedRule::FreshTuple, items.contains(x)),
            Message::Encrypted { body, .. } => (DerivedRule::FreshEncrypted, **body == *x),
            Message::Combined { body, .. } => (DerivedRule::FreshCombined, **body == *x),
            Message::Forwarded(body) => (DerivedRule::FreshForwarded, **body == *x),
            Message::Signed { body, .. } => (DerivedRule::FreshSigned, **body == *x),
            Message::PubEncrypted { body, .. } => (DerivedRule::FreshPubEnc, **body == *x),
            _ => (DerivedRule::FreshTuple, false),
        };
        if fires {
            out.push(Emission::new(
                wrap(prefix, Formula::fresh(m.clone())),
                rule,
                vec![fact.clone()],
            ));
        }
    }
}

/// A5/A6/A22 within a context: the seen message is ciphertext, a
/// signature, or a combination whose key/secret the context believes
/// shared (or whose public key it believes owned).
fn message_meaning(
    prefix: &[Principal],
    m: &Message,
    ctx: &BTreeSet<Formula>,
    sees_fact: &Formula,
    out: &mut Vec<Emission>,
) {
    match m {
        Message::Encrypted { body, key, from } => {
            for f in ctx {
                let Formula::SharedKey(p, k, q) = f else {
                    continue;
                };
                if k != key {
                    continue;
                }
                // A5 needs P ≠ S (from field); identify the said-er as
                // the peer named opposite the matching side.
                for (side, peer) in [(p, q), (q, p)] {
                    if side != from {
                        out.push(Emission::new(
                            wrap(prefix, Formula::said(peer.clone(), (**body).clone())),
                            DerivedRule::MessageMeaningKey,
                            vec![wrap(prefix, f.clone()), sees_fact.clone()],
                        ));
                    }
                }
            }
        }
        Message::Signed { body, key, .. } => {
            // A22: only the key's owner signs; no side condition.
            for f in ctx {
                let Formula::PublicKey(k, owner) = f else {
                    continue;
                };
                if k != key {
                    continue;
                }
                out.push(Emission::new(
                    wrap(prefix, Formula::said(owner.clone(), (**body).clone())),
                    DerivedRule::SignatureMeaning,
                    vec![wrap(prefix, f.clone()), sees_fact.clone()],
                ));
            }
        }
        Message::Combined { body, secret, from } => {
            for f in ctx {
                let Formula::SharedSecret(p, y, q) = f else {
                    continue;
                };
                if **y != **secret {
                    continue;
                }
                for (side, peer) in [(p, q), (q, p)] {
                    if side != from {
                        out.push(Emission::new(
                            wrap(prefix, Formula::said(peer.clone(), (**body).clone())),
                            DerivedRule::MessageMeaningSecret,
                            vec![wrap(prefix, f.clone()), sees_fact.clone()],
                        ));
                    }
                }
            }
        }
        _ => {}
    }
}

/// True if every ciphertext inside `m` is under a key the context knows
/// `p` to hold — then `hide` leaves `m` intact for `p`.
fn readable_with_held_keys(m: &Message, p: &Principal, ctx: &BTreeSet<Formula>) -> bool {
    match m {
        Message::Encrypted { body, key, .. } => {
            let held = matches!(key, KeyTerm::Key(_))
                && ctx.contains(&Formula::Has(p.clone(), key.clone()));
            held && readable_with_held_keys(body, p, ctx)
        }
        Message::Tuple(items) => items.iter().all(|i| readable_with_held_keys(i, p, ctx)),
        Message::Combined { body, secret, .. } => {
            readable_with_held_keys(body, p, ctx) && readable_with_held_keys(secret, p, ctx)
        }
        Message::Forwarded(body) => readable_with_held_keys(body, p, ctx),
        Message::PubEncrypted { body, key, .. } => {
            let held = key
                .as_key()
                .is_some_and(|k| ctx.contains(&Formula::Has(p.clone(), KeyTerm::Key(k.inverse()))));
            held && readable_with_held_keys(body, p, ctx)
        }
        Message::Signed { body, key, .. } => {
            let held = matches!(key, KeyTerm::Key(_))
                && ctx.contains(&Formula::Has(p.clone(), key.clone()));
            held && readable_with_held_keys(body, p, ctx)
        }
        Message::Formula(_) | Message::Principal(_) | Message::Key(_) | Message::Nonce(_) => true,
        Message::Param(_) | Message::Opaque => false,
    }
}

/// Saturates independent provers and checks their goals concurrently
/// over a work-stealing [`Pool`].
///
/// Each job owns its fact set — nothing is shared between jobs except,
/// optionally, one *global* [`Budget`] metered atomically across all of
/// them ([`BatchProver::with_shared_budget`]). Outcomes come back in job
/// order; without a shared budget every job is deterministic, so the
/// batch result is identical to saturating the jobs one by one (the
/// equivalence `tests/e15_parallel.rs` checks). Under a shared budget
/// the *total* work is bounded exactly (the meter admits precisely
/// `cap` charges, whatever the interleaving), but which jobs exhaust
/// first depends on scheduling — three-valued [`Verdict`]s keep that
/// honest, degrading to [`Verdict::Unknown`] rather than flipping an
/// answer.
///
/// ```
/// use atl_core::parallel::Pool;
/// use atl_core::prover::{BatchProver, Prover};
/// use atl_core::budget::Verdict;
/// use atl_lang::{Formula, Key};
/// let jobs: Vec<(Prover, Vec<Formula>)> = (0..4)
///     .map(|i| {
///         let goal = Formula::has("A", Key::new(format!("K{i}")));
///         (Prover::new([goal.clone()]), vec![goal])
///     })
///     .collect();
/// let outcomes = BatchProver::new(Pool::new(2)).prove_all(jobs);
/// assert!(outcomes.iter().all(|o| o.verdicts == [Verdict::Proved]));
/// ```
#[derive(Clone, Copy, Debug)]
pub struct BatchProver {
    pool: Pool,
    shared_budget: Option<Budget>,
}

/// The outcome of one [`BatchProver`] job.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    /// The saturated prover (fact set and trace included).
    pub prover: Prover,
    /// How the job's saturation ended.
    pub saturation: Saturation,
    /// One three-valued verdict per goal, in the goals' order.
    pub verdicts: Vec<Verdict>,
}

impl BatchProver {
    /// A batch prover where each job meters its own configured budget.
    pub fn new(pool: Pool) -> Self {
        BatchProver {
            pool,
            shared_budget: None,
        }
    }

    /// A batch prover where all jobs share one global `budget`: a single
    /// atomically-metered allowance that degrades gracefully across
    /// workers (each derivation step, whichever job takes it, charges
    /// the same meter).
    pub fn with_shared_budget(pool: Pool, budget: Budget) -> Self {
        BatchProver {
            pool,
            shared_budget: Some(budget),
        }
    }

    /// Saturates every job and answers its goals, concurrently, with
    /// outcomes in job order.
    pub fn prove_all(&self, jobs: Vec<(Prover, Vec<Formula>)>) -> Vec<BatchOutcome> {
        let meter = self.shared_budget.map(BudgetMeter::start);
        let tasks: Vec<_> = jobs
            .into_iter()
            .map(|(mut prover, goals)| {
                let meter = meter.clone();
                move || {
                    let saturation = match meter {
                        Some(m) => prover.saturate_metered(m),
                        None => prover.saturate(),
                    };
                    let verdicts = goals.iter().map(|g| prover.verdict(g)).collect();
                    BatchOutcome {
                        prover,
                        saturation,
                        verdicts,
                    }
                }
            })
            .collect();
        self.pool.run(tasks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atl_lang::{Key, Nonce};

    fn nonce(s: &str) -> Message {
        Message::nonce(Nonce::new(s))
    }

    fn kab() -> Formula {
        Formula::shared_key("A", Key::new("Kab"), "B")
    }

    #[test]
    fn sees_decrypt_requires_has() {
        let cipher = Message::encrypted(nonce("X"), Key::new("K"), Principal::new("S"));
        let mut p = Prover::new([Formula::sees("B", cipher.clone())]);
        p.saturate();
        assert!(!p.holds(&Formula::sees("B", nonce("X"))));
        p.assume(Formula::has("B", Key::new("K")));
        p.saturate();
        assert!(p.holds(&Formula::sees("B", nonce("X"))));
    }

    #[test]
    fn a11_promotes_ciphertext_sight_into_belief() {
        let cipher = Message::encrypted(nonce("X"), Key::new("K"), Principal::new("S"));
        let mut p = Prover::new([
            Formula::sees("B", cipher.clone()),
            Formula::has("B", Key::new("K")),
        ]);
        p.saturate();
        assert!(p.holds(&Formula::believes("B", Formula::sees("B", cipher))));
    }

    #[test]
    fn nonce_verification_inside_belief_context() {
        let mut p = Prover::new([
            Formula::believes("B", Formula::fresh(nonce("Ts"))),
            Formula::believes("B", Formula::said("S", nonce("Ts"))),
        ]);
        p.saturate();
        assert!(p.holds(&Formula::believes("B", Formula::says("S", nonce("Ts")))));
    }

    #[test]
    fn jurisdiction_requires_says_not_said() {
        let phi = kab();
        let mut p = Prover::new([
            Formula::believes("B", Formula::controls("S", phi.clone())),
            Formula::believes("B", Formula::said("S", phi.clone().into_message())),
        ]);
        p.saturate();
        // `said` alone is not enough — the honesty-free A15 needs `says`.
        assert!(!p.holds(&Formula::believes("B", phi.clone())));
        p.assume(Formula::believes(
            "B",
            Formula::says("S", phi.clone().into_message()),
        ));
        p.saturate();
        assert!(p.holds(&Formula::believes("B", phi)));
    }

    #[test]
    fn full_figure1_chain_for_b() {
        let ts = nonce("Ts");
        let payload = Message::tuple([ts.clone(), kab().into_message()]);
        let cipher = Message::encrypted(payload, Key::new("Kbs"), Principal::new("S"));
        let mut p = Prover::new([
            Formula::believes("B", Formula::shared_key("B", Key::new("Kbs"), "S")),
            Formula::believes("B", Formula::fresh(ts.clone())),
            Formula::believes("B", Formula::controls("S", kab())),
            Formula::has("B", Key::new("Kbs")),
            Formula::sees("B", cipher),
        ]);
        p.saturate();
        assert!(
            p.holds(&Formula::believes("B", kab())),
            "facts: {:#?}",
            p.facts()
        );
        // The intermediate says-belief is also present.
        assert!(p.holds(&Formula::believes(
            "B",
            Formula::says("S", kab().into_message())
        )));
    }

    #[test]
    fn axioms_only_mode_blocks_promotions() {
        let mut p = Prover::with_config(
            [
                Formula::has("B", Key::new("K")),
                Formula::sees("B", nonce("X")),
            ],
            ProverConfig {
                axioms_only: true,
                ..ProverConfig::default()
            },
        );
        p.saturate();
        assert!(!p.holds(&Formula::believes("B", Formula::has("B", Key::new("K")))));
        assert!(!p.holds(&Formula::believes("B", Formula::sees("B", nonce("X")))));
    }

    #[test]
    fn sees_promotion_blocked_by_unreadable_ciphertext() {
        // B forwards ciphertext it cannot read: it must not come to believe
        // it sees the plaintext-bearing message unhidden.
        let inner = Message::encrypted(nonce("X"), Key::new("Kas"), Principal::new("S"));
        let m = Message::tuple([nonce("T"), inner]);
        let mut p = Prover::new([Formula::sees("B", m.clone())]);
        p.saturate();
        assert!(!p.holds(&Formula::believes("B", Formula::sees("B", m))));
        // The readable component is still promoted.
        assert!(p.holds(&Formula::believes("B", Formula::sees("B", nonce("T")))));
    }

    #[test]
    fn message_meaning_for_secrets() {
        let pw = nonce("pw");
        let m = Message::combined(nonce("hello"), pw.clone(), Principal::new("A"));
        let mut p = Prover::new([
            Formula::believes("B", Formula::shared_secret("A", pw, "B")),
            Formula::believes("B", Formula::sees("B", m)),
        ]);
        p.saturate();
        assert!(p.holds(&Formula::believes("B", Formula::said("A", nonce("hello")))));
    }

    #[test]
    fn message_meaning_respects_from_field() {
        // A's own ciphertext (from field A) must not prove B said anything
        // via the A-side of the key.
        let cipher = Message::encrypted(nonce("X"), Key::new("Kab"), Principal::new("A"));
        let mut p = Prover::new([
            Formula::believes("A", kab()),
            Formula::believes("A", Formula::sees("A", cipher)),
        ]);
        p.saturate();
        // From field is A, so the matching side P must differ from A:
        // P = B, peer = A… wait — the conclusion names the peer of the
        // side distinct from the from field, which is B said X only when
        // the from field is A and the side P = B? No: sides (p,q) = (A,B):
        // side A == from A is skipped; side B ≠ from A concludes peer A
        // said X. So "A said X" is derivable (A did say it), but "B said
        // X" is not.
        assert!(!p.holds(&Formula::believes("A", Formula::said("B", nonce("X")))));
        assert!(p.holds(&Formula::believes("A", Formula::said("A", nonce("X")))));
    }

    #[test]
    fn freshness_rules_cover_all_constructors() {
        let x = nonce("N");
        let enc = Message::encrypted(x.clone(), Key::new("K"), Principal::new("A"));
        let comb = Message::combined(x.clone(), nonce("Y"), Principal::new("A"));
        let fwd = Message::forwarded(x.clone());
        let tup = Message::tuple([x.clone(), nonce("Z")]);
        let mut p = Prover::new([
            Formula::fresh(x),
            // Mention the composite messages so they enter the universe.
            Formula::sees(
                "A",
                Message::tuple([enc.clone(), comb.clone(), fwd.clone(), tup.clone()]),
            ),
        ]);
        p.saturate();
        for m in [enc, comb, fwd, tup] {
            assert!(p.holds(&Formula::fresh(m.clone())), "not fresh: {m}");
        }
    }

    #[test]
    fn goal_conjunctions_decompose() {
        let mut p = Prover::new([
            Formula::believes("A", Formula::has("A", Key::new("K1"))),
            Formula::believes("A", Formula::has("A", Key::new("K2"))),
        ]);
        p.saturate();
        let goal = Formula::believes(
            "A",
            Formula::and(
                Formula::has("A", Key::new("K1")),
                Formula::has("A", Key::new("K2")),
            ),
        );
        assert!(p.holds(&goal));
    }

    #[test]
    fn tiny_step_budget_exhausts_without_losing_facts() {
        let ts = nonce("Ts");
        let payload = Message::tuple([ts.clone(), kab().into_message()]);
        let cipher = Message::encrypted(payload, Key::new("Kbs"), Principal::new("S"));
        let seeds = [
            Formula::believes("B", Formula::shared_key("B", Key::new("Kbs"), "S")),
            Formula::believes("B", Formula::fresh(ts)),
            Formula::believes("B", Formula::controls("S", kab())),
            Formula::has("B", Key::new("Kbs")),
            Formula::sees("B", cipher),
        ];
        let mut p = Prover::with_config(
            seeds.clone(),
            ProverConfig {
                budget: Budget::unlimited().steps(10),
                ..ProverConfig::default()
            },
        );
        let outcome = p.saturate();
        let Saturation::BudgetExhausted { facts, steps } = outcome else {
            panic!("expected exhaustion, got {outcome:?}");
        };
        assert_eq!(steps, 10);
        assert!(facts >= seeds.len(), "seeded facts must survive");
        assert_eq!(p.facts().len(), facts);
        // Everything derived before the cutoff is retained and resumable:
        // a fresh saturation with an unlimited budget reaches the goal.
        let kept = p.facts().len();
        assert!(p.saturate_with(Budget::unlimited()).is_complete());
        assert!(p.facts().len() >= kept);
        assert!(p.holds(&Formula::believes("B", kab())));
    }

    #[test]
    fn verdict_is_unknown_only_under_exhaustion() {
        let goal = Formula::believes("B", Formula::says("S", nonce("Ts")));
        let seeds = [
            Formula::believes("B", Formula::fresh(nonce("Ts"))),
            Formula::believes("B", Formula::said("S", nonce("Ts"))),
        ];
        // Budget too small to derive the says-belief: unknown.
        let mut p = Prover::with_config(
            seeds.clone(),
            ProverConfig {
                budget: Budget::unlimited().steps(0),
                ..ProverConfig::default()
            },
        );
        p.saturate();
        assert!(p.budget_exhausted());
        assert_eq!(p.verdict(&goal), Verdict::Unknown);
        // Unlimited: proved.
        let mut p = Prover::new(seeds);
        assert!(p.saturate().is_complete());
        assert_eq!(p.verdict(&goal), Verdict::Proved);
        // Complete saturation that genuinely cannot derive it: not proved.
        let mut p = Prover::new([Formula::believes("B", Formula::said("S", nonce("Ts")))]);
        assert!(p.saturate().is_complete());
        assert_eq!(p.verdict(&goal), Verdict::NotProved);
    }

    #[test]
    fn fact_budget_caps_the_set_size() {
        let tup = Message::tuple([nonce("a"), nonce("b"), nonce("c"), nonce("d")]);
        let mut p = Prover::with_config(
            [Formula::sees("B", tup)],
            ProverConfig {
                budget: Budget::unlimited().facts(3),
                ..ProverConfig::default()
            },
        );
        let outcome = p.saturate();
        assert!(!outcome.is_complete());
        assert!(p.facts().len() <= 3);
    }

    /// A figure-1-shaped seed set with enough rule interplay (decryption,
    /// message meaning, nonce verification, jurisdiction) to exercise
    /// every trigger direction of the worklist.
    fn figure1_seeds() -> Vec<Formula> {
        let msg = Message::encrypted(
            Message::tuple([nonce("Ts"), kab().into_message()]),
            Key::new("Kbs"),
            "S",
        );
        vec![
            Formula::believes("B", Formula::shared_key("B", Key::new("Kbs"), "S")),
            Formula::believes("B", Formula::fresh(nonce("Ts"))),
            Formula::believes("B", Formula::controls("S", kab())),
            Formula::has("B", Key::new("Kbs")),
            Formula::sees("B", msg),
        ]
    }

    #[test]
    fn delta_saturation_reaches_the_cold_fixpoint() {
        let seeds = figure1_seeds();
        // Hold back each seed in turn; the delta-resumed closure must
        // equal the cold closure over the full set.
        for held_out in 0..seeds.len() {
            let mut warm = Prover::new(
                seeds
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != held_out)
                    .map(|(_, f)| f.clone()),
            );
            assert!(warm.saturate().is_complete());
            assert!(warm.saturate_delta([seeds[held_out].clone()]).is_complete());
            let mut cold = Prover::new(seeds.iter().cloned());
            cold.saturate();
            assert_eq!(
                warm.facts(),
                cold.facts(),
                "held-out seed {held_out} diverged"
            );
        }
    }

    #[test]
    fn delta_with_known_fact_is_a_no_op() {
        let mut p = Prover::new(figure1_seeds());
        p.saturate();
        let n = p.facts().len();
        let outcome = p.saturate_delta([Formula::has("B", Key::new("Kbs"))]);
        assert_eq!(outcome, Saturation::Complete { new_facts: 0 });
        assert_eq!(p.facts().len(), n);
    }

    #[test]
    fn delta_falls_back_when_not_at_a_fixpoint() {
        // An assume() between saturations invalidates the fixpoint, so
        // the delta path must re-run the full saturation and still land
        // on the cold closure.
        let seeds = figure1_seeds();
        let mut warm = Prover::new(seeds[..3].iter().cloned());
        warm.saturate();
        warm.assume(seeds[3].clone());
        warm.saturate_delta([seeds[4].clone()]);
        let mut cold = Prover::new(seeds.iter().cloned());
        cold.saturate();
        assert_eq!(warm.facts(), cold.facts());
        // A never-saturated prover likewise falls back.
        let mut fresh = Prover::new(seeds[..4].iter().cloned());
        fresh.saturate_delta([seeds[4].clone()]);
        assert_eq!(fresh.facts(), cold.facts());
    }

    #[test]
    fn at_fixpoint_resumes_a_stored_closure() {
        let seeds = figure1_seeds();
        let mut base = Prover::new(seeds[..4].iter().cloned());
        base.saturate();
        // Rebuild from the bare fact set (as a stored annotation level
        // would be) and extend incrementally.
        let mut resumed =
            Prover::at_fixpoint(base.facts().iter().cloned(), ProverConfig::default());
        assert!(resumed.saturate_delta([seeds[4].clone()]).is_complete());
        let mut cold = Prover::new(seeds.iter().cloned());
        cold.saturate();
        assert_eq!(resumed.facts(), cold.facts());
        assert!(resumed.holds(&Formula::believes("B", kab())));
    }

    #[test]
    fn delta_respects_the_rescan_engine() {
        let seeds = figure1_seeds();
        let config = ProverConfig {
            use_worklist: false,
            ..ProverConfig::default()
        };
        let mut warm = Prover::with_config(seeds[..4].iter().cloned(), config);
        warm.saturate();
        warm.saturate_delta([seeds[4].clone()]);
        let mut cold = Prover::with_config(seeds.iter().cloned(), config);
        cold.saturate();
        assert_eq!(warm.facts(), cold.facts());
    }

    #[test]
    fn trace_names_rules() {
        let mut p = Prover::new([Formula::fresh(nonce("N")), Formula::said("S", nonce("N"))]);
        p.saturate();
        let step = p
            .derivation_of(&Formula::says("S", nonce("N")))
            .expect("derived");
        assert_eq!(step.rule, DerivedRule::NonceVerification);
        assert!(step.rule.to_string().contains("A20"));
    }
}
