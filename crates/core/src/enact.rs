//! Enacting idealized protocols as concrete model executions.
//!
//! The annotation procedure ([`analyze_at`](crate::annotate::analyze_at))
//! reasons about an [`AtProtocol`] symbolically; this module turns the
//! same description into an executable [`Protocol`](atl_model::Protocol)
//! for the Section 5 model, so the *run* a protocol induces can be
//! produced, audited against restrictions 1–5, and subjected to fault
//! injection ([`atl_model::execute_with_faults`]).
//!
//! The translation is direct: each `from → to : M` step becomes a `send`
//! in `from`'s role and a matching expect in `to`'s role. Initial key
//! sets come from the protocol's top-level `P has K` assumptions,
//! augmented with the keys each sender needs to *construct* its own
//! ciphertext (a `{X}K@P` sent by `P` implies `P` holds `K` — in the
//! idealized protocol that possession is usually implicit in an earlier
//! ticket).

use crate::annotate::{AtProtocol, AtStep};
use atl_lang::{Formula, Key, KeyTerm, Message, Principal};
use atl_model::{ExpectPolicy, MsgPattern, Protocol, Role, RoleStep};
use std::collections::{BTreeMap, BTreeSet};

/// Options for [`enact_with`].
#[derive(Clone, Copy, Debug, Default)]
pub struct EnactOptions {
    /// The timeout/retry policy attached to every generated expect step.
    /// The default waits forever (faithful to the idealized protocol);
    /// fault-injection callers typically pass a skip or resend policy so
    /// lossy executions degrade instead of stalling.
    pub expect_policy: ExpectPolicy,
}

/// Enacts `protocol` as an executable model protocol with expects that
/// wait forever.
pub fn enact(protocol: &AtProtocol) -> Protocol {
    enact_with(protocol, EnactOptions::default())
}

/// Enacts `protocol` with explicit options.
pub fn enact_with(protocol: &AtProtocol, options: EnactOptions) -> Protocol {
    let env = Principal::environment();
    // Principals in order of first appearance (skipping the environment,
    // which the model provides implicitly).
    let mut order: Vec<Principal> = Vec::new();
    {
        let mut note = |p: &Principal| {
            if *p != env && !order.contains(p) {
                order.push(p.clone());
            }
        };
        for step in &protocol.steps {
            match step {
                AtStep::Send { from, to, .. } => {
                    note(from);
                    note(to);
                }
                AtStep::NewKey { principal, .. } => note(principal),
            }
        }
    }

    // Initial keys: explicit possession assumptions, plus whatever each
    // sender needs to construct its own ciphertext.
    let mut keys: BTreeMap<Principal, BTreeSet<Key>> = BTreeMap::new();
    for a in &protocol.assumptions {
        if let Formula::Has(p, KeyTerm::Key(k)) = a {
            keys.entry(p.clone()).or_default().insert(k.clone());
        }
    }
    for step in &protocol.steps {
        if let AtStep::Send { from, message, .. } = step {
            construction_keys(message, from, keys.entry(from.clone()).or_default());
        }
    }

    let mut roles: Vec<Role> = order
        .iter()
        .map(|p| Role::new(p.clone(), keys.get(p).cloned().unwrap_or_default()))
        .collect();
    let index = |p: &Principal, order: &[Principal]| order.iter().position(|q| q == p);
    for step in &protocol.steps {
        match step {
            AtStep::Send { from, to, message } => {
                if let Some(i) = index(from, &order) {
                    roles[i].steps.push(RoleStep::Send {
                        message: message.clone(),
                        to: to.clone(),
                    });
                }
                if to != from {
                    if let Some(i) = index(to, &order) {
                        roles[i].steps.push(RoleStep::Expect {
                            pattern: MsgPattern::Exact(message.clone()),
                            policy: options.expect_policy,
                        });
                    }
                }
            }
            AtStep::NewKey { principal, key } => {
                if let Some(i) = index(principal, &order) {
                    roles[i].steps.push(RoleStep::NewKey(key.clone()));
                }
            }
        }
    }

    let mut proto = Protocol::new(protocol.name.clone());
    for role in roles {
        proto = proto.role(role);
    }
    proto
}

/// Keys `sender` must hold to construct `m` itself: the key of every
/// ciphertext (and the signing key of every signature) whose from field
/// names `sender`. Ciphertext attributed to others is forwarded, not
/// constructed, and needs sight rather than keys.
fn construction_keys(m: &Message, sender: &Principal, out: &mut BTreeSet<Key>) {
    match m {
        Message::Encrypted { body, key, from } | Message::PubEncrypted { body, key, from } => {
            if from == sender {
                if let Some(k) = key.as_key() {
                    out.insert(k.clone());
                }
            }
            construction_keys(body, sender, out);
        }
        Message::Signed { body, key, from } => {
            if from == sender {
                if let Some(k) = key.as_key() {
                    out.insert(k.inverse());
                }
            }
            construction_keys(body, sender, out);
        }
        Message::Tuple(items) => {
            for item in items {
                construction_keys(item, sender, out);
            }
        }
        Message::Combined { body, secret, .. } => {
            construction_keys(body, sender, out);
            construction_keys(secret, sender, out);
        }
        Message::Forwarded(body) => construction_keys(body, sender, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atl_lang::Nonce;
    use atl_model::{
        execute, execute_with_faults, validate_run, ExecOptions, FaultKind, FaultPlan,
    };

    fn kab() -> Formula {
        Formula::shared_key("A", Key::new("Kab"), "B")
    }

    /// Figure 1 (Kerberos fragment) as an idealized protocol.
    fn figure1() -> AtProtocol {
        let ts = Message::nonce(Nonce::new("Ts"));
        let inner = Message::encrypted(
            Message::tuple([ts.clone(), kab().into_message()]),
            Key::new("Kbs"),
            "S",
        );
        let outer = Message::encrypted(
            Message::tuple([ts, kab().into_message(), inner.clone()]),
            Key::new("Kas"),
            "S",
        );
        AtProtocol::new("kerberos-enacted")
            .assume(Formula::has("A", Key::new("Kas")))
            .assume(Formula::has("B", Key::new("Kbs")))
            .step("S", "A", outer)
            .step("A", "B", inner)
    }

    #[test]
    fn enacted_figure1_executes_to_wellformed_run() {
        let proto = enact(&figure1());
        assert_eq!(proto.roles().len(), 3);
        // S constructs both ciphertexts, so it is granted both keys.
        let s = &proto.roles()[0];
        assert_eq!(s.principal, Principal::new("S"));
        assert!(s.initial_keys.contains(&Key::new("Kas")));
        assert!(s.initial_keys.contains(&Key::new("Kbs")));
        // A only holds its own key; the forwarded ticket needs sight, not
        // possession.
        let a = &proto.roles()[1];
        assert!(a.initial_keys.contains(&Key::new("Kas")));
        assert!(!a.initial_keys.contains(&Key::new("Kbs")));
        let run = execute(&proto, &ExecOptions::default()).expect("executes");
        assert!(validate_run(&run).is_empty(), "{:?}", validate_run(&run));
        assert_eq!(run.send_records().len(), 2);
    }

    #[test]
    fn enacted_protocol_degrades_under_faults() {
        let at = figure1();
        let proto = enact_with(
            &at,
            EnactOptions {
                expect_policy: ExpectPolicy::skip_after(4),
            },
        );
        let plan = FaultPlan::new(1).drop(1.0);
        let (run, report) =
            execute_with_faults(&proto, &ExecOptions::default(), &plan).expect("degrades");
        assert!(validate_run(&run).is_empty());
        assert!(report.degraded());
        assert!(report.faults_of(FaultKind::Drop).count() >= 1);
    }

    #[test]
    fn environment_gets_no_role() {
        let at = AtProtocol::new("leak").step(
            "A",
            Principal::environment(),
            Message::nonce(Nonce::new("X")),
        );
        let proto = enact(&at);
        assert_eq!(proto.roles().len(), 1);
        let run = execute(&proto, &ExecOptions::default()).expect("executes");
        assert!(validate_run(&run).is_empty());
    }

    #[test]
    fn newkey_steps_carry_over() {
        let at = AtProtocol::new("nk").new_key("A", "K9");
        let proto = enact(&at);
        assert!(matches!(
            proto.roles()[0].steps[0],
            RoleStep::NewKey(ref k) if k == &Key::new("K9")
        ));
    }
}
