//! Serve mode: a long-lived daemon answering `analyze`/`eval`/`inject`
//! queries from warmed per-spec caches, over a bounded connection pool.
//!
//! The one-shot CLI re-parses and re-analyzes a spec on every
//! invocation. [`Server`] instead holds each loaded spec in a
//! [`Session`]: the parsed [`AtProtocol`], the pre-rendered analysis
//! report, the fault-free execution as a [`System`], the Section 7
//! good-run vector, and an [`EvalCache`] prewarmed over an
//! `Arc<FrozenInterner>` snapshot — so repeat queries are cache
//! lookups, not reconstructions. Fault-plan executions go through one
//! **server-global** [`ExecutionCache`] keyed by `(protocol+options
//! digest, plan fingerprint)`, so identical plans dedupe across
//! sessions — and across spec files that differ only in comments, since
//! the key hashes the enacted protocol, not the spec bytes.
//!
//! # Connection pool and backpressure
//!
//! The accept loop never spawns per-connection threads. A fixed set of
//! connection workers (`--conn-workers`, mirroring the hand-rolled
//! `atl-model::parallel` pool: plain `Mutex` + `Condvar`, poison
//! tolerated) drains a bounded accept queue (`--queue-depth`). When the
//! queue is full the daemon answers a fast one-line `ERR busy` and
//! closes, rather than piling up unbounded threads; when the shutdown
//! flag is up, accepted-but-unserved connections (including any still
//! queued) get a framed `ERR shutting down` instead of a silently
//! dropped socket. Time spent queued does not count against
//! `--idle-timeout` — the idle clock starts when a worker picks the
//! connection up — and `SHUTDOWN` still waits, bounded by `--drain`,
//! for in-flight requests to finish writing.
//!
//! # Wire protocol
//!
//! Line-delimited over loopback TCP. Each request is one line (at most
//! [`MAX_REQUEST_BYTES`] bytes); each response is either
//!
//! ```text
//! OK <n>          followed by exactly n payload lines
//! ERR <message>   one line, always parseable
//! ```
//!
//! Requests:
//!
//! ```text
//! LOAD <spec-path>                 parse + warm a session (idempotent by
//!                                  canonicalized content: comments and
//!                                  surrounding whitespace don't count)
//! RELOAD <id> <spec-path>          re-point a live session at an edited
//!                                  spec, reusing every stage and cache
//!                                  the edit leaves untouched (see
//!                                  "Incremental reload" below)
//! ANALYZE <id>                     the annotation report, bytes of `atl analyze`
//! EVAL <id> <run:time|time> <phi>  semantic evaluation at a point
//! INJECT <id> <fault-flags>        single-plan belief-survival report,
//!                                  bytes of `atl inject`
//! SWEEP <id> policy=<p> options=<o> plans=<plan>;<plan>;…
//!                                  execute a shard of fault plans, one
//!                                  wire-rendered outcome per plan
//! HUNT <id> [seed=N] [budget=N] [batch=N]
//!                                  coverage-guided attack search over the
//!                                  session's fault-plan space, bytes of
//!                                  `atl hunt` (see `crate::hunt`)
//! STATS                            session/cache counters (fixed 11-line text)
//! METRICS                          Prometheus-style text exposition
//!                                  (crate::metrics): per-verb latency
//!                                  histograms, queue/worker gauges,
//!                                  backpressure and cache counters
//! SHUTDOWN                         stop accepting and wind down
//! ```
//!
//! `SWEEP` is the worker half of the distributed fabric
//! (`crate::fabric`): plans arrive in the exact [`atl_model::wire`]
//! rendering, execute against the global [`ExecutionCache`], and the
//! response carries each outcome keyed by its fingerprint digest —
//! `outcome <i> fp=<16 hex> lines=<n>` followed by `n` lines of
//! [`atl_model::wire::render_outcome`].
//!
//! # Incremental reload
//!
//! `RELOAD <id> <path>` diffs the newly parsed spec against the
//! session's current one ([`crate::spec::SpecDiff`]) and rebuilds only
//! what the edit invalidates: the annotation closure resumes from its
//! previous fixpoint when assumptions were only added or reordered
//! (delta saturation), the enacted protocol — and with it the executed
//! [`System`], the frozen-interner snapshot, and the warmed
//! [`EvalCache`] — is kept whenever the edit is goal/belief-only, the
//! Section 7 construction resumes from the first invalidated stage via
//! its [`ConstructionCheckpoint`], and an edited system rewarms its
//! cache pointwise ([`EvalCache` delta prewarm]) instead of from
//! scratch. The reloaded session keeps its id, records its parent's
//! digest as lineage, and answers every query **byte-identically** to a
//! cold `LOAD` of the edited spec — the reuse conditions are all
//! equality-gated on the inputs that determine each answer. `STATS`
//! line 3 and the `atl_serve_reload_*` metrics count how often the
//! delta path (something reused) versus the full path (nothing
//! reusable) ran.
//!
//! Sessions are evicted least-recently-used beyond `--max-sessions`;
//! re-`LOAD`ing an evicted spec rebuilds it (new id) and every query
//! answer is byte-identical to the pre-eviction bytes, because session
//! ids never appear in query payloads. Malformed requests and
//! mid-request disconnects produce per-connection `ERR`s (or a dropped
//! connection) without touching other sessions; an oversized request
//! line is drained through its terminating newline (bounded by
//! [`MAX_DRAIN_BYTES`]) before the `ERR` goes out, so a pipelined
//! follow-up request on the same connection still parses from a line
//! boundary. A connection idle past the configured timeout is reaped
//! (counted in `STATS`) rather than pinning its worker forever, and
//! `SHUTDOWN` waits — up to a bounded drain deadline — for in-flight
//! requests to finish writing before the accept loop exits. The
//! conformance harnesses live in `tests/e17_serve.rs` (protocol) and
//! `tests/e19_pool.rs` (pool widths, backpressure, metrics).

use crate::annotate::{analyze_at_resumable, AnalysisResume, AtProtocol};
use crate::enact::{enact, enact_with, EnactOptions};
use crate::goodruns::{construct_checkpointed_with, resume_construct_with, ConstructionCheckpoint};
use crate::hunt::{default_space, hunt_report, HuntSettings};
use crate::inject::{inject_report, InjectRequest};
use crate::metrics::{ExtraMetric, MetricKind, ServeMetrics, Verb};
use crate::monitor::{Monitor, MonitorStats};
use crate::parallel::Pool;
use crate::semantics::{EvalCache, GoodRuns, RewarmStats, Semantics};
use crate::spec::{canonicalize_spec, parse_spec, SpecDiff};
use crate::sweep::belief_assumptions;
use atl_lang::parser::{parse_formula, Symbols};
use atl_lang::Key;
use atl_model::wire::{parse_checkpoint, parse_plan_list, render_checkpoint, render_outcome};
use atl_model::{
    execute_with_faults, sweep_plans_on, ExecOptions, ExecutionCache, ExpectPolicy, FaultPlan,
    HuntConfig, OnTimeout, Point, Protocol, System,
};
use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Longest request line the daemon accepts, in bytes. A longer line is
/// answered with one `ERR` after its remainder is drained through the
/// terminating newline, so the connection stays usable for pipelined
/// follow-ups.
pub const MAX_REQUEST_BYTES: usize = 64 * 1024;

/// How much of an oversized line the daemon will discard looking for
/// the terminating newline before giving up and closing the connection
/// (a client streaming an unbounded junk line must not pin a worker).
pub const MAX_DRAIN_BYTES: usize = 16 * MAX_REQUEST_BYTES;

/// The default serve port (`--port` overrides; `0` asks the OS for an
/// ephemeral port, which tests use).
pub const DEFAULT_PORT: u16 = 7641;

/// Configuration for [`Server::start`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// TCP port on 127.0.0.1 (0 = OS-assigned ephemeral).
    pub port: u16,
    /// How many warmed sessions to keep before LRU eviction (min 1).
    pub max_sessions: usize,
    /// Worker pool queries dispatch across (prewarming, good-run
    /// construction, the inject analysis pair).
    pub pool: Pool,
    /// How long a connection may sit idle between requests before it is
    /// reaped (`None` disables reaping). A half-open client can
    /// therefore no longer pin a connection worker forever.
    pub idle_timeout: Option<Duration>,
    /// How long `SHUTDOWN` waits for in-flight requests to finish
    /// writing before the accept loop exits anyway.
    pub drain_deadline: Duration,
    /// Connection workers: the fixed number of threads serving
    /// connections (min 1). Concurrency never exceeds this.
    pub conn_workers: usize,
    /// Accept-queue depth: how many accepted connections may wait for a
    /// worker (min 1). Overflow is answered `ERR busy` and closed.
    pub queue_depth: usize,
    /// Capacity of the global [`ExecutionCache`] (`None` = unbounded).
    /// Eviction is oldest-inserted-first and never invalidates outcomes
    /// already handed to in-flight requests.
    pub exec_cache_capacity: Option<usize>,
    /// Directory where monitor sessions checkpoint after every event
    /// (`None` disables persistence). On start the daemon replays every
    /// checkpoint found there, so monitors survive a restart.
    pub monitor_store: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            port: DEFAULT_PORT,
            max_sessions: 8,
            pool: Pool::auto(),
            idle_timeout: Some(Duration::from_secs(300)),
            drain_deadline: Duration::from_secs(10),
            conn_workers: 8,
            queue_depth: 64,
            exec_cache_capacity: None,
            monitor_store: None,
        }
    }
}

/// Session/cache counters, surfaced by the `STATS` request and by
/// [`Server::stats`] for in-process tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// `LOAD` requests served.
    pub loads: u64,
    /// `LOAD`s that parsed and warmed a new session.
    pub parsed: u64,
    /// `LOAD`s answered by an existing session (same spec bytes).
    pub load_hits: u64,
    /// Sessions evicted by the LRU policy.
    pub evictions: u64,
    /// `RELOAD` requests served (successfully re-pointed a session).
    pub reloads: u64,
    /// `RELOAD`s that reused at least one stage/cache from the prior
    /// session (including the unchanged-content no-op).
    pub reload_delta: u64,
    /// `RELOAD`s that could reuse nothing and rebuilt everything.
    pub reload_full: u64,
    /// `ANALYZE` requests served (always from the pre-rendered report).
    pub analyze_served: u64,
    /// `EVAL` requests served.
    pub eval_served: u64,
    /// `EVAL`s answered from the per-session memo without re-evaluating.
    pub eval_warm: u64,
    /// `INJECT` requests served.
    pub inject_served: u64,
    /// `INJECT`s answered from the per-session memo without executing.
    pub inject_warm: u64,
    /// `INJECT`s whose execution was answered by the [`ExecutionCache`].
    pub inject_exec_hits: u64,
    /// `SWEEP` shards served.
    pub sweep_served: u64,
    /// Fault plans received across all `SWEEP` shards.
    pub sweep_plans: u64,
    /// `SWEEP` plans whose execution was answered by the shared
    /// [`ExecutionCache`] (cross-shard and cross-session dedupe).
    pub sweep_exec_hits: u64,
    /// `HUNT` requests served.
    pub hunts_served: u64,
    /// Fault-plan executions spent across all `HUNT` requests
    /// (mutation rounds plus shrinking probes).
    pub hunt_plans: u64,
    /// Distinct degradation classes reported across all `HUNT`
    /// requests.
    pub hunt_classes: u64,
    /// Connections closed for sitting idle past the timeout.
    pub reaped: u64,
    /// Monitor sessions opened (`MONITOR` requests plus checkpoints
    /// replayed at startup).
    pub monitors: u64,
    /// Trace events ingested across all monitor sessions.
    pub monitor_events: u64,
    /// Memoized point sets monitor extensions carried over instead of
    /// recomputing.
    pub monitor_points_reused: u64,
    /// Monitor events served by the incremental path (one delta
    /// saturation + one cache append).
    pub monitor_delta: u64,
    /// Monitor events that required a full prefix build and prewarm
    /// (the first buildable prefix of each session).
    pub monitor_full: u64,
}

/// One response on the wire: `OK` with payload lines, or a one-line
/// `ERR`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// True for `OK`, false for `ERR`.
    pub ok: bool,
    /// Payload lines (`OK`) or the single error message (`ERR`).
    pub lines: Vec<String>,
}

impl Response {
    /// An `OK` response carrying `text` split into lines.
    pub fn from_text(text: &str) -> Response {
        Response {
            ok: true,
            lines: text.lines().map(str::to_string).collect(),
        }
    }

    /// An `ERR` response (newlines flattened so it stays one line).
    pub fn err(message: impl Into<String>) -> Response {
        let msg: String = message
            .into()
            .chars()
            .map(|c| if c == '\n' || c == '\r' { ' ' } else { c })
            .collect();
        Response {
            ok: false,
            lines: vec![msg],
        }
    }

    /// The payload as the exact text a one-shot CLI command prints: the
    /// lines joined with trailing newlines (empty payload → empty
    /// string).
    pub fn payload(&self) -> String {
        let mut out = String::new();
        for l in &self.lines {
            out.push_str(l);
            out.push('\n');
        }
        out
    }

    /// The error message, if this is an `ERR` response.
    pub fn err_message(&self) -> Option<&str> {
        if self.ok {
            None
        } else {
            self.lines.first().map(String::as_str)
        }
    }

    /// The session id of a `LOAD` response (`session <id>: …`).
    pub fn session_id(&self) -> Option<u64> {
        let first = self.lines.first()?;
        let id = first.strip_prefix("session ")?.split(':').next()?;
        id.parse().ok()
    }

    fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        let mut out = String::new();
        if self.ok {
            out.push_str(&format!("OK {}\n", self.lines.len()));
            for l in &self.lines {
                out.push_str(l);
                out.push('\n');
            }
        } else {
            out.push_str("ERR ");
            out.push_str(self.lines.first().map(String::as_str).unwrap_or(""));
            out.push('\n');
        }
        w.write_all(out.as_bytes())
    }
}

/// A warmed spec: everything `LOAD` builds once so later queries only
/// read caches.
struct Session {
    id: u64,
    digest: u64,
    /// The canonical digest of the spec this session was `RELOAD`ed
    /// from, when it was (lineage; `None` for a fresh `LOAD`).
    parent: Option<u64>,
    at: AtProtocol,
    syms: Symbols,
    /// The annotation run packaged for in-place resumption. A `RELOAD`
    /// *takes* it (the session is retiring anyway) and advances the
    /// provers directly — no per-level clone, no re-indexing. `None`
    /// only after a concurrent reload already claimed it, in which case
    /// the loser re-analyzes cold.
    resume: Mutex<Option<AnalysisResume>>,
    /// Pre-rendered `atl analyze` report (and whether every goal held).
    analysis_text: String,
    /// The enacted default protocol — the executor-visible surface. Two
    /// specs with equal `proto` execute identically, which is what lets
    /// `RELOAD` keep the system for goal/belief-only edits.
    proto: Protocol,
    /// The fault-free execution, if the spec runs to completion.
    system: Option<System>,
    /// Why there is no system, when there is none.
    no_system: String,
    /// Good-run vector over `system` (Section 7 construction, falling
    /// back to the all-runs vector exactly as the sweep bridge does).
    goods: GoodRuns,
    /// Per-stage record of the construction, for `RELOAD` resume
    /// (`None` when the construction fell back or there is no system).
    checkpoint: Option<ConstructionCheckpoint>,
    /// Prewarmed evaluation cache holding the frozen-interner snapshot.
    warmed: EvalCache,
    eval_memo: Mutex<HashMap<String, Response>>,
    inject_memo: Mutex<HashMap<String, Response>>,
}

impl Session {
    /// The `LOAD` response payload for this session.
    fn load_line(&self) -> String {
        format!(
            "session {}: protocol {} ({} assumption(s), {} step(s), {} goal(s))",
            self.id,
            self.at.name,
            self.at.assumptions.len(),
            self.at.steps.len(),
            self.at.goals.len()
        )
    }
}

#[derive(Default)]
struct Store {
    sessions: HashMap<u64, Arc<Session>>,
    by_digest: HashMap<u64, u64>,
    /// Session ids from least- to most-recently used.
    recency: Vec<u64>,
    next_id: u64,
    stats: ServeStats,
}

impl Store {
    fn touch(&mut self, id: u64) {
        self.recency.retain(|&x| x != id);
        self.recency.push(id);
    }
}

/// The bounded accept queue between the accept loop and the connection
/// workers: plain `Mutex` + `Condvar`, mirroring
/// `atl_model::parallel::Pool`'s hand-rolled discipline (no channels,
/// poison tolerated).
struct AcceptQueue {
    capacity: usize,
    inner: Mutex<QueueInner>,
    ready: Condvar,
}

#[derive(Default)]
struct QueueInner {
    items: VecDeque<TcpStream>,
    closed: bool,
}

impl AcceptQueue {
    fn new(capacity: usize) -> AcceptQueue {
        AcceptQueue {
            capacity: capacity.max(1),
            inner: Mutex::new(QueueInner::default()),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueues an accepted connection, or hands it back when the queue
    /// is full (backpressure) or already closed (shutdown).
    fn push(&self, stream: TcpStream) -> Result<(), TcpStream> {
        let mut inner = self.lock();
        if inner.closed || inner.items.len() >= self.capacity {
            return Err(stream);
        }
        inner.items.push_back(stream);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next queued connection; `None` once the queue is
    /// closed and drained, which is each worker's exit signal.
    fn pop(&self) -> Option<TcpStream> {
        let mut inner = self.lock();
        loop {
            if let Some(stream) = inner.items.pop_front() {
                return Some(stream);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue, wakes every worker, and returns whatever was
    /// still waiting so the caller can refuse it with a framed error.
    fn close(&self) -> Vec<TcpStream> {
        let mut inner = self.lock();
        inner.closed = true;
        let leftover: Vec<TcpStream> = inner.items.drain(..).collect();
        drop(inner);
        self.ready.notify_all();
        leftover
    }
}

struct ServerState {
    addr: SocketAddr,
    max_sessions: usize,
    pool: Pool,
    idle_timeout: Option<Duration>,
    drain_deadline: Duration,
    conn_workers: usize,
    shutdown: AtomicBool,
    /// Requests currently being handled or written; `SHUTDOWN` drains
    /// this to zero (bounded by `drain_deadline`) before the accept
    /// loop exits.
    active: AtomicUsize,
    /// Accepted connections waiting for a worker.
    queue: AcceptQueue,
    /// The server-global fault-plan execution cache: keyed by
    /// `(protocol+options digest, plan fingerprint)`, so `INJECT` and
    /// `SWEEP` dedupe identical executions across sessions.
    exec_cache: ExecutionCache,
    metrics: ServeMetrics,
    store: Mutex<Store>,
    /// Live monitor sessions, by id. Independent of the spec-session
    /// store: `RELOAD` never touches them.
    monitors: Mutex<Monitors>,
    /// Where monitor checkpoints persist (`None` = in-memory only).
    monitor_store: Option<PathBuf>,
}

#[derive(Default)]
struct Monitors {
    sessions: BTreeMap<u64, Arc<Mutex<Monitor>>>,
    next_id: u64,
}

impl ServerState {
    fn store(&self) -> MutexGuard<'_, Store> {
        // A poisoned store only means a handler panicked mid-update;
        // the maps themselves stay consistent (updates are atomic).
        self.store.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn monitors(&self) -> MutexGuard<'_, Monitors> {
        self.monitors.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn session(&self, id_text: &str) -> Result<Arc<Session>, Response> {
        let id: u64 = id_text
            .parse()
            .map_err(|_| Response::err(format!("bad session id {id_text:?}")))?;
        let mut store = self.store();
        match store.sessions.get(&id).cloned() {
            Some(s) => {
                store.touch(id);
                Ok(s)
            }
            None => Err(Response::err(format!(
                "unknown session {id} (never loaded, or evicted)"
            ))),
        }
    }
}

/// A running serve-mode daemon. Dropping the handle does **not** stop
/// it; send `SHUTDOWN` (e.g. via [`Client::shutdown`]) and then
/// [`Server::join`].
pub struct Server {
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    state: Arc<ServerState>,
}

impl Server {
    /// Binds 127.0.0.1 on `config.port` and starts the accept loop in a
    /// background thread.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from binding or thread spawning.
    pub fn start(config: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        let addr = listener.local_addr()?;
        let conn_workers = config.conn_workers.max(1);
        let state = Arc::new(ServerState {
            addr,
            max_sessions: config.max_sessions.max(1),
            pool: config.pool,
            idle_timeout: config.idle_timeout,
            drain_deadline: config.drain_deadline,
            conn_workers,
            shutdown: AtomicBool::new(false),
            active: AtomicUsize::new(0),
            queue: AcceptQueue::new(config.queue_depth),
            exec_cache: match config.exec_cache_capacity {
                Some(cap) => ExecutionCache::bounded(cap),
                None => ExecutionCache::new(),
            },
            metrics: ServeMetrics::new(),
            store: Mutex::new(Store::default()),
            monitors: Mutex::new(Monitors::default()),
            monitor_store: config.monitor_store.clone(),
        });
        if let Some(dir) = &state.monitor_store {
            std::fs::create_dir_all(dir)?;
            resume_monitors(&state, dir);
        }
        // The fixed connection workers. Handles are dropped: workers
        // exit on their own once the queue closes, and a worker blocked
        // reading a still-connected idle client must not hang
        // `Server::join` (which only joins the accept loop).
        for i in 0..conn_workers {
            let worker_state = Arc::clone(&state);
            std::thread::Builder::new()
                .name(format!("atl-serve-conn-{i}"))
                .spawn(move || worker_loop(&worker_state))?;
        }
        let accept_state = Arc::clone(&state);
        let accept = std::thread::Builder::new()
            .name("atl-serve-accept".into())
            .spawn(move || accept_loop(&listener, &accept_state))?;
        Ok(Server {
            addr,
            accept: Some(accept),
            state,
        })
    }

    /// The bound address (with the OS-assigned port when `port` was 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// A snapshot of the counters `STATS` reports.
    pub fn stats(&self) -> ServeStats {
        self.state.store().stats
    }

    /// Waits for the accept loop to exit (after a `SHUTDOWN` request).
    pub fn join(mut self) {
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Answers an accepted-but-unserved connection with a framed error
/// instead of silently dropping the socket.
fn refuse_shutting_down(state: &ServerState, mut stream: TcpStream) {
    state.metrics.shutdown_refused();
    let _ = Response::err("shutting down").write_to(&mut stream);
}

fn accept_loop(listener: &TcpListener, state: &Arc<ServerState>) {
    // The shutdown flag is only checked after `accept` returns — every
    // wake source (a real client, `cmd_shutdown`'s throwaway connect)
    // delivers a connection or an error, and checking only then
    // guarantees a connection racing the flag is refused with a framed
    // error rather than left in a backlog the dropped listener resets.
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    // Accepted between the shutdown check and the
                    // enqueue: refuse with a framed error, never a
                    // silently dropped socket.
                    refuse_shutting_down(state, stream);
                    break;
                }
                match state.queue.push(stream) {
                    Ok(()) => state.metrics.queue_entered(),
                    Err(stream) => {
                        // Backpressure: the queue is full, answer fast
                        // rather than piling up unbounded work.
                        state.metrics.rejected();
                        let mut w = stream;
                        let _ = Response::err("busy").write_to(&mut w);
                    }
                }
            }
            Err(_) => {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
    // Close the queue: workers exit once it drains, and connections
    // still queued get the same framed refusal as the race above.
    for stream in state.queue.close() {
        state.metrics.queue_left();
        refuse_shutting_down(state, stream);
    }
    // Drain: in-flight requests (including the SHUTDOWN response
    // itself) finish dispatching and writing before the loop — and with
    // it `Server::join` — returns, bounded by the drain deadline so a
    // wedged handler cannot hold shutdown hostage.
    let deadline = Instant::now() + state.drain_deadline;
    while state.active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// One connection worker: drains the accept queue until it closes. The
/// busy/idle bracket makes `busy_workers_peak` the observable proof
/// that concurrency never exceeds the configured pool width.
fn worker_loop(state: &Arc<ServerState>) {
    while let Some(stream) = state.queue.pop() {
        state.metrics.queue_left();
        state.metrics.worker_busy();
        handle_connection(state, stream);
        state.metrics.worker_idle();
    }
}

enum ReadOutcome {
    Line(String),
    /// The line exceeded [`MAX_REQUEST_BYTES`]. `resynced` is true when
    /// the terminating newline was found (possibly after draining), so
    /// the connection sits on a line boundary and may keep serving
    /// pipelined follow-ups; false means the drain gave up (EOF or
    /// [`MAX_DRAIN_BYTES`]) and the connection must close.
    TooLong {
        resynced: bool,
    },
    Eof,
}

/// Reads one request line, capped at [`MAX_REQUEST_BYTES`]. Invalid
/// UTF-8 is replaced rather than rejected (the parser then reports an
/// unknown command), and a trailing `\r` is stripped. An oversized line
/// is drained through its terminating newline so a pipelined follow-up
/// request is not parsed mid-payload.
fn read_request(r: &mut impl BufRead) -> io::Result<ReadOutcome> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if buf.is_empty() {
                ReadOutcome::Eof
            } else {
                ReadOutcome::Line(decode(buf))
            });
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            buf.extend_from_slice(&chunk[..pos]);
            r.consume(pos + 1);
            return Ok(if buf.len() > MAX_REQUEST_BYTES {
                ReadOutcome::TooLong { resynced: true }
            } else {
                ReadOutcome::Line(decode(buf))
            });
        }
        buf.extend_from_slice(chunk);
        let n = chunk.len();
        r.consume(n);
        if buf.len() > MAX_REQUEST_BYTES {
            let resynced = drain_oversized_line(r)?;
            return Ok(ReadOutcome::TooLong { resynced });
        }
    }
}

/// Discards the remainder of an oversized line through its terminating
/// newline. Returns whether the newline was found within
/// [`MAX_DRAIN_BYTES`] (true = the stream is back on a line boundary).
fn drain_oversized_line(r: &mut impl BufRead) -> io::Result<bool> {
    let mut drained = 0usize;
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            return Ok(false);
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            r.consume(pos + 1);
            return Ok(true);
        }
        drained += chunk.len();
        let n = chunk.len();
        r.consume(n);
        if drained > MAX_DRAIN_BYTES {
            return Ok(false);
        }
    }
}

fn decode(mut buf: Vec<u8>) -> String {
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8_lossy(&buf).into_owned()
}

fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) {
    // The timeout is set on the shared socket, so it governs the read
    // half cloned below: a client idle between requests for longer than
    // this trips `WouldBlock`/`TimedOut` and the connection is reaped.
    let _ = stream.set_read_timeout(state.idle_timeout);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    loop {
        match read_request(&mut reader) {
            Err(e) => {
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) {
                    state.store().stats.reaped += 1;
                    let _ =
                        Response::err("connection idle past timeout; reaped").write_to(&mut writer);
                }
                break;
            }
            Ok(ReadOutcome::Eof) => break,
            Ok(ReadOutcome::TooLong { resynced }) => {
                let resp = Response::err(format!("request line exceeds {MAX_REQUEST_BYTES} bytes"));
                let wrote = resp.write_to(&mut writer);
                // Resynced on a line boundary: pipelined follow-ups on
                // this connection still parse. Otherwise close.
                if wrote.is_err() || !resynced {
                    break;
                }
            }
            Ok(ReadOutcome::Line(line)) => {
                // A panic inside a handler must stay a per-connection
                // error: report it and keep every session intact. The
                // active count brackets dispatch *and* the response
                // write, so a draining shutdown never truncates a reply.
                let verb = Verb::of_command(line.split_whitespace().next().unwrap_or(""));
                let started = Instant::now();
                state.active.fetch_add(1, Ordering::SeqCst);
                let resp = catch_unwind(AssertUnwindSafe(|| dispatch(state, &line)))
                    .unwrap_or_else(|_| Response::err("internal: request handler panicked"));
                // Observe before the write: once a client has read its
                // response, its request is guaranteed to be counted, so
                // a METRICS scrape sequenced after the reply never
                // under-reports. (The histogram spans dispatch to
                // response assembly, not the socket write.)
                state.metrics.observe(verb, started.elapsed());
                let wrote = resp.write_to(&mut writer);
                state.active.fetch_sub(1, Ordering::SeqCst);
                if wrote.is_err() || state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
}

fn dispatch(state: &Arc<ServerState>, line: &str) -> Response {
    let line = line.trim();
    if line.is_empty() {
        return Response::err("empty request");
    }
    let (cmd, rest) = match line.split_once(char::is_whitespace) {
        Some((c, r)) => (c, r.trim()),
        None => (line, ""),
    };
    match cmd {
        "LOAD" => cmd_load(state, rest),
        "RELOAD" => cmd_reload(state, rest),
        "ANALYZE" => cmd_analyze(state, rest),
        "EVAL" => cmd_eval(state, rest),
        "INJECT" => cmd_inject(state, rest),
        "SWEEP" => cmd_sweep(state, rest),
        "HUNT" => cmd_hunt(state, rest),
        "MONITOR" => cmd_monitor(state, rest),
        "EVENT" => cmd_event(state, rest),
        "STATS" if rest.is_empty() => cmd_stats(state),
        "STATS" => Response::err("STATS takes no arguments"),
        "METRICS" if rest.is_empty() => cmd_metrics(state),
        "METRICS" => Response::err("METRICS takes no arguments"),
        "SHUTDOWN" if rest.is_empty() => cmd_shutdown(state),
        "SHUTDOWN" => Response::err("SHUTDOWN takes no arguments"),
        other => Response::err(format!(
            "unknown command {other:?} (expected LOAD, RELOAD, ANALYZE, EVAL, INJECT, SWEEP, \
             HUNT, MONITOR, EVENT, STATS, METRICS or SHUTDOWN)"
        )),
    }
}

/// Digest of the *canonicalized* spec text: comments and insignificant
/// whitespace are erased first, so comment-only twins share a digest and
/// hit the `LOAD` dedupe path instead of building a second session.
fn content_digest(content: &str) -> u64 {
    let mut h = DefaultHasher::new();
    canonicalize_spec(content).hash(&mut h);
    h.finish()
}

fn cmd_load(state: &Arc<ServerState>, path: &str) -> Response {
    if path.is_empty() {
        return Response::err("LOAD takes a spec path");
    }
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => return Response::err(format!("cannot read {path}: {e}")),
    };
    let digest = content_digest(&content);
    {
        let mut store = state.store();
        store.stats.loads += 1;
        if let Some(&id) = store.by_digest.get(&digest) {
            if let Some(session) = store.sessions.get(&id).cloned() {
                store.stats.load_hits += 1;
                store.touch(id);
                return Response::from_text(&session.load_line());
            }
        }
    }

    // Parse and warm outside any lock; concurrent LOADs of the same new
    // spec may both build, in which case the first insert wins below.
    let (at, syms) = match parse_spec(&content) {
        Ok(ok) => ok,
        Err(e) => return Response::err(e.diagnostic(path)),
    };
    let resume = analyze_at_resumable(&at);
    let analysis_text = resume.render(&at);
    let proto = enact(&at);
    let (system, no_system) =
        match execute_with_faults(&proto, &ExecOptions::default(), &FaultPlan::new(0)) {
            Ok((run, _)) => (Some(System::new([run])), String::new()),
            Err(e) => (None, e.to_string()),
        };
    let (goods, checkpoint, warmed) = match &system {
        Some(sys) => {
            let warmed = EvalCache::prewarm_on(sys, &state.pool);
            let (goods, checkpoint) = match construct_checkpointed_with(
                sys,
                &belief_assumptions(&at),
                &state.pool,
                &warmed,
            ) {
                Ok((g, _, ckpt)) => (g, Some(ckpt)),
                Err(_) => (GoodRuns::all_runs(sys), None),
            };
            (goods, checkpoint, warmed)
        }
        None => (
            GoodRuns::all_runs(&System::new(Vec::<atl_model::Run>::new())),
            None,
            EvalCache::default(),
        ),
    };

    let mut store = state.store();
    // Re-check: another connection may have inserted this digest while
    // we were building.
    if let Some(&id) = store.by_digest.get(&digest) {
        if let Some(session) = store.sessions.get(&id).cloned() {
            store.stats.load_hits += 1;
            store.touch(id);
            return Response::from_text(&session.load_line());
        }
    }
    store.stats.parsed += 1;
    store.next_id += 1;
    let id = store.next_id;
    let session = Arc::new(Session {
        id,
        digest,
        parent: None,
        at,
        syms,
        resume: Mutex::new(Some(resume)),
        analysis_text,
        proto,
        system,
        no_system,
        goods,
        checkpoint,
        warmed,
        eval_memo: Mutex::new(HashMap::new()),
        inject_memo: Mutex::new(HashMap::new()),
    });
    store.by_digest.insert(digest, id);
    store.sessions.insert(id, Arc::clone(&session));
    store.touch(id);
    while store.sessions.len() > state.max_sessions {
        let victim = store.recency.remove(0);
        if let Some(gone) = store.sessions.remove(&victim) {
            // Lineage-aware: a reloaded session's old digests no longer
            // map to it, so only drop the mapping this victim still owns.
            if store.by_digest.get(&gone.digest) == Some(&victim) {
                store.by_digest.remove(&gone.digest);
            }
            store.stats.evictions += 1;
        }
    }
    Response::from_text(&session.load_line())
}

/// `RELOAD <session-id> <spec-path>`: re-point a live session at an
/// edited spec, structurally diffing the new parse against the old one
/// and reusing every artifact whose inputs are untouched — the analysis
/// closure (advanced in place via [`AnalysisResume`] when assumptions
/// were only added), the executed system (kept when the enacted protocol is
/// equal), the Section 7 construction (stage checkpoint resume), and the
/// evaluation cache (pointwise rewarm). The rebuilt session keeps its id
/// and records the old digest as its parent.
fn cmd_reload(state: &Arc<ServerState>, rest: &str) -> Response {
    let Some((id_text, path)) = rest.split_once(char::is_whitespace) else {
        return Response::err("RELOAD takes <session-id> <spec-path>");
    };
    let path = path.trim();
    let old = match state.session(id_text) {
        Ok(s) => s,
        Err(e) => return e,
    };
    let content = match std::fs::read_to_string(path) {
        Ok(c) => c,
        Err(e) => return Response::err(format!("cannot read {path}: {e}")),
    };
    let digest = content_digest(&content);
    if digest == old.digest {
        // Canonically unchanged content: the live session already *is*
        // the cold load of this spec.
        let mut store = state.store();
        store.stats.reloads += 1;
        store.stats.reload_delta += 1;
        store.touch(old.id);
        return Response::from_text(&format!(
            "{}\nreload unchanged: session kept as-is",
            old.load_line()
        ));
    }

    // Build outside the store lock, exactly like LOAD.
    let (at, syms) = match parse_spec(&content) {
        Ok(ok) => ok,
        Err(e) => return Response::err(e.diagnostic(path)),
    };
    let diff = SpecDiff::classify(&old.at, &old.syms, &at, &syms);

    // Analysis: take the retiring session's resume and advance it in
    // place — identical protocol ⇒ as-is; assumptions only added (or a
    // goal-only edit) ⇒ one delta saturation per level; otherwise, or
    // when a concurrent reload already claimed the resume, re-analyze
    // cold. `AnalysisResume::advance` requires unchanged steps, which
    // `analysis_resumable` guarantees.
    let taken = old
        .resume
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take();
    let (resume, analysis_reused) = if at == old.at {
        match taken {
            Some(r) => (r, true),
            None => (analyze_at_resumable(&at), false),
        }
    } else {
        match (diff.analysis_resumable(), taken) {
            (Some(added), Some(mut r)) => {
                r.advance(&at, added);
                (r, true)
            }
            _ => (analyze_at_resumable(&at), false),
        }
    };
    let analysis_text = resume.render(&at);

    // Execution: `enact` ignores goals and belief assumptions, so any
    // edit that leaves the enacted protocol equal keeps the system (and
    // the executor-visible digest for the global execution cache).
    let proto = enact(&at);
    let system_reused = proto == old.proto;
    let (system, no_system) = if system_reused {
        (old.system.clone(), old.no_system.clone())
    } else {
        match execute_with_faults(&proto, &ExecOptions::default(), &FaultPlan::new(0)) {
            Ok((run, _)) => (Some(System::new([run])), String::new()),
            Err(e) => (None, e.to_string()),
        }
    };

    // Evaluation cache: reuse wholesale with the system, rewarm
    // pointwise against the old snapshot when the system changed, or
    // prewarm cold when there was nothing to diff against.
    let (warmed, rewarm) = match (&system, system_reused, &old.system) {
        (Some(_), true, _) => {
            let total = old.warmed.entry_count();
            (
                old.warmed.clone(),
                RewarmStats {
                    reused: total,
                    total,
                },
            )
        }
        (Some(sys), false, Some(old_sys)) => {
            EvalCache::prewarm_delta_on(sys, old_sys, &old.warmed, &state.pool)
        }
        (Some(sys), false, None) => {
            let warmed = EvalCache::prewarm_on(sys, &state.pool);
            let total = warmed.entry_count();
            (warmed, RewarmStats { reused: 0, total })
        }
        (None, _, _) => (EvalCache::default(), RewarmStats::default()),
    };

    // Good-run construction: clone when nothing it depends on moved,
    // resume from the stage checkpoint when only the belief assumptions
    // moved, rebuild otherwise (always over the freshly warmed cache).
    let beliefs = belief_assumptions(&at);
    let mut stages_reused = 0usize;
    let (goods, checkpoint) = match &system {
        Some(sys) => {
            if system_reused && beliefs == belief_assumptions(&old.at) {
                stages_reused = old
                    .checkpoint
                    .as_ref()
                    .map_or(0, ConstructionCheckpoint::stages);
                (old.goods.clone(), old.checkpoint.clone())
            } else if system_reused && old.checkpoint.is_some() {
                let prior = old.checkpoint.clone().unwrap_or_default();
                match resume_construct_with(sys, &beliefs, &prior, &state.pool, &warmed) {
                    Ok((g, _, ckpt, reused)) => {
                        stages_reused = reused;
                        (g, Some(ckpt))
                    }
                    Err(_) => (GoodRuns::all_runs(sys), None),
                }
            } else {
                match construct_checkpointed_with(sys, &beliefs, &state.pool, &warmed) {
                    Ok((g, _, ckpt)) => (g, Some(ckpt)),
                    Err(_) => (GoodRuns::all_runs(sys), None),
                }
            }
        }
        None => (
            GoodRuns::all_runs(&System::new(Vec::<atl_model::Run>::new())),
            None,
        ),
    };

    // Response memos answer over (system, goods, symbols) for EVAL and
    // over the full protocol text for INJECT — carry each across only
    // when its inputs are bytewise stable.
    let eval_memo = if system_reused && syms == old.syms && goods == old.goods {
        old.eval_memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    } else {
        HashMap::new()
    };
    let inject_memo = if at == old.at {
        old.inject_memo
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    } else {
        HashMap::new()
    };

    let delta = analysis_reused || system_reused || stages_reused > 0 || rewarm.reused > 0;
    let summary = format!(
        "reload {}: analysis {}, system {}, stages reused {}, cache points reused {}/{}",
        diff.kind(),
        if analysis_reused {
            "reused"
        } else {
            "recomputed"
        },
        if system_reused {
            "reused"
        } else {
            "re-executed"
        },
        stages_reused,
        rewarm.reused,
        rewarm.total,
    );

    let session = Arc::new(Session {
        id: old.id,
        digest,
        parent: Some(old.digest),
        at,
        syms,
        resume: Mutex::new(Some(resume)),
        analysis_text,
        proto,
        system,
        no_system,
        goods,
        checkpoint,
        warmed,
        eval_memo: Mutex::new(eval_memo),
        inject_memo: Mutex::new(inject_memo),
    });

    let mut store = state.store();
    store.stats.reloads += 1;
    if delta {
        store.stats.reload_delta += 1;
    } else {
        store.stats.reload_full += 1;
    }
    // Re-point the session in place: same id, new digest. The old
    // digest's dedupe mapping dies with the edit (unless some other
    // session owns it); the new digest maps here unless a session
    // already owns it — dedupe never steals.
    if store.by_digest.get(&old.digest) == Some(&old.id) {
        store.by_digest.remove(&old.digest);
    }
    store.by_digest.entry(digest).or_insert(old.id);
    store.sessions.insert(old.id, Arc::clone(&session));
    store.touch(old.id);
    Response::from_text(&format!("{}\n{}", session.load_line(), summary))
}

fn cmd_analyze(state: &Arc<ServerState>, rest: &str) -> Response {
    if rest.is_empty() || rest.split_whitespace().count() != 1 {
        return Response::err("ANALYZE takes exactly one session id");
    }
    let session = match state.session(rest) {
        Ok(s) => s,
        Err(e) => return e,
    };
    state.store().stats.analyze_served += 1;
    Response::from_text(&session.analysis_text)
}

fn cmd_eval(state: &Arc<ServerState>, rest: &str) -> Response {
    let mut parts = rest.splitn(3, char::is_whitespace);
    let (Some(id_text), Some(point_text), Some(formula_text)) =
        (parts.next(), parts.next(), parts.next().map(str::trim))
    else {
        return Response::err("EVAL takes <session-id> <run:time|time> <formula>");
    };
    let session = match state.session(id_text) {
        Ok(s) => s,
        Err(e) => return e,
    };
    let memo_key = format!("{point_text} {formula_text}");
    if let Some(hit) = session
        .eval_memo
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(&memo_key)
        .cloned()
    {
        let mut store = state.store();
        store.stats.eval_served += 1;
        store.stats.eval_warm += 1;
        return hit;
    }

    let resp = eval_response(&session, point_text, formula_text);
    session
        .eval_memo
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(memo_key, resp.clone());
    state.store().stats.eval_served += 1;
    resp
}

/// Evaluates one formula at one point of the session's system, using a
/// thread-local [`Semantics`] over a clone of the prewarmed cache (the
/// clone shares every memoized set by `Arc`, so this is the warm path).
fn eval_response(session: &Session, point_text: &str, formula_text: &str) -> Response {
    let Some(system) = &session.system else {
        return Response::err(format!(
            "session {} has no executable run: {}",
            session.id, session.no_system
        ));
    };
    let (run_text, time_text) = match point_text.split_once(':') {
        Some((r, k)) => (r, k),
        None => ("0", point_text),
    };
    let ri: usize = match run_text.parse() {
        Ok(r) => r,
        Err(e) => return Response::err(format!("bad run index {run_text:?}: {e}")),
    };
    let k: i64 = match time_text.parse() {
        Ok(k) => k,
        Err(e) => return Response::err(format!("bad time {time_text:?}: {e}")),
    };
    let phi = match parse_formula(formula_text, &session.syms) {
        Ok(f) => f,
        Err(e) => return Response::err(e.diagnostic("<formula>")),
    };
    let sem = Semantics::new_shared(
        system,
        session.goods.clone(),
        Rc::new(RefCell::new(session.warmed.clone())),
    );
    match sem.eval(Point::new(ri, k), &phi) {
        Ok(verdict) => Response::from_text(&format!("at (run {ri}, time {k}): {phi} = {verdict}")),
        Err(e) => Response::err(e.to_string()),
    }
}

fn cmd_inject(state: &Arc<ServerState>, rest: &str) -> Response {
    let (id_text, flags_text) = match rest.split_once(char::is_whitespace) {
        Some((id, flags)) => (id, flags.trim()),
        None => (rest, ""),
    };
    if id_text.is_empty() {
        return Response::err("INJECT takes <session-id> [fault-flags]");
    }
    let session = match state.session(id_text) {
        Ok(s) => s,
        Err(e) => return e,
    };
    if let Some(hit) = session
        .inject_memo
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .get(flags_text)
        .cloned()
    {
        let mut store = state.store();
        store.stats.inject_served += 1;
        store.stats.inject_warm += 1;
        return hit;
    }

    let (resp, exec_hit) = match parse_plan_flags(flags_text) {
        Err(msg) => (Response::err(msg), false),
        Ok(req) => match inject_report(&session.at, &req, &state.pool, &state.exec_cache) {
            Ok(outcome) => (Response::from_text(&outcome.report), outcome.cache_hit),
            Err(e) => (Response::err(e.to_string()), false),
        },
    };
    session
        .inject_memo
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(flags_text.to_string(), resp.clone());
    let mut store = state.store();
    store.stats.inject_served += 1;
    if exec_hit {
        store.stats.inject_exec_hits += 1;
    }
    resp
}

/// Parses the single-plan fault flags `INJECT` accepts — the same
/// surface as non-sweep `atl inject` (no `--sweep`, no `--emit-trace`:
/// the daemon neither grids nor writes files).
fn parse_plan_flags(text: &str) -> Result<InjectRequest, String> {
    let tokens: Vec<&str> = text.split_whitespace().collect();
    let mut seed: u64 = 0;
    let (mut drop, mut dup, mut delay, mut reorder, mut replay) = (0.0, 0.0, 0.0, 0.0, 0.0);
    let mut delay_rounds: u32 = 2;
    let mut compromises: Vec<(Key, i64)> = Vec::new();
    let mut patience: u32 = 6;
    let mut retries: u32 = 2;
    let mut public = false;
    let mut it = tokens.iter();
    let need = |it: &mut std::slice::Iter<'_, &str>, flag: &str| -> Result<String, String> {
        it.next()
            .map(|s| (*s).to_string())
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(tok) = it.next() {
        match *tok {
            "--seed" => {
                seed = need(&mut it, "--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--drop" => {
                drop = need(&mut it, "--drop")?
                    .parse()
                    .map_err(|e| format!("--drop: {e}"))?;
            }
            "--dup" => {
                dup = need(&mut it, "--dup")?
                    .parse()
                    .map_err(|e| format!("--dup: {e}"))?;
            }
            "--delay" => {
                let v = need(&mut it, "--delay")?;
                let (p, r) = match v.split_once(':') {
                    Some((p, r)) => (
                        p.to_string(),
                        r.parse().map_err(|e| format!("--delay rounds: {e}"))?,
                    ),
                    None => (v, 2),
                };
                delay = p.parse().map_err(|e| format!("--delay: {e}"))?;
                delay_rounds = r;
            }
            "--reorder" => {
                reorder = need(&mut it, "--reorder")?
                    .parse()
                    .map_err(|e| format!("--reorder: {e}"))?;
            }
            "--replay" => {
                replay = need(&mut it, "--replay")?
                    .parse()
                    .map_err(|e| format!("--replay: {e}"))?;
            }
            "--compromise" => {
                let v = need(&mut it, "--compromise")?;
                let (key, t) = v
                    .split_once('@')
                    .ok_or("--compromise takes KEY@TIME, e.g. Kab@2")?;
                compromises.push((
                    Key::new(key),
                    t.parse().map_err(|e| format!("--compromise time: {e}"))?,
                ));
            }
            "--patience" => {
                patience = need(&mut it, "--patience")?
                    .parse()
                    .map_err(|e| format!("--patience: {e}"))?;
            }
            "--retries" => {
                retries = need(&mut it, "--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?;
            }
            "--public" => public = true,
            other => {
                return Err(format!(
                "unknown inject flag {other:?} (serve-mode inject takes single-plan fault flags)"
            ))
            }
        }
    }
    let mut plan = FaultPlan::new(seed)
        .drop(drop)
        .duplicate(dup)
        .delay(delay, delay_rounds)
        .reorder(reorder)
        .replay(replay);
    plan.compromises = compromises;
    let policy = if retries > 0 {
        ExpectPolicy::resend_after(patience, retries)
    } else {
        ExpectPolicy::skip_after(patience)
    };
    Ok(InjectRequest {
        plan,
        policy,
        options: ExecOptions {
            public_channel: public,
            ..ExecOptions::default()
        },
    })
}

/// Renders an [`ExpectPolicy`] for the `SWEEP` request line:
/// `<patience|->:<stall|skip|resend:<retries>>`.
pub(crate) fn render_policy(policy: &ExpectPolicy) -> String {
    let patience = match policy.patience {
        Some(p) => p.to_string(),
        None => "-".to_string(),
    };
    let timeout = match policy.on_timeout {
        OnTimeout::Stall => "stall".to_string(),
        OnTimeout::Skip => "skip".to_string(),
        OnTimeout::Resend { max_retries } => format!("resend:{max_retries}"),
    };
    format!("{patience}:{timeout}")
}

fn parse_policy(text: &str) -> Result<ExpectPolicy, String> {
    let (patience, timeout) = text
        .split_once(':')
        .ok_or_else(|| format!("bad policy {text:?}"))?;
    let patience = match patience {
        "-" => None,
        p => Some(p.parse().map_err(|e| format!("policy patience: {e}"))?),
    };
    let on_timeout = match timeout {
        "stall" => OnTimeout::Stall,
        "skip" => OnTimeout::Skip,
        resend => match resend.split_once(':') {
            Some(("resend", r)) => OnTimeout::Resend {
                max_retries: r.parse().map_err(|e| format!("policy retries: {e}"))?,
            },
            _ => return Err(format!("bad policy timeout {timeout:?}")),
        },
    };
    Ok(ExpectPolicy {
        patience,
        on_timeout,
    })
}

/// Renders [`ExecOptions`] for the `SWEEP` request line:
/// `<start-time>:<0|1 public>:<schedule csv|->`.
pub(crate) fn render_exec_options(options: &ExecOptions) -> String {
    let schedule = if options.schedule.is_empty() {
        "-".to_string()
    } else {
        options
            .schedule
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(",")
    };
    format!(
        "{}:{}:{}",
        options.start_time,
        u8::from(options.public_channel),
        schedule
    )
}

fn parse_exec_options(text: &str) -> Result<ExecOptions, String> {
    let mut parts = text.split(':');
    let (Some(start), Some(public), Some(schedule), None) =
        (parts.next(), parts.next(), parts.next(), parts.next())
    else {
        return Err(format!("bad options {text:?}"));
    };
    let schedule = if schedule == "-" {
        Vec::new()
    } else {
        schedule
            .split(',')
            .map(|s| s.parse().map_err(|e| format!("options schedule: {e}")))
            .collect::<Result<Vec<usize>, String>>()?
    };
    Ok(ExecOptions {
        start_time: start
            .parse()
            .map_err(|e| format!("options start time: {e}"))?,
        public_channel: match public {
            "0" => false,
            "1" => true,
            other => return Err(format!("options public flag {other:?} is not 0/1")),
        },
        schedule,
    })
}

/// `SWEEP <id> policy=<p> options=<o> plans=<plan>;<plan>;…` — the
/// worker half of the distributed fabric. The shard executes through
/// the same [`sweep_plans_on`] path as a local sweep, against the
/// server-global [`ExecutionCache`], so repeated fingerprints across
/// shards, sweeps, and sessions cost nothing; the response returns one
/// wire-rendered outcome per plan, in request order, keyed by
/// fingerprint digest.
fn cmd_sweep(state: &Arc<ServerState>, rest: &str) -> Response {
    let (id_text, rest) = match rest.split_once(char::is_whitespace) {
        Some((id, rest)) => (id, rest.trim()),
        None => (rest, ""),
    };
    if id_text.is_empty() {
        return Response::err("SWEEP takes <session-id> policy=<p> options=<o> plans=<plans>");
    }
    let session = match state.session(id_text) {
        Ok(s) => s,
        Err(e) => return e,
    };
    let Some((head, plans_text)) = rest.split_once("plans=") else {
        return Response::err("SWEEP needs a plans= field");
    };
    let (mut policy, mut options) = (None, None);
    for token in head.split_whitespace() {
        let Some((field, value)) = token.split_once('=') else {
            return Response::err(format!("bad SWEEP field {token:?}"));
        };
        let parsed = match field {
            "policy" => parse_policy(value).map(|p| policy = Some(p)),
            "options" => parse_exec_options(value).map(|o| options = Some(o)),
            other => Err(format!("unknown SWEEP field {other:?}")),
        };
        if let Err(msg) = parsed {
            return Response::err(msg);
        }
    }
    let (Some(policy), Some(options)) = (policy, options) else {
        return Response::err("SWEEP needs policy= and options= before plans=");
    };
    let plans = match parse_plan_list(plans_text) {
        Ok(plans) => plans,
        Err(e) => return Response::err(e.to_string()),
    };
    if plans.is_empty() {
        return Response::err("SWEEP shard carries no plans");
    }

    let proto = enact_with(
        &session.at,
        EnactOptions {
            expect_policy: policy,
        },
    );
    let outcome = sweep_plans_on(&proto, &options, &plans, &state.pool, &state.exec_cache);
    let mut lines = vec![format!("plans {}", outcome.results.len())];
    for (i, r) in outcome.results.iter().enumerate() {
        let rendered = render_outcome(&r.outcome);
        let body: Vec<&str> = rendered.lines().collect();
        lines.push(format!(
            "outcome {i} fp={:016x} lines={}",
            r.fingerprint.digest(),
            body.len()
        ));
        lines.extend(body.into_iter().map(str::to_string));
    }
    let mut store = state.store();
    store.stats.sweep_served += 1;
    store.stats.sweep_plans += plans.len() as u64;
    store.stats.sweep_exec_hits += outcome.stats.cache_hits as u64;
    Response { ok: true, lines }
}

/// `HUNT <id> [seed=N] [budget=N] [batch=N]` — run the coverage-guided
/// attack search (`crate::hunt`) against a warmed session. The fuzzer's
/// mutation space is derived from the session's protocol keys
/// ([`default_space`]), executions ride the server-global
/// [`ExecutionCache`] (so a repeated `HUNT`, or one overlapping a
/// `SWEEP`, re-executes nothing it has already seen), and the response
/// is the deterministic report `atl hunt` would print for the same
/// seed and budget.
fn cmd_hunt(state: &Arc<ServerState>, rest: &str) -> Response {
    let (id_text, rest) = match rest.split_once(char::is_whitespace) {
        Some((id, rest)) => (id, rest.trim()),
        None => (rest, ""),
    };
    if id_text.is_empty() {
        return Response::err("HUNT takes <session-id> [seed=N] [budget=N] [batch=N]");
    }
    let session = match state.session(id_text) {
        Ok(s) => s,
        Err(e) => return e,
    };
    let (mut seed, mut budget, mut batch) = (0u64, 256usize, 32usize);
    for token in rest.split_whitespace() {
        let Some((field, value)) = token.split_once('=') else {
            return Response::err(format!("bad HUNT field {token:?}"));
        };
        let parsed = match field {
            "seed" => value.parse().map(|v| seed = v).map_err(|e| e.to_string()),
            "budget" => value.parse().map(|v| budget = v).map_err(|e| e.to_string()),
            "batch" => value
                .parse()
                .map(|v: usize| batch = v.max(1))
                .map_err(|e| e.to_string()),
            other => Err(format!("unknown HUNT field {other:?}")),
        };
        if let Err(msg) = parsed {
            return Response::err(format!("bad HUNT {field}: {msg}"));
        }
    }
    let settings = HuntSettings {
        config: HuntConfig {
            seed,
            budget,
            batch,
            space: default_space(&session.at),
            seed_plans: Vec::new(),
        },
        ..HuntSettings::default()
    };
    let report = hunt_report(&session.at, &settings, &state.pool, &state.exec_cache, None);
    let (executed, classes) = (
        report.outcome.stats.executed as u64,
        report.outcome.classes.len() as u64,
    );
    let response = Response::from_text(&report.to_string());
    let mut store = state.store();
    store.stats.hunts_served += 1;
    store.stats.hunt_plans += executed;
    store.stats.hunt_classes += classes;
    response
}

/// `MONITOR <formula>[;<formula>...]` — open a streaming monitor
/// session watching the given formulas. Replies `monitor <id>: watching
/// <n> formula(s)`; subsequent `EVENT <id> <line>` requests feed the
/// run one trace line at a time.
fn cmd_monitor(state: &Arc<ServerState>, rest: &str) -> Response {
    let texts: Vec<String> = rest
        .split(';')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(str::to_string)
        .collect();
    if texts.is_empty() {
        return Response::err("MONITOR takes <formula>[;<formula>...]");
    }
    let id = {
        let mut monitors = state.monitors();
        let id = monitors.next_id.max(1);
        monitors.next_id = id + 1;
        id
    };
    let monitor = match Monitor::new(format!("monitor-{id}"), texts) {
        Ok(m) => m,
        Err(e) => return Response::err(e.diagnostic("monitor")),
    };
    let count = monitor.formula_count();
    let monitor = Arc::new(Mutex::new(monitor));
    state.monitors().sessions.insert(id, Arc::clone(&monitor));
    state.store().stats.monitors += 1;
    persist_monitor(state, id, &monitor);
    Response::from_text(&format!("monitor {id}: watching {count} formula(s)"))
}

/// `EVENT <id> <trace line>` — extend monitor `<id>` by one trace line.
/// Replies with the monitor's output for that line: verdict lines in
/// the exact `atl eval` format for events, a pre-epoch marker before
/// time 0, and nothing for directives.
fn cmd_event(state: &Arc<ServerState>, rest: &str) -> Response {
    let (id_text, line) = match rest.split_once(char::is_whitespace) {
        Some((id, line)) => (id, line),
        None => (rest, ""),
    };
    if id_text.is_empty() {
        return Response::err("EVENT takes <monitor-id> <trace line>");
    }
    let Ok(id) = id_text.parse::<u64>() else {
        return Response::err(format!("bad monitor id {id_text:?}"));
    };
    let Some(monitor) = state.monitors().sessions.get(&id).map(Arc::clone) else {
        return Response::err(format!("no monitor {id}"));
    };
    let mut guard = monitor.lock().unwrap_or_else(PoisonError::into_inner);
    let before = guard.stats();
    let outcome = guard.feed_line(line, &state.pool);
    let after = guard.stats();
    drop(guard);
    record_monitor_delta(state, before, after);
    match outcome {
        Ok(lines) => {
            persist_monitor(state, id, &monitor);
            Response { ok: true, lines }
        }
        Err(e) => Response::err(e.diagnostic("event")),
    }
}

/// Fold the stats delta from one `feed_line` call into [`ServeStats`],
/// so `STATS` and `METRICS` aggregate across all monitor sessions.
fn record_monitor_delta(state: &Arc<ServerState>, before: MonitorStats, after: MonitorStats) {
    let mut store = state.store();
    store.stats.monitor_events += (after.events - before.events) as u64;
    store.stats.monitor_points_reused += (after.points_reused - before.points_reused) as u64;
    store.stats.monitor_delta += (after.delta_saturations - before.delta_saturations) as u64;
    store.stats.monitor_full += (after.full_saturations - before.full_saturations) as u64;
}

/// Checkpoint one monitor into the store directory (tmp-file + rename,
/// the same crash-safe discipline as the fabric outcome store). A
/// persistence failure never fails the request: the monitor stays
/// correct in memory and the next event retries the write.
fn persist_monitor(state: &Arc<ServerState>, id: u64, monitor: &Arc<Mutex<Monitor>>) {
    let Some(dir) = &state.monitor_store else {
        return;
    };
    let cp = monitor
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .checkpoint(id);
    let text = render_checkpoint(&cp);
    let tmp = dir.join(format!(".tmp-{}-{id}", std::process::id()));
    let path = dir.join(format!("monitor-{id}"));
    if std::fs::write(&tmp, text).is_ok() && std::fs::rename(&tmp, &path).is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

/// Replay every checkpoint in the store directory at startup, so
/// monitor sessions survive a daemon restart. Unreadable or invalid
/// files are skipped: a half-written checkpoint must not stop the
/// server from coming up.
fn resume_monitors(state: &Arc<ServerState>, dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(id_text) = name.to_str().and_then(|n| n.strip_prefix("monitor-")) else {
            continue;
        };
        let Ok(id) = id_text.parse::<u64>() else {
            continue;
        };
        let Ok(text) = std::fs::read_to_string(entry.path()) else {
            continue;
        };
        let Ok(cp) = parse_checkpoint(&text) else {
            continue;
        };
        let Ok(monitor) = Monitor::resume(&cp, &state.pool) else {
            continue;
        };
        let stats = monitor.stats();
        {
            let mut store = state.store();
            store.stats.monitors += 1;
            store.stats.monitor_events += stats.events as u64;
            store.stats.monitor_points_reused += stats.points_reused as u64;
            store.stats.monitor_delta += stats.delta_saturations as u64;
            store.stats.monitor_full += stats.full_saturations as u64;
        }
        let mut monitors = state.monitors();
        monitors.sessions.insert(id, Arc::new(Mutex::new(monitor)));
        monitors.next_id = monitors.next_id.max(id + 1);
    }
}

fn cmd_stats(state: &Arc<ServerState>) -> Response {
    let store = state.store();
    let s = store.stats;
    let mut ids: Vec<u64> = store.sessions.keys().copied().collect();
    ids.sort_unstable();
    let (mut hidden, mut frozen) = (0usize, 0usize);
    for id in &ids {
        let session = &store.sessions[id];
        hidden += session.warmed.hidden_entries();
        frozen += session
            .warmed
            .frozen_base()
            .map_or(0, |b| b.message_count());
    }
    let execs = state.exec_cache.len();
    let text = format!(
        "sessions: {} live, capacity {}\n\
         loads: {} total, {} parsed, {} cache hit(s), {} eviction(s)\n\
         reloads: {} total, {} delta, {} full\n\
         analyze: {} served\n\
         eval: {} served, {} warm\n\
         inject: {} served, {} warm, {} exec-cache hit(s)\n\
         sweep: {} shard(s) served, {} plan(s)\n\
         hunt: {} hunt(s) served, {} plan(s), {} class(es)\n\
         monitor: {} session(s), {} event(s), {} point(s) reused, {} delta, {} full\n\
         connections: {} reaped\n\
         warmed: {} hidden state(s), {} frozen message(s), {} cached execution(s)",
        store.sessions.len(),
        state.max_sessions,
        s.loads,
        s.parsed,
        s.load_hits,
        s.evictions,
        s.reloads,
        s.reload_delta,
        s.reload_full,
        s.analyze_served,
        s.eval_served,
        s.eval_warm,
        s.inject_served,
        s.inject_warm,
        s.inject_exec_hits,
        s.sweep_served,
        s.sweep_plans,
        s.hunts_served,
        s.hunt_plans,
        s.hunt_classes,
        state.monitors().sessions.len(),
        s.monitor_events,
        s.monitor_points_reused,
        s.monitor_delta,
        s.monitor_full,
        s.reaped,
        hidden,
        frozen,
        execs
    );
    Response::from_text(&text)
}

/// `METRICS` — Prometheus-style text exposition from `crate::metrics`:
/// per-verb request counters and latency histograms, queue/worker
/// gauges with peaks, backpressure counters, and the session/cache
/// counters `STATS` reports in fixed text, re-exposed as scrapeable
/// series. Counter totals and `STATS` never disagree: both read the
/// same [`ServeStats`] under the store lock.
fn cmd_metrics(state: &Arc<ServerState>) -> Response {
    let (stats, sessions_live, hidden, frozen, lineage) = {
        let store = state.store();
        let (mut hidden, mut frozen, mut lineage) = (0usize, 0usize, 0usize);
        for session in store.sessions.values() {
            hidden += session.warmed.hidden_entries();
            frozen += session
                .warmed
                .frozen_base()
                .map_or(0, |b| b.message_count());
            lineage += usize::from(session.parent.is_some());
        }
        (store.stats, store.sessions.len(), hidden, frozen, lineage)
    };
    let extras = [
        ExtraMetric {
            name: "atl_serve_sessions_live",
            help: "Warmed sessions currently resident.",
            kind: MetricKind::Gauge,
            value: sessions_live as u64,
        },
        ExtraMetric {
            name: "atl_serve_session_capacity",
            help: "Session capacity before LRU eviction.",
            kind: MetricKind::Gauge,
            value: state.max_sessions as u64,
        },
        ExtraMetric {
            name: "atl_serve_connection_workers",
            help: "Fixed connection worker threads (the concurrency bound).",
            kind: MetricKind::Gauge,
            value: state.conn_workers as u64,
        },
        ExtraMetric {
            name: "atl_serve_queue_capacity",
            help: "Accept-queue depth before overflow is answered ERR busy.",
            kind: MetricKind::Gauge,
            value: state.queue.capacity as u64,
        },
        ExtraMetric {
            name: "atl_serve_inflight_requests",
            help: "Requests currently dispatching or writing.",
            kind: MetricKind::Gauge,
            value: state.active.load(Ordering::SeqCst) as u64,
        },
        ExtraMetric {
            name: "atl_serve_sessions_evicted_total",
            help: "Sessions evicted by the LRU policy.",
            kind: MetricKind::Counter,
            value: stats.evictions,
        },
        ExtraMetric {
            name: "atl_serve_load_cache_hits_total",
            help: "LOADs answered by an existing session.",
            kind: MetricKind::Counter,
            value: stats.load_hits,
        },
        ExtraMetric {
            name: "atl_serve_eval_warm_total",
            help: "EVALs answered from the per-session memo.",
            kind: MetricKind::Counter,
            value: stats.eval_warm,
        },
        ExtraMetric {
            name: "atl_serve_inject_warm_total",
            help: "INJECTs answered from the per-session memo.",
            kind: MetricKind::Counter,
            value: stats.inject_warm,
        },
        ExtraMetric {
            name: "atl_serve_exec_cache_entries",
            help: "Entries resident in the global execution cache.",
            kind: MetricKind::Gauge,
            value: state.exec_cache.len() as u64,
        },
        ExtraMetric {
            name: "atl_serve_exec_cache_evictions_total",
            help: "Entries evicted from the bounded global execution cache.",
            kind: MetricKind::Counter,
            value: state.exec_cache.evictions(),
        },
        ExtraMetric {
            name: "atl_serve_exec_cache_hits_total",
            help: "INJECT and SWEEP executions answered by the global execution cache.",
            kind: MetricKind::Counter,
            value: stats.inject_exec_hits + stats.sweep_exec_hits,
        },
        ExtraMetric {
            name: "atl_serve_sweep_plans_total",
            help: "Fault plans received across all SWEEP shards.",
            kind: MetricKind::Counter,
            value: stats.sweep_plans,
        },
        ExtraMetric {
            name: "atl_serve_hunts_total",
            help: "HUNT requests served.",
            kind: MetricKind::Counter,
            value: stats.hunts_served,
        },
        ExtraMetric {
            name: "atl_serve_hunt_plans_total",
            help: "Fault-plan executions spent across all HUNT requests.",
            kind: MetricKind::Counter,
            value: stats.hunt_plans,
        },
        ExtraMetric {
            name: "atl_serve_hunt_classes_total",
            help: "Distinct degradation classes reported across all HUNT requests.",
            kind: MetricKind::Counter,
            value: stats.hunt_classes,
        },
        ExtraMetric {
            name: "atl_serve_reaped_total",
            help: "Connections closed for sitting idle past the timeout.",
            kind: MetricKind::Counter,
            value: stats.reaped,
        },
        ExtraMetric {
            name: "atl_serve_reloads_total",
            help: "RELOAD requests that re-pointed a session.",
            kind: MetricKind::Counter,
            value: stats.reloads,
        },
        ExtraMetric {
            name: "atl_serve_reload_delta_total",
            help: "RELOADs that reused at least one stage or cache from the prior session.",
            kind: MetricKind::Counter,
            value: stats.reload_delta,
        },
        ExtraMetric {
            name: "atl_serve_reload_full_total",
            help: "RELOADs that could reuse nothing and rebuilt everything.",
            kind: MetricKind::Counter,
            value: stats.reload_full,
        },
        ExtraMetric {
            name: "atl_serve_sessions_with_lineage",
            help: "Live sessions currently re-pointed from a parent spec digest.",
            kind: MetricKind::Gauge,
            value: lineage as u64,
        },
        ExtraMetric {
            name: "atl_serve_warmed_hidden_states",
            help: "Hidden-state entries across all warmed eval caches.",
            kind: MetricKind::Gauge,
            value: hidden as u64,
        },
        ExtraMetric {
            name: "atl_serve_warmed_frozen_messages",
            help: "Frozen interner messages across all warmed eval caches.",
            kind: MetricKind::Gauge,
            value: frozen as u64,
        },
        ExtraMetric {
            name: "atl_serve_monitors_live",
            help: "Monitor sessions currently resident.",
            kind: MetricKind::Gauge,
            value: state.monitors().sessions.len() as u64,
        },
        ExtraMetric {
            name: "atl_serve_monitors_total",
            help: "Monitor sessions opened (MONITOR requests plus resumed checkpoints).",
            kind: MetricKind::Counter,
            value: stats.monitors,
        },
        ExtraMetric {
            name: "atl_serve_monitor_events_total",
            help: "Trace events ingested across all monitor sessions.",
            kind: MetricKind::Counter,
            value: stats.monitor_events,
        },
        ExtraMetric {
            name: "atl_serve_monitor_points_reused_total",
            help: "Memoized point sets carried over by incremental monitor extensions.",
            kind: MetricKind::Counter,
            value: stats.monitor_points_reused,
        },
        ExtraMetric {
            name: "atl_serve_monitor_delta_saturations_total",
            help: "Monitor events served by the incremental delta path.",
            kind: MetricKind::Counter,
            value: stats.monitor_delta,
        },
        ExtraMetric {
            name: "atl_serve_monitor_full_saturations_total",
            help: "Monitor events that required a full prefix build and prewarm.",
            kind: MetricKind::Counter,
            value: stats.monitor_full,
        },
    ];
    Response::from_text(&state.metrics.render(&extras))
}

fn cmd_shutdown(state: &Arc<ServerState>) -> Response {
    state.shutdown.store(true, Ordering::SeqCst);
    // Wake the accept loop with a throwaway connection so it observes
    // the flag and exits.
    let _ = TcpStream::connect(state.addr);
    Response::from_text("bye")
}

/// A minimal blocking client for the wire protocol — the `testutil`
/// side of the conformance harness, and what `atl client` wraps.
pub struct Client {
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connects to a running daemon.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from the connect.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client {
            reader: BufReader::new(stream),
        })
    }

    /// Connects with a bounded connect timeout — the fabric coordinator
    /// uses this so a dead worker address fails fast instead of hanging
    /// in the OS connect queue.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from the connect, including `TimedOut`.
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Client> {
        let stream = TcpStream::connect_timeout(&addr, timeout)?;
        Ok(Client {
            reader: BufReader::new(stream),
        })
    }

    /// Bounds how long any single read on this connection may block
    /// (`None` restores blocking reads). With a timeout set, a hung
    /// daemon surfaces as a `WouldBlock`/`TimedOut` request error the
    /// coordinator can treat as a shard failure.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from the socket option.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request line and reads the response.
    ///
    /// # Errors
    ///
    /// [`io::Error`] on transport failure or an unparseable response
    /// header (`InvalidData`).
    pub fn request(&mut self, line: &str) -> io::Result<Response> {
        let mut msg = line.to_string();
        msg.push('\n');
        self.reader.get_mut().write_all(msg.as_bytes())?;
        let mut header = String::new();
        if self.reader.read_line(&mut header)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "daemon closed the connection",
            ));
        }
        let header = header.trim_end_matches(['\n', '\r']);
        if let Some(msg) = header.strip_prefix("ERR ") {
            return Ok(Response::err(msg));
        }
        let Some(count) = header
            .strip_prefix("OK ")
            .and_then(|n| n.parse::<usize>().ok())
        else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad response header {header:?}"),
            ));
        };
        let mut lines = Vec::with_capacity(count);
        for _ in 0..count {
            let mut l = String::new();
            if self.reader.read_line(&mut l)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "daemon closed mid-payload",
                ));
            }
            while l.ends_with('\n') || l.ends_with('\r') {
                l.pop();
            }
            lines.push(l);
        }
        Ok(Response { ok: true, lines })
    }

    /// `LOAD`s a spec and returns the session id.
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` if the daemon said `ERR` or
    /// the payload carried no session id.
    pub fn load(&mut self, path: &str) -> io::Result<u64> {
        let resp = self.request(&format!("LOAD {path}"))?;
        resp.session_id().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                resp.err_message().unwrap_or("no session id").to_string(),
            )
        })
    }

    /// `RELOAD`s a session from an edited spec and returns the full
    /// response (load line plus the reuse summary line).
    ///
    /// # Errors
    ///
    /// Transport errors, or `InvalidData` if the daemon said `ERR`.
    pub fn reload(&mut self, id: u64, path: &str) -> io::Result<Response> {
        let resp = self.request(&format!("RELOAD {id} {path}"))?;
        if let Some(msg) = resp.err_message() {
            return Err(io::Error::new(io::ErrorKind::InvalidData, msg.to_string()));
        }
        Ok(resp)
    }

    /// Sends `SHUTDOWN`.
    ///
    /// # Errors
    ///
    /// As for [`Client::request`].
    pub fn shutdown(&mut self) -> io::Result<Response> {
        self.request("SHUTDOWN")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atl_model::PlanFingerprint;

    fn start_test_server(max_sessions: usize) -> Server {
        Server::start(ServeConfig {
            port: 0,
            max_sessions,
            pool: Pool::new(1),
            ..ServeConfig::default()
        })
        .expect("bind ephemeral port")
    }

    fn spec_file(name: &str, content: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("atl-serve-unit-{}-{name}.atl", std::process::id()));
        std::fs::write(&path, content).expect("write temp spec");
        path
    }

    const TOY: &str = "protocol toy\n\
        principals A B\n\
        keys Kab\n\
        assume A believes (A <-Kab-> B)\n\
        assume A has Kab\n\
        assume B has Kab\n\
        step A -> B : {Na}Kab@A\n\
        goal B sees {Na}Kab@A\n";

    #[test]
    fn response_framing_round_trips() {
        let ok = Response::from_text("a\nb\n");
        assert_eq!(ok.lines, vec!["a", "b"]);
        assert_eq!(ok.payload(), "a\nb\n");
        let err = Response::err("multi\nline\rmessage");
        assert_eq!(err.err_message(), Some("multi line message"));
        let mut buf = Vec::new();
        ok.write_to(&mut buf).expect("write");
        assert_eq!(buf, b"OK 2\na\nb\n");
        buf.clear();
        err.write_to(&mut buf).expect("write");
        assert_eq!(buf, b"ERR multi line message\n");
    }

    #[test]
    fn session_id_parses_from_load_line() {
        let resp = Response::from_text("session 12: protocol toy (1 assumption(s), …)");
        assert_eq!(resp.session_id(), Some(12));
        assert_eq!(Response::err("nope").session_id(), None);
    }

    #[test]
    fn unknown_commands_and_bad_ids_yield_err() {
        let server = start_test_server(2);
        let mut c = Client::connect(server.addr()).expect("connect");
        for req in [
            "FROBNICATE",
            "",
            "ANALYZE",
            "ANALYZE 999",
            "ANALYZE not-a-number",
            "EVAL 1",
            "INJECT",
            "STATS please",
            "LOAD",
        ] {
            let resp = c.request(req).expect("parseable response");
            assert!(!resp.ok, "request {req:?} must fail, got {resp:?}");
        }
        c.shutdown().expect("shutdown");
        server.join();
    }

    #[test]
    fn lru_eviction_recycles_oldest_session() {
        let server = start_test_server(2);
        let mut c = Client::connect(server.addr()).expect("connect");
        let specs: Vec<std::path::PathBuf> = (0..3)
            .map(|i| {
                // Distinct *canonical* content per variant — a comment
                // suffix would now dedupe to one session.
                let variant = TOY.replace("protocol toy", &format!("protocol toy{i}"));
                spec_file(&format!("lru{i}"), &variant)
            })
            .collect();
        let a = c
            .load(specs[0].to_str().expect("utf8 path"))
            .expect("load a");
        let b = c
            .load(specs[1].to_str().expect("utf8 path"))
            .expect("load b");
        // Touch a so b is the LRU victim.
        assert!(c.request(&format!("ANALYZE {a}")).expect("analyze").ok);
        let _c3 = c
            .load(specs[2].to_str().expect("utf8 path"))
            .expect("load c");
        let stats = server.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.parsed, 3);
        let gone = c.request(&format!("ANALYZE {b}")).expect("response");
        assert!(!gone.ok, "evicted session must be unknown");
        assert!(c.request(&format!("ANALYZE {a}")).expect("analyze").ok);
        c.shutdown().expect("shutdown");
        server.join();
        for p in specs {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn plan_flags_parse_like_the_cli() {
        let req = parse_plan_flags("--seed 9 --drop 0.5 --delay 0.25:3 --compromise Kab@2")
            .expect("valid flags");
        assert_eq!(req.plan.seed, 9);
        assert_eq!(req.plan.compromises, vec![(Key::new("Kab"), 2)]);
        assert!(parse_plan_flags("--sweep").is_err());
        assert!(parse_plan_flags("--drop").is_err());
        assert!(parse_plan_flags("--drop nan-ish").is_err());
    }

    #[test]
    fn policy_and_options_render_parse_round_trip() {
        for policy in [
            ExpectPolicy::wait_forever(),
            ExpectPolicy::skip_after(7),
            ExpectPolicy::resend_after(3, 2),
            ExpectPolicy {
                patience: Some(4),
                on_timeout: OnTimeout::Stall,
            },
        ] {
            let rendered = render_policy(&policy);
            assert_eq!(parse_policy(&rendered), Ok(policy), "{rendered}");
        }
        assert!(parse_policy("7").is_err());
        assert!(parse_policy("x:skip").is_err());
        assert!(parse_policy("3:resend").is_err());
        for options in [
            ExecOptions::default(),
            ExecOptions {
                start_time: -4,
                public_channel: true,
                schedule: vec![1, 0, 1],
            },
        ] {
            let rendered = render_exec_options(&options);
            let parsed = parse_exec_options(&rendered).expect("options parse");
            assert_eq!(parsed.start_time, options.start_time, "{rendered}");
            assert_eq!(parsed.public_channel, options.public_channel);
            assert_eq!(parsed.schedule, options.schedule);
        }
        assert!(parse_exec_options("0:2:-").is_err());
        assert!(parse_exec_options("0:1").is_err());
    }

    #[test]
    fn sweep_shard_returns_wire_outcomes_matching_local_execution() {
        let server = start_test_server(2);
        let mut c = Client::connect(server.addr()).expect("connect");
        let spec = spec_file("sweep", TOY);
        let id = c.load(spec.to_str().expect("utf8 path")).expect("load");
        let plans = [FaultPlan::new(0), FaultPlan::new(1).drop(1.0)];
        let request = format!(
            "SWEEP {id} policy={} options={} plans={};{}",
            render_policy(&ExpectPolicy::skip_after(3)),
            render_exec_options(&ExecOptions::default()),
            atl_model::wire::render_plan(&plans[0]),
            atl_model::wire::render_plan(&plans[1]),
        );
        let resp = c.request(&request).expect("sweep");
        assert!(resp.ok, "{resp:?}");
        assert_eq!(resp.lines[0], "plans 2");
        // Decode both outcomes and check them against direct local
        // execution under the same policy and options.
        let (content, _) = parse_spec(TOY).expect("spec parses");
        let proto = enact_with(
            &content,
            EnactOptions {
                expect_policy: ExpectPolicy::skip_after(3),
            },
        );
        let mut cursor = 1;
        for plan in &plans {
            let header = &resp.lines[cursor];
            let n: usize = header
                .rsplit_once("lines=")
                .and_then(|(_, n)| n.parse().ok())
                .expect("outcome header");
            let fp = PlanFingerprint::of(plan);
            assert!(
                header.contains(&format!("fp={:016x}", fp.digest())),
                "{header}"
            );
            let body = resp.lines[cursor + 1..cursor + 1 + n].join("\n") + "\n";
            let outcome = atl_model::wire::parse_outcome(&body).expect("outcome parses");
            let direct = execute_with_faults(&proto, &ExecOptions::default(), plan);
            assert_eq!(outcome, direct);
            cursor += 1 + n;
        }
        assert_eq!(cursor, resp.lines.len());
        // Bad shards fail cleanly.
        for bad in [
            format!("SWEEP {id}"),
            format!("SWEEP {id} policy=3:skip options=0:0:- plans="),
            format!("SWEEP {id} policy=3:skip plans=seed=0"),
            format!("SWEEP {id} policy=3:skip options=0:0:- plans=garbage"),
        ] {
            assert!(!c.request(&bad).expect("response").ok, "{bad:?}");
        }
        c.shutdown().expect("shutdown");
        server.join();
        let _ = std::fs::remove_file(spec);
    }

    #[test]
    fn idle_connections_are_reaped_and_counted() {
        let server = Server::start(ServeConfig {
            port: 0,
            max_sessions: 2,
            pool: Pool::new(1),
            idle_timeout: Some(Duration::from_millis(80)),
            ..ServeConfig::default()
        })
        .expect("bind");
        // A half-open client: connects, never sends.
        let idle = TcpStream::connect(server.addr()).expect("connect");
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.stats().reaped == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(server.stats().reaped, 1, "idle connection was not reaped");
        // The daemon stays healthy and STATS surfaces the count.
        let mut c = Client::connect(server.addr()).expect("connect");
        let stats = c.request("STATS").expect("stats");
        assert!(stats.lines.iter().any(|l| l == "connections: 1 reaped"));
        drop(idle);
        c.shutdown().expect("shutdown");
        server.join();
    }

    #[test]
    fn shutdown_drains_inflight_requests_before_join_returns() {
        let server = start_test_server(2);
        // Simulate an in-flight request: the accept loop must wait for
        // it even after SHUTDOWN, because `active` brackets dispatch and
        // response write.
        server.state.active.fetch_add(1, Ordering::SeqCst);
        let state = Arc::clone(&server.state);
        let release = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            state.active.fetch_sub(1, Ordering::SeqCst);
        });
        let mut c = Client::connect(server.addr()).expect("connect");
        c.shutdown().expect("shutdown");
        let started = Instant::now();
        server.join();
        assert!(
            started.elapsed() >= Duration::from_millis(100),
            "join returned before the in-flight request finished"
        );
        release.join().expect("release thread");
    }

    #[test]
    fn drain_deadline_bounds_shutdown_wait() {
        let server = Server::start(ServeConfig {
            port: 0,
            max_sessions: 2,
            pool: Pool::new(1),
            drain_deadline: Duration::from_millis(120),
            ..ServeConfig::default()
        })
        .expect("bind");
        // A request that never finishes must not hold shutdown hostage.
        server.state.active.fetch_add(1, Ordering::SeqCst);
        let mut c = Client::connect(server.addr()).expect("connect");
        c.shutdown().expect("shutdown");
        let started = Instant::now();
        server.join();
        assert!(
            started.elapsed() < Duration::from_secs(10),
            "drain deadline did not bound the shutdown wait"
        );
    }

    #[test]
    fn oversized_request_line_is_drained_and_connection_stays_usable() {
        let server = start_test_server(2);
        let mut stream = TcpStream::connect(server.addr()).expect("connect");
        // Pipelined in one write: an oversized junk line followed by a
        // valid STATS. The daemon must drain the junk through its
        // newline so STATS parses from a line boundary, not mid-payload.
        let mut payload = vec![b'x'; MAX_REQUEST_BYTES + 10];
        payload.extend_from_slice(b"\nSTATS\n");
        stream.write_all(&payload).expect("write oversized + STATS");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read reply");
        assert!(reply.starts_with("ERR "), "got {reply:?}");
        reply.clear();
        reader.read_line(&mut reply).expect("read follow-up header");
        assert!(
            reply.starts_with("OK "),
            "pipelined follow-up must parse, got {reply:?}"
        );
        // A junk line with no newline at all must close once the drain
        // budget runs out rather than pinning a worker forever. The
        // payload overshoots the worst-case legal consumption (request
        // cap + drain budget + buffered chunks) so the server must give
        // up mid-stream; the reply may then be the framed ERR or a
        // reset from the close racing our writes — the bug being tested
        // for is the read timing out because the worker stayed pinned.
        drop(reader);
        drop(stream);
        let unbounded = TcpStream::connect(server.addr()).expect("connect");
        unbounded
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        let endless = vec![b'y'; MAX_DRAIN_BYTES + 4 * MAX_REQUEST_BYTES];
        let mut w = unbounded.try_clone().expect("clone");
        let _ = w.write_all(&endless);
        let mut reply = String::new();
        match BufReader::new(&unbounded).read_line(&mut reply) {
            Ok(0) => {}
            Ok(_) => assert!(reply.starts_with("ERR "), "got {reply:?}"),
            Err(e) => assert!(
                !matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ),
                "worker stayed pinned on an unbounded junk line: {e}"
            ),
        }
        // The daemon is still healthy for new connections.
        let mut c = Client::connect(server.addr()).expect("connect again");
        assert!(c.request("STATS").expect("stats").ok);
        c.shutdown().expect("shutdown");
        server.join();
    }

    #[test]
    fn connection_accepted_during_shutdown_gets_framed_error() {
        let server = start_test_server(2);
        // Force the race deterministically: raise the shutdown flag
        // before the accept loop sees the connection, so the
        // accepted-after-shutdown branch must answer with a framed ERR
        // rather than silently dropping the socket.
        server.state.shutdown.store(true, Ordering::SeqCst);
        // The refusal is written on accept, before any request arrives —
        // so the client only reads (writing first could race the
        // server-side close into an RST that clobbers the reply).
        let stream = TcpStream::connect(server.addr()).expect("connect");
        let mut reply = String::new();
        BufReader::new(&stream)
            .read_line(&mut reply)
            .expect("read reply");
        assert_eq!(reply.trim_end(), "ERR shutting down", "got {reply:?}");
        assert_eq!(server.state.metrics.shutdown_refused_total(), 1);
        server.join();
    }

    #[test]
    fn racing_clients_against_shutdown_never_see_silent_drop() {
        // Fire connection attempts while SHUTDOWN lands. Every client
        // that gets a connection and writes a request must either read a
        // framed response line or hit a transport error — never a clean
        // EOF with zero response bytes (the old silently-dropped-socket
        // bug).
        let server = start_test_server(2);
        let addr = server.addr();
        let clients: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(move || -> Option<bool> {
                    let mut stream = TcpStream::connect(addr).ok()?;
                    stream.write_all(b"STATS\n").ok()?;
                    let mut reply = String::new();
                    match BufReader::new(&stream).read_line(&mut reply) {
                        Ok(0) => Some(false), // clean EOF, no bytes: the bug
                        Ok(_) => Some(reply.starts_with("OK ") || reply.starts_with("ERR ")),
                        Err(_) => None, // RST mid-handshake: acceptable
                    }
                })
            })
            .collect();
        let mut c = Client::connect(addr).expect("connect");
        c.shutdown().expect("shutdown");
        server.join();
        for client in clients {
            if let Some(framed) = client.join().expect("client thread") {
                assert!(framed, "a racing client saw a silent drop");
            }
        }
    }

    #[test]
    fn full_accept_queue_answers_busy() {
        // One worker, queue depth 1. Occupy the worker with a held-open
        // connection mid-request cadence, fill the queue, then overflow.
        let server = Server::start(ServeConfig {
            port: 0,
            max_sessions: 2,
            pool: Pool::new(1),
            conn_workers: 1,
            queue_depth: 1,
            ..ServeConfig::default()
        })
        .expect("bind");
        let mut occupant = Client::connect(server.addr()).expect("occupy worker");
        assert!(occupant.request("STATS").expect("stats").ok);
        // The occupant keeps its connection open, so the single worker
        // stays parked in read_request for this connection.
        let queued = TcpStream::connect(server.addr()).expect("fills queue");
        let deadline = Instant::now() + Duration::from_secs(10);
        let mut saw_busy = false;
        while Instant::now() < deadline && !saw_busy {
            let overflow = TcpStream::connect(server.addr()).expect("overflow connect");
            let mut reply = String::new();
            // A rejected connection gets one line and a close; a queued
            // one would block, so bound the read.
            overflow
                .set_read_timeout(Some(Duration::from_millis(200)))
                .expect("timeout");
            match BufReader::new(&overflow).read_line(&mut reply) {
                Ok(n) if n > 0 && reply.trim_end() == "ERR busy" => saw_busy = true,
                _ => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        assert!(saw_busy, "overflow connection was never answered ERR busy");
        assert!(
            server.state.metrics.rejected_total() >= 1,
            "rejection must be counted"
        );
        drop(queued);
        occupant.shutdown().expect("shutdown");
        server.join();
    }

    #[test]
    fn resent_sweep_shard_counts_per_execution_and_hits_global_cache() {
        let server = start_test_server(2);
        let mut c = Client::connect(server.addr()).expect("connect");
        let spec = spec_file("resent", TOY);
        let id = c.load(spec.to_str().expect("utf8 path")).expect("load");
        let request = format!(
            "SWEEP {id} policy={} options={} plans={};{}",
            render_policy(&ExpectPolicy::skip_after(3)),
            render_exec_options(&ExecOptions::default()),
            atl_model::wire::render_plan(&FaultPlan::new(0)),
            atl_model::wire::render_plan(&FaultPlan::new(1).drop(1.0)),
        );
        let first = c.request(&request).expect("first shard");
        // The coordinator resending a timed-out shard must not inflate
        // plan totals beyond what was actually received, and the replay
        // must be answered by the global cache with identical bytes.
        let second = c.request(&request).expect("resent shard");
        assert_eq!(first, second, "resent shard must be byte-identical");
        let stats = server.stats();
        assert_eq!(stats.sweep_served, 2);
        assert_eq!(stats.sweep_plans, 4);
        assert_eq!(
            stats.sweep_exec_hits, 2,
            "the resent shard must be served from the global ExecutionCache"
        );
        c.shutdown().expect("shutdown");
        server.join();
        let _ = std::fs::remove_file(spec);
    }

    #[test]
    fn metrics_exposition_parses_and_counts_match_stats() {
        let server = start_test_server(2);
        let mut c = Client::connect(server.addr()).expect("connect");
        let spec = spec_file("metrics", TOY);
        let id = c.load(spec.to_str().expect("utf8 path")).expect("load");
        assert!(c.request(&format!("ANALYZE {id}")).expect("analyze").ok);
        assert!(
            c.request("METRICS then some").expect("bad").err_message()
                == Some("METRICS takes no arguments")
        );
        let resp = c.request("METRICS").expect("metrics");
        assert!(resp.ok, "{resp:?}");
        let text = resp.payload();
        let samples = crate::metrics::check_exposition(&text).expect("valid exposition");
        assert!(samples > 20, "suspiciously few samples: {samples}");
        for needle in [
            "atl_serve_requests_total{verb=\"load\"} 1",
            "atl_serve_requests_total{verb=\"analyze\"} 1",
            "atl_serve_rejected_total 0",
            "atl_serve_connection_workers 8",
            "atl_serve_sessions_live 1",
        ] {
            assert!(
                text.lines().any(|l| l == needle),
                "missing {needle:?} in:\n{text}"
            );
        }
        c.shutdown().expect("shutdown");
        server.join();
        let _ = std::fs::remove_file(spec);
    }

    /// TOY with one belief assumption appended (analysis resumes, the
    /// enacted protocol — and so the system — is untouched).
    const TOY_ADDED: &str = "protocol toy\n\
        principals A B\n\
        keys Kab\n\
        assume A believes (A <-Kab-> B)\n\
        assume A has Kab\n\
        assume B has Kab\n\
        assume B believes (A <-Kab-> B)\n\
        step A -> B : {Na}Kab@A\n\
        goal B sees {Na}Kab@A\n";

    /// TOY with a different goal (nothing the executor or the annotation
    /// closure sees changes).
    const TOY_GOAL: &str = "protocol toy\n\
        principals A B\n\
        keys Kab\n\
        assume A believes (A <-Kab-> B)\n\
        assume A has Kab\n\
        assume B has Kab\n\
        step A -> B : {Na}Kab@A\n\
        goal A believes (A <-Kab-> B)\n";

    /// TOY with the step message changed (the executor-visible surface
    /// moves: new system, pointwise cache rewarm).
    const TOY_MSG: &str = "protocol toy\n\
        principals A B\n\
        keys Kab\n\
        assume A believes (A <-Kab-> B)\n\
        assume A has Kab\n\
        assume B has Kab\n\
        step A -> B : {Nb}Kab@A\n\
        goal B sees {Nb}Kab@A\n";

    #[test]
    fn comment_only_twin_load_is_a_dedupe_hit() {
        let server = start_test_server(2);
        let mut c = Client::connect(server.addr()).expect("connect");
        let plain = spec_file("twin-plain", TOY);
        let twin_text: String = format!(
            "# twin header\n\n{}\n   # trailing note\n",
            TOY.lines()
                .map(|l| format!("   {l}   # inline note\n"))
                .collect::<String>()
        );
        let twin = spec_file("twin-commented", &twin_text);
        let a = c.load(plain.to_str().expect("utf8 path")).expect("load");
        let b = c.load(twin.to_str().expect("utf8 path")).expect("twin");
        assert_eq!(a, b, "comment-only twin must dedupe to the same session");
        let stats = server.stats();
        assert_eq!(
            (stats.loads, stats.parsed, stats.load_hits),
            (2, 1, 1),
            "the twin must be a cache hit, not a second build"
        );
        c.shutdown().expect("shutdown");
        server.join();
        for p in [plain, twin] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn reload_of_unchanged_content_is_a_counted_noop() {
        let server = start_test_server(2);
        let mut c = Client::connect(server.addr()).expect("connect");
        let spec = spec_file("reload-noop", TOY);
        let path = spec.to_str().expect("utf8 path");
        let id = c.load(path).expect("load");
        let analyze = c.request(&format!("ANALYZE {id}")).expect("analyze");
        let resp = c.reload(id, path).expect("reload");
        assert_eq!(resp.lines.len(), 2, "{resp:?}");
        assert_eq!(resp.lines[1], "reload unchanged: session kept as-is");
        assert_eq!(resp.session_id(), Some(id));
        assert_eq!(
            c.request(&format!("ANALYZE {id}")).expect("analyze"),
            analyze,
            "a no-op reload must not perturb the session"
        );
        let stats = server.stats();
        assert_eq!(
            (stats.reloads, stats.reload_delta, stats.reload_full),
            (1, 1, 0)
        );
        assert_eq!(stats.parsed, 1, "unchanged content must not re-parse");
        c.shutdown().expect("shutdown");
        server.join();
        let _ = std::fs::remove_file(spec);
    }

    #[test]
    fn reload_rejects_bad_arguments_and_unknown_sessions() {
        let server = start_test_server(2);
        let mut c = Client::connect(server.addr()).expect("connect");
        let spec = spec_file("reload-args", TOY);
        let path = spec.to_str().expect("utf8 path");
        for bad in [
            "RELOAD".to_string(),
            "RELOAD 1".to_string(),
            format!("RELOAD 999 {path}"),
            format!("RELOAD not-a-number {path}"),
            "RELOAD 1 /no/such/spec.atl".to_string(),
        ] {
            let resp = c.request(&bad).expect("response");
            assert!(!resp.ok, "request {bad:?} must fail, got {resp:?}");
        }
        assert_eq!(server.stats().reloads, 0);
        c.shutdown().expect("shutdown");
        server.join();
        let _ = std::fs::remove_file(spec);
    }

    /// The proof obligation, per edit class: a delta-reloaded session
    /// answers `ANALYZE`/`EVAL`/`INJECT` byte-identically to a cold
    /// daemon that loaded the edited spec from scratch.
    #[test]
    fn reload_answers_byte_identical_to_cold_load_per_edit_class() {
        for (name, edited, goal) in [
            ("assumption-added", TOY_ADDED, "B sees {Na}Kab@A"),
            ("goal-changed", TOY_GOAL, "A believes (A <-Kab-> B)"),
            ("message-changed", TOY_MSG, "B sees {Nb}Kab@A"),
        ] {
            let base = spec_file(&format!("reload-{name}-base"), TOY);
            let edited_path = spec_file(&format!("reload-{name}-edited"), edited);
            let epath = edited_path.to_str().expect("utf8 path");

            let warm_srv = start_test_server(2);
            let mut warm = Client::connect(warm_srv.addr()).expect("connect");
            let id = warm
                .load(base.to_str().expect("utf8 path"))
                .expect("load base");
            let resp = warm.reload(id, epath).expect("reload");
            assert_eq!(resp.session_id(), Some(id), "{name}: id must be kept");

            let cold_srv = start_test_server(2);
            let mut cold = Client::connect(cold_srv.addr()).expect("connect");
            let cold_id = cold.load(epath).expect("cold load");

            let queries = [
                "ANALYZE {id}".to_string(),
                format!("EVAL {{id}} 0:0 {goal}"),
                format!("EVAL {{id}} 0:2 {goal}"),
                "INJECT {id} --seed 7 --drop 0.5".to_string(),
            ];
            for q in &queries {
                let warm_resp = warm
                    .request(&q.replace("{id}", &id.to_string()))
                    .expect("warm query");
                let cold_resp = cold
                    .request(&q.replace("{id}", &cold_id.to_string()))
                    .expect("cold query");
                assert_eq!(
                    warm_resp, cold_resp,
                    "{name}: {q} differs between delta reload and cold load"
                );
            }

            let stats = warm_srv.stats();
            assert_eq!(stats.reloads, 1, "{name}");
            assert_eq!(
                stats.reload_delta + stats.reload_full,
                1,
                "{name}: every reload is classified exactly once"
            );
            if name != "message-changed" {
                assert_eq!(
                    stats.reload_delta, 1,
                    "{name}: an executor-invisible edit must be a delta reload"
                );
            }

            warm.shutdown().expect("shutdown");
            warm_srv.join();
            cold.shutdown().expect("shutdown");
            cold_srv.join();
            for p in [base, edited_path] {
                let _ = std::fs::remove_file(p);
            }
        }
    }

    #[test]
    fn reload_repoints_digest_mapping_and_tracks_lineage() {
        let server = start_test_server(2);
        let mut c = Client::connect(server.addr()).expect("connect");
        let base = spec_file("lineage-base", TOY);
        let edited = spec_file("lineage-edited", TOY_GOAL);
        let id = c.load(base.to_str().expect("utf8 path")).expect("load");
        c.reload(id, edited.to_str().expect("utf8 path"))
            .expect("reload");
        // The edited digest now dedupes onto the reloaded session...
        assert_eq!(
            c.load(edited.to_str().expect("utf8 path")).expect("load"),
            id,
            "LOAD of the edited spec must hit the reloaded session"
        );
        // ...while the old digest no longer points anywhere, so loading
        // the original builds a fresh session instead of resurrecting a
        // stale mapping.
        let fresh = c.load(base.to_str().expect("utf8 path")).expect("load");
        assert_ne!(fresh, id, "the pre-edit digest must not alias the reload");
        let stats = server.stats();
        assert_eq!((stats.parsed, stats.load_hits), (2, 1));
        let metrics = c.request("METRICS").expect("metrics");
        assert!(
            metrics
                .lines
                .iter()
                .any(|l| l == "atl_serve_sessions_with_lineage 1"),
            "lineage gauge missing in:\n{}",
            metrics.payload()
        );
        // Evicting the fresh session must not disturb the reloaded
        // session's digest mapping (capacity 2: touch the reloaded
        // session so the fresh one is the LRU victim of a third load).
        let third = spec_file("lineage-third", TOY_MSG);
        assert!(c.request(&format!("ANALYZE {id}")).expect("touch").ok);
        c.load(third.to_str().expect("utf8 path")).expect("load");
        assert_eq!(server.stats().evictions, 1);
        assert_eq!(
            c.load(edited.to_str().expect("utf8 path")).expect("load"),
            id,
            "eviction of an unrelated session must keep the reloaded mapping"
        );
        c.shutdown().expect("shutdown");
        server.join();
        for p in [base, edited, third] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn worker_concurrency_never_exceeds_pool_width() {
        let width = 2;
        let server = Server::start(ServeConfig {
            port: 0,
            max_sessions: 2,
            pool: Pool::new(1),
            conn_workers: width,
            queue_depth: 64,
            ..ServeConfig::default()
        })
        .expect("bind");
        let addr = server.addr();
        let clients: Vec<_> = (0..6)
            .map(|_| {
                std::thread::spawn(move || {
                    for _ in 0..5 {
                        let mut c = Client::connect(addr).expect("connect");
                        assert!(c.request("STATS").expect("stats").ok);
                    }
                })
            })
            .collect();
        for client in clients {
            client.join().expect("client thread");
        }
        let peak = server.state.metrics.busy_workers_peak();
        assert!(
            (1..=width as u64).contains(&peak),
            "busy-worker peak {peak} escaped the configured width {width}"
        );
        let mut c = Client::connect(addr).expect("connect");
        c.shutdown().expect("shutdown");
        server.join();
    }

    /// The trace the monitor tests stream, one line per EVENT. Same
    /// shape as the `crate::monitor` unit fixture: a pre-epoch header,
    /// then three events that bring the run to horizon 2.
    const MONITOR_TRACE: &[&str] = &[
        "run start -1",
        "principal A keys Kab",
        "principal B keys Kab",
        "newkey A Spare",
        "send A -> B : {X}Kab@A",
        "recv B : {X}Kab@A",
    ];

    #[test]
    fn monitor_wire_verbs_match_the_in_process_engine() {
        let server = start_test_server(2);
        let mut c = Client::connect(server.addr()).expect("connect");

        // Argument validation before any session exists.
        for req in ["MONITOR", "MONITOR   ;  ;", "EVENT", "EVENT 7 run start 0"] {
            let resp = c.request(req).expect("response");
            assert!(!resp.ok, "request {req:?} must fail, got {resp:?}");
        }

        let opened = c.request("MONITOR B sees X; Env has Kab").expect("monitor");
        assert_eq!(opened.lines, vec!["monitor 1: watching 2 formula(s)"]);

        // Reference: the same engine driven in-process.
        let pool = Pool::new(1);
        let mut reference = Monitor::new(
            "monitor-1",
            ["B sees X".to_string(), "Env has Kab".to_string()],
        )
        .expect("reference monitor");
        for line in MONITOR_TRACE {
            let resp = c.request(&format!("EVENT 1 {line}")).expect("event");
            assert!(resp.ok, "{resp:?}");
            let expected = reference.feed_line(line, &pool).expect("reference feed");
            assert_eq!(resp.lines, expected, "wire and engine diverge on {line:?}");
        }
        // Verdict lines carry the exact `atl eval` format.
        let last = c
            .request("EVENT 1 newkey Env __pad")
            .expect("idle event")
            .lines;
        assert_eq!(
            last,
            vec![
                "at (run 0, time 3): B sees X = true",
                "at (run 0, time 3): Env has Kab = false",
            ]
        );
        reference
            .feed_line("newkey Env __pad", &pool)
            .expect("reference idle");

        // A bad line is rejected with a positioned diagnostic and does
        // not corrupt the session: the next event still verdicts.
        let bad = c.request("EVENT 1 recv B :").expect("bad event");
        let msg = bad.err_message().expect("ERR reply");
        assert!(msg.starts_with("event:8:"), "unexpected diagnostic {msg:?}");
        let again = c.request("EVENT 1 newkey Env __pad").expect("event");
        assert_eq!(
            again.lines,
            reference
                .feed_line("newkey Env __pad", &pool)
                .expect("feed")
        );

        let unknown = c.request("EVENT 99 run start 0").expect("response");
        assert_eq!(unknown.err_message(), Some("no monitor 99"));

        // STATS grows a monitor line; the batch lines CI greps survive.
        let stats = c.request("STATS").expect("stats").payload();
        assert!(
            stats
                .lines()
                .any(|l| l
                    == "monitor: 1 session(s), 5 event(s), 49 point(s) reused, 4 delta, 1 full"),
            "missing monitor line in:\n{stats}"
        );
        assert!(stats.lines().any(|l| l.starts_with("reloads: ")));
        assert!(stats.lines().any(|l| l.starts_with("connections: ")));

        // METRICS stays a valid exposition and carries the new series.
        let metrics = c.request("METRICS").expect("metrics").payload();
        crate::metrics::check_exposition(&metrics).expect("valid exposition");
        for needle in [
            "atl_serve_monitors_live 1",
            "atl_serve_monitors_total 1",
            "atl_serve_monitor_events_total 5",
            "atl_serve_monitor_delta_saturations_total 4",
            "atl_serve_monitor_full_saturations_total 1",
            "atl_serve_requests_total{verb=\"monitor\"} 3",
            "atl_serve_requests_total{verb=\"event\"} 12",
        ] {
            assert!(
                metrics.lines().any(|l| l == needle),
                "missing {needle:?} in:\n{metrics}"
            );
        }
        c.shutdown().expect("shutdown");
        server.join();
    }

    #[test]
    fn monitor_checkpoints_survive_a_daemon_restart() {
        let dir = std::env::temp_dir().join(format!(
            "atl-serve-unit-{}-monitor-store",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let config = ServeConfig {
            port: 0,
            max_sessions: 2,
            pool: Pool::new(1),
            monitor_store: Some(dir.clone()),
            ..ServeConfig::default()
        };
        let server = Server::start(config.clone()).expect("bind");
        let mut c = Client::connect(server.addr()).expect("connect");
        assert!(c.request("MONITOR B sees X").expect("monitor").ok);
        let split = 5;
        for line in &MONITOR_TRACE[..split] {
            assert!(c.request(&format!("EVENT 1 {line}")).expect("event").ok);
        }
        c.shutdown().expect("shutdown");
        server.join();

        // Restart over the same store: the session resumes with its id
        // and history, and fresh MONITORs allocate past it.
        let server = Server::start(config).expect("rebind");
        let mut c = Client::connect(server.addr()).expect("reconnect");
        let pool = Pool::new(1);
        let mut reference = Monitor::new("monitor-1", ["B sees X".to_string()]).expect("reference");
        for line in &MONITOR_TRACE[..split] {
            reference.feed_line(line, &pool).expect("reference feed");
        }
        for line in &MONITOR_TRACE[split..] {
            let resp = c.request(&format!("EVENT 1 {line}")).expect("event");
            assert!(resp.ok, "{resp:?}");
            assert_eq!(
                resp.lines,
                reference.feed_line(line, &pool).expect("reference feed"),
                "post-restart divergence on {line:?}"
            );
        }
        let opened = c.request("MONITOR A has Kab").expect("second monitor");
        assert_eq!(opened.lines, vec!["monitor 2: watching 1 formula(s)"]);
        let stats = c.request("STATS").expect("stats").payload();
        assert!(
            stats
                .lines()
                .any(|l| l.starts_with("monitor: 2 session(s), 3 event(s),")),
            "missing resumed monitor counters in:\n{stats}"
        );
        c.shutdown().expect("shutdown");
        server.join();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
