//! The coordinator half of the distributed sweep fabric.
//!
//! A fault sweep is embarrassingly parallel once its grid is
//! fingerprint-deduplicated, so `atl inject --sweep` can deal shards of
//! plans to serve-mode daemons (`crate::serve`, the `SWEEP` verb) on
//! other processes or machines and merge the wire-rendered outcomes
//! back. This module is everything above the wire:
//!
//! - [`OutcomeStore`] — a persistent, content-addressed, crash-safe
//!   store of execution outcomes keyed by `(context digest, plan
//!   fingerprint)`. Writes are atomic (temp file + rename), loads verify
//!   a length + checksum frame and re-parse the payload, and anything
//!   truncated, bit-flipped, or mislabeled is discarded and recomputed
//!   rather than trusted. A coordinator killed mid-sweep therefore
//!   resumes from whatever outcomes it had committed.
//! - [`FabricConfig`] / [`FabricStats`] — knobs (shard size, per-shard
//!   deadline, bounded retries with exponential backoff, per-worker
//!   failure budget) and accounting for where each outcome came from.
//! - [`fabric_sweep`] — the coordinator. It resolves outcomes store →
//!   remote workers → local execution, requeues shards from dead or
//!   hung workers, and degrades gracefully to fully in-process
//!   execution when every worker is lost, so the sweep *always*
//!   completes.
//!
//! Correctness bar: the printed [`FaultSweepReport`] is byte-identical
//! to a single-process `atl inject --sweep` whatever the worker count,
//! which workers die, or how the sweep is resumed. That holds by
//! construction — outcomes round-trip exactly through
//! [`atl_model::wire`], and the report is assembled by the same
//! [`sweep_plans_resolve`] + [`survival_report`] path a local sweep
//! uses, with a resolver that merely *sources* outcomes differently.
//! `tests/e18_fabric.rs` holds it there under chaos (killed, hung, and
//! restarted workers; resumed coordinators; corrupted stores).

use crate::annotate::AtProtocol;
use crate::enact::{enact_with, EnactOptions};
use crate::parallel::Pool;
use crate::serve::{render_exec_options, render_policy, Client, MAX_REQUEST_BYTES};
use crate::sweep::{survival_report, FaultSweepReport, SweepConfig};
use atl_model::wire::{parse_outcome, render_outcome, render_plan};
use atl_model::{
    execute_with_faults, sweep_plans_resolve, ExecOutcome, ExecutionCache, FaultPlan,
    PlanFingerprint, Protocol,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::VecDeque;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// The FNV-1a 64-bit checksum guarding store entries against bit rot.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A persistent on-disk store of execution outcomes, one file per
/// `(context digest, plan fingerprint)` key.
///
/// Layout: `<dir>/<context:016x>-<fingerprint digest:016x>.outcome`,
/// each file framed as
///
/// ```text
/// atl-outcome v1
/// key <context:016x> <fingerprint wire rendering>
/// len <body bytes> sum <fnv-1a 64:016x>
/// <body: atl_model::wire::render_outcome>
/// ```
///
/// The full fingerprint rendering in the `key` line disambiguates any
/// (astronomically unlikely) digest collision and catches entries
/// renamed onto the wrong key. Saves go through a uniquely named temp
/// file in the same directory and a `rename`, so concurrent writers and
/// killed processes leave either the old entry, the new entry, or
/// nothing — never a torn file at the final path. Loads verify the
/// header, the key, the exact length, the checksum, and a full reparse;
/// any failure deletes the entry and reports a miss, so corruption
/// costs one recomputation, never a wrong answer.
pub struct OutcomeStore {
    dir: PathBuf,
    tmp_counter: AtomicU64,
}

impl OutcomeStore {
    /// Opens (creating if needed) the store directory.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from `create_dir_all`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<OutcomeStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(OutcomeStore {
            dir,
            tmp_counter: AtomicU64::new(0),
        })
    }

    fn entry_path(&self, context: u64, fp: &PlanFingerprint) -> PathBuf {
        self.dir
            .join(format!("{context:016x}-{:016x}.outcome", fp.digest()))
    }

    /// Loads the outcome stored under `(context, fp)`, or `None` on a
    /// miss. A present-but-invalid entry (truncated, bit-flipped, or
    /// keyed to something else) is removed and reported as a miss.
    pub fn load(&self, context: u64, fp: &PlanFingerprint) -> Option<ExecOutcome> {
        let path = self.entry_path(context, fp);
        let text = std::fs::read_to_string(&path).ok()?;
        match Self::decode(&text, context, fp) {
            Some(outcome) => Some(outcome),
            None => {
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    fn decode(text: &str, context: u64, fp: &PlanFingerprint) -> Option<ExecOutcome> {
        let rest = text.strip_prefix("atl-outcome v1\n")?;
        let (key_line, rest) = rest.split_once('\n')?;
        if key_line != format!("key {context:016x} {}", fp.wire()) {
            return None;
        }
        let (frame, body) = rest.split_once('\n')?;
        let mut parts = frame.split_whitespace();
        let (Some("len"), Some(len), Some("sum"), Some(sum), None) = (
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
        ) else {
            return None;
        };
        let len: usize = len.parse().ok()?;
        let sum = u64::from_str_radix(sum, 16).ok()?;
        if body.len() != len || fnv64(body.as_bytes()) != sum {
            return None;
        }
        parse_outcome(body).ok()
    }

    /// Atomically persists `outcome` under `(context, fp)`. Concurrent
    /// writers of the same key write identical bytes, so whichever
    /// rename lands last is indistinguishable from the first.
    ///
    /// # Errors
    ///
    /// Any [`io::Error`] from writing or renaming the temp file.
    pub fn save(
        &self,
        context: u64,
        fp: &PlanFingerprint,
        outcome: &ExecOutcome,
    ) -> io::Result<()> {
        let body = render_outcome(outcome);
        let content = format!(
            "atl-outcome v1\nkey {context:016x} {}\nlen {} sum {:016x}\n{body}",
            fp.wire(),
            body.len(),
            fnv64(body.as_bytes())
        );
        let tmp = self.dir.join(format!(
            ".tmp-{}-{}",
            std::process::id(),
            self.tmp_counter.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp, &content)?;
        std::fs::rename(&tmp, self.entry_path(context, fp))
    }

    /// How many committed entries the store holds (temp files excluded).
    pub fn len(&self) -> usize {
        std::fs::read_dir(&self.dir)
            .map(|entries| {
                entries
                    .flatten()
                    .filter(|e| e.path().extension().is_some_and(|ext| ext == "outcome"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// True if the store holds no committed entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// How the coordinator shards, retries, and falls back.
#[derive(Clone, Debug)]
pub struct FabricConfig {
    /// Worker daemon addresses (`host:port`). Empty means every outcome
    /// is resolved from the store or locally.
    pub workers: Vec<String>,
    /// Directory of the persistent [`OutcomeStore`], if any.
    pub store: Option<PathBuf>,
    /// Most plans per shard (shards also split to respect the daemon's
    /// request-line cap).
    pub shard_plans: usize,
    /// Deadline for any single worker interaction (connect, load, one
    /// shard). A worker silent past this is treated as failed.
    pub deadline: Duration,
    /// How many times a shard is requeued after worker failures before
    /// it falls back to local execution.
    pub shard_retries: u32,
    /// Consecutive failures after which a worker is abandoned for the
    /// rest of the sweep.
    pub worker_failures: u32,
    /// Base backoff before a failed worker retries; doubles per
    /// consecutive failure (capped at 2 s).
    pub backoff: Duration,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            workers: Vec::new(),
            store: None,
            shard_plans: 16,
            deadline: Duration::from_secs(30),
            shard_retries: 3,
            worker_failures: 3,
            backoff: Duration::from_millis(50),
        }
    }
}

/// Where a fabric sweep's outcomes came from, and what it survived.
///
/// Printed to stderr by the CLI so stdout stays byte-identical to a
/// single-process sweep. Every counter is a `u64` (like [`ServeStats`] on
/// the daemon side) so long-lived coordinators on 32-bit hosts cannot
/// wrap, and each one counts *committed* work: a shard requeued after a
/// timeout contributes to `requeues` per failed submission, but its
/// entries reach `remote_resolved`/`local_resolved` exactly once — when
/// an execution actually resolves them.
///
/// [`ServeStats`]: crate::serve::ServeStats
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Workers configured.
    pub workers: u64,
    /// Shards dealt to the worker queue.
    pub shards: u64,
    /// Outcomes answered by the persistent store.
    pub store_hits: u64,
    /// Outcomes executed by remote workers.
    pub remote_resolved: u64,
    /// Outcomes executed in-process (no workers, lost workers, or
    /// exhausted shard retries).
    pub local_resolved: u64,
    /// Shard attempts requeued after a worker failure.
    pub requeues: u64,
    /// Workers abandoned after too many consecutive failures.
    pub workers_lost: u64,
}

impl fmt::Display for FabricStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fabric: {} shard(s) over {} worker(s); {} store hit(s), {} remote, {} local, \
             {} requeue(s), {} worker(s) lost",
            self.shards,
            self.workers,
            self.store_hits,
            self.remote_resolved,
            self.local_resolved,
            self.requeues,
            self.workers_lost
        )
    }
}

/// A stable digest of everything besides the plan that determines a
/// distributed execution: the spec bytes (what workers `LOAD`) and the
/// enacted policy/options. Store entries and shards key off this, so a
/// store shared between specs, or a worker serving a stale spec file,
/// can never alias outcomes across contexts.
fn fabric_context(spec_text: &str, config: &SweepConfig) -> u64 {
    // DefaultHasher::new() is keyed with constants, so this digest is
    // stable across processes — the same precedent as the plan
    // fingerprint digest and the serve-session content digest.
    let mut h = DefaultHasher::new();
    spec_text.hash(&mut h);
    format!("{:?}", config.expect_policy).hash(&mut h);
    format!("{:?}", config.options).hash(&mut h);
    h.finish()
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One plan's slot in a shard: where its outcome goes, its identity,
/// and its exact wire rendering.
struct ShardEntry {
    /// Index into the resolver's output vector.
    slot: usize,
    /// Index into the full plan list (for local re-execution).
    plan_idx: usize,
    fp: PlanFingerprint,
    line: String,
}

struct Shard {
    entries: Vec<ShardEntry>,
    attempts: u32,
}

/// Everything the worker threads share.
struct SweepShared<'a> {
    queue: Mutex<VecDeque<Shard>>,
    /// Shards not yet committed to `slots` or `leftover`.
    pending: AtomicUsize,
    slots: Mutex<Vec<Option<Arc<ExecOutcome>>>>,
    /// Shards that exhausted their retries (drained locally afterward).
    leftover: Mutex<Vec<Shard>>,
    store: Option<&'a OutcomeStore>,
    context: u64,
    spec_path: &'a str,
    request_head: String,
    fabric: &'a FabricConfig,
    requeues: AtomicU64,
    remote: AtomicU64,
    lost: AtomicU64,
}

/// Runs a fault sweep whose outcomes are resolved store → workers →
/// local, and reports where they came from. The returned report is
/// byte-identical to [`crate::sweep::fault_sweep`] on the same spec and
/// config.
///
/// `spec_path` is the path workers `LOAD`; its bytes (which `at` was
/// parsed from) also key the outcome store, so resuming against an
/// edited spec misses cleanly instead of replaying stale outcomes.
///
/// # Errors
///
/// Any [`io::Error`] from reading the spec or opening the store. Worker
/// failures are *not* errors — they are absorbed by requeue and local
/// fallback.
pub fn fabric_sweep(
    at: &AtProtocol,
    spec_path: &str,
    config: &SweepConfig,
    fabric: &FabricConfig,
    pool: &Pool,
) -> io::Result<(FaultSweepReport, FabricStats)> {
    let spec_text = std::fs::read_to_string(spec_path)?;
    let store = match &fabric.store {
        Some(dir) => Some(OutcomeStore::open(dir)?),
        None => None,
    };
    let context = fabric_context(&spec_text, config);
    let proto = enact_with(
        at,
        EnactOptions {
            expect_policy: config.expect_policy,
        },
    );
    let plans = config.grid.plans();
    let mut stats = FabricStats {
        workers: fabric.workers.len() as u64,
        ..FabricStats::default()
    };
    // A fresh in-memory cache per sweep: the persistent store is the
    // cross-run memory, and a fresh cache keeps the printed SweepStats
    // line identical to a one-shot local sweep.
    let outcome = sweep_plans_resolve(context, &plans, &ExecutionCache::new(), |missing| {
        resolve_missing(
            &proto,
            spec_path,
            config,
            fabric,
            pool,
            store.as_ref(),
            context,
            &plans,
            missing,
            &mut stats,
        )
    });
    Ok((survival_report(at, outcome, pool), stats))
}

/// The fabric resolver: fills one outcome per missing fingerprint, in
/// order, sourcing each from the store, a worker, or local execution.
#[allow(clippy::too_many_arguments)]
fn resolve_missing(
    proto: &Protocol,
    spec_path: &str,
    config: &SweepConfig,
    fabric: &FabricConfig,
    pool: &Pool,
    store: Option<&OutcomeStore>,
    context: u64,
    plans: &[FaultPlan],
    missing: &[(usize, PlanFingerprint)],
    stats: &mut FabricStats,
) -> Vec<Arc<ExecOutcome>> {
    let mut slots: Vec<Option<Arc<ExecOutcome>>> = vec![None; missing.len()];

    // Store pass: anything a previous (possibly killed) sweep committed
    // is reused verbatim.
    let mut unresolved: Vec<ShardEntry> = Vec::new();
    for (slot, (plan_idx, fp)) in missing.iter().enumerate() {
        if let Some(hit) = store.and_then(|s| s.load(context, fp)) {
            stats.store_hits += 1;
            slots[slot] = Some(Arc::new(hit));
            continue;
        }
        unresolved.push(ShardEntry {
            slot,
            plan_idx: *plan_idx,
            fp: fp.clone(),
            line: render_plan(&plans[*plan_idx]),
        });
    }

    if !unresolved.is_empty() && !fabric.workers.is_empty() {
        let shards = build_shards(unresolved, fabric);
        stats.shards = shards.len() as u64;
        let shared = SweepShared {
            pending: AtomicUsize::new(shards.len()),
            queue: Mutex::new(shards.into()),
            slots: Mutex::new(slots),
            leftover: Mutex::new(Vec::new()),
            store,
            context,
            spec_path,
            request_head: format!(
                "policy={} options={}",
                render_policy(&config.expect_policy),
                render_exec_options(&config.options)
            ),
            fabric,
            requeues: AtomicU64::new(0),
            remote: AtomicU64::new(0),
            lost: AtomicU64::new(0),
        };
        std::thread::scope(|s| {
            for addr in &fabric.workers {
                let shared = &shared;
                s.spawn(move || worker_loop(addr, shared));
            }
        });
        stats.requeues = shared.requeues.load(Ordering::SeqCst);
        stats.remote_resolved = shared.remote.load(Ordering::SeqCst);
        stats.workers_lost = shared.lost.load(Ordering::SeqCst);
        slots = lock(&shared.slots).drain(..).collect();
        // Whatever the workers could not finish — exhausted retries, or
        // the whole fleet lost — drains locally below.
        unresolved = lock(&shared.queue)
            .drain(..)
            .chain(lock(&shared.leftover).drain(..))
            .flat_map(|shard| shard.entries)
            .collect();
        unresolved.sort_by_key(|e| e.slot);
    }

    // Local fallback (and the whole path when no workers are given):
    // execute over the pool exactly as a local sweep would.
    if !unresolved.is_empty() {
        stats.local_resolved = unresolved.len() as u64;
        let executed = pool.map(&unresolved, |_, entry| {
            Arc::new(execute_with_faults(
                proto,
                &config.options,
                &plans[entry.plan_idx],
            ))
        });
        for (entry, outcome) in unresolved.iter().zip(executed) {
            if let Some(store) = store {
                let _ = store.save(context, &entry.fp, &outcome);
            }
            slots[entry.slot] = Some(outcome);
        }
    }

    slots
        .into_iter()
        .map(|slot| slot.expect("fabric resolver filled every slot"))
        .collect()
}

/// Request-line budget for the plan list of one shard, leaving ample
/// headroom under [`MAX_REQUEST_BYTES`] for the verb, session id,
/// policy, and options.
const SHARD_LINE_BUDGET: usize = MAX_REQUEST_BYTES - 16 * 1024;

/// Deals entries into shards of at most `shard_plans` plans, splitting
/// early whenever the rendered request line would approach the daemon's
/// cap.
fn build_shards(entries: Vec<ShardEntry>, fabric: &FabricConfig) -> Vec<Shard> {
    let per_shard = fabric.shard_plans.max(1);
    let mut shards: Vec<Shard> = Vec::new();
    let mut current: Vec<ShardEntry> = Vec::new();
    let mut current_bytes = 0usize;
    for entry in entries {
        let cost = entry.line.len() + 1;
        if !current.is_empty()
            && (current.len() >= per_shard || current_bytes + cost > SHARD_LINE_BUDGET)
        {
            shards.push(Shard {
                entries: std::mem::take(&mut current),
                attempts: 0,
            });
            current_bytes = 0;
        }
        current_bytes += cost;
        current.push(entry);
    }
    if !current.is_empty() {
        shards.push(Shard {
            entries: current,
            attempts: 0,
        });
    }
    shards
}

/// One worker thread: pops shards, executes them on its daemon, and
/// commits the outcomes. Failures requeue the shard (bounded), back off
/// exponentially, and — after `worker_failures` consecutive ones —
/// abandon the worker. The loop exits when every shard is committed
/// somewhere or the worker is abandoned; a hung daemon cannot wedge it
/// because every interaction is bounded by the deadline.
fn worker_loop(addr_text: &str, shared: &SweepShared<'_>) {
    let mut conn: Option<(Client, u64)> = None;
    let mut consecutive: u32 = 0;
    loop {
        if shared.pending.load(Ordering::SeqCst) == 0 {
            return;
        }
        let Some(mut shard) = lock(&shared.queue).pop_front() else {
            // Other workers hold the remaining shards; stay available in
            // case one fails and requeues.
            std::thread::sleep(Duration::from_millis(2));
            continue;
        };
        match try_shard(addr_text, shared, &mut conn, &shard) {
            Ok(outcomes) => {
                consecutive = 0;
                {
                    let mut slots = lock(&shared.slots);
                    for (entry, outcome) in shard.entries.iter().zip(outcomes) {
                        if let Some(store) = shared.store {
                            let _ = store.save(shared.context, &entry.fp, &outcome);
                        }
                        slots[entry.slot] = Some(Arc::new(outcome));
                    }
                }
                shared
                    .remote
                    .fetch_add(shard.entries.len() as u64, Ordering::SeqCst);
                shared.pending.fetch_sub(1, Ordering::SeqCst);
            }
            Err(_why) => {
                conn = None;
                consecutive += 1;
                shard.attempts += 1;
                if shard.attempts > shared.fabric.shard_retries {
                    lock(&shared.leftover).push(shard);
                    shared.pending.fetch_sub(1, Ordering::SeqCst);
                } else {
                    shared.requeues.fetch_add(1, Ordering::SeqCst);
                    lock(&shared.queue).push_back(shard);
                }
                if consecutive >= shared.fabric.worker_failures.max(1) {
                    shared.lost.fetch_add(1, Ordering::SeqCst);
                    return;
                }
                let exp = shared
                    .fabric
                    .backoff
                    .saturating_mul(1u32 << (consecutive - 1).min(5));
                std::thread::sleep(exp.min(Duration::from_secs(2)));
            }
        }
    }
}

/// One bounded attempt at one shard: (re)connect, health-probe, load the
/// spec, send the `SWEEP` request, and decode + verify the response.
fn try_shard(
    addr_text: &str,
    shared: &SweepShared<'_>,
    conn: &mut Option<(Client, u64)>,
    shard: &Shard,
) -> Result<Vec<ExecOutcome>, String> {
    if conn.is_none() {
        let addr: SocketAddr = addr_text
            .to_socket_addrs()
            .map_err(|e| format!("worker {addr_text}: {e}"))?
            .next()
            .ok_or_else(|| format!("worker {addr_text}: no address"))?;
        let deadline = shared.fabric.deadline;
        let mut client = Client::connect_timeout(addr, deadline)
            .map_err(|e| format!("worker {addr_text}: connect: {e}"))?;
        client
            .set_timeout(Some(deadline))
            .map_err(|e| format!("worker {addr_text}: timeout: {e}"))?;
        // Health probe: a daemon that accepts but cannot answer STATS is
        // as dead as one that refuses the connection.
        let probe = client
            .request("STATS")
            .map_err(|e| format!("worker {addr_text}: probe: {e}"))?;
        if !probe.ok {
            return Err(format!(
                "worker {addr_text}: probe refused: {}",
                probe.err_message().unwrap_or("")
            ));
        }
        let id = client
            .load(shared.spec_path)
            .map_err(|e| format!("worker {addr_text}: load: {e}"))?;
        *conn = Some((client, id));
    }
    let (client, id) = conn.as_mut().expect("connection established above");
    let plans: Vec<&str> = shard.entries.iter().map(|e| e.line.as_str()).collect();
    let request = format!(
        "SWEEP {id} {} plans={}",
        shared.request_head,
        plans.join(";")
    );
    let resp = client
        .request(&request)
        .map_err(|e| format!("worker {addr_text}: sweep: {e}"))?;
    if !resp.ok {
        return Err(format!(
            "worker {addr_text}: sweep refused: {}",
            resp.err_message().unwrap_or("")
        ));
    }
    let digests: Vec<u64> = shard.entries.iter().map(|e| e.fp.digest()).collect();
    decode_sweep_response(&resp.lines, &digests).map_err(|why| format!("worker {addr_text}: {why}"))
}

/// Decodes a `SWEEP` response into one outcome per expected plan,
/// verifying the count, the ordering, and each fingerprint digest
/// against what the coordinator computed itself — a worker answering
/// for the wrong plans (stale spec, broken dedup) is a shard failure,
/// not silent corruption.
fn decode_sweep_response(lines: &[String], expected: &[u64]) -> Result<Vec<ExecOutcome>, String> {
    let mut it = lines.iter();
    let header = it.next().ok_or("empty SWEEP response")?;
    let count: usize = header
        .strip_prefix("plans ")
        .and_then(|n| n.parse().ok())
        .ok_or_else(|| format!("bad SWEEP response header {header:?}"))?;
    if count != expected.len() {
        return Err(format!(
            "SWEEP response carries {count} outcome(s), expected {}",
            expected.len()
        ));
    }
    let mut outcomes = Vec::with_capacity(count);
    for (i, &digest) in expected.iter().enumerate() {
        let head = it
            .next()
            .ok_or_else(|| format!("truncated SWEEP response at outcome {i}"))?;
        let mut parts = head.split_whitespace();
        let (Some("outcome"), Some(idx), Some(fp), Some(len), None) = (
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
        ) else {
            return Err(format!("bad outcome header {head:?}"));
        };
        if idx.parse() != Ok(i) {
            return Err(format!("outcome {i} answered out of order: {head:?}"));
        }
        let fp = fp
            .strip_prefix("fp=")
            .and_then(|h| u64::from_str_radix(h, 16).ok())
            .ok_or_else(|| format!("bad fingerprint in {head:?}"))?;
        if fp != digest {
            return Err(format!(
                "outcome {i} fingerprint {fp:016x} does not match expected {digest:016x}"
            ));
        }
        let len: usize = len
            .strip_prefix("lines=")
            .and_then(|n| n.parse().ok())
            .ok_or_else(|| format!("bad line count in {head:?}"))?;
        let mut body = String::new();
        for _ in 0..len {
            body.push_str(
                it.next()
                    .ok_or_else(|| format!("truncated outcome {i} body"))?,
            );
            body.push('\n');
        }
        outcomes.push(parse_outcome(&body).map_err(|e| e.to_string())?);
    }
    if it.next().is_some() {
        return Err("trailing lines after SWEEP response".to_string());
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::parse_spec;
    use crate::sweep::fault_sweep;
    use atl_model::{ExecOptions, ExpectPolicy, ModelError, SweepGrid};

    const TOY: &str = "protocol toy\n\
        principals A B\n\
        keys Kab\n\
        assume A believes (A <-Kab-> B)\n\
        assume A has Kab\n\
        assume B has Kab\n\
        step A -> B : {Na}Kab@A\n\
        goal B sees {Na}Kab@A\n";

    fn temp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("atl-fabric-unit-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn toy_outcomes() -> (PlanFingerprint, ExecOutcome, PlanFingerprint, ExecOutcome) {
        let (at, _) = parse_spec(TOY).expect("parse toy spec");
        let proto = enact_with(
            &at,
            EnactOptions {
                expect_policy: ExpectPolicy::skip_after(3),
            },
        );
        let clean_plan = FaultPlan::new(0);
        let clean = execute_with_faults(&proto, &ExecOptions::default(), &clean_plan);
        let failed: ExecOutcome = Err(ModelError::MalformedRun("fabricated\nfailure".into()));
        (
            PlanFingerprint::of(&clean_plan),
            clean,
            PlanFingerprint::of(&FaultPlan::new(0).drop(1.0)),
            failed,
        )
    }

    #[test]
    fn store_round_trips_ok_and_err_outcomes() {
        let dir = temp_dir("roundtrip");
        let store = OutcomeStore::open(&dir).expect("open");
        assert!(store.is_empty());
        let (fp_ok, ok, fp_err, failed) = toy_outcomes();
        store.save(7, &fp_ok, &ok).expect("save ok");
        store.save(7, &fp_err, &failed).expect("save err");
        assert_eq!(store.len(), 2);
        assert_eq!(store.load(7, &fp_ok), Some(ok));
        // Errors reconstitute to an identical rendering.
        let back = store
            .load(7, &fp_err)
            .expect("hit")
            .expect_err("err outcome");
        assert_eq!(back.to_string(), failed.expect_err("err").to_string());
        // A different context never aliases.
        assert_eq!(store.load(8, &fp_ok), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_discards_truncated_entry() {
        let dir = temp_dir("truncated");
        let store = OutcomeStore::open(&dir).expect("open");
        let (fp, ok, _, _) = toy_outcomes();
        store.save(1, &fp, &ok).expect("save");
        let path = store.entry_path(1, &fp);
        let text = std::fs::read_to_string(&path).expect("read entry");
        // Cut mid-body: the length frame no longer matches.
        std::fs::write(&path, &text[..text.len() - 10]).expect("truncate");
        assert_eq!(store.load(1, &fp), None);
        // The corrupt file was removed, so the store is self-healing.
        assert!(!path.exists());
        assert!(store.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_discards_garbage_and_bitflips() {
        let dir = temp_dir("garbage");
        let store = OutcomeStore::open(&dir).expect("open");
        let (fp, ok, _, _) = toy_outcomes();
        // Pure garbage at the right path.
        std::fs::write(store.entry_path(2, &fp), b"not an outcome at all\x00\xff").expect("write");
        assert_eq!(store.load(2, &fp), None);
        // A single flipped bit in the body fails the checksum.
        store.save(2, &fp, &ok).expect("save");
        let path = store.entry_path(2, &fp);
        let mut bytes = std::fs::read(&path).expect("read");
        let last = bytes.len() - 2;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).expect("flip");
        assert_eq!(store.load(2, &fp), None);
        assert!(!path.exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_discards_entry_keyed_to_another_plan() {
        let dir = temp_dir("wrongkey");
        let store = OutcomeStore::open(&dir).expect("open");
        let (fp_ok, ok, fp_other, _) = toy_outcomes();
        store.save(3, &fp_ok, &ok).expect("save");
        // Rename the entry onto a different key: digest says one plan,
        // the embedded key line says another.
        std::fs::rename(store.entry_path(3, &fp_ok), store.entry_path(3, &fp_other))
            .expect("rename");
        assert_eq!(store.load(3, &fp_other), None);
        assert!(store.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_of_one_key_never_tear() {
        let dir = temp_dir("concurrent");
        let store = OutcomeStore::open(&dir).expect("open");
        let (fp, ok, _, _) = toy_outcomes();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let (store, fp, ok) = (&store, &fp, &ok);
                s.spawn(move || {
                    for _ in 0..20 {
                        store.save(4, fp, ok).expect("save");
                        // Interleaved loads must see a whole entry or a
                        // miss — never a torn one surviving validation.
                        if let Some(seen) = store.load(4, fp) {
                            assert_eq!(&seen, ok);
                        }
                    }
                });
            }
        });
        assert_eq!(store.load(4, &fp), Some(ok));
        assert_eq!(store.len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sweep_response_decoding_rejects_mismatches() {
        let lines = |v: &[&str]| v.iter().map(|s| (*s).to_string()).collect::<Vec<_>>();
        // Wrong count, bad header, fingerprint mismatch, truncation.
        assert!(decode_sweep_response(&lines(&[]), &[1]).is_err());
        assert!(decode_sweep_response(&lines(&["plans 2"]), &[1]).is_err());
        assert!(decode_sweep_response(&lines(&["plans 1", "huh"]), &[1]).is_err());
        assert!(decode_sweep_response(
            &lines(&["plans 1", "outcome 0 fp=00000000000000ff lines=1", "err %"]),
            &[1]
        )
        .is_err());
        assert!(decode_sweep_response(
            &lines(&["plans 1", "outcome 0 fp=0000000000000001 lines=3", "err %"]),
            &[1]
        )
        .is_err());
        // A well-formed error outcome decodes.
        let ok = decode_sweep_response(
            &lines(&[
                "plans 1",
                "outcome 0 fp=0000000000000001 lines=1",
                "err boom",
            ]),
            &[1],
        )
        .expect("decode");
        assert_eq!(ok[0].as_ref().expect_err("err").to_string(), "boom");
        // Trailing garbage is rejected.
        assert!(decode_sweep_response(
            &lines(&[
                "plans 1",
                "outcome 0 fp=0000000000000001 lines=1",
                "err boom",
                "extra"
            ]),
            &[1]
        )
        .is_err());
    }

    #[test]
    fn shards_respect_count_and_byte_budgets() {
        let entry = |slot: usize, line: &str| ShardEntry {
            slot,
            plan_idx: slot,
            fp: PlanFingerprint::of(&FaultPlan::new(0)),
            line: line.to_string(),
        };
        let fabric = FabricConfig {
            shard_plans: 2,
            ..FabricConfig::default()
        };
        let shards = build_shards((0..5).map(|i| entry(i, "p")).collect(), &fabric);
        assert_eq!(
            shards.iter().map(|s| s.entries.len()).collect::<Vec<_>>(),
            vec![2, 2, 1]
        );
        // A huge rendering splits even below the plan count.
        let big = "x".repeat(SHARD_LINE_BUDGET - 1);
        let shards = build_shards(vec![entry(0, &big), entry(1, &big)], &fabric);
        assert_eq!(shards.len(), 2);
    }

    #[test]
    fn requeued_shards_count_once_per_execution_not_per_submission() {
        // A worker address that refuses every connect: the one shard is
        // submitted `shard_retries + 1` times (each failure requeues it,
        // except the last, which exhausts the retries), yet the outcome
        // counters must reflect executions only — every plan resolves
        // locally exactly once, and nothing is double-counted remote.
        let dead_addr = {
            let listener = std::net::TcpListener::bind(("127.0.0.1", 0)).expect("bind");
            listener.local_addr().expect("addr").to_string()
        };
        let spec = std::env::temp_dir().join(format!(
            "atl-fabric-unit-{}-requeue.atl",
            std::process::id()
        ));
        std::fs::write(&spec, TOY).expect("write spec");
        let (at, _) = parse_spec(TOY).expect("parse");
        let config = SweepConfig {
            grid: SweepGrid::new().seeds(0..3).drop_steps([0.5]),
            options: ExecOptions::default(),
            expect_policy: ExpectPolicy::skip_after(3),
        };
        let fabric = FabricConfig {
            workers: vec![dead_addr],
            shard_plans: 64,
            shard_retries: 2,
            worker_failures: 3,
            deadline: Duration::from_millis(200),
            backoff: Duration::from_millis(1),
            ..FabricConfig::default()
        };
        let pool = Pool::sequential();
        let (report, stats) = fabric_sweep(
            &at,
            spec.to_str().expect("utf8 path"),
            &config,
            &fabric,
            &pool,
        )
        .expect("sweep completes despite the dead worker");
        // 3 seeds × drop 0.5 = 3 unique fingerprints, all resolved
        // locally exactly once — 3 failed submissions inflate nothing.
        assert_eq!(stats.shards, 1, "{stats}");
        assert_eq!(stats.requeues, 2, "{stats}");
        assert_eq!(stats.workers_lost, 1, "{stats}");
        assert_eq!(stats.remote_resolved, 0, "{stats}");
        assert_eq!(stats.local_resolved, 3, "{stats}");
        assert_eq!(stats.store_hits, 0, "{stats}");
        // And the report is still byte-identical to a local sweep.
        assert_eq!(
            report.to_string(),
            fault_sweep(&at, &config, &pool).to_string()
        );
        let _ = std::fs::remove_file(&spec);
    }

    #[test]
    fn workerless_fabric_matches_local_sweep_and_resumes_from_store() {
        let dir = temp_dir("resume");
        let spec =
            std::env::temp_dir().join(format!("atl-fabric-unit-{}-resume.atl", std::process::id()));
        std::fs::write(&spec, TOY).expect("write spec");
        let (at, _) = parse_spec(TOY).expect("parse");
        let config = SweepConfig {
            grid: SweepGrid::new().seeds(0..2).drop_steps([0.0, 0.5, 1.0]),
            options: ExecOptions::default(),
            expect_policy: ExpectPolicy::skip_after(3),
        };
        let pool = Pool::sequential();
        let reference = fault_sweep(&at, &config, &pool).to_string();
        let fabric = FabricConfig {
            store: Some(dir.clone()),
            ..FabricConfig::default()
        };
        let spec_path = spec.to_str().expect("utf8 path");
        let (cold, cold_stats) =
            fabric_sweep(&at, spec_path, &config, &fabric, &pool).expect("cold sweep");
        assert_eq!(cold.to_string(), reference);
        assert_eq!(cold_stats.store_hits, 0);
        assert!(cold_stats.local_resolved > 0);
        // A second coordinator (as after a kill) resumes purely from the
        // store: no local execution, byte-identical report.
        let (warm, warm_stats) =
            fabric_sweep(&at, spec_path, &config, &fabric, &pool).expect("warm sweep");
        assert_eq!(warm.to_string(), reference);
        assert_eq!(warm_stats.local_resolved, 0);
        assert_eq!(warm_stats.store_hits, cold_stats.local_resolved);
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_file(&spec);
    }
}
