//! Benchmark-only crate: see the `benches/` directory. Each bench target
//! regenerates one of the experiments indexed in DESIGN.md §4 or one of
//! the §5 ablations.
