//! Semantics evaluation throughput, and the belief-cache ablation.
//!
//! Design choice measured (DESIGN.md §5): grouping each principal's
//! points by hidden local state once, up front, versus rescanning the
//! good runs on every belief query. The cache wins as soon as more than a
//! handful of belief queries are made against the same evaluator.

use atl_core::semantics::{GoodRuns, Semantics};
use atl_lang::{Formula, Key, Message, Nonce};
use atl_model::{random_system, GenConfig, System};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn test_system(n_runs: usize) -> System {
    random_system(&GenConfig::default(), n_runs, 23)
}

fn belief_query() -> Formula {
    Formula::believes(
        "A",
        Formula::or(
            Formula::has("A", Key::new("Kas")),
            Formula::sees("A", Message::nonce(Nonce::new("Na"))),
        ),
    )
}

fn bench_belief_cache_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_belief_cache");
    let sys = test_system(6);
    let query = belief_query();
    g.bench_function("cached", |b| {
        // Build once, query many times — the intended usage.
        let sem = Semantics::new(&sys, GoodRuns::all_runs(&sys));
        b.iter(|| {
            let mut n = 0usize;
            for point in sys.points() {
                if sem.eval(point, &query).expect("eval ok") {
                    n += 1;
                }
            }
            black_box(n)
        })
    });
    g.bench_function("uncached", |b| {
        let sem = Semantics::without_belief_cache(&sys, GoodRuns::all_runs(&sys));
        b.iter(|| {
            let mut n = 0usize;
            for point in sys.points() {
                if sem.eval(point, &query).expect("eval ok") {
                    n += 1;
                }
            }
            black_box(n)
        })
    });
    g.bench_function("cached_including_build", |b| {
        // Amortization check: cache build + one sweep.
        b.iter(|| {
            let sem = Semantics::new(&sys, GoodRuns::all_runs(&sys));
            let mut n = 0usize;
            for point in sys.points() {
                if sem.eval(point, &query).expect("eval ok") {
                    n += 1;
                }
            }
            black_box(n)
        })
    });
    g.finish();
}

fn bench_term_cache_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_term_cache");
    let sys = test_system(6);
    let query = belief_query();
    g.bench_function("with_term_cache", |b| {
        let sem = Semantics::new(&sys, GoodRuns::all_runs(&sys));
        b.iter(|| black_box(sem.valid(&query).expect("eval ok")))
    });
    g.bench_function("without_term_cache", |b| {
        let sem = Semantics::without_term_cache(&sys, GoodRuns::all_runs(&sys));
        b.iter(|| black_box(sem.valid(&query).expect("eval ok")))
    });
    g.finish();
}

fn bench_construct_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("semantics_valid_vs_runs");
    let query = belief_query();
    for n_runs in [2usize, 4, 8, 16] {
        let sys = test_system(n_runs);
        g.bench_with_input(BenchmarkId::from_parameter(n_runs), &sys, |b, sys| {
            let sem = Semantics::new(sys, GoodRuns::all_runs(sys));
            b.iter(|| black_box(sem.valid(&query).expect("eval ok")))
        });
    }
    g.finish();
}

fn bench_construct_cost(c: &mut Criterion) {
    let mut g = c.benchmark_group("semantics_constructor");
    for n_runs in [4usize, 16] {
        let sys = test_system(n_runs);
        g.bench_with_input(BenchmarkId::from_parameter(n_runs), &sys, |b, sys| {
            b.iter(|| black_box(Semantics::new(sys, GoodRuns::all_runs(sys))))
        });
    }
    g.finish();
}

fn bench_shared_key_eval(c: &mut Criterion) {
    let mut g = c.benchmark_group("semantics_shared_key");
    let sys = test_system(6);
    let sem = Semantics::new(&sys, GoodRuns::all_runs(&sys));
    let sk = Formula::shared_key("A", Key::new("Kas"), "S");
    g.bench_function("valid_shared_key", |b| {
        b.iter(|| black_box(sem.valid(&sk).expect("eval ok")))
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_belief_cache_ablation, bench_term_cache_ablation, bench_construct_scaling, bench_construct_cost, bench_shared_key_eval
}
criterion_main!(benches);
