//! Benchmarks for the extension modules: secrecy audits, Kripke
//! materialization, spec parsing, and checked theorem reconstruction.

use atl_core::kripke::PossibilityRelation;
use atl_core::secrecy::{known_messages, leaks};
use atl_core::semantics::{GoodRuns, Semantics};
use atl_core::spec::parse_spec;
use atl_core::theorems;
use atl_lang::{Key, KeyTerm, Message, Nonce, Principal};
use atl_model::{random_system, GenConfig, System};
use atl_protocols::ns_public_key;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_secrecy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ext_secrecy");
    let sys = System::new([ns_public_key::honest_run(), ns_public_key::lowe_run()]);
    let nb = Message::nonce(Nonce::new("Nb"));
    g.bench_function("leak_audit_lowe", |b| {
        let allowed = [Principal::new("A"), Principal::new("B")];
        b.iter(|| black_box(leaks(&sys, &nb, &allowed).len()))
    });
    g.bench_function("known_messages", |b| {
        let run = &sys.runs()[1];
        let env = Principal::environment();
        b.iter(|| black_box(known_messages(run, &env, run.horizon()).len()))
    });
    g.finish();
}

fn bench_kripke(c: &mut Criterion) {
    let mut g = c.benchmark_group("ext_kripke");
    for n_runs in [2usize, 6] {
        let sys = random_system(&GenConfig::default(), n_runs, 31);
        g.bench_with_input(BenchmarkId::new("materialize", n_runs), &sys, |b, sys| {
            let sem = Semantics::new(sys, GoodRuns::all_runs(sys));
            b.iter(|| {
                let rel = PossibilityRelation::of(&sem, &Principal::new("A"));
                black_box(rel.edges.len())
            })
        });
    }
    let sys = random_system(&GenConfig::default(), 4, 31);
    let sem = Semantics::new(&sys, GoodRuns::all_runs(&sys));
    let rel = PossibilityRelation::of(&sem, &Principal::new("A"));
    g.bench_function("frame_checks", |b| {
        b.iter(|| black_box(rel.is_transitive() && rel.is_euclidean() && rel.is_serial()))
    });
    g.bench_function("to_dot", |b| b.iter(|| black_box(rel.to_dot().len())));
    g.finish();
}

fn bench_spec(c: &mut Criterion) {
    let mut g = c.benchmark_group("ext_spec");
    let spec = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../specs/kerberos_figure1.atl"
    ))
    .expect("spec file present");
    g.bench_function("parse_kerberos_spec", |b| {
        b.iter(|| black_box(parse_spec(&spec).expect("parses").0.steps.len()))
    });
    g.finish();
}

fn bench_theorems(c: &mut Criterion) {
    let mut g = c.benchmark_group("ext_theorems");
    let p = Principal::new("P");
    let q = Principal::new("Q");
    let s = Principal::new("S");
    let k = KeyTerm::Key(Key::new("K"));
    let x = Message::nonce(Nonce::new("X"));
    g.bench_function("ban_message_meaning_build_and_check", |b| {
        b.iter(|| {
            let proof = theorems::ban_message_meaning(&p, &k, &q, &x, &s).expect("derives");
            black_box(proof.steps().len())
        })
    });
    g.bench_function("nonce_verification_build_and_check", |b| {
        b.iter(|| {
            let proof = theorems::nonce_verification(&q, &x).expect("derives");
            black_box(proof.steps().len())
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_secrecy, bench_kripke, bench_spec, bench_theorems
}
criterion_main!(benches);
