//! Language-operation microbenchmarks: the submessage operators, hiding,
//! and the parser, as message depth grows.
//!
//! Shape: all operators are linear in message size; `hide` and
//! `seen-submsgs` track each other (they walk the same structure).

use atl_lang::parser::{parse_formula, Symbols};
use atl_lang::{
    hide_message, said_submsgs, seen_submsgs, submsgs, Formula, Key, KeySet, Message, MessageSet,
    Nonce, Principal,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// A balanced message of the given depth: alternating tuples and
/// encryptions under rotating keys.
fn deep_message(depth: usize) -> Message {
    let mut m = Message::nonce(Nonce::new("N0"));
    for level in 0..depth {
        let key = Key::new(format!("K{}", level % 3));
        m = Message::tuple([
            Message::encrypted(m.clone(), key, Principal::new("S")),
            Message::nonce(Nonce::new(format!("N{level}"))),
            Message::forwarded(m),
        ]);
    }
    m
}

fn keyset() -> KeySet {
    [Key::new("K0"), Key::new("K1")].into_iter().collect()
}

fn bench_submsg_operators(c: &mut Criterion) {
    let mut g = c.benchmark_group("lang_submsgs");
    for depth in [2usize, 4, 6, 8] {
        let m = deep_message(depth);
        g.bench_with_input(BenchmarkId::new("submsgs", depth), &m, |b, m| {
            b.iter(|| black_box(submsgs(m).len()))
        });
        g.bench_with_input(BenchmarkId::new("seen", depth), &m, |b, m| {
            let ks = keyset();
            b.iter(|| black_box(seen_submsgs(m, &ks).len()))
        });
        g.bench_with_input(BenchmarkId::new("said", depth), &m, |b, m| {
            let ks = keyset();
            let received = MessageSet::new();
            b.iter(|| black_box(said_submsgs(m, &ks, &received).len()))
        });
        g.bench_with_input(BenchmarkId::new("hide", depth), &m, |b, m| {
            let ks = keyset();
            b.iter(|| black_box(hide_message(m, &ks)))
        });
    }
    g.finish();
}

fn bench_parser(c: &mut Criterion) {
    let mut g = c.benchmark_group("lang_parser");
    let syms = Symbols::new()
        .principals(["A", "B", "S"])
        .keys(["Kab", "Kas", "Kbs"]);
    let inputs = [
        ("shared_key", "A believes (A <-Kab-> B)"),
        ("figure1", "B believes (B sees {Ts, <<A <-Kab-> B>>}Kbs@S)"),
        (
            "conjunction",
            "A has Kas & B has Kbs & S controls (A <-Kab-> B) & fresh(Ts)",
        ),
    ];
    for (name, input) in inputs {
        g.bench_function(name, |b| {
            b.iter(|| black_box(parse_formula(input, &syms).expect("parse ok")))
        });
    }
    g.finish();
}

fn bench_display_roundtrip(c: &mut Criterion) {
    let mut g = c.benchmark_group("lang_display");
    let m = deep_message(5);
    g.bench_function("display_deep", |b| b.iter(|| black_box(m.to_string())));
    let f = Formula::believes("A", Formula::sees("B", deep_message(4)));
    g.bench_function("display_formula", |b| b.iter(|| black_box(f.to_string())));
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_submsg_operators, bench_parser, bench_display_roundtrip
}
criterion_main!(benches);
