//! Parallel-engine scaling: wall-clock for the sharded sweep, the
//! concurrent cache build, and batch proving at 1/2/4/8 workers.
//!
//! The 1-worker point is the sequential reference path (the pool is
//! bypassed entirely), so each curve shows both the parallel speedup on
//! multi-core machines and the sharding overhead where there is nothing
//! to gain. Results are identical at every worker count by construction
//! (tests/e15_parallel.rs); only the wall-clock may differ.

use atl_core::parallel::Pool;
use atl_core::prover::{BatchProver, Prover};
use atl_core::semantics::{GoodRuns, Semantics};
use atl_lang::{Formula, Key, Message, Nonce};
use atl_model::{random_system, GenConfig, System};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

const WORKERS: &[usize] = &[1, 2, 4, 8];

fn test_system(n_runs: usize) -> System {
    random_system(&GenConfig::default(), n_runs, 23)
}

fn belief_query() -> Formula {
    Formula::believes(
        "A",
        Formula::or(
            Formula::has("A", Key::new("Kas")),
            Formula::sees("A", Message::nonce(Nonce::new("Na"))),
        ),
    )
}

/// `n` parallel Figure 1 sessions with disjoint names (prover_scaling's
/// fact generator).
fn at_sessions(n: usize) -> Vec<Formula> {
    let mut facts = Vec::new();
    for i in 0..n {
        let a = format!("A{i}");
        let b = format!("B{i}");
        let kab = Formula::shared_key(a.as_str(), Key::new(format!("Kab{i}")), b.as_str());
        let ts = Message::nonce(Nonce::new(format!("Ts{i}")));
        let kbs = Key::new(format!("Kbs{i}"));
        facts.push(Formula::believes(
            b.as_str(),
            Formula::shared_key(b.as_str(), kbs.clone(), "S"),
        ));
        facts.push(Formula::believes(b.as_str(), Formula::fresh(ts.clone())));
        facts.push(Formula::believes(
            b.as_str(),
            Formula::controls("S", kab.clone()),
        ));
        facts.push(Formula::has(b.as_str(), kbs.clone()));
        facts.push(Formula::sees(
            b.as_str(),
            Message::encrypted(Message::tuple([ts, kab.into_message()]), kbs, "S"),
        ));
    }
    facts
}

/// Cold-evaluator sweep of a belief query over every point of a 16-run
/// system: cache build plus one full pass, the shape `sweep_on` shards.
fn bench_parallel_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_sweep_16_runs");
    let sys = test_system(16);
    let goods = GoodRuns::all_runs(&sys);
    let query = belief_query();
    for &jobs in WORKERS {
        let pool = Pool::new(jobs);
        g.bench_with_input(BenchmarkId::from_parameter(jobs), &pool, |b, pool| {
            b.iter(|| black_box(Semantics::sweep_on(&sys, &goods, &query, pool).expect("eval ok")))
        });
    }
    g.finish();
}

/// Batch proving 8 independent 8-session saturation jobs.
fn bench_batch_prover(c: &mut Criterion) {
    let mut g = c.benchmark_group("parallel_batch_prover_8x8");
    let goal = |i: usize| {
        Formula::believes(
            format!("B{i}").as_str(),
            Formula::shared_key(
                format!("A{i}").as_str(),
                Key::new(format!("Kab{i}")),
                format!("B{i}").as_str(),
            ),
        )
    };
    for &jobs in WORKERS {
        let batch = BatchProver::new(Pool::new(jobs));
        g.bench_with_input(BenchmarkId::from_parameter(jobs), &batch, |b, batch| {
            b.iter(|| {
                let work: Vec<(Prover, Vec<Formula>)> = (0..8)
                    .map(|i| (Prover::new(at_sessions(8)), vec![goal(i)]))
                    .collect();
                black_box(batch.prove_all(work).len())
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_parallel_sweep, bench_batch_prover
}
criterion_main!(benches);
