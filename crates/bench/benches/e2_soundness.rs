//! E2 (Theorem 1) — the soundness model-checker's cost as the system
//! grows, in runs and in run length.
//!
//! Shape reproduced: checking is polynomial in system size (points ×
//! instances), so doubling runs roughly doubles time; no blow-up.

use atl_core::semantics::GoodRuns;
use atl_core::soundness::{check_axioms, SoundnessConfig};
use atl_model::{random_system, GenConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_runs_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_soundness_vs_runs");
    let config = SoundnessConfig {
        max_instances_per_axiom: 40,
        ..SoundnessConfig::default()
    };
    for n_runs in [1usize, 2, 4, 8] {
        let sys = random_system(&GenConfig::default(), n_runs, 42);
        g.bench_with_input(BenchmarkId::from_parameter(n_runs), &sys, |b, sys| {
            b.iter(|| {
                let report = check_axioms(sys, GoodRuns::all_runs(sys), &config).expect("check ok");
                assert!(report.sound());
                black_box(report.total_instances())
            })
        });
    }
    g.finish();
}

fn bench_length_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_soundness_vs_length");
    let config = SoundnessConfig {
        max_instances_per_axiom: 40,
        ..SoundnessConfig::default()
    };
    for steps in [4usize, 8, 16] {
        let gen = GenConfig {
            past_steps: steps / 2,
            present_steps: steps,
            ..GenConfig::default()
        };
        let sys = random_system(&gen, 3, 7);
        g.bench_with_input(BenchmarkId::from_parameter(steps), &sys, |b, sys| {
            b.iter(|| {
                let report = check_axioms(sys, GoodRuns::all_runs(sys), &config).expect("check ok");
                assert!(report.sound());
                black_box(report.total_instances())
            })
        });
    }
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_runs_scaling, bench_length_scaling
}
criterion_main!(benches);
