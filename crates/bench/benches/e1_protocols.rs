//! E1/E8 — regenerating the protocol analyses: how long each derivation
//! takes in the original and reformulated logics, per protocol.
//!
//! The "shape" reproduced from the paper: every analysis terminates in
//! milliseconds (the logic is *tractable*, its stated design goal), and
//! the reformulated logic's analyses are comparable in cost to the
//! original's on the same protocols.

use atl_ban::analyze;
use atl_core::annotate::analyze_at;
use atl_protocols::{
    andrew, kerberos, needham_schroeder, nessett, otway_rees, suite, wide_mouthed_frog, x509,
    yahalom,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_e1_kerberos(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_kerberos");
    g.bench_function("figure1_ban", |b| {
        let proto = kerberos::figure1_ban();
        b.iter(|| black_box(analyze(&proto).succeeded()))
    });
    g.bench_function("figure1_at", |b| {
        let proto = kerberos::figure1_at();
        b.iter(|| black_box(analyze_at(&proto).succeeded()))
    });
    g.bench_function("full_ban", |b| {
        let proto = kerberos::full_ban();
        b.iter(|| black_box(analyze(&proto).succeeded()))
    });
    g.bench_function("full_at", |b| {
        let proto = kerberos::full_at();
        b.iter(|| black_box(analyze_at(&proto).succeeded()))
    });
    g.finish();
}

fn bench_e8_suite(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_suite");
    g.bench_function("needham_schroeder_ban", |b| {
        let proto = needham_schroeder::ban_protocol(true);
        b.iter(|| black_box(analyze(&proto).succeeded()))
    });
    g.bench_function("needham_schroeder_at", |b| {
        let proto = needham_schroeder::at_protocol(true);
        b.iter(|| black_box(analyze_at(&proto).succeeded()))
    });
    g.bench_function("yahalom_at", |b| {
        let proto = yahalom::at_protocol(true);
        b.iter(|| black_box(analyze_at(&proto).succeeded()))
    });
    g.bench_function("otway_rees_ban", |b| {
        let proto = otway_rees::ban_protocol();
        b.iter(|| black_box(analyze(&proto).succeeded()))
    });
    g.bench_function("wide_mouthed_frog_ban", |b| {
        let proto = wide_mouthed_frog::ban_protocol();
        b.iter(|| black_box(analyze(&proto).succeeded()))
    });
    g.bench_function("wide_mouthed_frog_at", |b| {
        let proto = wide_mouthed_frog::at_protocol();
        b.iter(|| black_box(analyze_at(&proto).succeeded()))
    });
    g.bench_function("andrew_ban", |b| {
        let proto = andrew::ban_protocol(true);
        b.iter(|| black_box(analyze(&proto).succeeded()))
    });
    g.bench_function("x509_at", |b| {
        let proto = x509::at_protocol(true);
        b.iter(|| black_box(analyze_at(&proto).succeeded()))
    });
    g.bench_function("nessett_ban", |b| {
        let proto = nessett::ban_protocol();
        b.iter(|| black_box(analyze(&proto).succeeded()))
    });
    g.bench_function("whole_suite", |b| {
        b.iter(|| black_box(suite::run_suite().len()))
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_e1_kerberos, bench_e8_suite
}
criterion_main!(benches);
