//! E17 — serve-mode latency: what a warmed session buys.
//!
//! The one-shot CLI pays parse + enact + execute + good-run
//! construction + prover analysis on *every* invocation; the daemon
//! pays it once per `LOAD` and then answers from caches. The `cold`
//! group measures that full build (fresh daemon, `LOAD`, first query,
//! shutdown — the serve analogue of a one-shot run, round-trips
//! included); the `warm` group measures repeat queries against a live
//! session, which is the steady state the daemon exists for. The gap
//! between the two is the number the warm-vs-cold table in
//! `BENCH_prover.json` records.

use atl_core::parallel::Pool;
use atl_core::serve::{Client, ServeConfig, Server};
use atl_core::spec::parse_spec;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

const SPECS: &[(&str, &str)] = &[
    (
        "kerberos_figure1",
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../specs/kerberos_figure1.atl"
        ),
    ),
    (
        "wide_mouthed_frog",
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../specs/wide_mouthed_frog.atl"
        ),
    ),
];

fn start() -> Server {
    Server::start(ServeConfig {
        port: 0,
        max_sessions: 8,
        pool: Pool::new(1),
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral port")
}

fn first_goal(path: &str) -> String {
    let src = std::fs::read_to_string(path).expect("read spec");
    let (at, _) = parse_spec(&src).expect("spec parses");
    at.goals.first().expect("spec has goals").to_string()
}

/// Cold path: a fresh daemon builds the session from scratch — the
/// serve-side equivalent of one `atl analyze` invocation.
fn bench_cold(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_cold");
    for (name, path) in SPECS {
        g.bench_function(format!("{name}_load_analyze"), |b| {
            b.iter(|| {
                let server = start();
                let mut client = Client::connect(server.addr()).expect("connect");
                let id = client.load(path).expect("load");
                let resp = client.request(&format!("ANALYZE {id}")).expect("analyze");
                client.shutdown().expect("shutdown");
                server.join();
                black_box(resp.ok)
            })
        });
    }
    g.finish();
}

/// Warm path: the session is already built, so each query is a memo or
/// pre-rendered-report lookup plus one TCP round-trip.
fn bench_warm(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_warm");
    for (name, path) in SPECS {
        let goal = first_goal(path);
        let server = start();
        let mut client = Client::connect(server.addr()).expect("connect");
        let id = client.load(path).expect("load");
        let analyze = format!("ANALYZE {id}");
        let eval = format!("EVAL {id} 0:3 {goal}");
        let inject = format!("INJECT {id} --seed 7 --drop 0.5");
        // Prime the memos so every measured request is the warm path.
        for req in [&analyze, &eval, &inject] {
            assert!(client.request(req).expect("prime").ok);
        }
        g.bench_function(format!("{name}_analyze"), |b| {
            b.iter(|| black_box(client.request(&analyze).expect("analyze").ok))
        });
        g.bench_function(format!("{name}_eval"), |b| {
            b.iter(|| black_box(client.request(&eval).expect("eval").ok))
        });
        g.bench_function(format!("{name}_inject"), |b| {
            b.iter(|| black_box(client.request(&inject).expect("inject").ok))
        });
        client.shutdown().expect("shutdown");
        server.join();
    }
    g.finish();
}

criterion_group!(benches, bench_cold, bench_warm);
criterion_main!(benches);
