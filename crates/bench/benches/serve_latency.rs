//! E17 — serve-mode latency: what a warmed session buys.
//!
//! The one-shot CLI pays parse + enact + execute + good-run
//! construction + prover analysis on *every* invocation; the daemon
//! pays it once per `LOAD` and then answers from caches. The `cold`
//! group measures that full build (fresh daemon, `LOAD`, first query,
//! shutdown — the serve analogue of a one-shot run, round-trips
//! included); the `warm` group measures repeat queries against a live
//! session, which is the steady state the daemon exists for. The gap
//! between the two is the number the warm-vs-cold table in
//! `BENCH_prover.json` records.

use atl_core::annotate::analyze_at;
use atl_core::monitor::Monitor;
use atl_core::parallel::Pool;
use atl_core::semantics::{GoodRuns, Semantics};
use atl_core::serve::{Client, ServeConfig, Server};
use atl_core::spec::parse_spec;
use atl_lang::parser::parse_formula;
use atl_model::{parse_trace, Point, System};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::{Duration, Instant};

const SPECS: &[(&str, &str)] = &[
    (
        "kerberos_figure1",
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../specs/kerberos_figure1.atl"
        ),
    ),
    (
        "wide_mouthed_frog",
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../specs/wide_mouthed_frog.atl"
        ),
    ),
];

fn start() -> Server {
    Server::start(ServeConfig {
        port: 0,
        max_sessions: 8,
        pool: Pool::new(1),
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral port")
}

fn first_goal(path: &str) -> String {
    let src = std::fs::read_to_string(path).expect("read spec");
    let (at, _) = parse_spec(&src).expect("spec parses");
    at.goals.first().expect("spec has goals").to_string()
}

/// Cold path: a fresh daemon builds the session from scratch — the
/// serve-side equivalent of one `atl analyze` invocation.
fn bench_cold(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_cold");
    for (name, path) in SPECS {
        g.bench_function(format!("{name}_load_analyze"), |b| {
            b.iter(|| {
                let server = start();
                let mut client = Client::connect(server.addr()).expect("connect");
                let id = client.load(path).expect("load");
                let resp = client.request(&format!("ANALYZE {id}")).expect("analyze");
                client.shutdown().expect("shutdown");
                server.join();
                black_box(resp.ok)
            })
        });
    }
    g.finish();
}

/// Warm path: the session is already built, so each query is a memo or
/// pre-rendered-report lookup plus one TCP round-trip.
fn bench_warm(c: &mut Criterion) {
    let mut g = c.benchmark_group("serve_warm");
    for (name, path) in SPECS {
        let goal = first_goal(path);
        let server = start();
        let mut client = Client::connect(server.addr()).expect("connect");
        let id = client.load(path).expect("load");
        let analyze = format!("ANALYZE {id}");
        let eval = format!("EVAL {id} 0:3 {goal}");
        let inject = format!("INJECT {id} --seed 7 --drop 0.5");
        // Prime the memos so every measured request is the warm path.
        for req in [&analyze, &eval, &inject] {
            assert!(client.request(req).expect("prime").ok);
        }
        g.bench_function(format!("{name}_analyze"), |b| {
            b.iter(|| black_box(client.request(&analyze).expect("analyze").ok))
        });
        g.bench_function(format!("{name}_eval"), |b| {
            b.iter(|| black_box(client.request(&eval).expect("eval").ok))
        });
        g.bench_function(format!("{name}_inject"), |b| {
            b.iter(|| black_box(client.request(&inject).expect("inject").ok))
        });
        client.shutdown().expect("shutdown");
        server.join();
    }
    g.finish();
}

/// One sustained burst: `clients` concurrent connections each issue
/// `per_client` warm requests against a live session. Returns every
/// request's latency plus the burst's wall-clock span.
fn run_burst(
    addr: std::net::SocketAddr,
    id: u64,
    clients: usize,
    per_client: usize,
) -> (Vec<Duration>, Duration) {
    let started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let req = if i % 2 == 0 {
                    format!("ANALYZE {id}")
                } else {
                    format!("INJECT {id} --seed 7 --drop 0.5")
                };
                let mut lats = Vec::with_capacity(per_client);
                for _ in 0..per_client {
                    let t = Instant::now();
                    assert!(c.request(&req).expect("request").ok);
                    lats.push(t.elapsed());
                }
                lats
            })
        })
        .collect();
    let mut lats = Vec::with_capacity(clients * per_client);
    for w in workers {
        lats.extend(w.join().expect("client thread"));
    }
    let span = started.elapsed();
    lats.sort_unstable();
    (lats, span)
}

/// Sustained throughput: 100 concurrent clients against pool widths
/// 1/4/16. The vendored criterion harness reports only the mean burst
/// wall time, so QPS and the p50/p99 latency quantiles are computed
/// here from per-request timings and printed alongside — those lines
/// are what `BENCH_prover.json` records.
fn bench_sustained(c: &mut Criterion) {
    const CLIENTS: usize = 100;
    const PER_CLIENT: usize = 20;
    let path = SPECS[0].1;
    let mut g = c.benchmark_group("serve_sustained");
    for width in [1usize, 4, 16] {
        let server = Server::start(ServeConfig {
            port: 0,
            max_sessions: 8,
            pool: Pool::new(1),
            conn_workers: width,
            queue_depth: 256,
            ..ServeConfig::default()
        })
        .expect("bind an ephemeral port");
        let addr = server.addr();
        let id = {
            // Load on a throwaway connection so no worker stays pinned.
            let mut c = Client::connect(addr).expect("connect");
            let id = c.load(path).expect("load");
            // Prime the memos: the burst measures serving, not proving.
            assert!(c.request(&format!("ANALYZE {id}")).expect("prime").ok);
            assert!(
                c.request(&format!("INJECT {id} --seed 7 --drop 0.5"))
                    .expect("prime")
                    .ok
            );
            id
        };
        let (lats, span) = run_burst(addr, id, CLIENTS, PER_CLIENT);
        let total = lats.len();
        let qps = total as f64 / span.as_secs_f64();
        let p50 = lats[total / 2];
        let p99 = lats[total * 99 / 100];
        eprintln!(
            "serve_sustained/width{width}: {total} reqs x {CLIENTS} clients in {:.3}s \
             qps={qps:.0} p50={p50:?} p99={p99:?}",
            span.as_secs_f64()
        );
        g.bench_function(format!("width{width}_burst100"), |b| {
            b.iter(|| {
                let (lats, _) = run_burst(addr, id, CLIENTS, PER_CLIENT);
                black_box(lats.len())
            })
        });
        let mut c = Client::connect(addr).expect("reconnect");
        c.shutdown().expect("shutdown");
        server.join();
    }
    g.finish();
}

/// E20 — delta reload per edit class, against the cost of building the
/// edited spec cold.
///
/// `cold_load_fresh_spec` is the baseline: a LOAD of never-seen content
/// on a live daemon (parse + analyze + execute + construct + prewarm,
/// no daemon start-up in the number). Each reload benchmark ping-pongs
/// one session between the base spec and one edited twin, so every
/// measured request is a real `RELOAD` of changed content (for the
/// comment-only twin the canonical digest is unchanged, so the reload
/// is the dedupe no-op — by design). The daemon's own counters are
/// printed after each group as proof the answers came from reused work.
fn bench_reload(c: &mut Criterion) {
    let src = std::fs::read_to_string(SPECS[0].1).expect("read spec");
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let file = |tag: &str, content: &str| {
        let p = dir.join(format!("atl-bench-reload-{pid}-{tag}.atl"));
        std::fs::write(&p, content).expect("write bench spec");
        p
    };
    // The message edit reorders the components inside the Kbs cipher
    // *consistently in both steps* (S builds it, A forwards it), so the
    // edited spec still executes and the reload exercises the pointwise
    // cache rewarm rather than the no-system fallback.
    let message_edit = src.replace("{Ts, <<A <-Kab-> B>>}Kbs", "{<<A <-Kab-> B>>, Ts}Kbs");
    assert_ne!(src, message_edit, "the spec must contain the cipher");
    let edits = [
        (
            "comment_only",
            format!("{src}# an edit that says nothing\n"),
        ),
        ("message_changed", message_edit),
    ];
    let mut g = c.benchmark_group("serve_reload");

    {
        let server = start();
        let mut client = Client::connect(server.addr()).expect("connect");
        let mut n = 0u64;
        g.bench_function("cold_load_fresh_spec", |b| {
            b.iter(|| {
                // Unique canonical content every iteration (renamed
                // protocol), so each LOAD is a full cold build.
                n += 1;
                let fresh = src.replacen(
                    "protocol kerberos-figure1",
                    &format!("protocol kerberos-figure1-{n}"),
                    1,
                );
                let p = file("cold", &fresh);
                black_box(client.load(p.to_str().expect("utf8")).expect("load"))
            })
        });
        client.shutdown().expect("shutdown");
        server.join();
        let _ = std::fs::remove_file(dir.join(format!("atl-bench-reload-{pid}-cold.atl")));
    }

    // Single-assumption reloads are measured on a monotonically growing
    // spec chain: step i of the chain is the base spec plus i fresh
    // belief assumptions, so each measured request is exactly the "one
    // assumption added" delta (a ping-pong would average in the reverse
    // edit, which is an assumption *removal* and analyses from scratch
    // by design). The chain is written out before the loop so the
    // measurement is the RELOAD round-trip, not file I/O.
    {
        let mut grown = src.clone();
        let chain: Vec<_> = (0..64)
            .map(|i| {
                grown.push_str(&format!("assume A believes fresh(Zb{i})\n"));
                file(&format!("grow-{i}"), &grown)
            })
            .collect();
        let base_path = file("grow-base", &src);
        let server = start();
        let mut client = Client::connect(server.addr()).expect("connect");
        let id = client
            .load(base_path.to_str().expect("utf8"))
            .expect("load base");
        let mut n = 0usize;
        g.bench_function("assumption_added_delta_reload", |b| {
            b.iter(|| {
                let p = &chain[n % chain.len()];
                n += 1;
                let resp = client
                    .request(&format!("RELOAD {id} {}", p.display()))
                    .expect("reload");
                assert!(resp.ok, "{resp:?}");
                black_box(resp.lines.len())
            })
        });
        let s = server.stats();
        eprintln!(
            "serve_reload/assumption_added: reloads={} delta={} full={}",
            s.reloads, s.reload_delta, s.reload_full
        );
        client.shutdown().expect("shutdown");
        server.join();
        for p in chain {
            let _ = std::fs::remove_file(p);
        }
        let _ = std::fs::remove_file(base_path);
    }

    for (name, edited) in &edits {
        let base_path = file(&format!("{name}-base"), &src);
        let edited_path = file(name, edited);
        let server = start();
        let mut client = Client::connect(server.addr()).expect("connect");
        let id = client
            .load(base_path.to_str().expect("utf8"))
            .expect("load base");
        let targets = [
            edited_path.to_str().expect("utf8").to_string(),
            base_path.to_str().expect("utf8").to_string(),
        ];
        let mut flip = 0usize;
        g.bench_function(format!("{name}_delta_reload"), |b| {
            b.iter(|| {
                let to = &targets[flip % 2];
                flip += 1;
                let resp = client
                    .request(&format!("RELOAD {id} {to}"))
                    .expect("reload");
                assert!(resp.ok, "{resp:?}");
                black_box(resp.lines.len())
            })
        });
        let s = server.stats();
        eprintln!(
            "serve_reload/{name}: reloads={} delta={} full={}",
            s.reloads, s.reload_delta, s.reload_full
        );
        client.shutdown().expect("shutdown");
        server.join();
        for p in [base_path, edited_path] {
            let _ = std::fs::remove_file(p);
        }
    }
    g.finish();
}

/// A synthetic live run for the monitor benchmarks: a send/recv/newkey
/// rotation with fresh nonces, so the term space keeps growing the way
/// a real protocol run's does.
fn monitor_trace(events: usize) -> Vec<String> {
    let mut lines = vec![
        "run start 0".to_string(),
        "principal A keys Kab".to_string(),
        "principal B keys Kab".to_string(),
    ];
    for i in 0..events {
        match i % 4 {
            0 => lines.push(format!("send A -> B : {{N{i}, <<A <-Kab-> B>>}}Kab@A")),
            1 => lines.push(format!("recv B : {{N{}, <<A <-Kab-> B>>}}Kab@A", i - 1)),
            2 => lines.push(format!("send B -> A : {{N{i}, N0}}Kab@B")),
            _ => lines.push(format!("recv A : {{N{}, N0}}Kab@B", i - 1)),
        }
    }
    lines
}

/// E21 — streaming monitor: one incremental event against the batch
/// re-walk of the same prefix.
///
/// At each prefix length the monitor is pre-fed the whole prefix; the
/// `incremental` benchmark clones it and feeds the next event (one
/// delta saturation + one cache append + re-verdict), while the
/// `batch_rewalk` benchmark recreates the same session state without
/// incrementality: re-parse the full prefix-plus-event text, rebuild
/// the system, prewarm and evaluate from scratch, and re-run the full
/// annotation closure over every ingested fact (`analyze_at`) — the
/// monitor keeps that closure current per event, so an honest re-walk
/// must rebuild it too. The eprintln lines — feed timed alone, clone
/// outside the measured region — are what `BENCH_prover.json` records.
fn bench_monitor(c: &mut Criterion) {
    let pool = Pool::new(1);
    let formulas = [
        "B sees N0".to_string(),
        "B sees N3".to_string(),
        "Env has Kab".to_string(),
    ];
    let mut g = c.benchmark_group("serve_monitor");
    for n in [4usize, 16, 64] {
        let lines = monitor_trace(n + 1);
        let (prefix, next) = lines.split_at(lines.len() - 1);
        let next = next[0].as_str();
        let mut warmed = Monitor::new("bench", formulas.clone()).expect("monitor");
        for line in prefix {
            warmed.feed_line(line, &pool).expect("prefix feeds");
        }
        let full_text = {
            let mut t = lines.join("\n");
            t.push('\n');
            t
        };
        let proto_full = {
            let mut complete = warmed.clone();
            complete.feed_line(next, &pool).expect("event feeds");
            complete.protocol().clone()
        };
        let batch_rewalk = || {
            let (run, syms) = parse_trace(&full_text).expect("trace parses");
            let k = run.horizon();
            let sys = System::new([run]);
            let sem = Semantics::new(&sys, GoodRuns::all_runs(&sys));
            let verdicts: Vec<bool> = formulas
                .iter()
                .map(|f| {
                    let phi = parse_formula(f, &syms).expect("formula");
                    sem.eval(Point::new(0, k), &phi).expect("in range")
                })
                .collect();
            black_box(verdicts);
            black_box(analyze_at(&proto_full).goals.len());
        };

        // Per-event numbers with the clone outside the timed region.
        const REPS: u32 = 30;
        let mut incremental = Duration::ZERO;
        for _ in 0..REPS {
            let mut m = warmed.clone();
            let t = Instant::now();
            let out = m.feed_line(next, &pool).expect("event feeds");
            incremental += t.elapsed();
            assert_eq!(out.len(), formulas.len());
        }
        let mut batch = Duration::ZERO;
        for _ in 0..REPS {
            let t = Instant::now();
            batch_rewalk();
            batch += t.elapsed();
        }
        let speedup = batch.as_secs_f64() / incremental.as_secs_f64();
        eprintln!(
            "serve_monitor/prefix{n}: incremental={:?} batch={:?} speedup={speedup:.1}x",
            incremental / REPS,
            batch / REPS
        );

        g.bench_function(format!("prefix{n}_event_incremental"), |b| {
            b.iter(|| {
                let mut m = warmed.clone();
                black_box(m.feed_line(next, &pool).expect("event feeds"))
            })
        });
        g.bench_function(format!("prefix{n}_event_batch_rewalk"), |b| {
            b.iter(batch_rewalk)
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_cold,
    bench_warm,
    bench_sustained,
    bench_reload,
    bench_monitor
);
criterion_main!(benches);
