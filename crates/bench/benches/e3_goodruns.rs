//! E3/E4 (Theorems 2 and 3) — the good-run construction's cost by belief
//! nesting depth, and the optimality search on the coin-toss system.
//!
//! Shape reproduced: the construction is one semantics pass per nesting
//! level (linear in depth); the exhaustive optimality check is exponential
//! in runs × principals and feasible only for small counterexamples —
//! which is all the paper needs it for.

use atl_core::examples::coin_toss;
use atl_core::goodruns::{construct, is_optimum, supports, InitialAssumptions};
use atl_lang::{Formula, Key};
use atl_model::{random_system, GenConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn assumptions_of_depth(depth: usize) -> InitialAssumptions {
    let base = Formula::shared_key("A", Key::new("Kas"), "S");
    let mut i = InitialAssumptions::new();
    // An I2-compliant chain: S believes base, B believes S believes it, …
    let owners = ["S", "B", "A"];
    let mut body = base;
    for owner in owners.iter().take(depth) {
        i.assume(*owner, body.clone());
        body = Formula::believes(*owner, body);
    }
    i
}

fn bench_construction_depth(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_construct_vs_depth");
    let sys = random_system(&GenConfig::default(), 4, 11);
    for depth in [1usize, 2, 3] {
        let i = assumptions_of_depth(depth);
        g.bench_with_input(BenchmarkId::from_parameter(depth), &i, |b, i| {
            b.iter(|| {
                let goods = construct(&sys, i).expect("construct ok");
                assert!(supports(&sys, &goods, i).expect("support check ok"));
                black_box(goods)
            })
        });
    }
    g.finish();
}

fn bench_construction_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_construct_vs_runs");
    let i = assumptions_of_depth(2);
    for n_runs in [2usize, 4, 8, 16] {
        let sys = random_system(&GenConfig::default(), n_runs, 3);
        g.bench_with_input(BenchmarkId::from_parameter(n_runs), &sys, |b, sys| {
            b.iter(|| black_box(construct(sys, &i).expect("construct ok")))
        });
    }
    g.finish();
}

fn bench_e4_optimality(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_optimality");
    g.bench_function("coin_toss_no_optimum", |b| {
        let (sys, assumptions) = coin_toss();
        let goods = construct(&sys, &assumptions).expect("construct ok");
        b.iter(|| {
            let optimum = is_optimum(&sys, &goods, &assumptions, 1 << 24).expect("search ok");
            assert!(!optimum);
            black_box(optimum)
        })
    });
    g.bench_function("depth1_is_optimum", |b| {
        let sys = random_system(&GenConfig::default(), 3, 5);
        let mut i = InitialAssumptions::new();
        i.assume("A", Formula::shared_key("A", Key::new("Kas"), "S"));
        let goods = construct(&sys, &i).expect("construct ok");
        b.iter(|| {
            let optimum = is_optimum(&sys, &goods, &i, 1 << 24).expect("search ok");
            assert!(optimum);
            black_box(optimum)
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1500))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_construction_depth, bench_construction_runs, bench_e4_optimality
}
criterion_main!(benches);
