//! Fault-sweep throughput: plans/second through the sharded
//! enumerate → fingerprint → dedupe → execute pipeline at 1/2/4/8
//! workers, plus the dedup/cache effect in isolation.
//!
//! The 1-worker point is the sequential reference path, so the curve
//! shows both the fan-out speedup on multi-core machines and the
//! sharding overhead where there is none. Sweep outputs are identical
//! at every worker count by construction (tests/e16_sweep.rs); only the
//! wall-clock may differ.

use atl_core::parallel::Pool;
use atl_lang::{Message, Nonce};
use atl_model::{
    sweep_plans_on, ExecOptions, ExecutionCache, ExpectPolicy, Protocol, Role, SweepGrid,
};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

const WORKERS: &[usize] = &[1, 2, 4, 8];

/// A protocol of `depth` nonce round-trips between A and B, the e16
/// randomized-protocol shape at a fixed size.
fn pingpong(depth: u64) -> Protocol {
    let mut a = Role::new("A", []);
    let mut b = Role::new("B", []);
    let policy = ExpectPolicy::skip_after(2);
    for i in 0..depth {
        let ping = Message::nonce(Nonce::new(format!("P{i}")));
        let pong = Message::nonce(Nonce::new(format!("Q{i}")));
        a = a.send(ping.clone(), "B").expect_with(pong.clone(), policy);
        b = b.expect_with(ping, policy).send(pong, "A");
    }
    Protocol::new(format!("pingpong-{depth}")).role(a).role(b)
}

/// A grid whose fractional probabilities keep every seed distinct, so
/// dedup cannot hide the execution cost being measured.
fn dense_grid() -> SweepGrid {
    SweepGrid::new()
        .seeds(0..8)
        .drop_steps([0.25, 0.6])
        .replay_steps([0.0, 0.5])
}

/// Sweep throughput in plans/second at each worker count.
fn bench_sweep_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_sweep_32_plans");
    let proto = pingpong(4);
    let opts = ExecOptions::default();
    let plans = dense_grid().plans();
    for &jobs in WORKERS {
        let pool = Pool::new(jobs);
        g.bench_with_input(BenchmarkId::from_parameter(jobs), &pool, |b, pool| {
            b.iter(|| {
                let out = sweep_plans_on(&proto, &opts, &plans, pool, &ExecutionCache::new());
                black_box(out.stats.executed)
            })
        });
    }
    g.finish();
}

/// The dedup + cache effect: a boundary-heavy grid where most plans
/// collapse to a few fingerprints, swept cold (dedup only) and warm
/// (everything served from the shared cache).
fn bench_dedup_and_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_sweep_dedup");
    let proto = pingpong(4);
    let opts = ExecOptions::default();
    // 8 seeds × {0, 1} drop × {0, 1} replay: seeds are erased on the
    // boundary columns, so 32 plans dedupe far down before executing.
    let plans = SweepGrid::new()
        .seeds(0..8)
        .drop_steps([0.0, 1.0])
        .replay_steps([0.0, 1.0])
        .plans();
    let pool = Pool::new(2);
    g.bench_function("cold", |b| {
        b.iter(|| {
            let out = sweep_plans_on(&proto, &opts, &plans, &pool, &ExecutionCache::new());
            black_box(out.stats.executed)
        })
    });
    let warm = ExecutionCache::new();
    sweep_plans_on(&proto, &opts, &plans, &pool, &warm);
    g.bench_function("warm", |b| {
        b.iter(|| {
            let out = sweep_plans_on(&proto, &opts, &plans, &pool, &warm);
            black_box(out.stats.cache_hits)
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_sweep_scaling, bench_dedup_and_cache
}
criterion_main!(benches);
