//! Coverage-guided hunt throughput and yield: plans/second through the
//! mutate → fingerprint-dedupe → sweep → classify → shrink pipeline,
//! cold versus warm shared cache, and the hunt against an exhaustive
//! sweep of the same mutation axes.
//!
//! The hunt's report is cache-warmth invariant by construction (the
//! budget counts resolved plans, not cache misses — tests/e22_hunt.rs),
//! so cold and warm runs do identical search work; only executions are
//! saved. The exhaustive group is the comparison the E22 experiment
//! quotes: signatures found per plan resolved, fuzzer versus grid.

use atl_core::parallel::Pool;
use atl_lang::{Key, Message, Nonce};
use atl_model::{
    hunt_plans_on, sweep_plans_on, ExecOptions, ExecOutcome, ExecutionCache, ExpectPolicy,
    FaultKind, HuntConfig, MutationSpace, Protocol, Role,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// A protocol of `depth` nonce round-trips between A and B, the e16/e22
/// randomized-protocol shape at a fixed size.
fn pingpong(depth: u64) -> Protocol {
    let mut a = Role::new("A", []);
    let mut b = Role::new("B", []);
    let policy = ExpectPolicy::skip_after(2);
    for i in 0..depth {
        let ping = Message::nonce(Nonce::new(format!("P{i}")));
        let pong = Message::nonce(Nonce::new(format!("Q{i}")));
        a = a.send(ping.clone(), "B").expect_with(pong.clone(), policy);
        b = b.expect_with(ping, policy).send(pong, "A");
    }
    Protocol::new(format!("pingpong-{depth}")).role(a).role(b)
}

fn space() -> MutationSpace {
    MutationSpace::new()
        .prob_steps([0.0, 0.25, 0.5, 0.75, 1.0])
        .seeds(0..2)
        .candidate(Key::new("P0"), 2)
}

fn config_for(budget: usize) -> HuntConfig {
    HuntConfig {
        seed: 1,
        budget,
        batch: 16,
        space: space(),
        seed_plans: Vec::new(),
    }
}

/// The same protocol-independent classifier e22 uses: fault kinds fired
/// plus the abandoned count.
fn classify(outcome: &ExecOutcome) -> String {
    match outcome {
        Ok((_, report)) => {
            let kinds: String = [
                FaultKind::Drop,
                FaultKind::Duplicate,
                FaultKind::Delay,
                FaultKind::Reorder,
                FaultKind::Replay,
                FaultKind::Compromise,
            ]
            .iter()
            .map(|k| {
                if report.faults_of(*k).next().is_some() {
                    'x'
                } else {
                    '-'
                }
            })
            .collect();
            format!("faults={kinds} abandoned={}", report.abandoned.len())
        }
        Err(_) => "failed".to_string(),
    }
}

/// Hunt throughput (a fixed 96-plan budget, shrinking included), cold
/// shared cache versus fully warm: the warm point isolates the search
/// machinery itself (mutation, dedup, classification, bookkeeping) from
/// execution cost.
fn bench_hunt_cold_vs_warm(c: &mut Criterion) {
    let mut g = c.benchmark_group("hunt_search_96_budget");
    let proto = pingpong(3);
    let opts = ExecOptions::default();
    let config = config_for(96);
    let pool = Pool::new(2);
    g.bench_function("cold", |b| {
        b.iter(|| {
            let out = hunt_plans_on(
                &proto,
                &opts,
                &config,
                &pool,
                &ExecutionCache::new(),
                None,
                |_, o| classify(o),
            );
            black_box(out.classes.len())
        })
    });
    let warm = ExecutionCache::new();
    hunt_plans_on(&proto, &opts, &config, &pool, &warm, None, |_, o| {
        classify(o)
    });
    g.bench_function("warm", |b| {
        b.iter(|| {
            let out = hunt_plans_on(&proto, &opts, &config, &pool, &warm, None, |_, o| {
                classify(o)
            });
            black_box(out.stats.cache_hits)
        })
    });
    g.finish();
}

/// The hunt against the exhaustive grid over the same axes: the grid
/// resolves every unique fingerprint of the space; the hunt resolves
/// its budget. The E22 experiment quotes the yield ratio (signatures
/// per plan resolved); this group pins the wall-clock side.
fn bench_hunt_vs_exhaustive(c: &mut Criterion) {
    let mut g = c.benchmark_group("hunt_vs_exhaustive");
    let proto = pingpong(3);
    let opts = ExecOptions::default();
    let pool = Pool::new(2);
    let config = config_for(96);
    g.bench_function("hunt", |b| {
        b.iter(|| {
            let out = hunt_plans_on(
                &proto,
                &opts,
                &config,
                &pool,
                &ExecutionCache::new(),
                None,
                |_, o| classify(o),
            );
            black_box(out.classes.len())
        })
    });
    let plans = space().grid().plans();
    g.bench_function("exhaustive", |b| {
        b.iter(|| {
            let out = sweep_plans_on(&proto, &opts, &plans, &pool, &ExecutionCache::new());
            black_box(out.stats.executed)
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_hunt_cold_vs_warm, bench_hunt_vs_exhaustive
}
criterion_main!(benches);
