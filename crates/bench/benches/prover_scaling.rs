//! Derivation-engine scaling: saturation cost against the number of
//! assumptions and parallel sessions, for both the BAN engine and the
//! reformulated-logic prover; plus the axioms-only ablation.
//!
//! Shape: saturation is polynomial in the fact count; the reformulated
//! prover pays a modest constant over the BAN engine for its context
//! bookkeeping, and disabling the semantic promotion rules shrinks the
//! fact set (and cost) further.

use atl_ban::{BanStmt, Engine};
use atl_core::prover::{Prover, ProverConfig};
use atl_lang::{Formula, Key, Message, Nonce};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;

/// `n` parallel Figure 1 sessions with disjoint names, as BAN facts.
fn ban_sessions(n: usize) -> Vec<BanStmt> {
    let mut facts = Vec::new();
    for i in 0..n {
        let a = format!("A{i}");
        let b = format!("B{i}");
        let kab = BanStmt::shared_key(a.as_str(), format!("Kab{i}"), b.as_str());
        let ts = BanStmt::nonce(format!("Ts{i}"));
        facts.push(BanStmt::believes(
            b.as_str(),
            BanStmt::shared_key(b.as_str(), format!("Kbs{i}"), "S"),
        ));
        facts.push(BanStmt::believes(b.as_str(), BanStmt::fresh(ts.clone())));
        facts.push(BanStmt::believes(
            b.as_str(),
            BanStmt::controls("S", kab.clone()),
        ));
        facts.push(BanStmt::sees(
            b.as_str(),
            BanStmt::encrypted(BanStmt::conj([ts, kab]), format!("Kbs{i}"), "S"),
        ));
    }
    facts
}

/// The same sessions in the reformulated logic.
fn at_sessions(n: usize) -> Vec<Formula> {
    let mut facts = Vec::new();
    for i in 0..n {
        let a = format!("A{i}");
        let b = format!("B{i}");
        let kab = Formula::shared_key(a.as_str(), Key::new(format!("Kab{i}")), b.as_str());
        let ts = Message::nonce(Nonce::new(format!("Ts{i}")));
        let kbs = Key::new(format!("Kbs{i}"));
        facts.push(Formula::believes(
            b.as_str(),
            Formula::shared_key(b.as_str(), kbs.clone(), "S"),
        ));
        facts.push(Formula::believes(b.as_str(), Formula::fresh(ts.clone())));
        facts.push(Formula::believes(
            b.as_str(),
            Formula::controls("S", kab.clone()),
        ));
        facts.push(Formula::has(b.as_str(), kbs.clone()));
        facts.push(Formula::sees(
            b.as_str(),
            Message::encrypted(Message::tuple([ts, kab.into_message()]), kbs, "S"),
        ));
    }
    facts
}

fn bench_ban_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("prover_ban_vs_sessions");
    for n in [1usize, 2, 4, 8] {
        let facts = ban_sessions(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &facts, |b, facts| {
            b.iter(|| {
                let mut engine = Engine::new(facts.iter().cloned());
                engine.saturate();
                black_box(engine.known().len())
            })
        });
    }
    g.finish();
}

fn bench_at_prover(c: &mut Criterion) {
    let mut g = c.benchmark_group("prover_at_vs_sessions");
    for n in [1usize, 2, 4, 8] {
        let facts = at_sessions(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &facts, |b, facts| {
            b.iter(|| {
                let mut prover = Prover::new(facts.iter().cloned());
                prover.saturate();
                black_box(prover.facts().len())
            })
        });
    }
    g.finish();
}

fn bench_axioms_only_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_axioms_only");
    let facts = at_sessions(4);
    g.bench_function("with_promotions", |b| {
        b.iter(|| {
            let mut prover = Prover::new(facts.iter().cloned());
            prover.saturate();
            black_box(prover.facts().len())
        })
    });
    g.bench_function("axioms_only", |b| {
        let config = ProverConfig {
            axioms_only: true,
            ..ProverConfig::default()
        };
        b.iter(|| {
            let mut prover = Prover::with_config(facts.iter().cloned(), config);
            prover.saturate();
            black_box(prover.facts().len())
        })
    });
    g.finish();
}

fn bench_worklist_ablation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_worklist");
    let facts = at_sessions(8);
    g.bench_function("worklist", |b| {
        b.iter(|| {
            let mut prover = Prover::new(facts.iter().cloned());
            prover.saturate();
            black_box(prover.facts().len())
        })
    });
    g.bench_function("rescan", |b| {
        let config = ProverConfig {
            use_worklist: false,
            ..ProverConfig::default()
        };
        b.iter(|| {
            let mut prover = Prover::with_config(facts.iter().cloned(), config);
            prover.saturate();
            black_box(prover.facts().len())
        })
    });
    g.finish();
}

fn bench_goal_checking(c: &mut Criterion) {
    let mut g = c.benchmark_group("prover_goal_check");
    let facts = at_sessions(4);
    let mut prover = Prover::new(facts);
    prover.saturate();
    let goal = Formula::believes("B2", Formula::shared_key("A2", Key::new("Kab2"), "B2"));
    g.bench_function("holds", |b| b.iter(|| black_box(prover.holds(&goal))));
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(1200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_ban_engine, bench_at_prover, bench_axioms_only_ablation, bench_worklist_ablation, bench_goal_checking
}
criterion_main!(benches);
