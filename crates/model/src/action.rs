//! Actions and history events (Section 5).
//!
//! A principal changes its local state — and perhaps the environment state —
//! by performing an [`Action`]: sending a message, receiving a message, or
//! coming into possession of a new key. Each action appends itself to the
//! principal's local history, and, tagged with the performer, to the
//! environment's global history as an [`Event`].

use atl_lang::{Key, Message, Principal};
use std::fmt;

/// An action a principal can perform (Section 5).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Action {
    /// `send(m, Q)`: send the message `m` to principal `Q`; `m` is added to
    /// `Q`'s message buffer.
    Send {
        /// The message sent.
        message: Message,
        /// The intended recipient.
        to: Principal,
    },
    /// `receive(m)`: receipt of a message. In the paper `receive()` chooses
    /// nondeterministically from the buffer; histories record the chosen
    /// message, as the paper tags `receive(m)` with the message returned.
    Receive {
        /// The message delivered from the principal's buffer.
        message: Message,
    },
    /// `newkey(K)`: the key `K` is added to the principal's key set —
    /// whether freshly generated, out-of-band distributed, or guessed by an
    /// attacker.
    NewKey {
        /// The acquired key.
        key: Key,
    },
}

impl Action {
    /// Convenience constructor for [`Action::Send`].
    pub fn send(message: Message, to: impl Into<Principal>) -> Self {
        Action::Send {
            message,
            to: to.into(),
        }
    }

    /// Convenience constructor for [`Action::Receive`].
    pub fn receive(message: Message) -> Self {
        Action::Receive { message }
    }

    /// Convenience constructor for [`Action::NewKey`].
    pub fn new_key(key: impl Into<Key>) -> Self {
        Action::NewKey { key: key.into() }
    }

    /// The message carried by the action, if any.
    pub fn message(&self) -> Option<&Message> {
        match self {
            Action::Send { message, .. } | Action::Receive { message } => Some(message),
            Action::NewKey { .. } => None,
        }
    }

    /// True for `send` actions.
    pub fn is_send(&self) -> bool {
        matches!(self, Action::Send { .. })
    }

    /// True for `receive` actions.
    pub fn is_receive(&self) -> bool {
        matches!(self, Action::Receive { .. })
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Send { message, to } => write!(f, "send({message}, {to})"),
            Action::Receive { message } => write!(f, "receive({message})"),
            Action::NewKey { key } => write!(f, "newkey({key})"),
        }
    }
}

/// A global-history entry: an action tagged with the principal that
/// performed it (Section 5 tags global-history actions this way).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Event {
    /// The principal that performed the action.
    pub actor: Principal,
    /// The action performed.
    pub action: Action,
}

impl Event {
    /// Creates an event.
    pub fn new(actor: impl Into<Principal>, action: Action) -> Self {
        Event {
            actor: actor.into(),
            action,
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.actor, self.action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atl_lang::Nonce;

    #[test]
    fn constructors_and_accessors() {
        let m = Message::nonce(Nonce::new("Na"));
        let s = Action::send(m.clone(), "B");
        assert!(s.is_send());
        assert_eq!(s.message(), Some(&m));
        let r = Action::receive(m.clone());
        assert!(r.is_receive());
        let k = Action::new_key("Kab");
        assert_eq!(k.message(), None);
    }

    #[test]
    fn display_forms() {
        let m = Message::nonce(Nonce::new("Na"));
        assert_eq!(Action::send(m.clone(), "B").to_string(), "send(Na, B)");
        assert_eq!(Action::receive(m).to_string(), "receive(Na)");
        assert_eq!(Action::new_key("K").to_string(), "newkey(K)");
        let e = Event::new("A", Action::new_key("K"));
        assert_eq!(e.to_string(), "A: newkey(K)");
    }
}
