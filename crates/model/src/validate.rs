//! Auditing runs against the five well-formedness restrictions of
//! Section 5.
//!
//! [`RunBuilder`](crate::run::RunBuilder) enforces these restrictions as a
//! run is constructed; this module re-checks a finished [`Run`] — useful
//! for runs assembled from parts, for adversarial test fixtures built with
//! `send_unchecked`, and as an executable statement of the model's
//! invariants.

use crate::action::Action;
use crate::run::Run;
use atl_lang::{can_see, said_submsgs, seen_submsgs_of_set, Message, Principal};
use std::fmt;

/// A violation of one of the Section 5 restrictions, located in a run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which restriction (1–5) was violated.
    pub restriction: u8,
    /// The time at which the offending action was performed.
    pub time: i64,
    /// The principal responsible.
    pub actor: Principal,
    /// Human-readable details.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "restriction {} violated at time {} by {}: {}",
            self.restriction, self.time, self.actor, self.detail
        )
    }
}

/// Checks all five restrictions on `run`, returning every violation found
/// (empty if the run is well-formed).
///
/// 1. A principal's key set never decreases.
/// 2. A message must be sent (to that principal) before it is received.
/// 3. A principal must possess keys it uses for encryption: for each
///    ciphertext it is considered to have said, it saw the ciphertext or
///    holds the key.
/// 4. A system principal sets from fields correctly on ciphertext and
///    combined messages it constructs.
/// 5. A system principal forwards only messages it has seen.
pub fn validate_run(run: &Run) -> Vec<Violation> {
    let mut out = Vec::new();
    check_key_monotonicity(run, &mut out);
    check_send_before_receive(run, &mut out);
    check_send_restrictions(run, &mut out);
    out
}

fn check_key_monotonicity(run: &Run, out: &mut Vec<Violation>) {
    let principals: Vec<Principal> = run.principals().cloned().collect();
    for w in run.times().collect::<Vec<_>>().windows(2) {
        let (k0, k1) = (w[0], w[1]);
        let (Some(s0), Some(s1)) = (run.state(k0), run.state(k1)) else {
            continue;
        };
        for p in &principals {
            if !s0.key_set(p).is_subset(s1.key_set(p)) {
                out.push(Violation {
                    restriction: 1,
                    time: k1,
                    actor: p.clone(),
                    detail: format!("key set of {p} shrank between {k0} and {k1}"),
                });
            }
        }
        if !s0.env.key_set.is_subset(&s1.env.key_set) {
            out.push(Violation {
                restriction: 1,
                time: k1,
                actor: Principal::environment(),
                detail: "environment key set shrank".into(),
            });
        }
    }
}

fn check_send_before_receive(run: &Run, out: &mut Vec<Violation>) {
    let mut sent: Vec<(Principal, Message)> = Vec::new();
    for (time, event) in run.events() {
        match &event.action {
            Action::Send { message, to } => sent.push((to.clone(), message.clone())),
            Action::Receive { message } => {
                let pos = sent
                    .iter()
                    .position(|(to, m)| to == &event.actor && m == message);
                match pos {
                    Some(i) => {
                        // Consume the matching send so one send delivers at
                        // most one receive.
                        sent.remove(i);
                    }
                    None => out.push(Violation {
                        restriction: 2,
                        time,
                        actor: event.actor.clone(),
                        detail: format!("{message} received without a prior matching send"),
                    }),
                }
            }
            Action::NewKey { .. } => {}
        }
    }
}

fn check_send_restrictions(run: &Run, out: &mut Vec<Violation>) {
    let system: Vec<Principal> = run.principals().cloned().collect();
    for rec in run.send_records() {
        let is_system = system.contains(&rec.sender);
        let seen = seen_submsgs_of_set(rec.received.iter(), &rec.key_set);
        let said = said_submsgs(&rec.message, &rec.key_set, &rec.received);
        for sub in &said {
            match sub {
                Message::Encrypted { key, from, .. } => {
                    let holds = key.as_key().is_some_and(|k| rec.key_set.contains(k));
                    let saw = seen.contains(sub);
                    if !holds && !saw {
                        out.push(Violation {
                            restriction: 3,
                            time: rec.time,
                            actor: rec.sender.clone(),
                            detail: format!("said {sub} without key or prior sight"),
                        });
                    }
                    if is_system && from != &rec.sender && !saw {
                        out.push(Violation {
                            restriction: 4,
                            time: rec.time,
                            actor: rec.sender.clone(),
                            detail: format!("constructed {sub} with foreign from field {from}"),
                        });
                    }
                }
                Message::Combined { from, .. }
                    if is_system && from != &rec.sender && !seen.contains(sub) =>
                {
                    out.push(Violation {
                        restriction: 4,
                        time: rec.time,
                        actor: rec.sender.clone(),
                        detail: format!("constructed {sub} with foreign from field {from}"),
                    });
                }
                Message::Forwarded(body) => {
                    let saw_body = rec.received.iter().any(|r| can_see(body, r, &rec.key_set));
                    if is_system && !saw_body {
                        out.push(Violation {
                            restriction: 5,
                            time: rec.time,
                            actor: rec.sender.clone(),
                            detail: format!("forwarded {body} without having seen it"),
                        });
                    }
                }
                Message::PubEncrypted { key, from, .. } => {
                    let holds = key.as_key().is_some_and(|k| rec.key_set.contains(k));
                    let saw = seen.contains(sub);
                    if !holds && !saw {
                        out.push(Violation {
                            restriction: 3,
                            time: rec.time,
                            actor: rec.sender.clone(),
                            detail: format!("said {sub} without the public key or prior sight"),
                        });
                    }
                    if is_system && from != &rec.sender && !saw {
                        out.push(Violation {
                            restriction: 4,
                            time: rec.time,
                            actor: rec.sender.clone(),
                            detail: format!("constructed {sub} with foreign from field {from}"),
                        });
                    }
                }
                Message::Signed { key, from, .. } => {
                    let holds = key
                        .as_key()
                        .is_some_and(|k| rec.key_set.contains(&k.inverse()));
                    let saw = seen.contains(sub);
                    if !holds && !saw {
                        out.push(Violation {
                            restriction: 3,
                            time: rec.time,
                            actor: rec.sender.clone(),
                            detail: format!("said {sub} without the private key or prior sight"),
                        });
                    }
                    if is_system && from != &rec.sender && !saw {
                        out.push(Violation {
                            restriction: 4,
                            time: rec.time,
                            actor: rec.sender.clone(),
                            detail: format!("constructed {sub} with foreign from field {from}"),
                        });
                    }
                }
                _ => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::RunBuilder;
    use atl_lang::{Key, Nonce};

    fn nonce(s: &str) -> Message {
        Message::nonce(Nonce::new(s))
    }

    #[test]
    fn well_formed_run_passes() {
        let mut b = RunBuilder::new(-1);
        b.principal("A", [Key::new("K")]);
        b.principal("B", [Key::new("K")]);
        let cipher = Message::encrypted(nonce("X"), Key::new("K"), Principal::new("A"));
        b.send("A", cipher.clone(), "B").unwrap();
        b.receive("B", &cipher).unwrap();
        let run = b.build().unwrap();
        assert!(validate_run(&run).is_empty());
    }

    #[test]
    fn detects_restriction_3() {
        let mut b = RunBuilder::new(0);
        b.principal("A", []);
        b.principal("B", []);
        let cipher = Message::encrypted(nonce("X"), Key::new("K"), Principal::new("A"));
        b.send_unchecked("A", cipher, "B");
        let run = b.build().unwrap();
        let violations = validate_run(&run);
        assert!(
            violations.iter().any(|v| v.restriction == 3),
            "{violations:?}"
        );
    }

    #[test]
    fn detects_restriction_4() {
        let mut b = RunBuilder::new(0);
        b.principal("A", [Key::new("K")]);
        b.principal("B", []);
        let forged = Message::encrypted(nonce("X"), Key::new("K"), Principal::new("B"));
        b.send_unchecked("A", forged, "B");
        let run = b.build().unwrap();
        assert!(validate_run(&run).iter().any(|v| v.restriction == 4));
    }

    #[test]
    fn detects_restriction_5() {
        let mut b = RunBuilder::new(0);
        b.principal("A", []);
        b.principal("B", []);
        b.send_unchecked("A", Message::forwarded(nonce("X")), "B");
        let run = b.build().unwrap();
        assert!(validate_run(&run).iter().any(|v| v.restriction == 5));
    }

    #[test]
    fn environment_is_exempt_from_4_and_5_but_not_3() {
        let mut b = RunBuilder::new(0);
        b.principal("B", []);
        let env = Principal::environment();
        b.send_unchecked(env.clone(), Message::forwarded(nonce("X")), "B");
        let run = b.build().unwrap();
        let violations = validate_run(&run);
        assert!(
            violations.iter().all(|v| v.restriction != 5),
            "{violations:?}"
        );
    }

    #[test]
    fn detects_unmatched_receive() {
        // Build a run by parts with a receive that was never sent.
        use crate::action::{Action, Event};
        use crate::state::{GlobalState, LocalState};
        use atl_lang::Bindings;
        let mut s0 = GlobalState::default();
        s0.locals.insert(Principal::new("B"), LocalState::default());
        let mut s1 = s0.clone();
        s1.locals
            .get_mut(&Principal::new("B"))
            .unwrap()
            .history
            .push(Action::receive(nonce("ghost")));
        let run = Run::from_parts(
            0,
            vec![s0, s1],
            vec![Event::new("B", Action::receive(nonce("ghost")))],
            Bindings::new(),
        )
        .unwrap();
        assert!(validate_run(&run).iter().any(|v| v.restriction == 2));
    }

    #[test]
    fn one_send_delivers_at_most_once() {
        let mut b = RunBuilder::new(0);
        b.principal("A", []);
        b.principal("B", []);
        b.send("A", nonce("X"), "B").unwrap();
        b.receive("B", &nonce("X")).unwrap();
        let mut run = b.build().unwrap();
        // Splice in a second receive of the same message by editing parts.
        use crate::action::{Action, Event};
        let mut states: Vec<_> = run.times().filter_map(|k| run.state(k).cloned()).collect();
        let mut last = states.last().cloned().unwrap();
        last.locals
            .get_mut(&Principal::new("B"))
            .unwrap()
            .history
            .push(Action::receive(nonce("X")));
        states.push(last);
        let mut events: Vec<Event> = run.events().map(|(_, e)| e.clone()).collect();
        events.push(Event::new("B", Action::receive(nonce("X"))));
        run = Run::from_parts(0, states, events, atl_lang::Bindings::new()).unwrap();
        assert!(validate_run(&run).iter().any(|v| v.restriction == 2));
    }

    use crate::run::Run;
}
