//! A line-oriented wire/store codec for fault plans and execution
//! outcomes.
//!
//! The distributed sweep fabric moves two kinds of values between
//! processes: [`FaultPlan`]s travel coordinator → worker inside a
//! `SWEEP` request, and [`ExecOutcome`]s travel back (and into the
//! on-disk outcome store). Both directions must be *exact*: a plan that
//! round-trips through text has to execute to the very same run
//! (probabilities are carried as f64 bit patterns, never decimal), and
//! an outcome that round-trips has to compare equal to the locally
//! computed one, so distributed sweep reports stay byte-identical to
//! single-process ones.
//!
//! Renderings are ASCII, one logical record per line. Free-form text
//! (fault details, key names, error messages) is percent-escaped so a
//! record never gains an accidental newline or field separator; runs are
//! embedded via [`render_trace`]/[`parse_trace`] with an explicit line
//! count for framing. Errors reconstitute as
//! [`ModelError::Reconstituted`], which displays the original rendering
//! verbatim.
//!
//! Parsing is paranoid by design: every length is checked, every field
//! must parse, and trailing garbage is an error — a truncated or
//! bit-flipped record must be *rejected*, not half-trusted, because the
//! outcome store treats any [`WireError`] as "discard and recompute".

use crate::error::ModelError;
use crate::faults::{AbandonedStep, ExecReport, FaultEvent, FaultKind, FaultPlan};
use crate::sweep::ExecOutcome;
use crate::trace::{parse_trace, render_trace};
use atl_lang::{Key, Principal};
use std::error::Error;
use std::fmt;

/// Error produced when a wire record fails to parse or verify.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireError(pub String);

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire: {}", self.0)
    }
}

impl Error for WireError {}

fn err(message: impl Into<String>) -> WireError {
    WireError(message.into())
}

/// Percent-escapes `text` so the result contains only printable ASCII
/// with no whitespace and no `%`, `;`, `,`, `@` (the separators the
/// plan/outcome grammars use). The empty string renders as `%` alone so
/// every field stays a non-empty token.
pub fn escape(text: &str) -> String {
    if text.is_empty() {
        return "%".to_string();
    }
    let mut out = String::with_capacity(text.len());
    for &b in text.as_bytes() {
        let plain = b.is_ascii_graphic() && !matches!(b, b'%' | b';' | b',' | b'@');
        if plain {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02x}"));
        }
    }
    out
}

/// Reverses [`escape`].
///
/// # Errors
///
/// [`WireError`] on a malformed `%` sequence, embedded whitespace, or
/// invalid UTF-8 after unescaping.
pub fn unescape(token: &str) -> Result<String, WireError> {
    if token == "%" {
        return Ok(String::new());
    }
    let bytes = token.as_bytes();
    let mut out: Vec<u8> = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .ok_or_else(|| err(format!("truncated escape in {token:?}")))?;
            let hex = std::str::from_utf8(hex).map_err(|_| err("non-ASCII escape"))?;
            out.push(
                u8::from_str_radix(hex, 16)
                    .map_err(|_| err(format!("bad escape %{hex} in {token:?}")))?,
            );
            i += 3;
        } else if b.is_ascii_graphic() {
            out.push(b);
            i += 1;
        } else {
            return Err(err(format!("raw byte {b:#04x} in escaped token {token:?}")));
        }
    }
    String::from_utf8(out).map_err(|_| err(format!("invalid UTF-8 after unescaping {token:?}")))
}

/// Renders a plan as one line of exact fields: the seed, the five
/// probabilities as f64 bit patterns (so fractional grid steps survive
/// the round-trip bit-for-bit), the delay duration, and the compromise
/// schedule with percent-escaped key names.
pub fn render_plan(plan: &FaultPlan) -> String {
    let bits = |p: f64| format!("{:016x}", p.to_bits());
    let mut out = format!(
        "seed={} probs={},{},{},{},{} rounds={}",
        plan.seed,
        bits(plan.drop_p),
        bits(plan.duplicate_p),
        bits(plan.delay_p),
        bits(plan.reorder_p),
        bits(plan.replay_p),
        plan.delay_rounds
    );
    if !plan.compromises.is_empty() {
        let comps: Vec<String> = plan
            .compromises
            .iter()
            .map(|(k, t)| format!("{}@{t}", escape(&k.to_string())))
            .collect();
        out.push_str(&format!(" comp={}", comps.join(",")));
    }
    out
}

/// Parses the rendering of [`render_plan`] back into a plan.
///
/// # Errors
///
/// [`WireError`] on any missing, duplicate, or malformed field.
pub fn parse_plan(text: &str) -> Result<FaultPlan, WireError> {
    let mut seed: Option<u64> = None;
    let mut probs: Option<[f64; 5]> = None;
    let mut rounds: Option<u32> = None;
    let mut compromises: Vec<(Key, i64)> = Vec::new();
    for token in text.split_whitespace() {
        let (field, value) = token
            .split_once('=')
            .ok_or_else(|| err(format!("plan token {token:?} has no `=`")))?;
        match field {
            "seed" => {
                seed = Some(value.parse().map_err(|e| err(format!("plan seed: {e}")))?);
            }
            "probs" => {
                let parts: Vec<&str> = value.split(',').collect();
                if parts.len() != 5 {
                    return Err(err(format!(
                        "expected 5 probabilities, got {}",
                        parts.len()
                    )));
                }
                let mut ps = [0.0f64; 5];
                for (slot, part) in ps.iter_mut().zip(&parts) {
                    let bits = u64::from_str_radix(part, 16)
                        .map_err(|e| err(format!("probability bits {part:?}: {e}")))?;
                    *slot = f64::from_bits(bits);
                }
                probs = Some(ps);
            }
            "rounds" => {
                rounds = Some(
                    value
                        .parse()
                        .map_err(|e| err(format!("plan rounds: {e}")))?,
                );
            }
            "comp" => {
                for entry in value.split(',') {
                    let (key, t) = entry
                        .split_once('@')
                        .ok_or_else(|| err(format!("compromise {entry:?} has no `@`")))?;
                    compromises.push((
                        Key::new(unescape(key)?),
                        t.parse()
                            .map_err(|e| err(format!("compromise time: {e}")))?,
                    ));
                }
            }
            other => return Err(err(format!("unknown plan field {other:?}"))),
        }
    }
    let (Some(seed), Some([drop, dup, delay, reorder, replay]), Some(rounds)) =
        (seed, probs, rounds)
    else {
        return Err(err(format!("plan {text:?} is missing required fields")));
    };
    let mut plan = FaultPlan::new(seed)
        .drop(drop)
        .duplicate(dup)
        .delay(delay, rounds)
        .reorder(reorder)
        .replay(replay);
    plan.compromises = compromises;
    Ok(plan)
}

/// Renders a plan list as the `;`-separated form the serve protocol's
/// `SWEEP` verb carries in its `plans=` field.
pub fn render_plan_list<'a>(plans: impl IntoIterator<Item = &'a FaultPlan>) -> String {
    plans
        .into_iter()
        .map(render_plan)
        .collect::<Vec<_>>()
        .join(";")
}

/// Parses a `;`-separated plan list (the `plans=` field of a `SWEEP`
/// request). Empty segments — including a trailing separator — are
/// skipped, so an empty input parses to an empty list; whether that is
/// acceptable is the caller's call.
///
/// # Errors
///
/// The first [`WireError`] from [`parse_plan`] over the segments.
pub fn parse_plan_list(text: &str) -> Result<Vec<FaultPlan>, WireError> {
    text.split(';')
        .map(str::trim)
        .filter(|part| !part.is_empty())
        .map(parse_plan)
        .collect()
}

/// Renders one execution outcome as framed text (every line
/// newline-terminated). Successful outcomes carry the [`ExecReport`]
/// fields and the run in trace format with an explicit line count;
/// failures carry the error's display string.
pub fn render_outcome(outcome: &ExecOutcome) -> String {
    use std::fmt::Write as _;
    match outcome {
        Ok((run, report)) => {
            let trace = render_trace(run);
            let trace_lines: Vec<&str> = trace.lines().collect();
            let mut out = format!(
                "ok retries={} rounds={} faults={} abandoned={} trace={}\n",
                report.retries,
                report.rounds,
                report.faults.len(),
                report.abandoned.len(),
                trace_lines.len()
            );
            for f in &report.faults {
                let _ = writeln!(out, "fault {} {} {}", f.time, f.kind, escape(&f.detail));
            }
            for a in &report.abandoned {
                let _ = writeln!(
                    out,
                    "abandon {} {} {}",
                    escape(&a.principal.to_string()),
                    a.step_index,
                    escape(&a.detail)
                );
            }
            for line in trace_lines {
                let _ = writeln!(out, "{line}");
            }
            out
        }
        Err(e) => format!("err {}\n", escape(&e.to_string())),
    }
}

/// Parses the rendering of [`render_outcome`]. Errors come back as
/// [`ModelError::Reconstituted`], which displays identically to the
/// original error.
///
/// # Errors
///
/// [`WireError`] if the header, counts, fault/abandon records, or the
/// embedded trace fail to parse, or if trailing garbage follows the
/// declared payload.
pub fn parse_outcome(text: &str) -> Result<ExecOutcome, WireError> {
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| err("empty outcome"))?;
    if let Some(message) = header.strip_prefix("err ") {
        if lines.next().is_some() {
            return Err(err("trailing lines after error record"));
        }
        return Ok(Err(ModelError::Reconstituted(unescape(message.trim())?)));
    }
    let rest = header
        .strip_prefix("ok ")
        .ok_or_else(|| err(format!("bad outcome header {header:?}")))?;
    let mut retries: Option<u32> = None;
    let mut rounds: Option<u32> = None;
    let mut faults: Option<usize> = None;
    let mut abandoned: Option<usize> = None;
    let mut trace: Option<usize> = None;
    for token in rest.split_whitespace() {
        let (field, value) = token
            .split_once('=')
            .ok_or_else(|| err(format!("outcome token {token:?} has no `=`")))?;
        let slot = match field {
            "retries" => &mut retries,
            "rounds" => &mut rounds,
            _ => {
                let slot = match field {
                    "faults" => &mut faults,
                    "abandoned" => &mut abandoned,
                    "trace" => &mut trace,
                    other => return Err(err(format!("unknown outcome field {other:?}"))),
                };
                *slot = Some(value.parse().map_err(|e| err(format!("{field}: {e}")))?);
                continue;
            }
        };
        *slot = Some(value.parse().map_err(|e| err(format!("{field}: {e}")))?);
    }
    let (Some(retries), Some(rounds), Some(faults), Some(abandoned), Some(trace)) =
        (retries, rounds, faults, abandoned, trace)
    else {
        return Err(err("outcome header is missing required fields"));
    };

    let mut report = ExecReport {
        retries,
        rounds,
        ..ExecReport::default()
    };
    for _ in 0..faults {
        let line = lines.next().ok_or_else(|| err("truncated fault records"))?;
        let mut parts = line.split_whitespace();
        let (Some("fault"), Some(time), Some(kind), Some(detail), None) = (
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
        ) else {
            return Err(err(format!("bad fault record {line:?}")));
        };
        report.faults.push(FaultEvent {
            time: time.parse().map_err(|e| err(format!("fault time: {e}")))?,
            kind: kind.parse::<FaultKind>().map_err(err)?,
            detail: unescape(detail)?,
        });
    }
    for _ in 0..abandoned {
        let line = lines
            .next()
            .ok_or_else(|| err("truncated abandon records"))?;
        let mut parts = line.split_whitespace();
        let (Some("abandon"), Some(principal), Some(step), Some(detail), None) = (
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
            parts.next(),
        ) else {
            return Err(err(format!("bad abandon record {line:?}")));
        };
        report.abandoned.push(AbandonedStep {
            principal: Principal::new(unescape(principal)?),
            step_index: step
                .parse()
                .map_err(|e| err(format!("abandon step: {e}")))?,
            detail: unescape(detail)?,
        });
    }
    let mut trace_text = String::new();
    for _ in 0..trace {
        let line = lines.next().ok_or_else(|| err("truncated trace"))?;
        trace_text.push_str(line);
        trace_text.push('\n');
    }
    if lines.next().is_some() {
        return Err(err("trailing lines after outcome payload"));
    }
    let (run, _) = parse_trace(&trace_text).map_err(|e| err(format!("embedded trace: {e}")))?;
    Ok(Ok((run, report)))
}

/// A monitor session's durable state: the watched formula texts plus
/// every raw trace line fed so far, in order.
///
/// A monitor is resumed by *replay* — re-feeding the recorded lines
/// through the same [`crate::TraceFeed`] path a live session uses — so
/// the checkpoint stores inputs, not derived state, and a resumed
/// session is byte-identical to one that never went down.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MonitorCheckpoint {
    /// The session id the daemon assigned.
    pub id: u64,
    /// The monitor's name (the protocol name in its summary).
    pub name: String,
    /// The formula texts the session watches, as given to `MONITOR`.
    pub formulas: Vec<String>,
    /// Every raw line fed to the session so far, in ingestion order.
    pub lines: Vec<String>,
}

/// FNV-1a over `data` (the checksum the outcome store uses; duplicated
/// here because the store's copy is private to another crate).
pub(crate) fn fnv64(data: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Renders a checkpoint in the outcome-store frame style: a versioned
/// header, counted percent-escaped payload lines, and an FNV-1a checksum
/// over the payload so a truncated or bit-flipped file is rejected, not
/// half-replayed.
pub fn render_checkpoint(cp: &MonitorCheckpoint) -> String {
    let mut body = String::new();
    for f in &cp.formulas {
        body.push_str(&escape(f));
        body.push('\n');
    }
    for l in &cp.lines {
        body.push_str(&escape(l));
        body.push('\n');
    }
    format!(
        "atl-monitor v1\nid {} name {}\nformulas {} lines {} sum {:016x}\n{body}",
        cp.id,
        escape(&cp.name),
        cp.formulas.len(),
        cp.lines.len(),
        fnv64(body.as_bytes())
    )
}

/// Reverses [`render_checkpoint`].
///
/// # Errors
///
/// [`WireError`] on a bad header, count/checksum mismatch, malformed
/// escape, or trailing garbage.
pub fn parse_checkpoint(text: &str) -> Result<MonitorCheckpoint, WireError> {
    let mut lines = text.lines();
    match lines.next() {
        Some("atl-monitor v1") => {}
        other => return Err(err(format!("bad checkpoint header {other:?}"))),
    }
    let id_line = lines.next().ok_or_else(|| err("missing id line"))?;
    let (id, name) = id_line
        .strip_prefix("id ")
        .and_then(|rest| rest.split_once(" name "))
        .ok_or_else(|| err(format!("bad id line {id_line:?}")))?;
    let id: u64 = id.parse().map_err(|e| err(format!("checkpoint id: {e}")))?;
    let name = unescape(name)?;
    let frame = lines.next().ok_or_else(|| err("missing frame line"))?;
    let mut parts = frame.split_whitespace();
    let (Some("formulas"), Some(nf), Some("lines"), Some(nl), Some("sum"), Some(sum), None) = (
        parts.next(),
        parts.next(),
        parts.next(),
        parts.next(),
        parts.next(),
        parts.next(),
        parts.next(),
    ) else {
        return Err(err(format!("bad frame line {frame:?}")));
    };
    let nf: usize = nf.parse().map_err(|e| err(format!("formula count: {e}")))?;
    let nl: usize = nl.parse().map_err(|e| err(format!("line count: {e}")))?;
    let sum = u64::from_str_radix(sum, 16).map_err(|e| err(format!("checksum: {e}")))?;

    let mut body = String::new();
    let mut tokens = Vec::with_capacity(nf + nl);
    for _ in 0..nf + nl {
        let line = lines.next().ok_or_else(|| err("truncated payload"))?;
        body.push_str(line);
        body.push('\n');
        tokens.push(line);
    }
    if lines.next().is_some() {
        return Err(err("trailing lines after checkpoint payload"));
    }
    if fnv64(body.as_bytes()) != sum {
        return Err(err("checkpoint checksum mismatch"));
    }
    let formulas = tokens[..nf]
        .iter()
        .map(|t| unescape(t))
        .collect::<Result<_, _>>()?;
    let lines = tokens[nf..]
        .iter()
        .map(|t| unescape(t))
        .collect::<Result<_, _>>()?;
    Ok(MonitorCheckpoint {
        id,
        name,
        formulas,
        lines,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{execute_with_faults, ExecOptions};
    use crate::protocol::{ExpectPolicy, Protocol, Role};
    use atl_lang::{Message, Nonce};

    fn lossy() -> Protocol {
        Protocol::new("lossy")
            .role(
                Role::new("A", [])
                    .send(Message::nonce(Nonce::new("ping")), "B")
                    .expect_with(
                        Message::nonce(Nonce::new("pong")),
                        ExpectPolicy::resend_after(2, 1),
                    ),
            )
            .role(
                Role::new("B", [])
                    .expect_with(
                        Message::nonce(Nonce::new("ping")),
                        ExpectPolicy::skip_after(3),
                    )
                    .send(Message::nonce(Nonce::new("pong")), "A"),
            )
    }

    #[test]
    fn escape_round_trips_hostile_text() {
        for text in [
            "",
            "plain",
            "with space",
            "semi;colon,comma@at%percent",
            "new\nline\ttab",
            "unicode: Kαβ→",
        ] {
            let escaped = escape(text);
            assert!(
                escaped
                    .bytes()
                    .all(|b| b.is_ascii_graphic() && !matches!(b, b';' | b',' | b'@')),
                "{escaped:?} leaks separators"
            );
            assert_eq!(unescape(&escaped).expect("unescape"), text);
        }
        assert!(unescape("%zz").is_err());
        assert!(unescape("%1").is_err());
        assert!(unescape("a b").is_err());
    }

    #[test]
    fn plan_round_trip_is_bit_exact() {
        // 0.1 has no finite decimal representation: only a bit-pattern
        // rendering survives exactly.
        let mut plan = FaultPlan::new(u64::MAX)
            .drop(0.1)
            .duplicate(0.30000000000000004)
            .delay(f64::MIN_POSITIVE, 9)
            .reorder(1.0)
            .replay(0.625);
        plan.compromises = vec![(Key::new("Kab"), -3), (Key::new("K with space"), 2)];
        let rendered = render_plan(&plan);
        assert_eq!(rendered.lines().count(), 1, "plans are single-line");
        let parsed = parse_plan(&rendered).expect("parse");
        assert_eq!(parsed, plan);
        assert_eq!(parsed.drop_p.to_bits(), plan.drop_p.to_bits());
        // Inert plan: no comp field at all.
        let inert = FaultPlan::new(0);
        assert_eq!(parse_plan(&render_plan(&inert)).expect("parse"), inert);
    }

    #[test]
    fn plan_list_round_trips_and_skips_empty_segments() {
        let plans = vec![
            FaultPlan::new(0),
            FaultPlan::new(7).drop(0.5),
            FaultPlan::new(1).replay(1.0),
        ];
        let rendered = render_plan_list(&plans);
        assert_eq!(rendered.matches(';').count(), 2);
        assert_eq!(parse_plan_list(&rendered).expect("parse"), plans);
        // Trailing and doubled separators are harmless; pure emptiness
        // parses to the empty list.
        let sloppy = format!("{rendered};; ;");
        assert_eq!(parse_plan_list(&sloppy).expect("parse"), plans);
        assert_eq!(parse_plan_list("").expect("parse"), Vec::<FaultPlan>::new());
        // A bad segment fails the whole list.
        assert!(parse_plan_list(&format!("{rendered};garbage")).is_err());
    }

    #[test]
    fn plan_parse_rejects_malformed_input() {
        for bad in [
            "",
            "seed=1",
            "seed=x probs=0,0,0,0,0 rounds=2",
            "seed=1 probs=0,0,0,0 rounds=2",
            "seed=1 probs=0,0,0,0,zz rounds=2",
            "seed=1 probs=0,0,0,0,0 rounds=2 comp=Kab",
            "seed=1 probs=0,0,0,0,0 rounds=2 frob=1",
        ] {
            assert!(parse_plan(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn ok_outcome_round_trips_to_equality() {
        let opts = ExecOptions::default();
        // A plan with drops, retries, and abandonment exercises every
        // record type.
        let plan = FaultPlan::new(3).drop(0.6).duplicate(0.5).replay(0.5);
        let outcome: ExecOutcome = execute_with_faults(&lossy(), &opts, &plan);
        let rendered = render_outcome(&outcome);
        let parsed = parse_outcome(&rendered).expect("parse");
        assert_eq!(parsed, outcome);
        // Clean outcome too.
        let clean: ExecOutcome = execute_with_faults(&lossy(), &opts, &FaultPlan::new(0));
        assert_eq!(
            parse_outcome(&render_outcome(&clean)).expect("parse"),
            clean
        );
    }

    #[test]
    fn err_outcome_round_trips_display() {
        let outcome: ExecOutcome = Err(ModelError::MalformedRun("it broke\nbadly".into()));
        let rendered = render_outcome(&outcome);
        assert_eq!(rendered.lines().count(), 1);
        let parsed = parse_outcome(&rendered).expect("parse");
        let e = parsed.expect_err("error outcome");
        assert_eq!(e.to_string(), "malformed run: it broke\nbadly");
    }

    #[test]
    fn outcome_parse_rejects_corruption() {
        let opts = ExecOptions::default();
        let outcome: ExecOutcome =
            execute_with_faults(&lossy(), &opts, &FaultPlan::new(0).drop(1.0));
        let rendered = render_outcome(&outcome);
        // Truncations at every line boundary fail cleanly.
        let lines: Vec<&str> = rendered.lines().collect();
        for cut in 0..lines.len() {
            let truncated = lines[..cut].join("\n");
            assert!(
                parse_outcome(&truncated).is_err(),
                "truncation to {cut} lines must not parse"
            );
        }
        // Trailing garbage is rejected, not ignored.
        let padded = format!("{rendered}garbage\n");
        assert!(parse_outcome(&padded).is_err());
        // Garbage headers.
        for bad in [
            "",
            "huh",
            "ok retries=1",
            "ok retries=x rounds=0 faults=0 abandoned=0 trace=0",
        ] {
            assert!(parse_outcome(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn checkpoint_round_trips_exactly() {
        let cp = MonitorCheckpoint {
            id: 42,
            name: "ns resumed".into(),
            formulas: vec!["Env has Kab".into(), "B believes (A said X)".into()],
            lines: vec![
                "run start -2".into(),
                "principal A keys Kab".into(),
                "".into(),
                "# a comment with % and ; in it".into(),
                "send A -> B : {X}Kab".into(),
            ],
        };
        let rendered = render_checkpoint(&cp);
        assert_eq!(parse_checkpoint(&rendered), Ok(cp.clone()));
        // An empty session round-trips too.
        let empty = MonitorCheckpoint::default();
        assert_eq!(parse_checkpoint(&render_checkpoint(&empty)), Ok(empty));
    }

    #[test]
    fn checkpoint_parse_rejects_corruption() {
        let cp = MonitorCheckpoint {
            id: 7,
            name: "t".into(),
            formulas: vec!["Env has K".into()],
            lines: vec!["run start 0".into(), "principal A keys K".into()],
        };
        let rendered = render_checkpoint(&cp);
        let lines: Vec<&str> = rendered.lines().collect();
        for cut in 0..lines.len() {
            let truncated = lines[..cut].join("\n");
            assert!(
                parse_checkpoint(&truncated).is_err(),
                "truncation to {cut} lines must not parse"
            );
        }
        assert!(parse_checkpoint(&format!("{rendered}garbage\n")).is_err());
        // A flipped payload byte trips the checksum.
        let flipped = rendered.replace("run%20start%200", "run%20start%201");
        assert_ne!(flipped, rendered);
        assert!(parse_checkpoint(&flipped).is_err());
        for bad in ["", "atl-monitor v2", "atl-monitor v1\nid x name t"] {
            assert!(parse_checkpoint(bad).is_err(), "{bad:?} must not parse");
        }
    }
}
