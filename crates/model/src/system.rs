//! Systems: sets of runs, with an interpretation of primitive propositions
//! (Sections 5–6).
//!
//! A *system* `R` is a set of runs, typically the executions of a protocol.
//! The semantics of Section 6 is given relative to a system and an
//! interpretation `π` mapping each primitive proposition to the set of
//! points at which it is true.

use crate::run::Run;
use atl_lang::{Principal, Prop};
use std::collections::{BTreeMap, BTreeSet};

/// A point `(r, k)`: a run (by index into its [`System`]) and a time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Point {
    /// Index of the run in its system.
    pub run: usize,
    /// The time `k`.
    pub time: i64,
}

impl Point {
    /// Creates a point.
    pub fn new(run: usize, time: i64) -> Self {
        Point { run, time }
    }
}

/// The interpretation `π` of primitive propositions.
///
/// Two mechanisms are provided, and may be combined:
///
/// - **explicit points**: a proposition is declared true at specific
///   points;
/// - **data propositions**: when enabled, a proposition named
///   `P.key=value` is true at `(r, k)` iff principal `P`'s local data in
///   `r(k)` maps `key` to `value`. The coin-toss construction of Section 7
///   uses propositions like `P2.coin=H`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Interpretation {
    explicit: BTreeMap<Prop, BTreeSet<Point>>,
    data_props: bool,
}

impl Interpretation {
    /// An interpretation under which every primitive proposition is false.
    pub fn empty() -> Self {
        Interpretation::default()
    }

    /// Enables `P.key=value` data propositions.
    pub fn with_data_props(mut self) -> Self {
        self.data_props = true;
        self
    }

    /// Declares `prop` true at `point`.
    pub fn set_true_at(&mut self, prop: Prop, point: Point) -> &mut Self {
        self.explicit.entry(prop).or_default().insert(point);
        self
    }

    /// Declares `prop` true at every point of run `run_idx`.
    pub fn set_true_in_run(&mut self, prop: Prop, run_idx: usize, run: &Run) -> &mut Self {
        for k in run.times() {
            self.set_true_at(prop.clone(), Point::new(run_idx, k));
        }
        self
    }

    /// Evaluates `prop` at a point of `run`.
    pub fn holds(&self, prop: &Prop, run: &Run, point: Point) -> bool {
        if self
            .explicit
            .get(prop)
            .is_some_and(|points| points.contains(&point))
        {
            return true;
        }
        if self.data_props {
            if let Some((principal, key, value)) = parse_data_prop(prop) {
                if let Some(state) = run.state(point.time) {
                    if let Some(local) = state.locals.get(&principal) {
                        return local.data.get(key) == Some(&value.to_string());
                    }
                }
            }
        }
        false
    }
}

/// Parses a data proposition of the form `P.key=value`.
fn parse_data_prop(prop: &Prop) -> Option<(Principal, &str, &str)> {
    let s = prop.as_str();
    let (principal, rest) = s.split_once('.')?;
    let (key, value) = rest.split_once('=')?;
    Some((Principal::new(principal), key, value))
}

/// A system: a finite set of runs with an interpretation of primitive
/// propositions.
#[derive(Clone, Debug, Default)]
pub struct System {
    runs: Vec<Run>,
    interp: Interpretation,
}

impl System {
    /// Creates a system from runs, with the all-false interpretation.
    pub fn new(runs: impl IntoIterator<Item = Run>) -> Self {
        System {
            runs: runs.into_iter().collect(),
            interp: Interpretation::empty(),
        }
    }

    /// Replaces the interpretation.
    pub fn with_interpretation(mut self, interp: Interpretation) -> Self {
        self.interp = interp;
        self
    }

    /// Adds a run, returning its index.
    pub fn push_run(&mut self, run: Run) -> usize {
        self.runs.push(run);
        self.runs.len() - 1
    }

    /// The runs of the system.
    pub fn runs(&self) -> &[Run] {
        &self.runs
    }

    /// The run at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn run(&self, idx: usize) -> &Run {
        &self.runs[idx]
    }

    /// Extends the run at `idx` in place by one event (see
    /// [`Run::extend_unchecked`]) — the streaming monitor grows a live
    /// run prefix this way instead of rebuilding the system per event.
    /// Explicit interpretation entries are point-addressed and appending
    /// only adds points, so `π` stays valid as-is.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn extend_run(
        &mut self,
        idx: usize,
        event: crate::action::Event,
        post_state: crate::state::GlobalState,
    ) {
        self.runs[idx].extend_unchecked(event, post_state);
    }

    /// The interpretation `π`.
    pub fn interpretation(&self) -> &Interpretation {
        &self.interp
    }

    /// Mutable access to the interpretation.
    pub fn interpretation_mut(&mut self) -> &mut Interpretation {
        &mut self.interp
    }

    /// The number of runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True if the system has no runs.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Every point `(r, k)` of the system, run-major.
    pub fn points(&self) -> impl Iterator<Item = Point> + '_ {
        self.runs
            .iter()
            .enumerate()
            .flat_map(|(i, r)| r.times().map(move |k| Point::new(i, k)))
    }

    /// Every point at time 0 (the initial state of each run's epoch).
    pub fn initial_points(&self) -> impl Iterator<Item = Point> + '_ {
        (0..self.runs.len()).map(|i| Point::new(i, 0))
    }

    /// The union of all system principals across runs.
    pub fn principals(&self) -> BTreeSet<Principal> {
        self.runs
            .iter()
            .flat_map(|r| r.principals().cloned())
            .collect()
    }
}

impl FromIterator<Run> for System {
    fn from_iter<I: IntoIterator<Item = Run>>(iter: I) -> Self {
        System::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::RunBuilder;
    use atl_lang::Key;

    fn trivial_run() -> Run {
        let mut b = RunBuilder::new(-1);
        b.principal("A", [Key::new("K")]);
        b.new_key("A", "K2");
        b.new_key("A", "K3");
        b.build().unwrap()
    }

    #[test]
    fn points_cover_all_runs_and_times() {
        let sys = System::new([trivial_run(), trivial_run()]);
        let pts: Vec<_> = sys.points().collect();
        // Each run covers times -1..=1: 3 points per run.
        assert_eq!(pts.len(), 6);
        assert!(pts.contains(&Point::new(1, 0)));
        assert_eq!(sys.initial_points().count(), 2);
    }

    #[test]
    fn explicit_interpretation() {
        let run = trivial_run();
        let mut interp = Interpretation::empty();
        interp.set_true_at(Prop::new("p"), Point::new(0, 0));
        let sys = System::new([run]).with_interpretation(interp);
        assert!(sys
            .interpretation()
            .holds(&Prop::new("p"), sys.run(0), Point::new(0, 0)));
        assert!(!sys
            .interpretation()
            .holds(&Prop::new("p"), sys.run(0), Point::new(0, 1)));
    }

    #[test]
    fn data_props_read_local_data() {
        let mut b = RunBuilder::new(0);
        b.principal("P2", []);
        b.datum("P2", "coin", "H");
        b.new_key("P2", "K");
        let run = b.build().unwrap();
        let interp = Interpretation::empty().with_data_props();
        assert!(interp.holds(&Prop::new("P2.coin=H"), &run, Point::new(0, 0)));
        assert!(!interp.holds(&Prop::new("P2.coin=T"), &run, Point::new(0, 0)));
        assert!(!interp.holds(&Prop::new("P3.coin=H"), &run, Point::new(0, 0)));
    }

    #[test]
    fn principals_union() {
        let sys = System::new([trivial_run()]);
        assert!(sys.principals().contains(&Principal::new("A")));
    }
}
