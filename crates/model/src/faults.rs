//! Deterministic fault injection for protocol execution.
//!
//! The paper's environment (Section 5) is an adversary: it buffers every
//! message and may deliver, withhold, duplicate, or replay traffic at
//! will. A [`FaultPlan`] makes that adversary concrete and reproducible:
//! seeded by a `u64`, it decides per send whether the message is dropped,
//! duplicated, delayed, reordered, or answered with a replay, and it can
//! hand the environment a compromised key at a chosen time. Every fault is
//! realized through the checked [`RunBuilder`](crate::run::RunBuilder)
//! operations, so a faulted run still satisfies restrictions 1–5 and
//! passes [`validate_run`](crate::validate::validate_run):
//!
//! - **drop** — the buffered copy is never delivered (no receive occurs);
//! - **duplicate** — the sender retransmits, buffering a second copy;
//! - **delay / reorder** — delivery of the copy is withheld for a number
//!   of scheduler rounds, letting later traffic overtake it;
//! - **replay** — the environment re-sends a message (or visible
//!   submessage) it has seen, which restriction 3 permits;
//! - **compromise** — the environment performs `newkey` for the target
//!   key at the scheduled time (key sets only grow, restriction 1).
//!
//! The executor returns an [`ExecReport`] describing exactly which faults
//! were applied and how the roles degraded (retransmissions performed,
//! expect steps abandoned), so analyses can correlate belief loss with
//! injected failures.

use atl_lang::{Key, Principal};
use std::error::Error;
use std::fmt;

/// A deterministic, seedable plan of faults to inject during execution.
///
/// Probabilities are per qualifying send event and must lie in `[0, 1]`.
/// The same plan applied to the same protocol and options always yields
/// the same run.
///
/// # Examples
///
/// ```
/// use atl_model::FaultPlan;
/// let plan = FaultPlan::new(7)
///     .drop(0.25)
///     .duplicate(0.1)
///     .compromise("Kab", 2);
/// assert!(plan.validate().is_ok());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault decision stream.
    pub seed: u64,
    /// Probability that a sent message is never delivered.
    pub drop_p: f64,
    /// Probability that a sent message is retransmitted by its sender.
    pub duplicate_p: f64,
    /// Probability that delivery of a sent message is withheld for
    /// [`delay_rounds`](Self::delay_rounds) scheduler rounds.
    pub delay_p: f64,
    /// How long a delayed message is withheld, in scheduler rounds.
    pub delay_rounds: u32,
    /// Probability that a sent message is withheld just long enough for
    /// later traffic to overtake it.
    pub reorder_p: f64,
    /// Probability that a send is followed by the environment replaying
    /// previously seen material at the same recipient. Any positive value
    /// makes the environment tap the channel (it receives a copy of every
    /// send) so it has material to replay.
    pub replay_p: f64,
    /// Keys the environment learns (`newkey`) at the paired run time.
    pub compromises: Vec<(Key, i64)>,
}

impl FaultPlan {
    /// A plan that injects nothing, with the given decision seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            drop_p: 0.0,
            duplicate_p: 0.0,
            delay_p: 0.0,
            delay_rounds: 2,
            reorder_p: 0.0,
            replay_p: 0.0,
            compromises: Vec::new(),
        }
    }

    /// Sets the drop probability.
    pub fn drop(mut self, p: f64) -> Self {
        self.drop_p = p;
        self
    }

    /// Sets the duplication probability.
    pub fn duplicate(mut self, p: f64) -> Self {
        self.duplicate_p = p;
        self
    }

    /// Sets the delay probability and the withholding duration in
    /// scheduler rounds.
    pub fn delay(mut self, p: f64, rounds: u32) -> Self {
        self.delay_p = p;
        self.delay_rounds = rounds;
        self
    }

    /// Sets the reorder probability.
    pub fn reorder(mut self, p: f64) -> Self {
        self.reorder_p = p;
        self
    }

    /// Sets the replay probability (implies channel tapping when positive).
    pub fn replay(mut self, p: f64) -> Self {
        self.replay_p = p;
        self
    }

    /// Schedules the environment to learn `key` at run time `time`.
    pub fn compromise(mut self, key: impl Into<Key>, time: i64) -> Self {
        self.compromises.push((key.into(), time));
        self
    }

    /// True if the plan can inject at least one fault.
    pub fn is_active(&self) -> bool {
        self.drop_p > 0.0
            || self.duplicate_p > 0.0
            || self.delay_p > 0.0
            || self.reorder_p > 0.0
            || self.replay_p > 0.0
            || !self.compromises.is_empty()
    }

    /// Checks that probabilities are well-formed.
    ///
    /// # Errors
    ///
    /// [`FaultError::BadProbability`] if any probability is outside
    /// `[0, 1]` or not a number; [`FaultError::BadDelay`] if delays are
    /// enabled with a zero-round duration.
    pub fn validate(&self) -> Result<(), FaultError> {
        let fields = [
            ("drop", self.drop_p),
            ("duplicate", self.duplicate_p),
            ("delay", self.delay_p),
            ("reorder", self.reorder_p),
            ("replay", self.replay_p),
        ];
        for (field, value) in fields {
            if !(0.0..=1.0).contains(&value) {
                return Err(FaultError::BadProbability {
                    field,
                    value: format!("{value}"),
                });
            }
        }
        if self.delay_p > 0.0 && self.delay_rounds == 0 {
            return Err(FaultError::BadDelay { rounds: 0 });
        }
        Ok(())
    }
}

impl fmt::Display for FaultPlan {
    /// A compact, deterministic rendering: the seed plus every active
    /// knob (inert probabilities are omitted).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        for (name, p) in [
            ("drop", self.drop_p),
            ("dup", self.duplicate_p),
            ("delay", self.delay_p),
            ("reorder", self.reorder_p),
            ("replay", self.replay_p),
        ] {
            if p > 0.0 {
                write!(f, " {name}={p}")?;
                if name == "delay" {
                    write!(f, "x{}", self.delay_rounds)?;
                }
            }
        }
        for (key, t) in &self.compromises {
            write!(f, " compromise={key}@{t}")?;
        }
        Ok(())
    }
}

/// An ill-formed [`FaultPlan`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultError {
    /// A probability field is outside `[0, 1]` (rendered as text so the
    /// error stays `Eq`-comparable).
    BadProbability {
        /// Which probability field is bad.
        field: &'static str,
        /// The offending value, rendered.
        value: String,
    },
    /// Delays are enabled but the withholding duration is zero rounds.
    BadDelay {
        /// The offending duration.
        rounds: u32,
    },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::BadProbability { field, value } => {
                write!(f, "{field} probability {value} is not in [0, 1]")
            }
            FaultError::BadDelay { rounds } => {
                write!(f, "delay of {rounds} rounds cannot be applied")
            }
        }
    }
}

impl Error for FaultError {}

/// The kind of a fault the executor applied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FaultKind {
    /// A message was suppressed and never delivered.
    Drop,
    /// A message was retransmitted by its sender.
    Duplicate,
    /// Delivery of a message was withheld for a fixed number of rounds.
    Delay,
    /// Delivery of a message was withheld so later traffic overtakes it.
    Reorder,
    /// The environment re-sent previously seen material.
    Replay,
    /// The environment learned a key.
    Compromise,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::Drop => "drop",
            FaultKind::Duplicate => "duplicate",
            FaultKind::Delay => "delay",
            FaultKind::Reorder => "reorder",
            FaultKind::Replay => "replay",
            FaultKind::Compromise => "compromise",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for FaultKind {
    type Err = String;

    /// Parses the exact rendering [`FaultKind`]'s `Display` produces —
    /// the inverse the wire/store codec needs.
    fn from_str(s: &str) -> Result<Self, String> {
        Ok(match s {
            "drop" => FaultKind::Drop,
            "duplicate" => FaultKind::Duplicate,
            "delay" => FaultKind::Delay,
            "reorder" => FaultKind::Reorder,
            "replay" => FaultKind::Replay,
            "compromise" => FaultKind::Compromise,
            other => return Err(format!("unknown fault kind {other:?}")),
        })
    }
}

/// One fault the executor applied, located in run time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// The run time at which the fault took effect.
    pub time: i64,
    /// What kind of fault it was.
    pub kind: FaultKind,
    /// Human-readable details (message, recipient, key…).
    pub detail: String,
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={} {}: {}", self.time, self.kind, self.detail)
    }
}

/// An expect step a role gave up on instead of stalling the run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AbandonedStep {
    /// The degrading role.
    pub principal: Principal,
    /// The index of the abandoned step in the role's script.
    pub step_index: usize,
    /// What the role was waiting for.
    pub detail: String,
}

impl fmt::Display for AbandonedStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} abandoned step {} ({})",
            self.principal, self.step_index, self.detail
        )
    }
}

/// What happened while executing a (possibly faulted) run: the faults
/// applied, the retransmissions performed by degrading roles, and the
/// expect steps abandoned on timeout.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// Faults applied, in order of application.
    pub faults: Vec<FaultEvent>,
    /// Retransmissions performed by roles under a resend policy.
    pub retries: u32,
    /// Expect steps abandoned under a skip (or exhausted-resend) policy.
    pub abandoned: Vec<AbandonedStep>,
    /// Scheduler rounds the executor ran.
    pub rounds: u32,
}

impl ExecReport {
    /// True if the run deviated from the clean interleaving in any way.
    pub fn degraded(&self) -> bool {
        !self.faults.is_empty() || self.retries > 0 || !self.abandoned.is_empty()
    }

    /// The faults of one kind, in application order.
    pub fn faults_of(&self, kind: FaultKind) -> impl Iterator<Item = &FaultEvent> {
        self.faults.iter().filter(move |f| f.kind == kind)
    }
}

impl fmt::Display for ExecReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} fault(s), {} retransmission(s), {} step(s) abandoned, {} round(s)",
            self.faults.len(),
            self.retries,
            self.abandoned.len(),
            self.rounds
        )?;
        for fault in &self.faults {
            writeln!(f, "  fault    {fault}")?;
        }
        for a in &self.abandoned {
            writeln!(f, "  degraded {a}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_accumulates() {
        let plan = FaultPlan::new(9)
            .drop(0.5)
            .duplicate(0.25)
            .delay(0.1, 3)
            .reorder(0.2)
            .replay(0.3)
            .compromise("Kab", 2)
            .compromise("Kas", -1);
        assert_eq!(plan.seed, 9);
        assert_eq!(plan.delay_rounds, 3);
        assert_eq!(plan.compromises.len(), 2);
        assert!(plan.is_active());
        assert!(plan.validate().is_ok());
        assert!(!FaultPlan::new(0).is_active());
    }

    #[test]
    fn validate_rejects_bad_probabilities() {
        let e = FaultPlan::new(0).drop(1.5).validate().unwrap_err();
        assert!(matches!(
            e,
            FaultError::BadProbability { field: "drop", .. }
        ));
        assert!(e.to_string().contains("1.5"));
        let e = FaultPlan::new(0).replay(-0.1).validate().unwrap_err();
        assert!(matches!(
            e,
            FaultError::BadProbability {
                field: "replay",
                ..
            }
        ));
        let e = FaultPlan::new(0).delay(0.5, 0).validate().unwrap_err();
        assert!(matches!(e, FaultError::BadDelay { rounds: 0 }));
        let e = FaultPlan::new(0)
            .duplicate(f64::NAN)
            .validate()
            .unwrap_err();
        assert!(matches!(e, FaultError::BadProbability { .. }));
    }

    #[test]
    fn validate_accepts_exact_boundary_probabilities() {
        // 0.0 and 1.0 are meaningful grid points ("never" / "always"),
        // not out-of-range values: boundary sweeps must validate.
        let plan = FaultPlan::new(0)
            .drop(0.0)
            .duplicate(1.0)
            .delay(1.0, 1)
            .reorder(0.0)
            .replay(1.0);
        assert!(plan.validate().is_ok());
        // Negative zero counts as zero.
        assert!(FaultPlan::new(0).drop(-0.0).validate().is_ok());
        // A zero-round delay is only rejected when delays can fire;
        // an inert delay axis may carry any duration.
        assert!(FaultPlan::new(0).delay(0.0, 0).validate().is_ok());
        let e = FaultPlan::new(0).delay(1.0, 0).validate().unwrap_err();
        assert!(matches!(e, FaultError::BadDelay { rounds: 0 }));
        assert!(e.to_string().contains("0 rounds"));
    }

    #[test]
    fn plan_display_lists_active_knobs_only() {
        let plan = FaultPlan::new(7)
            .drop(0.5)
            .delay(0.25, 3)
            .compromise("Kab", 2);
        let shown = plan.to_string();
        assert_eq!(shown, "seed=7 drop=0.5 delay=0.25x3 compromise=Kab@2");
        assert_eq!(FaultPlan::new(3).to_string(), "seed=3");
    }

    #[test]
    fn report_degradation_and_filtering() {
        let mut report = ExecReport::default();
        assert!(!report.degraded());
        report.faults.push(FaultEvent {
            time: 0,
            kind: FaultKind::Drop,
            detail: "X for B".into(),
        });
        report.faults.push(FaultEvent {
            time: 1,
            kind: FaultKind::Compromise,
            detail: "Kab".into(),
        });
        assert!(report.degraded());
        assert_eq!(report.faults_of(FaultKind::Drop).count(), 1);
        assert_eq!(report.faults_of(FaultKind::Replay).count(), 0);
        let shown = report.to_string();
        assert!(shown.contains("2 fault(s)"));
        assert!(shown.contains("compromise"));
    }
}
