//! Executing protocols into runs, with optional fault injection.
//!
//! The executor interleaves the role scripts of a [`Protocol`] into a
//! well-formed [`Run`]: at each scheduler round it picks an *enabled* role
//! (one whose next script step can fire) and performs that step through
//! the checked [`RunBuilder`]. Different schedules yield different runs of
//! the same protocol; [`execute_schedules`] collects several into a
//! [`System`].
//!
//! [`execute_with_faults`] additionally threads a [`FaultPlan`] through
//! the rounds: sends may be dropped, duplicated, delayed, reordered, or
//! answered with environment replays, and keys may be compromised at
//! scheduled times. Roles whose [`ExpectPolicy`] allows it degrade (skip
//! the step, or retransmit and retry) instead of stalling. Every fault is
//! realized through the checked builder, so faulted runs still satisfy
//! the Section 5 restrictions; the accompanying [`ExecReport`] records
//! exactly what was injected and how the roles coped.

use crate::error::ModelError;
use crate::faults::{AbandonedStep, ExecReport, FaultEvent, FaultKind, FaultPlan};
use crate::parallel::Pool;
use crate::protocol::{ExpectPolicy, MsgPattern, OnTimeout, Protocol, RoleStep};
use crate::run::{Run, RunBuilder};
use crate::sweep::{sweep_plans_on, ExecutionCache, SweepGrid, SweepOutcome};
use crate::system::System;
use atl_lang::{seen_submsgs_of_set, Message, Principal};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Options controlling execution.
#[derive(Clone, Debug, Default)]
pub struct ExecOptions {
    /// Time assigned to the run's first state (≤ 0). A negative start time
    /// places the protocol's prologue in the past epoch.
    pub start_time: i64,
    /// If true, every send also posts a copy to the environment principal,
    /// modeling a public channel the attacker taps.
    pub public_channel: bool,
    /// Fixed schedule: at step `i`, try to fire role `schedule[i % len]`.
    /// Empty means round-robin over roles.
    pub schedule: Vec<usize>,
}

/// Executes `protocol` under `options`, producing one run.
///
/// # Errors
///
/// [`ModelError::Stalled`] if no role can make progress before all scripts
/// finish (e.g. an `Expect` for a message never sent);
/// [`ModelError::SendViolation`] if a script violates the Section 5
/// restrictions.
pub fn execute(protocol: &Protocol, options: &ExecOptions) -> Result<Run, ModelError> {
    Driver::new(protocol, options, None)?
        .run()
        .map(|(run, _)| run)
}

/// Like [`execute`], but also returns the [`ExecReport`] describing how
/// the roles degraded (useful even without faults, when expect policies
/// allow skipping or retransmission).
///
/// # Errors
///
/// As for [`execute`].
pub fn execute_with_report(
    protocol: &Protocol,
    options: &ExecOptions,
) -> Result<(Run, ExecReport), ModelError> {
    Driver::new(protocol, options, None)?.run()
}

/// Executes `protocol` while injecting the faults of `plan`, returning
/// the (still well-formed) run and a report of the faults applied.
///
/// # Errors
///
/// [`ModelError::Fault`] if the plan is ill-formed; otherwise as for
/// [`execute`]. Note that under aggressive plans a protocol whose expect
/// steps have no degradation policy may legitimately return
/// [`ModelError::Stalled`].
pub fn execute_with_faults(
    protocol: &Protocol,
    options: &ExecOptions,
    plan: &FaultPlan,
) -> Result<(Run, ExecReport), ModelError> {
    Driver::new(protocol, options, Some(plan))?.run()
}

/// A buffered message copy the environment is withholding from its
/// recipient: dropped copies forever, delayed/reordered ones until a
/// scheduler round.
#[derive(Clone, Debug)]
struct Withheld {
    recipient: Principal,
    message: Message,
    /// `None` = never delivered (drop); `Some(r)` = withheld until round `r`.
    release_round: Option<u32>,
}

impl Withheld {
    fn active(&self, round: u32) -> bool {
        self.release_round.is_none_or(|r| r > round)
    }
}

/// Internal executor state shared by the clean and faulted paths.
struct Driver<'a> {
    protocol: &'a Protocol,
    options: &'a ExecOptions,
    plan: Option<&'a FaultPlan>,
    rng: Option<StdRng>,
    builder: RunBuilder,
    cursors: Vec<usize>,
    /// Fruitless scheduler rounds accumulated per role at its current
    /// expect step.
    waits: Vec<u32>,
    /// Retransmissions already performed per role at its current expect
    /// step.
    resends: Vec<u32>,
    withheld: Vec<Withheld>,
    pending_compromises: Vec<(atl_lang::Key, i64)>,
    report: ExecReport,
    round: u32,
    env: Principal,
}

impl<'a> Driver<'a> {
    fn new(
        protocol: &'a Protocol,
        options: &'a ExecOptions,
        plan: Option<&'a FaultPlan>,
    ) -> Result<Self, ModelError> {
        if let Some(p) = plan {
            p.validate()?;
        }
        let mut builder = RunBuilder::new(options.start_time);
        for role in protocol.roles() {
            builder.principal(role.principal.clone(), role.initial_keys.iter().cloned());
        }
        let n = protocol.roles().len();
        Ok(Driver {
            protocol,
            options,
            plan,
            rng: plan.map(|p| StdRng::seed_from_u64(p.seed)),
            builder,
            cursors: vec![0; n],
            waits: vec![0; n],
            resends: vec![0; n],
            withheld: Vec::new(),
            pending_compromises: plan.map(|p| p.compromises.clone()).unwrap_or_default(),
            report: ExecReport::default(),
            round: 0,
            env: Principal::environment(),
        })
    }

    /// A generous bound on scheduler rounds, guaranteeing termination even
    /// under adversarial plans: enough for every step, every finite
    /// patience window with all its retries, every withheld delivery, and
    /// some slack for compromise idling.
    fn round_cap(&self) -> u32 {
        let mut cap: u64 = 64 + 16 * self.protocol.total_steps() as u64;
        for role in self.protocol.roles() {
            for step in &role.steps {
                if let RoleStep::Expect { policy, .. } = step {
                    if let Some(patience) = policy.patience {
                        let retries = match policy.on_timeout {
                            OnTimeout::Resend { max_retries } => max_retries,
                            _ => 0,
                        };
                        cap += (u64::from(patience) + 1)
                            .saturating_mul(u64::from(retries) + 2)
                            .min(1 << 14);
                    }
                }
            }
        }
        if let Some(plan) = self.plan {
            // The delay duration only contributes when delays can fire:
            // this keeps execution a function of the plan's *canonical*
            // form (see `PlanFingerprint`), not of inert knobs.
            if plan.delay_p > 0.0 {
                cap += u64::from(plan.delay_rounds);
            }
            cap += 8 * (plan.compromises.len() as u64 + 1);
        }
        cap.min(u32::MAX as u64) as u32
    }

    fn run(mut self) -> Result<(Run, ExecReport), ModelError> {
        let cap = self.round_cap();
        let n = self.protocol.roles().len();
        while !self.finished() {
            if self.round >= cap {
                return Err(self.stall_error());
            }
            self.apply_due_compromises();
            self.release_due_withheld();
            let mut fired = false;
            for offset in 0..n {
                let idx = if self.options.schedule.is_empty() {
                    (self.round as usize + offset) % n
                } else {
                    (self.options.schedule[self.round as usize % self.options.schedule.len()]
                        + offset)
                        % n
                };
                if self.cursors[idx] >= self.protocol.roles()[idx].steps.len() {
                    continue;
                }
                if self.try_fire(idx)? {
                    fired = true;
                    break;
                }
            }
            if !fired {
                if self.has_future_work() {
                    // Nothing can fire this round, but a timeout, release,
                    // or compromise is coming: let time pass.
                    self.builder.idle();
                } else {
                    return Err(self.stall_error());
                }
            }
            self.round += 1;
        }
        self.apply_remaining_compromises();
        self.report.rounds = self.round;
        let run = self.builder.build()?;
        Ok((run, self.report))
    }

    fn finished(&self) -> bool {
        self.cursors
            .iter()
            .zip(self.protocol.roles())
            .all(|(c, r)| *c >= r.steps.len())
    }

    /// True if an unfired round still makes progress towards something: a
    /// withheld delivery due to release, an expect timeout due to fire, or
    /// a scheduled compromise the run has not reached yet.
    fn has_future_work(&self) -> bool {
        let release_pending = self
            .withheld
            .iter()
            .any(|w| w.release_round.is_some_and(|r| r > self.round));
        let timeout_pending = self
            .cursors
            .iter()
            .zip(self.protocol.roles())
            .any(|(c, role)| {
                matches!(
                    role.steps.get(*c),
                    Some(RoleStep::Expect {
                        policy: ExpectPolicy {
                            patience: Some(_),
                            ..
                        },
                        ..
                    })
                )
            });
        let compromise_pending = self
            .pending_compromises
            .iter()
            .any(|(_, t)| *t > self.builder.now());
        release_pending || timeout_pending || compromise_pending
    }

    fn stall_error(&self) -> ModelError {
        match self
            .protocol
            .roles()
            .iter()
            .enumerate()
            .find(|(i, r)| self.cursors[*i] < r.steps.len())
        {
            Some((idx, role)) => {
                let step = &role.steps[self.cursors[idx]];
                ModelError::Stalled {
                    principal: role.principal.clone(),
                    waiting_for: format!("{step:?}"),
                }
            }
            // Defensive: a stall is only reported while a role is
            // unfinished, but never panic on the error path.
            None => ModelError::MalformedRun("executor stalled with all roles finished".into()),
        }
    }

    /// Applies every compromise whose scheduled time has been reached.
    fn apply_due_compromises(&mut self) {
        let now = self.builder.now();
        let due: Vec<_> = {
            let (due, rest) = std::mem::take(&mut self.pending_compromises)
                .into_iter()
                .partition(|(_, t)| *t <= now);
            self.pending_compromises = rest;
            due
        };
        for (key, t) in due {
            self.builder.new_key(self.env.clone(), key.clone());
            self.report.faults.push(FaultEvent {
                time: self.builder.now() - 1,
                kind: FaultKind::Compromise,
                detail: format!("environment learned {key} (scheduled for t={t})"),
            });
        }
    }

    /// After the scripts finish, pad time forward (bounded) so compromises
    /// scheduled past the protocol's natural end still take effect.
    fn apply_remaining_compromises(&mut self) {
        const PADDING_CAP: i64 = 256;
        let mut padded = 0;
        while !self.pending_compromises.is_empty() && padded < PADDING_CAP {
            self.apply_due_compromises();
            if self.pending_compromises.is_empty() {
                break;
            }
            self.builder.idle();
            padded += 1;
        }
        self.apply_due_compromises();
        for (key, t) in std::mem::take(&mut self.pending_compromises) {
            self.report.faults.push(FaultEvent {
                time: self.builder.now(),
                kind: FaultKind::Compromise,
                detail: format!("{key} NOT compromised: scheduled time {t} is beyond reach"),
            });
        }
    }

    fn release_due_withheld(&mut self) {
        let round = self.round;
        self.withheld
            .retain(|w| w.release_round.is_none_or(|r| r > round));
    }

    /// Attempts to fire the next step of role `idx`; returns whether the
    /// role made progress (including degrading on timeout).
    fn try_fire(&mut self, idx: usize) -> Result<bool, ModelError> {
        let role = &self.protocol.roles()[idx];
        let cursor = self.cursors[idx];
        match &role.steps[cursor] {
            RoleStep::Send { message, to } => {
                let (message, to) = (message.clone(), to.clone());
                let principal = role.principal.clone();
                match self.perform_send(&principal, message, to) {
                    Ok(()) => {}
                    // Under an active fault plan a role may have abandoned
                    // the expect that would have let it legally construct
                    // this message (restrictions 3–5). That is degradation,
                    // not a protocol bug: abandon the send and move on.
                    Err(ModelError::SendViolation { reason, .. })
                        if self.plan.is_some_and(|p| p.is_active()) =>
                    {
                        self.report.abandoned.push(AbandonedStep {
                            principal,
                            step_index: cursor,
                            detail: format!("send abandoned: {reason}"),
                        });
                    }
                    Err(e) => return Err(e),
                }
                self.cursors[idx] += 1;
                Ok(true)
            }
            RoleStep::NewKey(k) => {
                self.builder.new_key(role.principal.clone(), k.clone());
                self.cursors[idx] += 1;
                Ok(true)
            }
            RoleStep::Expect { pattern, policy } => {
                let (pattern, policy) = (pattern.clone(), *policy);
                match self.deliverable(&role.principal, &pattern) {
                    Some(m) => {
                        self.builder.receive(role.principal.clone(), &m)?;
                        self.cursors[idx] += 1;
                        self.waits[idx] = 0;
                        self.resends[idx] = 0;
                        Ok(true)
                    }
                    None => self.handle_expect_timeout(idx, &pattern, policy),
                }
            }
        }
    }

    /// Nothing matched this round: account the wait and, if patience has
    /// run out, degrade according to the policy.
    fn handle_expect_timeout(
        &mut self,
        idx: usize,
        pattern: &MsgPattern,
        policy: ExpectPolicy,
    ) -> Result<bool, ModelError> {
        self.waits[idx] += 1;
        let Some(patience) = policy.patience else {
            return Ok(false);
        };
        if self.waits[idx] <= patience {
            return Ok(false);
        }
        let role = &self.protocol.roles()[idx];
        let principal = role.principal.clone();
        if let OnTimeout::Resend { max_retries } = policy.on_timeout {
            if self.resends[idx] < max_retries {
                // Retransmit the most recent send before this expect step
                // (if the role has not sent anything, fall through to
                // skipping).
                let prior = role.steps[..self.cursors[idx]]
                    .iter()
                    .rev()
                    .find_map(|s| match s {
                        RoleStep::Send { message, to } => Some((message.clone(), to.clone())),
                        _ => None,
                    });
                if let Some((message, to)) = prior {
                    self.resends[idx] += 1;
                    self.waits[idx] = 0;
                    self.report.retries += 1;
                    match self.perform_send(&principal, message, to) {
                        Ok(()) => {}
                        // The prior send may itself have been abandoned
                        // (e.g. the role lost the expect that made it
                        // constructible), so retransmission can be
                        // illegal. Burn the retry and keep degrading.
                        Err(ModelError::SendViolation { .. })
                            if self.plan.is_some_and(|p| p.is_active()) => {}
                        Err(e) => return Err(e),
                    }
                    return Ok(true);
                }
            }
        }
        match policy.on_timeout {
            OnTimeout::Stall => Ok(false),
            OnTimeout::Skip | OnTimeout::Resend { .. } => {
                self.report.abandoned.push(AbandonedStep {
                    principal,
                    step_index: self.cursors[idx],
                    detail: format!("{pattern:?}"),
                });
                self.cursors[idx] += 1;
                self.waits[idx] = 0;
                self.resends[idx] = 0;
                Ok(true)
            }
        }
    }

    /// The first buffered message for `p` matching `pattern` that is not
    /// currently withheld by the environment.
    fn deliverable(&self, p: &Principal, pattern: &MsgPattern) -> Option<Message> {
        // Buffered copies are plain values, so withheld entries suppress
        // *one* matching copy each (multiset semantics).
        let mut suppressed: Vec<&Message> = self
            .withheld
            .iter()
            .filter(|w| &w.recipient == p && w.active(self.round))
            .map(|w| &w.message)
            .collect();
        for m in self.builder.current_state().env.buffer(p) {
            if let Some(pos) = suppressed.iter().position(|s| *s == m) {
                suppressed.swap_remove(pos);
                continue;
            }
            if pattern.matches(m) {
                return Some(m.clone());
            }
        }
        None
    }

    /// Performs a role send through the builder, mirrors it on the public
    /// channel if configured, and applies per-send faults from the plan.
    fn perform_send(
        &mut self,
        sender: &Principal,
        message: Message,
        to: Principal,
    ) -> Result<(), ModelError> {
        self.builder
            .send(sender.clone(), message.clone(), to.clone())?;
        let tap = self.plan.is_some_and(|p| p.replay_p > 0.0);
        if (self.options.public_channel || tap) && to != self.env {
            self.builder
                .send(sender.clone(), message.clone(), self.env.clone())?;
            if tap {
                // The environment takes its copy immediately, making the
                // message (and its visible submessages) replayable.
                self.builder.receive(self.env.clone(), &message)?;
            }
        }
        self.apply_send_faults(sender, &message, &to)
    }

    /// Draws the fault decisions for one send, in a fixed order so the
    /// decision stream is a deterministic function of the plan seed and
    /// the send sequence.
    fn apply_send_faults(
        &mut self,
        sender: &Principal,
        message: &Message,
        to: &Principal,
    ) -> Result<(), ModelError> {
        let Some(plan) = self.plan else {
            return Ok(());
        };
        let plan = plan.clone();
        let Some(rng) = self.rng.as_mut() else {
            return Ok(());
        };
        let duplicate = plan.duplicate_p > 0.0 && rng.gen_bool(plan.duplicate_p);
        let drop = plan.drop_p > 0.0 && rng.gen_bool(plan.drop_p);
        let delay = !drop && plan.delay_p > 0.0 && rng.gen_bool(plan.delay_p);
        let reorder = !drop && !delay && plan.reorder_p > 0.0 && rng.gen_bool(plan.reorder_p);
        let reorder_span = if reorder {
            1 + rng.gen_range(0..3u32)
        } else {
            0
        };
        let replay = plan.replay_p > 0.0 && rng.gen_bool(plan.replay_p);
        let replay_pick = if replay { rng.next_u64() } else { 0 };

        if duplicate {
            // Modeled as a sender-side retransmission: the network's extra
            // copy is indistinguishable from the sender sending twice, and
            // the checked builder accepts it (the sender just sent it).
            self.builder
                .send(sender.clone(), message.clone(), to.clone())?;
            self.report.faults.push(FaultEvent {
                time: self.builder.now() - 1,
                kind: FaultKind::Duplicate,
                detail: format!("{message} for {to} buffered twice"),
            });
        }
        if drop {
            self.withheld.push(Withheld {
                recipient: to.clone(),
                message: message.clone(),
                release_round: None,
            });
            self.report.faults.push(FaultEvent {
                time: self.builder.now() - 1,
                kind: FaultKind::Drop,
                detail: format!("{message} for {to} never delivered"),
            });
        } else if delay {
            self.withheld.push(Withheld {
                recipient: to.clone(),
                message: message.clone(),
                release_round: Some(self.round + plan.delay_rounds),
            });
            self.report.faults.push(FaultEvent {
                time: self.builder.now() - 1,
                kind: FaultKind::Delay,
                detail: format!("{message} for {to} withheld {} round(s)", plan.delay_rounds),
            });
        } else if reorder {
            self.withheld.push(Withheld {
                recipient: to.clone(),
                message: message.clone(),
                release_round: Some(self.round + reorder_span),
            });
            self.report.faults.push(FaultEvent {
                time: self.builder.now() - 1,
                kind: FaultKind::Reorder,
                detail: format!("{message} for {to} overtaken for {reorder_span} round(s)"),
            });
        }
        if replay {
            self.perform_replay(replay_pick, to);
        }
        Ok(())
    }

    /// The environment re-sends one piece of previously seen material at
    /// `to` — the same move the random adversary generator makes, and
    /// legal under restriction 3 because the material was seen.
    fn perform_replay(&mut self, pick: u64, to: &Principal) {
        let env_local = self.builder.current_state().local(&self.env);
        let mut seen: Vec<Message> =
            seen_submsgs_of_set(env_local.received().iter(), &env_local.key_set)
                .into_iter()
                .filter(|m| m.is_ground())
                .collect();
        seen.sort();
        if seen.is_empty() {
            return;
        }
        let chosen = seen[(pick % seen.len() as u64) as usize].clone();
        // The checked send should always accept seen material; if a corner
        // case refuses, the fault is skipped rather than failing the run.
        if self
            .builder
            .send(self.env.clone(), chosen.clone(), to.clone())
            .is_ok()
        {
            self.report.faults.push(FaultEvent {
                time: self.builder.now() - 1,
                kind: FaultKind::Replay,
                detail: format!("environment replayed {chosen} at {to}"),
            });
        }
    }
}

/// Executes the protocol under each provided schedule, collecting the
/// resulting runs into a system. Schedules that stall are skipped.
pub fn execute_schedules(
    protocol: &Protocol,
    base: &ExecOptions,
    schedules: &[Vec<usize>],
) -> System {
    let mut runs = Vec::new();
    for schedule in schedules {
        let options = ExecOptions {
            schedule: schedule.clone(),
            ..base.clone()
        };
        if let Ok(run) = execute(protocol, &options) {
            if !runs.contains(&run) {
                runs.push(run);
            }
        }
    }
    System::new(runs)
}

/// Executes the protocol once per fault plan, collecting the distinct
/// well-formed runs into a system — a degraded-traffic analogue of
/// [`execute_schedules`] for feeding the semantics with faulty runs.
///
/// Internally this rides the sweep engine: plans with identical
/// [fingerprints](crate::PlanFingerprint) execute once, and the
/// remaining executions are sharded across an auto-sized pool. The
/// resulting system is exactly what executing every plan sequentially
/// would produce.
pub fn execute_fault_suite(protocol: &Protocol, base: &ExecOptions, plans: &[FaultPlan]) -> System {
    sweep_plans_on(protocol, base, plans, &Pool::auto(), &ExecutionCache::new()).system()
}

/// Enumerates `grid`, deduplicates plans by fingerprint, and executes
/// the survivors sharded across `pool`, with a fresh per-call execution
/// cache. The outcome — per-plan results in enumeration order plus the
/// dedup/execution stats — is bit-identical at every worker count.
///
/// For multi-stage sweeps that should share executions (or an explicit
/// plan list), use [`sweep_plans_on`](crate::sweep_plans_on) with a
/// caller-owned [`ExecutionCache`](crate::ExecutionCache).
pub fn execute_sweep_on(
    protocol: &Protocol,
    base: &ExecOptions,
    grid: &SweepGrid,
    pool: &Pool,
) -> SweepOutcome {
    sweep_plans_on(protocol, base, &grid.plans(), pool, &ExecutionCache::new())
}

/// All rotations of `0..n` — a cheap family of distinct schedules.
pub fn rotation_schedules(n: usize) -> Vec<Vec<usize>> {
    (0..n)
        .map(|s| (0..n).map(|i| (i + s) % n).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Role;
    use crate::validate::validate_run;
    use atl_lang::{Key, Nonce};

    fn nonce(s: &str) -> Message {
        Message::nonce(Nonce::new(s))
    }

    fn ping_pong() -> Protocol {
        Protocol::new("ping-pong")
            .role(
                Role::new("A", [])
                    .send(nonce("ping"), "B")
                    .expect(nonce("pong")),
            )
            .role(
                Role::new("B", [])
                    .expect(nonce("ping"))
                    .send(nonce("pong"), "A"),
            )
    }

    #[test]
    fn executes_ping_pong() {
        let run = execute(&ping_pong(), &ExecOptions::default()).unwrap();
        assert!(validate_run(&run).is_empty());
        assert_eq!(run.send_records().len(), 2);
        let a = Principal::new("A");
        let final_state = run.state(run.horizon()).unwrap();
        assert!(final_state.local(&a).received().contains(&nonce("pong")));
    }

    #[test]
    fn stalls_when_message_never_sent() {
        let proto = Protocol::new("stuck").role(Role::new("A", []).expect(nonce("never")));
        let err = execute(&proto, &ExecOptions::default()).unwrap_err();
        assert!(matches!(err, ModelError::Stalled { .. }));
    }

    #[test]
    fn public_channel_copies_to_environment() {
        let opts = ExecOptions {
            public_channel: true,
            ..ExecOptions::default()
        };
        let run = execute(&ping_pong(), &opts).unwrap();
        // Each of the two protocol sends is mirrored to Env.
        assert_eq!(run.send_records().len(), 4);
        let env_buffer = run
            .state(run.horizon())
            .unwrap()
            .env
            .buffer(&Principal::environment())
            .to_vec();
        assert!(env_buffer.contains(&nonce("ping")));
        assert!(env_buffer.contains(&nonce("pong")));
    }

    #[test]
    fn negative_start_time_places_prefix_in_past() {
        let opts = ExecOptions {
            start_time: -2,
            ..ExecOptions::default()
        };
        let run = execute(&ping_pong(), &opts).unwrap();
        assert_eq!(run.start_time(), -2);
        assert!(run.sent_before_epoch().contains(&nonce("ping")));
    }

    #[test]
    fn schedules_generate_distinct_runs() {
        // Two independent senders: order matters, so rotations differ.
        let proto = Protocol::new("par")
            .role(Role::new("A", []).send(nonce("a"), "C"))
            .role(Role::new("B", []).send(nonce("b"), "C"))
            .role(Role::new("C", []).expect_any().expect_any());
        let sys = execute_schedules(&proto, &ExecOptions::default(), &rotation_schedules(3));
        assert!(
            sys.len() >= 2,
            "expected multiple distinct runs, got {}",
            sys.len()
        );
        for run in sys.runs() {
            assert!(validate_run(run).is_empty());
        }
    }

    #[test]
    fn keyed_protocol_respects_restrictions() {
        let k = Key::new("Kab");
        let cipher = Message::encrypted(nonce("X"), k.clone(), Principal::new("A"));
        let proto = Protocol::new("enc")
            .role(Role::new("A", [k.clone()]).send(cipher.clone(), "B"))
            .role(Role::new("B", [k]).expect(cipher));
        let run = execute(&proto, &ExecOptions::default()).unwrap();
        assert!(validate_run(&run).is_empty());
    }

    #[test]
    fn clean_execution_reports_no_degradation() {
        let (run, report) = execute_with_report(&ping_pong(), &ExecOptions::default()).unwrap();
        assert!(validate_run(&run).is_empty());
        assert!(!report.degraded());
        assert!(report.rounds > 0);
    }

    #[test]
    fn inactive_plan_reproduces_clean_run() {
        let clean = execute(&ping_pong(), &ExecOptions::default()).unwrap();
        let (faulted, report) =
            execute_with_faults(&ping_pong(), &ExecOptions::default(), &FaultPlan::new(5)).unwrap();
        assert_eq!(clean, faulted);
        assert!(!report.degraded());
    }

    #[test]
    fn invalid_plan_is_rejected_as_fault_error() {
        let err = execute_with_faults(
            &ping_pong(),
            &ExecOptions::default(),
            &FaultPlan::new(0).drop(2.0),
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::Fault(_)));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn dropped_ping_times_out_and_skips() {
        // B skips its expect when the ping is dropped; A's expect also
        // skips (pong is never produced); the run completes, degraded.
        let proto = Protocol::new("lossy")
            .role(
                Role::new("A", [])
                    .send(nonce("ping"), "B")
                    .expect_with(nonce("pong"), ExpectPolicy::skip_after(3)),
            )
            .role(
                Role::new("B", [])
                    .expect_with(nonce("ping"), ExpectPolicy::skip_after(3))
                    .send(nonce("pong"), "A"),
            );
        let plan = FaultPlan::new(1).drop(1.0);
        let (run, report) = execute_with_faults(&proto, &ExecOptions::default(), &plan).unwrap();
        assert!(validate_run(&run).is_empty(), "{:?}", validate_run(&run));
        assert!(report.degraded());
        assert!(report.faults_of(FaultKind::Drop).count() >= 1);
        assert!(!report.abandoned.is_empty());
        // Nothing was ever received.
        let b = Principal::new("B");
        let final_state = run.state(run.horizon()).unwrap();
        assert!(final_state.local(&b).received().is_empty());
    }

    #[test]
    fn resend_policy_retransmits_until_delivery() {
        // Drop every send; A retries its ping enough times that B's
        // patience is irrelevant — but since drops are total, delivery
        // never happens and both roles degrade after their retries.
        let proto = Protocol::new("retry")
            .role(
                Role::new("A", [])
                    .send(nonce("ping"), "B")
                    .expect_with(nonce("pong"), ExpectPolicy::resend_after(2, 3)),
            )
            .role(Role::new("B", []).expect_with(nonce("ping"), ExpectPolicy::skip_after(30)));
        let plan = FaultPlan::new(3).drop(1.0);
        let (run, report) = execute_with_faults(&proto, &ExecOptions::default(), &plan).unwrap();
        assert!(validate_run(&run).is_empty());
        assert_eq!(report.retries, 3);
        // Original + 3 retransmissions, all dropped.
        assert_eq!(report.faults_of(FaultKind::Drop).count(), 4);
        assert_eq!(run.send_records().len(), 4);
        assert_eq!(report.abandoned.len(), 2);
    }

    #[test]
    fn resend_recovers_from_partial_loss() {
        // Seed chosen so the first ping is dropped but a retransmission
        // gets through: the protocol completes with retries > 0 and no
        // abandoned steps.
        let proto = |patience| {
            Protocol::new("retry-recover")
                .role(
                    Role::new("A", [])
                        .send(nonce("ping"), "B")
                        .expect_with(nonce("pong"), ExpectPolicy::resend_after(patience, 8)),
                )
                .role(
                    Role::new("B", [])
                        .expect_with(nonce("ping"), ExpectPolicy::skip_after(200))
                        .send(nonce("pong"), "A"),
                )
        };
        let mut recovered = false;
        for seed in 0..32 {
            let plan = FaultPlan::new(seed).drop(0.5);
            let Ok((run, report)) = execute_with_faults(&proto(2), &ExecOptions::default(), &plan)
            else {
                continue;
            };
            assert!(validate_run(&run).is_empty());
            if report.retries > 0 && report.abandoned.is_empty() {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "no seed in 0..32 exercised drop-then-recover");
    }

    #[test]
    fn duplication_buffers_second_copy() {
        let plan = FaultPlan::new(2).duplicate(1.0);
        let (run, report) =
            execute_with_faults(&ping_pong(), &ExecOptions::default(), &plan).unwrap();
        assert!(validate_run(&run).is_empty());
        assert_eq!(report.faults_of(FaultKind::Duplicate).count(), 2);
        // Each protocol message was sent twice; one copy of each is
        // consumed, one remains buffered.
        assert_eq!(run.send_records().len(), 4);
        let final_state = run.state(run.horizon()).unwrap();
        assert_eq!(
            final_state.env.buffer(&Principal::new("A")),
            [nonce("pong")]
        );
        assert_eq!(
            final_state.env.buffer(&Principal::new("B")),
            [nonce("ping")]
        );
    }

    #[test]
    fn delay_defers_but_preserves_delivery() {
        let plan = FaultPlan::new(4).delay(1.0, 3);
        let (run, report) =
            execute_with_faults(&ping_pong(), &ExecOptions::default(), &plan).unwrap();
        assert!(validate_run(&run).is_empty());
        assert_eq!(report.faults_of(FaultKind::Delay).count(), 2);
        // Despite the delays, both messages eventually arrive.
        let final_state = run.state(run.horizon()).unwrap();
        let a = Principal::new("A");
        assert!(final_state.local(&a).received().contains(&nonce("pong")));
        assert!(report.rounds > 2, "delays should cost rounds");
    }

    #[test]
    fn reorder_lets_later_traffic_overtake() {
        // A sends two messages; C accepts any two. Reordering withholds
        // the first so the second can be received first in some seeds.
        let proto = Protocol::new("order")
            .role(
                Role::new("A", [])
                    .send(nonce("first"), "C")
                    .send(nonce("second"), "C"),
            )
            .role(Role::new("C", []).expect_any().expect_any());
        let mut saw_swap = false;
        for seed in 0..32 {
            let plan = FaultPlan::new(seed).reorder(0.7);
            let (run, _) = execute_with_faults(&proto, &ExecOptions::default(), &plan).unwrap();
            assert!(validate_run(&run).is_empty());
            let c = Principal::new("C");
            let received: Vec<Message> = run
                .state(run.horizon())
                .unwrap()
                .local(&c)
                .history
                .iter()
                .filter_map(|a| match a {
                    crate::action::Action::Receive { message } => Some(message.clone()),
                    _ => None,
                })
                .collect();
            if received == [nonce("second"), nonce("first")] {
                saw_swap = true;
                break;
            }
        }
        assert!(saw_swap, "no seed in 0..32 produced a reordered delivery");
    }

    #[test]
    fn replay_resends_seen_material() {
        let plan = FaultPlan::new(6).replay(1.0);
        let (run, report) =
            execute_with_faults(&ping_pong(), &ExecOptions::default(), &plan).unwrap();
        assert!(validate_run(&run).is_empty());
        assert!(report.faults_of(FaultKind::Replay).count() >= 1);
        // Replayed sends come from the environment.
        let env = Principal::environment();
        assert!(run.send_records().iter().any(|r| r.sender == env));
    }

    #[test]
    fn compromise_grants_environment_the_key() {
        let k = Key::new("Kab");
        let cipher = Message::encrypted(nonce("X"), k.clone(), Principal::new("A"));
        let proto = Protocol::new("enc")
            .role(Role::new("A", [k.clone()]).send(cipher.clone(), "B"))
            .role(Role::new("B", [k.clone()]).expect(cipher));
        let plan = FaultPlan::new(0).compromise(k.clone(), 1);
        let (run, report) = execute_with_faults(&proto, &ExecOptions::default(), &plan).unwrap();
        assert!(validate_run(&run).is_empty());
        assert_eq!(report.faults_of(FaultKind::Compromise).count(), 1);
        let final_state = run.state(run.horizon()).unwrap();
        assert!(final_state.env.key_set.contains(&k));
        // Before the scheduled time the environment did not hold it.
        assert!(!run.state(0).unwrap().env.key_set.contains(&k));
    }

    #[test]
    fn compromise_past_protocol_end_pads_the_run() {
        let plan = FaultPlan::new(0).compromise("Klate", 9);
        let (run, report) =
            execute_with_faults(&ping_pong(), &ExecOptions::default(), &plan).unwrap();
        assert!(validate_run(&run).is_empty());
        assert_eq!(report.faults_of(FaultKind::Compromise).count(), 1);
        assert!(run.horizon() >= 9);
        assert!(run
            .state(run.horizon())
            .unwrap()
            .env
            .key_set
            .contains(&Key::new("Klate")));
    }

    #[test]
    fn faulted_execution_is_deterministic_per_seed() {
        let plan = |seed| FaultPlan::new(seed).drop(0.3).duplicate(0.3).replay(0.4);
        let proto = ping_pong();
        let opts = ExecOptions::default();
        let some_policy = Protocol::new("lossy")
            .role(
                Role::new("A", [])
                    .send(nonce("ping"), "B")
                    .expect_with(nonce("pong"), ExpectPolicy::skip_after(4)),
            )
            .role(
                Role::new("B", [])
                    .expect_with(nonce("ping"), ExpectPolicy::skip_after(4))
                    .send(nonce("pong"), "A"),
            );
        for proto in [&proto, &some_policy] {
            if let (Ok(a), Ok(b)) = (
                execute_with_faults(proto, &opts, &plan(11)),
                execute_with_faults(proto, &opts, &plan(11)),
            ) {
                assert_eq!(a, b);
            }
            let differs = (0..16).any(|s| {
                execute_with_faults(proto, &opts, &plan(s)).ok()
                    != execute_with_faults(proto, &opts, &plan(11)).ok()
            });
            assert!(differs, "all seeds produced identical faulted runs");
        }
    }

    #[test]
    fn fault_suite_collects_distinct_wellformed_runs() {
        let proto = Protocol::new("lossy")
            .role(
                Role::new("A", [])
                    .send(nonce("ping"), "B")
                    .expect_with(nonce("pong"), ExpectPolicy::skip_after(3)),
            )
            .role(
                Role::new("B", [])
                    .expect_with(nonce("ping"), ExpectPolicy::skip_after(3))
                    .send(nonce("pong"), "A"),
            );
        let plans: Vec<FaultPlan> = (0..12).map(|s| FaultPlan::new(s).drop(0.5)).collect();
        let sys = execute_fault_suite(&proto, &ExecOptions::default(), &plans);
        assert!(sys.len() >= 2, "expected diverse degraded runs");
        for run in sys.runs() {
            assert!(validate_run(run).is_empty());
        }
    }
}
