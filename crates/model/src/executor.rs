//! Executing protocols into runs.
//!
//! The executor interleaves the role scripts of a [`Protocol`] into a
//! well-formed [`Run`]: at each step it picks an *enabled* role (one whose
//! next script step can fire) and performs that step through the checked
//! [`RunBuilder`]. Different schedules yield different runs of the same
//! protocol; [`execute_schedules`] collects several into a [`System`].

use crate::error::ModelError;
use crate::protocol::{Protocol, Role, RoleStep};
use crate::run::{Run, RunBuilder};
use crate::system::System;
use atl_lang::{Message, Principal};

/// Options controlling execution.
#[derive(Clone, Debug)]
#[derive(Default)]
pub struct ExecOptions {
    /// Time assigned to the run's first state (≤ 0). A negative start time
    /// places the protocol's prologue in the past epoch.
    pub start_time: i64,
    /// If true, every send also posts a copy to the environment principal,
    /// modeling a public channel the attacker taps.
    pub public_channel: bool,
    /// Fixed schedule: at step `i`, try to fire role `schedule[i % len]`.
    /// Empty means round-robin over roles.
    pub schedule: Vec<usize>,
}


/// Executes `protocol` under `options`, producing one run.
///
/// # Errors
///
/// [`ModelError::Stalled`] if no role can make progress before all scripts
/// finish (e.g. an `Expect` for a message never sent);
/// [`ModelError::SendViolation`] if a script violates the Section 5
/// restrictions.
pub fn execute(protocol: &Protocol, options: &ExecOptions) -> Result<Run, ModelError> {
    let mut builder = RunBuilder::new(options.start_time);
    for role in protocol.roles() {
        builder.principal(role.principal.clone(), role.initial_keys.iter().cloned());
    }
    let mut cursors: Vec<usize> = vec![0; protocol.roles().len()];
    let n = protocol.roles().len();
    let mut clock = 0usize;
    let env = Principal::environment();

    loop {
        if cursors
            .iter()
            .zip(protocol.roles())
            .all(|(c, r)| *c >= r.steps.len())
        {
            break;
        }
        // Find an enabled role, starting from the scheduled preference.
        let mut fired = false;
        for offset in 0..n {
            let idx = if options.schedule.is_empty() {
                (clock + offset) % n
            } else {
                (options.schedule[clock % options.schedule.len()] + offset) % n
            };
            let role = &protocol.roles()[idx];
            if cursors[idx] >= role.steps.len() {
                continue;
            }
            if try_fire(&mut builder, role, &mut cursors[idx], options, &env)? {
                fired = true;
                break;
            }
        }
        if !fired {
            let (idx, role) = protocol
                .roles()
                .iter()
                .enumerate()
                .find(|(i, r)| cursors[*i] < r.steps.len())
                .expect("unfinished role exists");
            let step = &role.steps[cursors[idx]];
            return Err(ModelError::Stalled {
                principal: role.principal.clone(),
                waiting_for: format!("{step:?}"),
            });
        }
        clock += 1;
    }
    builder.build()
}

/// Attempts to fire the next step of `role`; returns whether it fired.
fn try_fire(
    builder: &mut RunBuilder,
    role: &Role,
    cursor: &mut usize,
    options: &ExecOptions,
    env: &Principal,
) -> Result<bool, ModelError> {
    let step = &role.steps[*cursor];
    match step {
        RoleStep::Send { message, to } => {
            builder.send(role.principal.clone(), message.clone(), to.clone())?;
            if options.public_channel && to != env {
                builder.send(role.principal.clone(), message.clone(), env.clone())?;
            }
            *cursor += 1;
            Ok(true)
        }
        RoleStep::NewKey(k) => {
            builder.new_key(role.principal.clone(), k.clone());
            *cursor += 1;
            Ok(true)
        }
        RoleStep::Expect(pattern) => {
            let buffered: Option<Message> = builder
                .current_state()
                .env
                .buffer(&role.principal)
                .iter()
                .find(|m| pattern.matches(m))
                .cloned();
            match buffered {
                Some(m) => {
                    builder.receive(role.principal.clone(), &m)?;
                    *cursor += 1;
                    Ok(true)
                }
                None => Ok(false),
            }
        }
    }
}

/// Executes the protocol under each provided schedule, collecting the
/// resulting runs into a system. Schedules that stall are skipped.
pub fn execute_schedules(
    protocol: &Protocol,
    base: &ExecOptions,
    schedules: &[Vec<usize>],
) -> System {
    let mut runs = Vec::new();
    for schedule in schedules {
        let options = ExecOptions {
            schedule: schedule.clone(),
            ..base.clone()
        };
        if let Ok(run) = execute(protocol, &options) {
            if !runs.contains(&run) {
                runs.push(run);
            }
        }
    }
    System::new(runs)
}

/// All rotations of `0..n` — a cheap family of distinct schedules.
pub fn rotation_schedules(n: usize) -> Vec<Vec<usize>> {
    (0..n)
        .map(|s| (0..n).map(|i| (i + s) % n).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Role;
    use crate::validate::validate_run;
    use atl_lang::{Key, Nonce};

    fn nonce(s: &str) -> Message {
        Message::nonce(Nonce::new(s))
    }

    fn ping_pong() -> Protocol {
        Protocol::new("ping-pong")
            .role(
                Role::new("A", [])
                    .send(nonce("ping"), "B")
                    .expect(nonce("pong")),
            )
            .role(
                Role::new("B", [])
                    .expect(nonce("ping"))
                    .send(nonce("pong"), "A"),
            )
    }

    #[test]
    fn executes_ping_pong() {
        let run = execute(&ping_pong(), &ExecOptions::default()).unwrap();
        assert!(validate_run(&run).is_empty());
        assert_eq!(run.send_records().len(), 2);
        let a = Principal::new("A");
        let final_state = run.state(run.horizon()).unwrap();
        assert!(final_state.local(&a).received().contains(&nonce("pong")));
    }

    #[test]
    fn stalls_when_message_never_sent() {
        let proto = Protocol::new("stuck").role(Role::new("A", []).expect(nonce("never")));
        let err = execute(&proto, &ExecOptions::default()).unwrap_err();
        assert!(matches!(err, ModelError::Stalled { .. }));
    }

    #[test]
    fn public_channel_copies_to_environment() {
        let opts = ExecOptions {
            public_channel: true,
            ..ExecOptions::default()
        };
        let run = execute(&ping_pong(), &opts).unwrap();
        // Each of the two protocol sends is mirrored to Env.
        assert_eq!(run.send_records().len(), 4);
        let env_buffer = run
            .state(run.horizon())
            .unwrap()
            .env
            .buffer(&Principal::environment())
            .to_vec();
        assert!(env_buffer.contains(&nonce("ping")));
        assert!(env_buffer.contains(&nonce("pong")));
    }

    #[test]
    fn negative_start_time_places_prefix_in_past() {
        let opts = ExecOptions {
            start_time: -2,
            ..ExecOptions::default()
        };
        let run = execute(&ping_pong(), &opts).unwrap();
        assert_eq!(run.start_time(), -2);
        assert!(run.sent_before_epoch().contains(&nonce("ping")));
    }

    #[test]
    fn schedules_generate_distinct_runs() {
        // Two independent senders: order matters, so rotations differ.
        let proto = Protocol::new("par")
            .role(Role::new("A", []).send(nonce("a"), "C"))
            .role(Role::new("B", []).send(nonce("b"), "C"))
            .role(
                Role::new("C", [])
                    .expect_any()
                    .expect_any(),
            );
        let sys = execute_schedules(&proto, &ExecOptions::default(), &rotation_schedules(3));
        assert!(sys.len() >= 2, "expected multiple distinct runs, got {}", sys.len());
        for run in sys.runs() {
            assert!(validate_run(run).is_empty());
        }
    }

    #[test]
    fn keyed_protocol_respects_restrictions() {
        let k = Key::new("Kab");
        let cipher = Message::encrypted(nonce("X"), k.clone(), Principal::new("A"));
        let proto = Protocol::new("enc")
            .role(Role::new("A", [k.clone()]).send(cipher.clone(), "B"))
            .role(Role::new("B", [k]).expect(cipher));
        let run = execute(&proto, &ExecOptions::default()).unwrap();
        assert!(validate_run(&run).is_empty());
    }
}
