//! Scripted local protocols (Section 5).
//!
//! A *local protocol* maps a principal's local state to its next action.
//! Authentication protocols are straight-line: each role alternates between
//! waiting for an expected message and sending the next one. A
//! [`Role`] captures this as a script of [`RoleStep`]s; the
//! [`executor`](crate::executor) interleaves the scripts into runs.

use atl_lang::{Key, KeySet, Message, Principal};

/// A pattern an incoming message must match before a role proceeds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MsgPattern {
    /// Accept any buffered message.
    Any,
    /// Accept exactly this message.
    Exact(Message),
}

impl MsgPattern {
    /// True if `m` matches the pattern.
    pub fn matches(&self, m: &Message) -> bool {
        match self {
            MsgPattern::Any => true,
            MsgPattern::Exact(want) => want == m,
        }
    }
}

/// What a role does when an expected message has not arrived within its
/// patience (see [`ExpectPolicy`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OnTimeout {
    /// Keep waiting forever; execution stalls if the message never comes
    /// (the classic behavior).
    #[default]
    Stall,
    /// Abandon the expect step and continue with the rest of the script.
    Skip,
    /// Retransmit the role's most recent send and wait again, up to
    /// `max_retries` times; once exhausted, abandon the step as with
    /// [`OnTimeout::Skip`].
    Resend {
        /// How many retransmissions to attempt before giving up.
        max_retries: u32,
    },
}

/// Timeout/retry policy attached to an expect step, letting a role degrade
/// gracefully instead of stalling the whole run when traffic is lost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExpectPolicy {
    /// Scheduler rounds to wait for a matching message before
    /// [`on_timeout`](Self::on_timeout) applies. `None` waits forever.
    pub patience: Option<u32>,
    /// What to do when patience runs out.
    pub on_timeout: OnTimeout,
}

impl ExpectPolicy {
    /// Waits forever (the classic stalling behavior).
    pub fn wait_forever() -> Self {
        ExpectPolicy::default()
    }

    /// Abandons the step after `patience` fruitless scheduler rounds.
    pub fn skip_after(patience: u32) -> Self {
        ExpectPolicy {
            patience: Some(patience),
            on_timeout: OnTimeout::Skip,
        }
    }

    /// Retransmits the role's last send after each `patience` fruitless
    /// scheduler rounds, up to `max_retries` times, then abandons the step.
    pub fn resend_after(patience: u32, max_retries: u32) -> Self {
        ExpectPolicy {
            patience: Some(patience),
            on_timeout: OnTimeout::Resend { max_retries },
        }
    }
}

/// One step of a role's script.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RoleStep {
    /// Wait until a matching message is buffered, then receive it. The
    /// policy decides how (whether) the role degrades if none arrives.
    Expect {
        /// The pattern an incoming message must match.
        pattern: MsgPattern,
        /// The timeout/retry policy.
        policy: ExpectPolicy,
    },
    /// Send a message.
    Send {
        /// The message to send.
        message: Message,
        /// The recipient.
        to: Principal,
    },
    /// Acquire a key (generation or out-of-band distribution).
    NewKey(Key),
}

/// A principal's role in a protocol: its initial keys and its script.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Role {
    /// The principal playing the role.
    pub principal: Principal,
    /// Keys held before the run starts.
    pub initial_keys: KeySet,
    /// The script, executed in order.
    pub steps: Vec<RoleStep>,
}

impl Role {
    /// Creates a role with no script.
    pub fn new(principal: impl Into<Principal>, keys: impl IntoIterator<Item = Key>) -> Self {
        Role {
            principal: principal.into(),
            initial_keys: keys.into_iter().collect(),
            steps: Vec::new(),
        }
    }

    /// Appends a send step.
    pub fn send(mut self, message: Message, to: impl Into<Principal>) -> Self {
        self.steps.push(RoleStep::Send {
            message,
            to: to.into(),
        });
        self
    }

    /// Appends an expect step for an exact message, waiting forever.
    pub fn expect(self, message: Message) -> Self {
        self.expect_with(message, ExpectPolicy::wait_forever())
    }

    /// Appends an expect step accepting any message, waiting forever.
    pub fn expect_any(self) -> Self {
        self.expect_any_with(ExpectPolicy::wait_forever())
    }

    /// Appends an expect step for an exact message with a degradation
    /// policy.
    pub fn expect_with(mut self, message: Message, policy: ExpectPolicy) -> Self {
        self.steps.push(RoleStep::Expect {
            pattern: MsgPattern::Exact(message),
            policy,
        });
        self
    }

    /// Appends an expect step accepting any message, with a degradation
    /// policy.
    pub fn expect_any_with(mut self, policy: ExpectPolicy) -> Self {
        self.steps.push(RoleStep::Expect {
            pattern: MsgPattern::Any,
            policy,
        });
        self
    }

    /// Appends a key-acquisition step.
    pub fn new_key(mut self, key: impl Into<Key>) -> Self {
        self.steps.push(RoleStep::NewKey(key.into()));
        self
    }
}

/// A protocol: a named collection of roles.
///
/// # Examples
///
/// A one-message protocol:
///
/// ```
/// use atl_lang::{Key, Message, Nonce};
/// use atl_model::{Protocol, Role};
/// let m = Message::nonce(Nonce::new("hello"));
/// let proto = Protocol::new("ping")
///     .role(Role::new("A", [Key::new("K")]).send(m.clone(), "B"))
///     .role(Role::new("B", []).expect(m));
/// assert_eq!(proto.roles().len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Protocol {
    name: String,
    roles: Vec<Role>,
}

impl Protocol {
    /// Creates an empty protocol.
    pub fn new(name: impl Into<String>) -> Self {
        Protocol {
            name: name.into(),
            roles: Vec::new(),
        }
    }

    /// Adds a role.
    pub fn role(mut self, role: Role) -> Self {
        self.roles.push(role);
        self
    }

    /// The protocol's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The protocol's roles.
    pub fn roles(&self) -> &[Role] {
        &self.roles
    }

    /// The total number of script steps across roles.
    pub fn total_steps(&self) -> usize {
        self.roles.iter().map(|r| r.steps.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atl_lang::Nonce;

    #[test]
    fn builder_accumulates_steps() {
        let m = Message::nonce(Nonce::new("X"));
        let r = Role::new("A", [Key::new("K")])
            .new_key("K2")
            .send(m.clone(), "B")
            .expect(m.clone())
            .expect_any();
        assert_eq!(r.steps.len(), 4);
        assert!(matches!(&r.steps[0], RoleStep::NewKey(k) if k == &Key::new("K2")));
        assert!(matches!(
            &r.steps[3],
            RoleStep::Expect {
                pattern: MsgPattern::Any,
                ..
            }
        ));
    }

    #[test]
    fn expect_policies_attach_to_steps() {
        let m = Message::nonce(Nonce::new("X"));
        let r = Role::new("A", [])
            .expect_with(m.clone(), ExpectPolicy::skip_after(3))
            .expect_any_with(ExpectPolicy::resend_after(2, 4))
            .expect(m);
        assert!(matches!(
            &r.steps[0],
            RoleStep::Expect {
                policy: ExpectPolicy {
                    patience: Some(3),
                    on_timeout: OnTimeout::Skip,
                },
                ..
            }
        ));
        assert!(matches!(
            &r.steps[1],
            RoleStep::Expect {
                policy: ExpectPolicy {
                    patience: Some(2),
                    on_timeout: OnTimeout::Resend { max_retries: 4 },
                },
                ..
            }
        ));
        assert!(matches!(
            &r.steps[2],
            RoleStep::Expect {
                policy: ExpectPolicy { patience: None, .. },
                ..
            }
        ));
    }

    #[test]
    fn patterns_match() {
        let m = Message::nonce(Nonce::new("X"));
        assert!(MsgPattern::Any.matches(&m));
        assert!(MsgPattern::Exact(m.clone()).matches(&m));
        assert!(!MsgPattern::Exact(m).matches(&Message::nonce(Nonce::new("Y"))));
    }

    #[test]
    fn protocol_totals() {
        let proto = Protocol::new("t")
            .role(Role::new("A", []).send(Message::nonce(Nonce::new("X")), "B"))
            .role(Role::new("B", []).expect_any());
        assert_eq!(proto.total_steps(), 2);
        assert_eq!(proto.name(), "t");
    }
}
