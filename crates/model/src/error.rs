//! Error types for run construction and protocol execution.

use crate::faults::FaultError;
use atl_lang::{Message, Principal};
use std::error::Error;
use std::fmt;

/// Error produced while building or executing a run.
///
/// Marked `#[non_exhaustive]`: downstream matchers must carry a wildcard
/// arm, so new fault conditions can be added without breaking them.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A `receive` was requested for a message not in the principal's
    /// buffer (restriction 2 would be violated).
    NotInBuffer {
        /// The would-be receiver.
        principal: Principal,
        /// The message that was not buffered.
        message: Message,
    },
    /// A `send` violates restriction 3, 4, or 5 of Section 5.
    SendViolation {
        /// The offending sender.
        actor: Principal,
        /// Which restriction failed and why.
        reason: String,
    },
    /// A message containing unresolved parameters was used in a run.
    NotGround(Message),
    /// The run's shape is inconsistent (state/event counts, or it does not
    /// reach time 0).
    MalformedRun(String),
    /// A protocol script referenced an undeclared principal.
    UnknownPrincipal(Principal),
    /// Protocol execution stalled: a role is waiting for a message that
    /// never arrives.
    Stalled {
        /// The waiting role.
        principal: Principal,
        /// Description of what it was waiting for.
        waiting_for: String,
    },
    /// A fault-injection plan was ill-formed (see [`FaultError`]).
    Fault(FaultError),
    /// An error reconstituted from its rendered form after a wire or
    /// store round-trip (see [`crate::wire`]). Carries the original
    /// error's display string verbatim, so reports built from remote or
    /// persisted outcomes render byte-identically to local ones.
    Reconstituted(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NotInBuffer { principal, message } => {
                write!(f, "message {message} is not buffered for {principal}")
            }
            ModelError::SendViolation { actor, reason } => {
                write!(f, "illegal send by {actor}: {reason}")
            }
            ModelError::NotGround(m) => {
                write!(f, "message {m} contains unresolved parameters")
            }
            ModelError::MalformedRun(why) => write!(f, "malformed run: {why}"),
            ModelError::UnknownPrincipal(p) => write!(f, "unknown principal {p}"),
            ModelError::Stalled {
                principal,
                waiting_for,
            } => write!(f, "protocol stalled: {principal} waiting for {waiting_for}"),
            ModelError::Fault(e) => write!(f, "fault plan rejected: {e}"),
            ModelError::Reconstituted(rendered) => f.write_str(rendered),
        }
    }
}

impl Error for ModelError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ModelError::Fault(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FaultError> for ModelError {
    fn from(e: FaultError) -> Self {
        ModelError::Fault(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atl_lang::Nonce;

    #[test]
    fn display_messages_are_informative() {
        let e = ModelError::NotInBuffer {
            principal: Principal::new("B"),
            message: Message::nonce(Nonce::new("X")),
        };
        assert_eq!(e.to_string(), "message X is not buffered for B");
        let e2 = ModelError::MalformedRun("oops".into());
        assert!(e2.to_string().contains("oops"));
    }

    #[test]
    fn fault_errors_wrap_with_source() {
        let inner = FaultError::BadProbability {
            field: "drop",
            value: "2".into(),
        };
        let e: ModelError = inner.clone().into();
        assert!(e.to_string().contains("fault plan rejected"));
        let source = Error::source(&e).expect("fault variant carries a source");
        assert_eq!(source.to_string(), inner.to_string());
        assert!(Error::source(&ModelError::MalformedRun("x".into())).is_none());
    }
}
