//! Parallel fault sweeps: grid enumeration, fingerprint dedup, and a
//! shared execution cache.
//!
//! Robustness scans in the spirit of the paper's Section 5 adversary
//! need *many* runs per protocol: a grid of [`FaultPlan`]s (seed ranges
//! × probability steps × compromise points) quickly reaches hundreds of
//! executions, and until now each one ran sequentially. This module
//! makes the scan scale with cores without changing a single answer:
//!
//! 1. **Enumeration** — [`SweepGrid`] describes the grid and
//!    [`SweepGrid::plans`] expands it in a fixed documented order.
//! 2. **Canonicalization** — [`PlanFingerprint`] maps each plan to a
//!    canonical form that two plans share exactly when the executor is
//!    guaranteed to resolve them to identical fault events (and hence
//!    identical runs): probabilities of `0` never fire, probabilities of
//!    `1` always fire, and the decision seed only matters when some
//!    decision actually draws from the RNG stream. Duplicate
//!    fingerprints are deduplicated *before* executing anything.
//! 3. **Sharding** — the surviving plans are dealt across a
//!    work-stealing [`Pool`] and merged back by index, so sweep output
//!    is bit-identical at every worker count.
//! 4. **Caching** — an [`Arc`]-backed [`ExecutionCache`] keyed by
//!    `(protocol digest, fingerprint)` lets repeated plans across sweep
//!    stages (the baseline/degraded pair, overlapping grids) execute
//!    once per process instead of once per occurrence.
//!
//! The entry points are [`sweep_plans_on`] (explicit plan list, explicit
//! cache) and [`execute_sweep_on`](crate::execute_sweep_on) (grid,
//! fresh cache) in the executor module.

use crate::error::ModelError;
use crate::executor::{execute_with_faults, ExecOptions};
use crate::faults::{ExecReport, FaultError, FaultPlan};
use crate::parallel::Pool;
use crate::protocol::Protocol;
use crate::run::Run;
use crate::system::System;
use atl_lang::Key;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, PoisonError};

/// A grid of fault plans: the cartesian product of a seed range,
/// per-fault probability steps, and compromise choices.
///
/// Every axis defaults to the single inert point, so an empty grid
/// describes exactly one clean execution. [`plans`](SweepGrid::plans)
/// expands the grid in a fixed order (seeds outermost, then drop,
/// duplicate, delay, reorder, replay, compromises innermost), so the
/// plan list — and everything downstream of it — is deterministic.
///
/// # Examples
///
/// ```
/// use atl_model::SweepGrid;
/// let grid = SweepGrid::new()
///     .seeds(0..4)
///     .drop_steps([0.0, 0.5, 1.0])
///     .replay_steps([0.0, 0.5]);
/// assert_eq!(grid.len(), 4 * 3 * 2);
/// assert!(grid.validate().is_ok());
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct SweepGrid {
    /// The seed range, one plan family per seed.
    pub seeds: std::ops::Range<u64>,
    /// Drop-probability steps.
    pub drop_steps: Vec<f64>,
    /// Duplication-probability steps.
    pub duplicate_steps: Vec<f64>,
    /// Delay-probability steps.
    pub delay_steps: Vec<f64>,
    /// Withholding duration (scheduler rounds) for every delay step.
    pub delay_rounds: u32,
    /// Reorder-probability steps.
    pub reorder_steps: Vec<f64>,
    /// Replay-probability steps.
    pub replay_steps: Vec<f64>,
    /// Compromise choices; each entry is a full compromise schedule for
    /// one grid point. Empty means the single no-compromise choice.
    pub compromise_choices: Vec<Vec<(Key, i64)>>,
}

impl Default for SweepGrid {
    fn default() -> Self {
        SweepGrid::new()
    }
}

impl SweepGrid {
    /// The one-point grid: seed 0, everything inert.
    pub fn new() -> Self {
        SweepGrid {
            seeds: 0..1,
            drop_steps: Vec::new(),
            duplicate_steps: Vec::new(),
            delay_steps: Vec::new(),
            delay_rounds: 2,
            reorder_steps: Vec::new(),
            replay_steps: Vec::new(),
            compromise_choices: Vec::new(),
        }
    }

    /// Sets the seed range.
    pub fn seeds(mut self, seeds: std::ops::Range<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Sets the drop-probability steps.
    pub fn drop_steps(mut self, steps: impl IntoIterator<Item = f64>) -> Self {
        self.drop_steps = steps.into_iter().collect();
        self
    }

    /// Sets the duplication-probability steps.
    pub fn duplicate_steps(mut self, steps: impl IntoIterator<Item = f64>) -> Self {
        self.duplicate_steps = steps.into_iter().collect();
        self
    }

    /// Sets the delay-probability steps and the shared withholding
    /// duration in scheduler rounds.
    pub fn delay_steps(mut self, steps: impl IntoIterator<Item = f64>, rounds: u32) -> Self {
        self.delay_steps = steps.into_iter().collect();
        self.delay_rounds = rounds;
        self
    }

    /// Sets the reorder-probability steps.
    pub fn reorder_steps(mut self, steps: impl IntoIterator<Item = f64>) -> Self {
        self.reorder_steps = steps.into_iter().collect();
        self
    }

    /// Sets the replay-probability steps.
    pub fn replay_steps(mut self, steps: impl IntoIterator<Item = f64>) -> Self {
        self.replay_steps = steps.into_iter().collect();
        self
    }

    /// Adds one compromise schedule as a grid choice.
    pub fn compromise_choice(mut self, compromises: impl IntoIterator<Item = (Key, i64)>) -> Self {
        self.compromise_choices
            .push(compromises.into_iter().collect());
        self
    }

    fn axis(steps: &[f64]) -> &[f64] {
        if steps.is_empty() {
            &[0.0]
        } else {
            steps
        }
    }

    /// How many plans [`plans`](SweepGrid::plans) will enumerate.
    pub fn len(&self) -> usize {
        let axis = |s: &[f64]| Self::axis(s).len();
        (self.seeds.end.saturating_sub(self.seeds.start) as usize)
            * axis(&self.drop_steps)
            * axis(&self.duplicate_steps)
            * axis(&self.delay_steps)
            * axis(&self.reorder_steps)
            * axis(&self.replay_steps)
            * self.compromise_choices.len().max(1)
    }

    /// True if the grid enumerates no plans (empty seed range).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks every probability step and the delay duration, with the
    /// same boundary rules as [`FaultPlan::validate`].
    ///
    /// # Errors
    ///
    /// [`FaultError::BadProbability`] for a step outside `[0, 1]`;
    /// [`FaultError::BadDelay`] if any positive delay step pairs with a
    /// zero-round duration.
    pub fn validate(&self) -> Result<(), FaultError> {
        let axes: [(&'static str, &[f64]); 5] = [
            ("drop", &self.drop_steps),
            ("duplicate", &self.duplicate_steps),
            ("delay", &self.delay_steps),
            ("reorder", &self.reorder_steps),
            ("replay", &self.replay_steps),
        ];
        for (field, steps) in axes {
            for &value in steps {
                if !(0.0..=1.0).contains(&value) {
                    return Err(FaultError::BadProbability {
                        field,
                        value: format!("{value}"),
                    });
                }
            }
        }
        if self.delay_rounds == 0 && self.delay_steps.iter().any(|&p| p > 0.0) {
            return Err(FaultError::BadDelay { rounds: 0 });
        }
        Ok(())
    }

    /// Expands the grid into its plan list, in the documented axis order.
    pub fn plans(&self) -> Vec<FaultPlan> {
        let default_choice = [Vec::new()];
        let choices: &[Vec<(Key, i64)>] = if self.compromise_choices.is_empty() {
            &default_choice
        } else {
            &self.compromise_choices
        };
        let mut out = Vec::with_capacity(self.len());
        for seed in self.seeds.clone() {
            for &drop in Self::axis(&self.drop_steps) {
                for &dup in Self::axis(&self.duplicate_steps) {
                    for &delay in Self::axis(&self.delay_steps) {
                        for &reorder in Self::axis(&self.reorder_steps) {
                            for &replay in Self::axis(&self.replay_steps) {
                                for compromises in choices {
                                    let mut plan = FaultPlan::new(seed)
                                        .drop(drop)
                                        .duplicate(dup)
                                        .delay(delay, self.delay_rounds)
                                        .reorder(reorder)
                                        .replay(replay);
                                    plan.compromises = compromises.clone();
                                    out.push(plan);
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

/// The canonical identity of a [`FaultPlan`] with respect to execution.
///
/// Two plans with equal fingerprints are guaranteed to resolve to the
/// same fault events against any protocol, and therefore to produce
/// identical runs and reports. The canonicalization mirrors the
/// executor's decision procedure exactly:
///
/// - probabilities `≤ 0` are inert and collapse to one value; `≥ 1` fire
///   unconditionally without consuming randomness;
/// - a certain drop masks the delay and reorder decisions entirely (the
///   executor evaluates them only when the message was not dropped), and
///   a certain delay masks the reorder decision: a masked reorder
///   probability collapses to zero, and a masked positive delay
///   probability collapses to one — its exact value can no longer
///   matter, but its *positivity* still sizes the executor's round cap;
/// - the seed is erased when no reachable decision can draw from the RNG
///   stream: no *unmasked* probability lies strictly inside `(0, 1)`,
///   reorders never fire, and replays never fire (firing reorders and
///   replays draw extra randomness even at probability 1);
/// - the delay duration is erased when the delay axis is fully inert.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlanFingerprint {
    /// The seed, kept only if some decision draws randomness.
    seed: Option<u64>,
    /// Canonical probability bits, in drop/dup/delay/reorder/replay order.
    probs: [u64; 5],
    /// The delay duration, kept only if a delay can fire.
    delay_rounds: u32,
    /// The compromise schedule, in plan order.
    compromises: Vec<(Key, i64)>,
}

impl PlanFingerprint {
    /// Canonicalizes `plan`. The result is only meaningful for plans
    /// that pass [`FaultPlan::validate`]; invalid plans are rejected
    /// before fingerprinting by the sweep engine.
    pub fn of(plan: &FaultPlan) -> Self {
        // Clamp to the executor's effective behavior: `p > 0.0` guards
        // every decision, and `gen_bool` returns early at `p >= 1.0`
        // without consuming the stream.
        fn canon(p: f64) -> u64 {
            if p <= 0.0 {
                0.0f64.to_bits()
            } else if p >= 1.0 {
                1.0f64.to_bits()
            } else {
                p.to_bits()
            }
        }
        // The executor gates delay on `!drop` and reorder on
        // `!drop && !delay` (short-circuit: a masked `gen_bool` is never
        // evaluated and consumes nothing), so a certain drop makes the
        // delay and reorder decisions unreachable, and a certain delay
        // makes the reorder decision unreachable.
        let drop_certain = plan.drop_p >= 1.0;
        let delay_reachable = !drop_certain;
        let reorder_reachable = !drop_certain && plan.delay_p < 1.0;
        // A masked positive delay probability still adds `delay_rounds`
        // to the executor's round cap (`delay_p > 0.0` is the cap's
        // guard), so positivity survives canonicalization even though
        // the exact value cannot matter; a masked reorder probability is
        // completely inert and collapses to zero.
        let delay_bits = if !delay_reachable && plan.delay_p > 0.0 {
            1.0f64.to_bits()
        } else {
            canon(plan.delay_p)
        };
        let reorder_bits = if reorder_reachable {
            canon(plan.reorder_p)
        } else {
            0.0f64.to_bits()
        };
        let probs = [
            canon(plan.drop_p),
            canon(plan.duplicate_p),
            delay_bits,
            reorder_bits,
            canon(plan.replay_p),
        ];
        let draws = |p: f64| p > 0.0 && p < 1.0;
        let fractional = draws(plan.drop_p)
            || draws(plan.duplicate_p)
            || (delay_reachable && draws(plan.delay_p))
            || (reorder_reachable && draws(plan.reorder_p))
            || draws(plan.replay_p);
        // With every reachable probability at 0 or 1, the only remaining
        // draws are the reorder span (when a reorder actually fires:
        // certain reorder not masked by a certain drop or delay) and the
        // replay pick (when a replay fires).
        let reorder_fires = reorder_reachable && plan.reorder_p >= 1.0;
        let replay_fires = plan.replay_p >= 1.0;
        let seed = (fractional || reorder_fires || replay_fires).then_some(plan.seed);
        let delay_rounds = if plan.delay_p > 0.0 {
            plan.delay_rounds
        } else {
            0
        };
        PlanFingerprint {
            seed,
            probs,
            delay_rounds,
            compromises: plan.compromises.clone(),
        }
    }

    /// True if the seed survived canonicalization (i.e. the plan's
    /// decisions actually draw randomness).
    pub fn seed_matters(&self) -> bool {
        self.seed.is_some()
    }

    /// A canonical single-line rendering of the fingerprint, stable
    /// across processes: the surviving seed (or `-`), the canonical
    /// probability bit patterns, the surviving delay duration, and the
    /// escaped compromise schedule. Distinct fingerprints render
    /// distinctly, so the rendering (and [`digest`](Self::digest) of it)
    /// can key wire messages and on-disk store entries.
    pub fn wire(&self) -> String {
        use std::fmt::Write as _;
        let mut out = match self.seed {
            Some(seed) => format!("seed={seed}"),
            None => "seed=-".to_string(),
        };
        let _ = write!(
            out,
            " probs={:016x},{:016x},{:016x},{:016x},{:016x} rounds={}",
            self.probs[0],
            self.probs[1],
            self.probs[2],
            self.probs[3],
            self.probs[4],
            self.delay_rounds
        );
        for (key, t) in &self.compromises {
            let _ = write!(out, " comp={}@{t}", crate::wire::escape(&key.to_string()));
        }
        out
    }

    /// A stable 64-bit digest of [`wire`](Self::wire), used to key
    /// outcomes compactly in the serve protocol and the outcome store.
    pub fn digest(&self) -> u64 {
        // Like `execution_context_digest` below: `DefaultHasher::new()` is keyed
        // with constants, so the digest is stable across processes.
        let mut h = DefaultHasher::new();
        self.wire().hash(&mut h);
        h.finish()
    }
}

/// The outcome of executing one plan: the run and report, or the error.
pub type ExecOutcome = Result<(Run, ExecReport), ModelError>;

/// The cache key: context digest + canonical plan.
type CacheKey = (u64, PlanFingerprint);

/// The cache's storage plus the bookkeeping a bounded cache needs.
#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<CacheKey, Arc<ExecOutcome>>,
    /// Keys in insertion order, consulted only when `capacity` is set.
    order: std::collections::VecDeque<CacheKey>,
    /// FIFO eviction threshold; `None` means the cache never evicts.
    capacity: Option<usize>,
    evictions: u64,
}

/// A process-wide, thread-safe cache of executions keyed by
/// `(protocol digest, plan fingerprint)`.
///
/// The cache is [`Arc`]-backed: clones share storage, so one cache can
/// serve every stage of a multi-stage sweep (and the baseline/degraded
/// pair of an `inject` analysis) across threads. Entries hold the full
/// [`ExecOutcome`] behind an `Arc`, so hits are reference bumps, not
/// deep run copies — and an outcome handed out before an eviction stays
/// valid for as long as the holder keeps its `Arc`, so evicting never
/// invalidates in-flight work.
///
/// [`new`](Self::new) is unbounded (growth-only, the historical
/// behavior); [`bounded`](Self::bounded) evicts oldest-inserted-first
/// once the capacity is exceeded, which long-lived daemons use to put a
/// ceiling on memory.
#[derive(Clone, Debug, Default)]
pub struct ExecutionCache {
    entries: Arc<Mutex<CacheInner>>,
}

impl ExecutionCache {
    /// An empty, unbounded cache: entries are never evicted.
    pub fn new() -> Self {
        ExecutionCache::default()
    }

    /// An empty cache that holds at most `capacity` entries (min 1),
    /// evicting the oldest-inserted once full.
    pub fn bounded(capacity: usize) -> Self {
        let cache = ExecutionCache::default();
        cache.lock().capacity = Some(capacity.max(1));
        cache
    }

    /// How many distinct executions the cache holds.
    pub fn len(&self) -> usize {
        self.lock().map.len()
    }

    /// True if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many entries a bounded cache has evicted so far (always 0
    /// for an unbounded cache; never reset, including by `clear`).
    pub fn evictions(&self) -> u64 {
        self.lock().evictions
    }

    /// Drops every entry (e.g. between unrelated protocols in a
    /// long-lived process).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.order.clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        // A poisoned map only means a panic elsewhere mid-insert; the
        // map itself is still consistent (inserts are atomic).
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn get(&self, key: &CacheKey) -> Option<Arc<ExecOutcome>> {
        self.lock().map.get(key).cloned()
    }

    fn insert(&self, key: CacheKey, outcome: Arc<ExecOutcome>) {
        let mut inner = self.lock();
        if inner.map.insert(key.clone(), outcome).is_none() && inner.capacity.is_some() {
            inner.order.push_back(key);
        }
        while inner
            .capacity
            .is_some_and(|capacity| inner.map.len() > capacity)
        {
            let Some(victim) = inner.order.pop_front() else {
                break;
            };
            if inner.map.remove(&victim).is_some() {
                inner.evictions += 1;
            }
        }
    }
}

/// A stable digest of everything besides the plan that determines a
/// faulted execution: the protocol and the execution options. This is
/// the context half of the [`ExecutionCache`] key, so any edit that
/// changes executor-visible behavior changes the digest — a cache shared
/// across spec reloads can never serve a pre-edit outcome for a
/// post-edit protocol. (Goal and belief-assumption edits leave the
/// enacted [`Protocol`] untouched and legitimately keep the digest.)
pub fn execution_context_digest(protocol: &Protocol, options: &ExecOptions) -> u64 {
    // `DefaultHasher::new()` is keyed with constants, so the digest is
    // stable within and across processes for the same inputs. The debug
    // rendering covers every field of both structures.
    let mut h = DefaultHasher::new();
    format!("{protocol:?}").hash(&mut h);
    format!("{options:?}").hash(&mut h);
    h.finish()
}

/// One plan's slot in a [`SweepOutcome`].
#[derive(Clone, Debug)]
pub struct PlanResult {
    /// The plan as enumerated.
    pub plan: FaultPlan,
    /// Its canonical fingerprint.
    pub fingerprint: PlanFingerprint,
    /// The shared execution outcome (possibly served by another plan
    /// with the same fingerprint, or by the cache).
    pub outcome: Arc<ExecOutcome>,
}

impl PlanResult {
    /// The run and report, if execution succeeded.
    pub fn ok(&self) -> Option<(&Run, &ExecReport)> {
        self.outcome.as_ref().as_ref().ok().map(|(r, rep)| (r, rep))
    }
}

/// Bookkeeping for one sweep: how much enumeration, dedup, and caching
/// saved, and how the executions went.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Plans enumerated (the full grid).
    pub enumerated: usize,
    /// Plans rejected by [`FaultPlan::validate`] without executing.
    pub invalid: usize,
    /// Distinct fingerprints among the valid plans.
    pub unique: usize,
    /// Distinct fingerprints answered by the execution cache.
    pub cache_hits: usize,
    /// Distinct fingerprints actually executed by this sweep.
    pub executed: usize,
    /// Plans whose execution succeeded but deviated from the clean
    /// interleaving (faults applied, retries, or abandoned steps).
    pub degraded: usize,
    /// Plans whose execution failed (stall or invalid plan).
    pub failed: usize,
}

impl std::fmt::Display for SweepStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} plan(s) enumerated, {} deduplicated away, {} cache hit(s), {} executed; \
             {} degraded, {} failed",
            self.enumerated,
            self.enumerated - self.invalid - self.unique,
            self.cache_hits,
            self.executed,
            self.degraded,
            self.failed
        )
    }
}

/// Everything a sweep produced: one [`PlanResult`] per enumerated plan
/// (in enumeration order) plus the [`SweepStats`].
#[derive(Clone, Debug)]
pub struct SweepOutcome {
    /// Per-plan results, aligned with the input plan order.
    pub results: Vec<PlanResult>,
    /// Dedup/cache/execution accounting.
    pub stats: SweepStats,
}

impl SweepOutcome {
    /// The distinct well-formed runs of the sweep, in first-occurrence
    /// order, as a [`System`] ready for the semantics pipeline.
    pub fn system(&self) -> System {
        let mut runs: Vec<Run> = Vec::new();
        for result in &self.results {
            if let Some((run, _)) = result.ok() {
                if !runs.contains(run) {
                    runs.push(run.clone());
                }
            }
        }
        System::new(runs)
    }

    /// The successful `(plan, run, report)` triples in plan order.
    pub fn ok_results(&self) -> impl Iterator<Item = (&FaultPlan, &Run, &ExecReport)> {
        self.results
            .iter()
            .filter_map(|r| r.ok().map(|(run, rep)| (&r.plan, run, rep)))
    }
}

/// Executes `plans` against `protocol`, deduplicating by fingerprint,
/// serving repeats from `cache`, and sharding the remaining executions
/// across `pool`.
///
/// The result is **bit-identical at every worker count**: plans are
/// fingerprinted and deduplicated in enumeration order, the missing
/// executions are merged back by index, and every duplicate plan shares
/// the `Arc` of its first occurrence. Passing the same `cache` to a
/// later sweep (or to [`sweep_plans_on`] with an overlapping grid)
/// turns repeated work into reference bumps.
pub fn sweep_plans_on(
    protocol: &Protocol,
    options: &ExecOptions,
    plans: &[FaultPlan],
    pool: &Pool,
    cache: &ExecutionCache,
) -> SweepOutcome {
    let digest = execution_context_digest(protocol, options);
    sweep_plans_resolve(digest, plans, cache, |missing| {
        pool.map(missing, |_, (i, _)| {
            Arc::new(execute_with_faults(protocol, options, &plans[*i]))
        })
    })
}

/// The generalized sweep engine: like [`sweep_plans_on`], but the
/// executions themselves come from a caller-supplied resolver, so the
/// same dedup/cache/merge/accounting path serves local pools, remote
/// workers, and persisted outcome stores — whatever resolves a
/// fingerprint, the assembled [`SweepOutcome`] is identical.
///
/// `context` is the caller's digest of everything besides the plan that
/// determines an execution (protocol and options for local sweeps; spec
/// text and options for distributed ones). `resolve` receives the
/// missing `(plan index, fingerprint)` pairs in enumeration order and
/// must return one outcome per pair, in the same order; the engine
/// inserts them into `cache` and merges by index, so resolution order
/// inside the resolver never shows in the output. `stats.executed`
/// counts the fingerprints the resolver was asked for, however it
/// obtained them.
pub fn sweep_plans_resolve<F>(
    context: u64,
    plans: &[FaultPlan],
    cache: &ExecutionCache,
    resolve: F,
) -> SweepOutcome
where
    F: FnOnce(&[(usize, PlanFingerprint)]) -> Vec<Arc<ExecOutcome>>,
{
    let digest = context;
    let mut stats = SweepStats {
        enumerated: plans.len(),
        ..SweepStats::default()
    };

    // Fingerprint every plan; reject invalid ones up front (they would
    // fail inside the executor anyway, but this keeps NaN bit patterns
    // and other junk out of the dedup map).
    let slots: Vec<(PlanFingerprint, Option<Arc<ExecOutcome>>)> = plans
        .iter()
        .map(|plan| {
            let fp = PlanFingerprint::of(plan);
            let invalid = plan
                .validate()
                .err()
                .map(|e| Arc::new(Err(ModelError::Fault(e))));
            if invalid.is_some() {
                stats.invalid += 1;
            }
            (fp, invalid)
        })
        .collect();

    // Dedup to the first occurrence of each fingerprint among the valid
    // plans, in enumeration order, then consult the cache once per
    // unique fingerprint; everything missing is executed on the pool
    // and merged back in index order.
    let mut resolved: BTreeMap<PlanFingerprint, Arc<ExecOutcome>> = BTreeMap::new();
    let mut seen: std::collections::BTreeSet<PlanFingerprint> = std::collections::BTreeSet::new();
    let mut missing: Vec<(usize, PlanFingerprint)> = Vec::new();
    for (i, (fp, invalid)) in slots.iter().enumerate() {
        if invalid.is_some() || !seen.insert(fp.clone()) {
            continue;
        }
        match cache.get(&(digest, fp.clone())) {
            Some(hit) => {
                stats.cache_hits += 1;
                resolved.insert(fp.clone(), hit);
            }
            None => missing.push((i, fp.clone())),
        }
    }
    stats.unique = seen.len();
    stats.executed = missing.len();
    let executed: Vec<Arc<ExecOutcome>> = resolve(&missing);
    assert_eq!(
        executed.len(),
        missing.len(),
        "sweep resolver returned the wrong number of outcomes"
    );
    for ((_, fp), outcome) in missing.iter().zip(executed) {
        cache.insert((digest, fp.clone()), Arc::clone(&outcome));
        resolved.insert(fp.clone(), outcome);
    }

    // Assemble per-plan results; duplicates share their representative's
    // Arc, so no run is ever cloned here.
    let results: Vec<PlanResult> = plans
        .iter()
        .zip(slots)
        .map(|(plan, (fp, invalid))| {
            let outcome = invalid.unwrap_or_else(|| Arc::clone(&resolved[&fp]));
            match outcome.as_ref() {
                Ok((_, report)) if report.degraded() => stats.degraded += 1,
                Ok(_) => {}
                Err(_) => stats.failed += 1,
            }
            PlanResult {
                plan: plan.clone(),
                fingerprint: fp,
                outcome,
            }
        })
        .collect();

    SweepOutcome { results, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{ExpectPolicy, Role};
    use atl_lang::{Message, Nonce, Principal};

    fn nonce(s: &str) -> Message {
        Message::nonce(Nonce::new(s))
    }

    fn lossy_ping_pong() -> Protocol {
        Protocol::new("lossy")
            .role(
                Role::new("A", [])
                    .send(nonce("ping"), "B")
                    .expect_with(nonce("pong"), ExpectPolicy::skip_after(3)),
            )
            .role(
                Role::new("B", [])
                    .expect_with(nonce("ping"), ExpectPolicy::skip_after(3))
                    .send(nonce("pong"), "A"),
            )
    }

    #[test]
    fn grid_enumerates_cartesian_product_in_order() {
        let grid = SweepGrid::new()
            .seeds(3..5)
            .drop_steps([0.0, 1.0])
            .replay_steps([0.25]);
        let plans = grid.plans();
        assert_eq!(plans.len(), grid.len());
        assert_eq!(plans.len(), 4);
        assert_eq!(
            plans.iter().map(|p| (p.seed, p.drop_p)).collect::<Vec<_>>(),
            vec![(3, 0.0), (3, 1.0), (4, 0.0), (4, 1.0)]
        );
        assert!(plans.iter().all(|p| p.replay_p == 0.25));
        assert!(grid.validate().is_ok());
    }

    #[test]
    fn grid_validation_mirrors_plan_validation() {
        let bad = SweepGrid::new().drop_steps([0.5, 1.5]);
        assert!(matches!(
            bad.validate(),
            Err(FaultError::BadProbability { field: "drop", .. })
        ));
        let bad = SweepGrid::new().delay_steps([0.5], 0);
        assert!(matches!(bad.validate(), Err(FaultError::BadDelay { .. })));
        // A zero-round duration is fine while no delay step can fire.
        assert!(SweepGrid::new().delay_steps([0.0], 0).validate().is_ok());
        assert!(SweepGrid::new().seeds(5..5).is_empty());
    }

    #[test]
    fn fingerprint_erases_irrelevant_seed_and_rounds() {
        // Inert plans: seed never drawn, so any two seeds coincide.
        assert_eq!(
            PlanFingerprint::of(&FaultPlan::new(1)),
            PlanFingerprint::of(&FaultPlan::new(99))
        );
        // Certain drops never draw either.
        assert_eq!(
            PlanFingerprint::of(&FaultPlan::new(1).drop(1.0)),
            PlanFingerprint::of(&FaultPlan::new(2).drop(1.0))
        );
        // A fractional probability keeps the seed.
        assert_ne!(
            PlanFingerprint::of(&FaultPlan::new(1).drop(0.5)),
            PlanFingerprint::of(&FaultPlan::new(2).drop(0.5))
        );
        assert!(PlanFingerprint::of(&FaultPlan::new(1).drop(0.5)).seed_matters());
        // Certain replays draw the replay pick; certain reorders draw the
        // span — unless a certain drop masks the reorder entirely.
        assert!(PlanFingerprint::of(&FaultPlan::new(0).replay(1.0)).seed_matters());
        assert!(PlanFingerprint::of(&FaultPlan::new(0).reorder(1.0)).seed_matters());
        assert!(!PlanFingerprint::of(&FaultPlan::new(0).reorder(1.0).drop(1.0)).seed_matters());
        // Delay duration is erased while delays cannot fire.
        assert_eq!(
            PlanFingerprint::of(&FaultPlan::new(0).delay(0.0, 7)),
            PlanFingerprint::of(&FaultPlan::new(0).delay(0.0, 2))
        );
        assert_ne!(
            PlanFingerprint::of(&FaultPlan::new(0).delay(1.0, 7)),
            PlanFingerprint::of(&FaultPlan::new(0).delay(1.0, 2))
        );
        // Compromises are part of the identity.
        assert_ne!(
            PlanFingerprint::of(&FaultPlan::new(0).compromise("Kab", 2)),
            PlanFingerprint::of(&FaultPlan::new(0))
        );
    }

    #[test]
    fn fingerprint_erases_axes_the_rng_never_consumes() {
        // The executor evaluates the delay decision only when the
        // message was not dropped: under a certain drop a fractional
        // delay probability is never sampled, so the seed cannot matter
        // and two plans differing only in it must canonicalize
        // identically.
        let a = FaultPlan::new(1).drop(1.0).delay(0.5, 3);
        let b = FaultPlan::new(99).drop(1.0).delay(0.5, 3);
        assert_eq!(PlanFingerprint::of(&a), PlanFingerprint::of(&b));
        assert!(!PlanFingerprint::of(&a).seed_matters());
        // The exact masked delay probability cannot matter either —
        // only its positivity survives (it still sizes the round cap).
        let c = FaultPlan::new(1).drop(1.0).delay(0.9, 3);
        assert_eq!(PlanFingerprint::of(&a), PlanFingerprint::of(&c));
        assert_ne!(
            PlanFingerprint::of(&a),
            PlanFingerprint::of(&FaultPlan::new(1).drop(1.0)),
            "delay positivity still sizes the round cap"
        );
        // A reorder masked by a certain delay is never sampled and is
        // completely inert: it collapses to the no-reorder plan.
        let d = FaultPlan::new(1).delay(1.0, 2).reorder(0.5);
        let e = FaultPlan::new(1).delay(1.0, 2).reorder(0.3);
        assert_eq!(PlanFingerprint::of(&d), PlanFingerprint::of(&e));
        assert_eq!(
            PlanFingerprint::of(&d),
            PlanFingerprint::of(&FaultPlan::new(1).delay(1.0, 2))
        );
        assert!(!PlanFingerprint::of(&d).seed_matters());
        // The collapses are sound: equal fingerprints, equal executions.
        let proto = lossy_ping_pong();
        let opts = ExecOptions::default();
        let ra = execute_with_faults(&proto, &opts, &a).unwrap();
        assert_eq!(ra, execute_with_faults(&proto, &opts, &b).unwrap());
        assert_eq!(ra, execute_with_faults(&proto, &opts, &c).unwrap());
        let rd = execute_with_faults(&proto, &opts, &d).unwrap();
        assert_eq!(rd, execute_with_faults(&proto, &opts, &e).unwrap());
    }

    #[test]
    fn equal_fingerprints_mean_equal_executions() {
        let proto = lossy_ping_pong();
        let opts = ExecOptions::default();
        // Seeds differ but the fingerprints coincide (certain drop):
        // executions must too.
        let a = execute_with_faults(&proto, &opts, &FaultPlan::new(1).drop(1.0)).unwrap();
        let b = execute_with_faults(&proto, &opts, &FaultPlan::new(77).drop(1.0)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_dedupes_and_caches() {
        let proto = lossy_ping_pong();
        let opts = ExecOptions::default();
        // 4 seeds × certain drop: one fingerprint, one execution.
        let plans: Vec<FaultPlan> = (0..4).map(|s| FaultPlan::new(s).drop(1.0)).collect();
        let cache = ExecutionCache::new();
        let pool = Pool::sequential();
        let outcome = sweep_plans_on(&proto, &opts, &plans, &pool, &cache);
        assert_eq!(outcome.stats.enumerated, 4);
        assert_eq!(outcome.stats.unique, 1);
        assert_eq!(outcome.stats.executed, 1);
        assert_eq!(outcome.stats.cache_hits, 0);
        assert_eq!(cache.len(), 1);
        // All four plans share the one outcome.
        let first = &outcome.results[0];
        assert!(outcome
            .results
            .iter()
            .all(|r| Arc::ptr_eq(&r.outcome, &first.outcome)));
        // A second sweep over the same grid is pure cache hits.
        let again = sweep_plans_on(&proto, &opts, &plans, &pool, &cache);
        assert_eq!(again.stats.cache_hits, 1);
        assert_eq!(again.stats.executed, 0);
        assert_eq!(
            again.results[0].ok().map(|(r, _)| r.clone()),
            first.ok().map(|(r, _)| r.clone())
        );
    }

    #[test]
    fn cache_distinguishes_contexts() {
        let proto = lossy_ping_pong();
        let cache = ExecutionCache::new();
        let pool = Pool::sequential();
        let plans = [FaultPlan::new(0)];
        sweep_plans_on(&proto, &ExecOptions::default(), &plans, &pool, &cache);
        let public = ExecOptions {
            public_channel: true,
            ..ExecOptions::default()
        };
        let outcome = sweep_plans_on(&proto, &public, &plans, &pool, &cache);
        // Different options: the earlier entry must not answer.
        assert_eq!(outcome.stats.cache_hits, 0);
        assert_eq!(outcome.stats.executed, 1);
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn invalid_plans_fail_without_executing() {
        let proto = lossy_ping_pong();
        let cache = ExecutionCache::new();
        let plans = [FaultPlan::new(0).drop(2.0), FaultPlan::new(0)];
        let outcome = sweep_plans_on(
            &proto,
            &ExecOptions::default(),
            &plans,
            &Pool::sequential(),
            &cache,
        );
        assert_eq!(outcome.stats.invalid, 1);
        assert_eq!(outcome.stats.failed, 1);
        assert_eq!(outcome.stats.unique, 1);
        assert!(matches!(
            outcome.results[0].outcome.as_ref(),
            Err(ModelError::Fault(_))
        ));
        assert!(outcome.results[1].ok().is_some());
        // The system keeps only the well-formed runs.
        assert_eq!(outcome.system().len(), 1);
    }

    #[test]
    fn sweep_is_identical_at_every_worker_count() {
        let proto = lossy_ping_pong();
        let opts = ExecOptions::default();
        let grid = SweepGrid::new()
            .seeds(0..6)
            .drop_steps([0.0, 0.5, 1.0])
            .duplicate_steps([0.0, 0.5]);
        let plans = grid.plans();
        let reference = sweep_plans_on(
            &proto,
            &opts,
            &plans,
            &Pool::sequential(),
            &ExecutionCache::new(),
        );
        for jobs in [2, 4, 8] {
            let outcome = sweep_plans_on(
                &proto,
                &opts,
                &plans,
                &Pool::new(jobs),
                &ExecutionCache::new(),
            );
            assert_eq!(outcome.stats, reference.stats, "stats differ at {jobs}");
            for (a, b) in reference.results.iter().zip(&outcome.results) {
                assert_eq!(a.plan, b.plan);
                assert_eq!(a.fingerprint, b.fingerprint);
                assert_eq!(a.outcome.as_ref(), b.outcome.as_ref(), "jobs={jobs}");
            }
            assert_eq!(outcome.system().runs(), reference.system().runs());
        }
    }

    #[test]
    fn stats_display_accounts_for_everything() {
        let proto = lossy_ping_pong();
        let plans: Vec<FaultPlan> = (0..3).map(FaultPlan::new).collect();
        let outcome = sweep_plans_on(
            &proto,
            &ExecOptions::default(),
            &plans,
            &Pool::sequential(),
            &ExecutionCache::new(),
        );
        let line = outcome.stats.to_string();
        assert!(line.contains("3 plan(s) enumerated"), "{line}");
        assert!(line.contains("2 deduplicated away"), "{line}");
        assert!(line.contains("1 executed"), "{line}");
        // The three inert plans produce the one clean run.
        let env = Principal::environment();
        let sys = outcome.system();
        assert_eq!(sys.len(), 1);
        assert!(sys.runs()[0].send_records().iter().all(|r| r.sender != env));
    }

    #[test]
    fn execution_cache_grows_monotonically_without_eviction() {
        let proto = lossy_ping_pong();
        let opts = ExecOptions::default();
        let pool = Pool::sequential();
        let cache = ExecutionCache::new();
        assert!(cache.is_empty());
        let mut lens = Vec::new();
        for seed in 0..6u64 {
            // drop 0.5 draws the RNG, so every seed is a distinct
            // fingerprint.
            let plan = FaultPlan::new(seed).drop(0.5);
            let out = sweep_plans_on(&proto, &opts, std::slice::from_ref(&plan), &pool, &cache);
            assert_eq!(out.stats.cache_hits, 0, "seed {seed} was never cached");
            assert_eq!(out.stats.executed, 1);
            lens.push(cache.len());
        }
        // Growth only: no entry is ever displaced by a later one.
        assert!(lens.windows(2).all(|w| w[0] < w[1]), "lens {lens:?}");
        assert_eq!(cache.len(), 6);
        // Every early fingerprint still answers — the cache is
        // eviction-free, unlike the daemon's LRU session store above it.
        let plans: Vec<FaultPlan> = (0..6).map(|s| FaultPlan::new(s).drop(0.5)).collect();
        let replay = sweep_plans_on(&proto, &opts, &plans, &pool, &cache);
        assert_eq!(replay.stats.cache_hits, 6);
        assert_eq!(replay.stats.executed, 0);
        assert_eq!(cache.len(), 6);
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn bounded_cache_evicts_oldest_without_invalidating_holders() {
        let proto = lossy_ping_pong();
        let opts = ExecOptions::default();
        let pool = Pool::sequential();
        let cache = ExecutionCache::bounded(2);
        assert_eq!(cache.evictions(), 0);
        // Three distinct fingerprints through a 2-entry cache.
        let plans: Vec<FaultPlan> = (0..3).map(|s| FaultPlan::new(s).drop(0.5)).collect();
        let first = sweep_plans_on(&proto, &opts, &plans[..1], &pool, &cache);
        let held = Arc::clone(&first.results[0].outcome);
        sweep_plans_on(&proto, &opts, &plans[1..2], &pool, &cache);
        sweep_plans_on(&proto, &opts, &plans[2..], &pool, &cache);
        assert_eq!(cache.len(), 2, "capacity bounds the cache");
        assert_eq!(cache.evictions(), 1, "oldest entry was evicted");
        // Eviction never invalidates an outcome already handed out: the
        // Arc taken before the eviction still reads the same execution.
        assert_eq!(held.as_ref(), first.results[0].outcome.as_ref());
        assert!(held.as_ref().is_ok());
        // The evicted (oldest) fingerprint re-executes; the two newest
        // still answer from the cache.
        let replay = sweep_plans_on(&proto, &opts, &plans, &pool, &cache);
        assert_eq!(replay.stats.cache_hits, 2);
        assert_eq!(replay.stats.executed, 1);
        // Evictions are monotonic and survive `clear`.
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.evictions() >= 1);
        // An unbounded cache never evicts, whatever flows through it.
        let unbounded = ExecutionCache::new();
        for plan in &plans {
            sweep_plans_on(&proto, &opts, std::slice::from_ref(plan), &pool, &unbounded);
        }
        assert_eq!(unbounded.len(), 3);
        assert_eq!(unbounded.evictions(), 0);
    }

    #[test]
    fn execution_cache_keys_by_protocol_and_options() {
        let proto = lossy_ping_pong();
        let pool = Pool::sequential();
        let cache = ExecutionCache::new();
        let plan = FaultPlan::new(0);
        let first = sweep_plans_on(
            &proto,
            &ExecOptions::default(),
            std::slice::from_ref(&plan),
            &pool,
            &cache,
        );
        assert_eq!(first.stats.executed, 1);
        // Same plan, different execution options: a distinct context
        // digest, so no false hit.
        let public = ExecOptions {
            public_channel: true,
            ..ExecOptions::default()
        };
        let second = sweep_plans_on(&proto, &public, std::slice::from_ref(&plan), &pool, &cache);
        assert_eq!(second.stats.cache_hits, 0);
        assert_eq!(second.stats.executed, 1);
        assert_eq!(cache.len(), 2);
        // And the original context still hits.
        let again = sweep_plans_on(
            &proto,
            &ExecOptions::default(),
            std::slice::from_ref(&plan),
            &pool,
            &cache,
        );
        assert_eq!(again.stats.cache_hits, 1);
        assert_eq!(cache.len(), 2);
    }
}
