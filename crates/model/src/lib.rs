//! # atl-model
//!
//! The model of computation of *A Semantics for a Logic of Authentication*
//! (Abadi & Tuttle, PODC 1991), Section 5: principals with local histories
//! and key sets, an environment holding the global history and message
//! buffers, `send`/`receive`/`newkey` actions, timed runs with an epoch
//! boundary at time 0, and systems (sets of runs) with an interpretation of
//! primitive propositions.
//!
//! Construction is checked: [`RunBuilder`] enforces the paper's five
//! well-formedness restrictions, [`validate_run`] audits finished runs,
//! [`execute`] turns scripted [`Protocol`]s into runs, [`random_system`]
//! grows adversarial systems for model checking, and [`parse_trace`] /
//! [`render_trace`] move runs to and from a textual trace format.
//!
//! ```
//! use atl_lang::{Message, Nonce};
//! use atl_model::{execute, ExecOptions, Protocol, Role};
//! let ping = Message::nonce(Nonce::new("ping"));
//! let proto = Protocol::new("ping")
//!     .role(Role::new("A", []).send(ping.clone(), "B"))
//!     .role(Role::new("B", []).expect(ping));
//! let run = execute(&proto, &ExecOptions::default())?;
//! assert_eq!(run.send_records().len(), 1);
//! # Ok::<(), atl_model::ModelError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod action;
mod adversary;
mod error;
mod executor;
mod faults;
pub mod parallel;
mod protocol;
mod run;
mod search;
mod state;
mod sweep;
mod system;
mod trace;
mod validate;
pub mod wire;

pub use action::{Action, Event};
pub use adversary::{random_run, random_system, GenConfig};
pub use error::ModelError;
pub use executor::{
    execute, execute_fault_suite, execute_schedules, execute_sweep_on, execute_with_faults,
    execute_with_report, rotation_schedules, ExecOptions,
};
pub use faults::{AbandonedStep, ExecReport, FaultError, FaultEvent, FaultKind, FaultPlan};
pub use protocol::{ExpectPolicy, MsgPattern, OnTimeout, Protocol, Role, RoleStep};
pub use run::{final_env, Run, RunBuilder, SendRecord};
pub use search::{
    hunt_plans_on, DegradationClass, HuntConfig, HuntOutcome, HuntStats, HuntStore, MutationSpace,
};
pub use state::{EnvState, GlobalState, LocalState};
pub use sweep::{
    execution_context_digest, sweep_plans_on, sweep_plans_resolve, ExecOutcome, ExecutionCache,
    PlanFingerprint, PlanResult, SweepGrid, SweepOutcome, SweepStats,
};
pub use system::{Interpretation, Point, System};
pub use trace::{parse_trace, render_trace, FeedOutcome, TraceError, TraceFeed};
pub use validate::{validate_run, Violation};
