//! A textual trace format for runs, so concrete executions can be
//! written, audited, and queried from files (see the `atl` CLI).
//!
//! The format is line-based; `#` starts a comment:
//!
//! ```text
//! run start -2
//! principal A keys Kas
//! principal S keys Kas Kbs
//! env keys Ke
//! bind Kab = K9                # run parameter (Section 8)
//!
//! send A -> S : Na             # one action per line, in order
//! recv S : Na
//! newkey S Kab
//! ```
//!
//! Messages use the [`atl_lang::parser`] concrete syntax; principals and
//! keys declared in the header seed its symbol table. Construction goes
//! through the *unchecked* path so deliberately ill-formed traces can be
//! written and then audited with
//! [`validate_run`](crate::validate::validate_run).

use crate::error::ModelError;
use crate::run::{Run, RunBuilder};
use atl_lang::parser::{parse_message, Symbols};
use atl_lang::{Key, Param, Principal};
use std::error::Error;
use std::fmt;

/// Error produced when a trace fails to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl TraceError {
    /// The one-line `file:line: message` diagnostic for this error, the
    /// format every parse failure surfaces in (CLI exit code 3, daemon
    /// `ERR` lines).
    pub fn diagnostic(&self, origin: &str) -> String {
        format!("{origin}:{}: {}", self.line, self.message)
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl Error for TraceError {}

fn err(line: usize, message: impl Into<String>) -> TraceError {
    TraceError {
        line,
        message: message.into(),
    }
}

/// Splits `A keys K1 K2 …` (the key list may be absent).
fn split_keys(rest: &str, lineno: usize) -> Result<(String, Vec<String>), TraceError> {
    let mut parts = rest.split_whitespace();
    let name = parts
        .next()
        .ok_or_else(|| err(lineno, "principal needs a name"))?
        .to_string();
    let keys: Vec<String> = match parts.next() {
        Some("keys") => parts.map(str::to_string).collect(),
        None => Vec::new(),
        Some(other) => return Err(err(lineno, format!("expected `keys`, found `{other}`"))),
    };
    Ok((name, keys))
}

/// One classified trace line. Both the batch parser ([`parse_trace`])
/// and the streaming feed ([`TraceFeed`]) go through
/// [`classify_line`] + the `apply_*` helpers below, so there is exactly
/// one grammar — a line means the same thing whether it arrives from a
/// file, stdin, or the serve-mode `EVENT` verb.
#[derive(Clone, Debug, PartialEq, Eq)]
enum TraceLine {
    /// Blank or comment-only.
    Blank,
    /// `run start <time>`.
    RunStart(i64),
    /// `principal P keys K1 K2 …`.
    Principal { name: String, keys: Vec<String> },
    /// `env keys K1 K2 …`.
    EnvKeys(Vec<String>),
    /// `bind PARAM = MESSAGE` (message text kept raw; it parses against
    /// the symbol table when applied).
    Bind { param: String, value: String },
    /// `send`/`recv`/`newkey` with its argument text.
    Action { keyword: ActionKind, rest: String },
}

/// The three action keywords.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ActionKind {
    Send,
    Recv,
    NewKey,
}

/// Classifies one raw line (comments stripped) without touching any
/// builder state.
fn classify_line(raw: &str, lineno: usize) -> Result<TraceLine, TraceError> {
    let line = raw.split('#').next().unwrap_or("").trim();
    if line.is_empty() {
        return Ok(TraceLine::Blank);
    }
    let (keyword, rest) = match line.split_once(char::is_whitespace) {
        Some((k, r)) => (k, r.trim()),
        None => (line, ""),
    };
    match keyword {
        "run" => {
            let rest = rest
                .strip_prefix("start")
                .map(str::trim)
                .ok_or_else(|| err(lineno, "expected `run start <time>`"))?;
            let t = rest
                .parse()
                .map_err(|_| err(lineno, format!("bad start time `{rest}`")))?;
            Ok(TraceLine::RunStart(t))
        }
        "principal" => {
            let (name, keys) = split_keys(rest, lineno)?;
            Ok(TraceLine::Principal { name, keys })
        }
        "env" => {
            let keys = rest
                .strip_prefix("keys")
                .map(str::trim)
                .ok_or_else(|| err(lineno, "expected `env keys K1 K2 …`"))?;
            Ok(TraceLine::EnvKeys(
                keys.split_whitespace().map(str::to_string).collect(),
            ))
        }
        "bind" => {
            let Some((param, value)) = rest.split_once('=') else {
                return Err(err(lineno, "expected `bind PARAM = MESSAGE`"));
            };
            Ok(TraceLine::Bind {
                param: param.trim().to_string(),
                value: value.trim().to_string(),
            })
        }
        "send" | "recv" | "newkey" => {
            if rest.is_empty() {
                return Err(err(lineno, format!("`{keyword}` takes arguments")));
            }
            let keyword = match keyword {
                "send" => ActionKind::Send,
                "recv" => ActionKind::Recv,
                _ => ActionKind::NewKey,
            };
            Ok(TraceLine::Action {
                keyword,
                rest: rest.to_string(),
            })
        }
        other => Err(err(lineno, format!("unknown directive `{other}`"))),
    }
}

/// Applies a `bind` directive (the message parses against `syms`).
fn apply_bind(
    builder: &mut RunBuilder,
    syms: &Symbols,
    param: &str,
    value: &str,
    lineno: usize,
) -> Result<(), TraceError> {
    let m = parse_message(value, syms).map_err(|e| err(lineno, e.to_string()))?;
    builder.bind_param(Param::new(param), m);
    Ok(())
}

/// Applies one action line to the builder.
fn apply_action(
    builder: &mut RunBuilder,
    syms: &Symbols,
    keyword: ActionKind,
    rest: &str,
    lineno: usize,
) -> Result<(), TraceError> {
    match keyword {
        ActionKind::Send => {
            let Some((route, message)) = rest.split_once(':') else {
                return Err(err(lineno, "send needs `FROM -> TO : MESSAGE`"));
            };
            let Some((from, to)) = route.split_once("->") else {
                return Err(err(lineno, "send route needs `FROM -> TO`"));
            };
            let m = parse_message(message.trim(), syms).map_err(|e| err(lineno, e.to_string()))?;
            builder.send_unchecked(from.trim(), m, to.trim());
        }
        ActionKind::Recv => {
            let Some((p, message)) = rest.split_once(':') else {
                return Err(err(lineno, "recv needs `P : MESSAGE`"));
            };
            let m = parse_message(message.trim(), syms).map_err(|e| err(lineno, e.to_string()))?;
            builder
                .receive(p.trim(), &m)
                .map_err(|e| err(lineno, e.to_string()))?;
        }
        ActionKind::NewKey => {
            let mut parts = rest.split_whitespace();
            let (Some(p), Some(k), None) = (parts.next(), parts.next(), parts.next()) else {
                return Err(err(lineno, "newkey takes exactly `newkey P K`"));
            };
            // `__pad` is the reserved padding key (see
            // `RunBuilder::idle`): the executor emits it without
            // recording any history, so replay it through the same
            // path — otherwise a rendered run would not parse back
            // to an equal run, and outcomes shipped through the
            // wire codec would stop deduplicating against local
            // executions.
            if k == "__pad" && p == Principal::environment().to_string() {
                builder.idle();
            } else {
                builder.new_key(p, k);
            }
        }
    }
    Ok(())
}

/// Parses a trace into a [`Run`] (unchecked — audit with
/// [`validate_run`](crate::validate::validate_run)) plus the declared
/// symbol table, for parsing queries against the run.
///
/// # Errors
///
/// [`TraceError`] with the offending line on any problem, including a
/// `recv` of a message that was never sent to that principal (the only
/// model-level check that cannot be deferred).
pub fn parse_trace(input: &str) -> Result<(Run, Symbols), TraceError> {
    let mut start_time: i64 = 0;
    // The environment principal is always known to the symbol table.
    let mut syms = Symbols::new().principals(["Env".to_string()]);
    let mut builder: Option<RunBuilder> = None;
    let mut header_done = false;
    let mut pending: Vec<(usize, TraceLine)> = Vec::new();

    // First pass: header (so the symbol table is complete before any
    // message parses).
    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        match classify_line(raw, lineno)? {
            TraceLine::Blank => {}
            TraceLine::RunStart(t) => start_time = t,
            TraceLine::Principal { name, keys } => {
                syms = syms.principals([name.clone()]).keys(keys.clone());
                builder
                    .get_or_insert_with(|| RunBuilder::new(start_time))
                    .principal(name.as_str(), keys.iter().map(Key::new));
                if header_done {
                    return Err(err(lineno, "principal declarations must precede actions"));
                }
            }
            TraceLine::EnvKeys(keys) => {
                syms = syms.keys(keys.clone()).principals(["Env".to_string()]);
                builder
                    .get_or_insert_with(|| RunBuilder::new(start_time))
                    .env_keys(keys.iter().map(Key::new));
            }
            line @ TraceLine::Bind { .. } => pending.push((lineno, line)),
            line @ TraceLine::Action { .. } => {
                header_done = true;
                pending.push((lineno, line));
            }
        }
    }
    let mut builder = builder.ok_or_else(|| err(0, "trace declares no principals"))?;

    // Second pass: actions, with the full symbol table.
    for (lineno, line) in pending {
        match line {
            TraceLine::Bind { param, value } => {
                apply_bind(&mut builder, &syms, &param, &value, lineno)?;
            }
            TraceLine::Action { keyword, rest } => {
                apply_action(&mut builder, &syms, keyword, &rest, lineno)?;
            }
            _ => unreachable!("only bind and action lines are deferred"),
        }
    }
    let run = builder
        .build()
        .map_err(|e: ModelError| err(0, e.to_string()))?;
    Ok((run, syms))
}

/// What one line fed to a [`TraceFeed`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FeedOutcome {
    /// A blank line, comment, or header directive: no event appended.
    Directive,
    /// An action line: one event appended, performed at `time`.
    Event {
        /// The time at which the appended event was performed.
        time: i64,
    },
}

/// A streaming, line-at-a-time trace parser — the same grammar as
/// [`parse_trace`] (both go through one shared classifier and one shared
/// set of apply helpers), applied incrementally so a consumer can react
/// after every event instead of waiting for the whole trace.
///
/// One divergence is deliberate and *stricter*, never looser: a stream
/// cannot defer directives, so `run start`, `env keys`, and `bind` are
/// rejected once the first action has been fed (the batch parser hoists
/// them in its first pass). Every trace produced by
/// [`render_trace`] is well-ordered and parses identically either way.
///
/// Line numbers for diagnostics count every fed line (including blanks
/// and comments), so a `TraceError` from a feed carries the same
/// `file:line:` position the batch parser would report for the same
/// input.
#[derive(Clone, Debug, Default)]
pub struct TraceFeed {
    start_time: i64,
    syms: Symbols,
    builder: Option<RunBuilder>,
    header_done: bool,
    lineno: usize,
}

impl TraceFeed {
    /// An empty feed (start time 0 until a `run start` line arrives).
    pub fn new() -> Self {
        TraceFeed {
            start_time: 0,
            syms: Symbols::new().principals(["Env".to_string()]),
            builder: None,
            header_done: false,
            lineno: 0,
        }
    }

    /// 1-based number of the last fed line (0 before the first feed).
    pub fn line(&self) -> usize {
        self.lineno
    }

    /// The symbol table declared by the header so far.
    pub fn symbols(&self) -> &Symbols {
        &self.syms
    }

    /// The run under construction, if any declaration arrived yet.
    pub fn builder(&self) -> Option<&RunBuilder> {
        self.builder.as_ref()
    }

    /// Builds the current prefix as a [`Run`], or `None` while the
    /// prefix is still unbuildable (no declarations yet, or a past-epoch
    /// prefix that has not reached time 0 — exactly the prefixes
    /// [`parse_trace`] rejects too).
    pub fn try_build(&self) -> Option<Run> {
        self.builder.clone()?.build().ok()
    }

    /// Feeds one line.
    ///
    /// # Errors
    ///
    /// [`TraceError`] positioned at the fed line on any problem — the
    /// same errors [`parse_trace`] reports, plus the stream-order
    /// rejections documented on [`TraceFeed`].
    pub fn feed(&mut self, raw: &str) -> Result<FeedOutcome, TraceError> {
        self.lineno += 1;
        let lineno = self.lineno;
        match classify_line(raw, lineno)? {
            TraceLine::Blank => Ok(FeedOutcome::Directive),
            TraceLine::RunStart(t) => {
                if self.builder.is_some() {
                    return Err(err(lineno, "`run start` must precede declarations"));
                }
                self.start_time = t;
                Ok(FeedOutcome::Directive)
            }
            TraceLine::Principal { name, keys } => {
                if self.header_done {
                    return Err(err(lineno, "principal declarations must precede actions"));
                }
                let syms = std::mem::take(&mut self.syms);
                self.syms = syms.principals([name.clone()]).keys(keys.clone());
                self.builder
                    .get_or_insert_with(|| RunBuilder::new(self.start_time))
                    .principal(name.as_str(), keys.iter().map(Key::new));
                Ok(FeedOutcome::Directive)
            }
            TraceLine::EnvKeys(keys) => {
                if self.header_done {
                    return Err(err(lineno, "`env keys` must precede actions in a stream"));
                }
                let syms = std::mem::take(&mut self.syms);
                self.syms = syms.keys(keys.clone()).principals(["Env".to_string()]);
                self.builder
                    .get_or_insert_with(|| RunBuilder::new(self.start_time))
                    .env_keys(keys.iter().map(Key::new));
                Ok(FeedOutcome::Directive)
            }
            TraceLine::Bind { param, value } => {
                if self.header_done {
                    return Err(err(lineno, "`bind` must precede actions in a stream"));
                }
                let builder = self
                    .builder
                    .get_or_insert_with(|| RunBuilder::new(self.start_time));
                apply_bind(builder, &self.syms, &param, &value, lineno)?;
                Ok(FeedOutcome::Directive)
            }
            TraceLine::Action { keyword, rest } => {
                let builder = self
                    .builder
                    .as_mut()
                    .ok_or_else(|| err(lineno, "trace declares no principals"))?;
                self.header_done = true;
                apply_action(builder, &self.syms, keyword, &rest, lineno)?;
                Ok(FeedOutcome::Event {
                    time: builder.now() - 1,
                })
            }
        }
    }
}

/// Renders a run back into the trace format. Parameters, principal key
/// sets, and all actions are preserved; symbol declarations are inferred
/// from the run.
pub fn render_trace(run: &Run) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "run start {}", run.start_time());
    let first = run.state(run.start_time()).expect("first state exists");
    for p in run.principals() {
        let keys: Vec<String> = first.key_set(p).iter().map(ToString::to_string).collect();
        let _ = writeln!(out, "principal {p} keys {}", keys.join(" "));
    }
    let env_keys: Vec<String> = first.env.key_set.iter().map(ToString::to_string).collect();
    let _ = writeln!(out, "env keys {}", env_keys.join(" ").trim_end());
    for (param, value) in run.bindings().iter() {
        let _ = writeln!(out, "bind {param} = {value}");
    }
    for (_, event) in run.events() {
        match &event.action {
            crate::action::Action::Send { message, to } => {
                let _ = writeln!(out, "send {} -> {to} : {message}", event.actor);
            }
            crate::action::Action::Receive { message } => {
                let _ = writeln!(out, "recv {} : {message}", event.actor);
            }
            crate::action::Action::NewKey { key } => {
                let _ = writeln!(out, "newkey {} {key}", event.actor);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_run;

    const GOOD: &str = r#"
# A tiny well-formed trace.
run start -1
principal A keys Kas
principal S keys Kas
send A -> S : Na          # past epoch
recv S : Na
send S -> A : {Na}Kas@S
recv A : {Na}Kas@S
"#;

    #[test]
    fn parses_and_validates() {
        let (run, _) = parse_trace(GOOD).unwrap();
        assert_eq!(run.start_time(), -1);
        assert_eq!(run.horizon(), 3);
        assert!(validate_run(&run).is_empty());
    }

    #[test]
    fn illformed_traces_parse_but_fail_the_audit() {
        // The environment says ciphertext it could never construct.
        let bad = r#"
run start 0
principal B keys Kas
send Env -> B : {X}Kzz@Env
recv B : {X}Kzz@Env
"#;
        let (run, _) = parse_trace(bad).unwrap();
        let violations = validate_run(&run);
        assert!(violations.iter().any(|v| v.restriction == 3));
    }

    #[test]
    fn recv_of_unsent_message_is_rejected_at_parse() {
        let bad = "run start 0\nprincipal A keys K\nrecv A : Na\n";
        let e = parse_trace(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("not buffered"));
    }

    #[test]
    fn bind_directive_sets_run_parameters() {
        let t = "run start 0\nprincipal A keys K9\nbind Kab = K9\nnewkey A K2\n";
        let (run, _) = parse_trace(t).unwrap();
        assert_eq!(
            run.bindings().get_key(&Param::new("Kab")),
            Some(&Key::new("K9"))
        );
    }

    #[test]
    fn render_parse_roundtrip() {
        let (run, _) = parse_trace(GOOD).unwrap();
        let rendered = render_trace(&run);
        let (again, _) = parse_trace(&rendered).unwrap();
        assert_eq!(run, again);
    }

    #[test]
    fn padded_runs_roundtrip_to_equality() {
        // Executor-style padding (`idle`) emits `newkey Env __pad`
        // without recording history; the parser must replay it through
        // the same path or the reconstructed run compares unequal.
        let mut b = RunBuilder::new(0);
        b.principal("A", [Key::new("K")]);
        b.new_key("A", "K2");
        b.idle();
        b.idle();
        let run = b.build().unwrap();
        let rendered = render_trace(&run);
        let (again, _) = parse_trace(&rendered).unwrap();
        assert_eq!(run, again);
    }

    #[test]
    fn streaming_feed_matches_batch_at_every_buildable_prefix() {
        let mut feed = TraceFeed::new();
        let lines: Vec<&str> = GOOD.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            let outcome = feed.feed(line).unwrap();
            assert_eq!(feed.line(), i + 1);
            if !matches!(outcome, FeedOutcome::Event { .. }) {
                continue;
            }
            // The streamed prefix must agree with a batch parse of the
            // same prefix text whenever the batch parse succeeds.
            let prefix = lines[..=i].join("\n");
            match parse_trace(&prefix) {
                Ok((batch_run, batch_syms)) => {
                    assert_eq!(feed.try_build().expect("buildable"), batch_run);
                    assert_eq!(*feed.symbols(), batch_syms);
                }
                Err(_) => assert!(feed.try_build().is_none(), "prefix ends before time 0"),
            }
        }
        let (full, _) = parse_trace(GOOD).unwrap();
        assert_eq!(feed.try_build().unwrap(), full);
    }

    #[test]
    fn streaming_feed_shares_the_batch_grammar_errors() {
        // Same bad lines, same messages, same line numbers.
        for (bad, needle) in [
            ("run start x", "bad start time"),
            ("frobnicate", "unknown directive"),
            ("send", "takes arguments"),
            ("recv A Na", "recv needs"),
        ] {
            let text = format!("run start 0\nprincipal A keys K\n{bad}\n");
            let batch = parse_trace(&text).unwrap_err();
            let mut feed = TraceFeed::new();
            let mut stream_err = None;
            for line in text.lines() {
                if let Err(e) = feed.feed(line) {
                    stream_err = Some(e);
                    break;
                }
            }
            let stream = stream_err.expect("stream rejects too");
            assert_eq!(batch, stream, "{bad}");
            assert!(batch.message.contains(needle), "{bad}: {}", batch.message);
        }
    }

    #[test]
    fn streaming_feed_rejects_late_header_directives() {
        let mut feed = TraceFeed::new();
        feed.feed("principal A keys K").unwrap();
        feed.feed("newkey A K2").unwrap();
        for late in [
            "principal B keys K",
            "env keys Ke",
            "bind P = K",
            "run start -1",
        ] {
            let e = feed.clone().feed(late).unwrap_err();
            assert_eq!(e.line, 3, "{late}");
        }
        // Actions keep flowing after a rejected line was *not* applied.
        assert!(matches!(
            feed.feed("newkey A K3").unwrap(),
            FeedOutcome::Event { time: 1 }
        ));
    }

    #[test]
    fn streaming_feed_requires_declarations_before_actions() {
        let mut feed = TraceFeed::new();
        let e = feed.feed("newkey A K").unwrap_err();
        assert!(e.message.contains("no principals"));
        assert!(feed.try_build().is_none());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_trace("run start x\nprincipal A keys K\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e2 = parse_trace("run start 0\nprincipal A keys K\nfrobnicate\n").unwrap_err();
        assert_eq!(e2.line, 3);
    }

    #[test]
    fn bare_action_keyword_is_an_error_not_a_panic() {
        let e = parse_trace("run start 0\nprincipal A keys K\nsend\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("takes arguments"));
    }

    #[test]
    fn principals_after_actions_rejected() {
        let bad = "run start 0\nprincipal A keys K\nnewkey A K2\nprincipal B keys K\n";
        assert!(parse_trace(bad).is_err());
    }
}
