//! A textual trace format for runs, so concrete executions can be
//! written, audited, and queried from files (see the `atl` CLI).
//!
//! The format is line-based; `#` starts a comment:
//!
//! ```text
//! run start -2
//! principal A keys Kas
//! principal S keys Kas Kbs
//! env keys Ke
//! bind Kab = K9                # run parameter (Section 8)
//!
//! send A -> S : Na             # one action per line, in order
//! recv S : Na
//! newkey S Kab
//! ```
//!
//! Messages use the [`atl_lang::parser`] concrete syntax; principals and
//! keys declared in the header seed its symbol table. Construction goes
//! through the *unchecked* path so deliberately ill-formed traces can be
//! written and then audited with
//! [`validate_run`](crate::validate::validate_run).

use crate::error::ModelError;
use crate::run::{Run, RunBuilder};
use atl_lang::parser::{parse_message, Symbols};
use atl_lang::{Key, Param, Principal};
use std::error::Error;
use std::fmt;

/// Error produced when a trace fails to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl TraceError {
    /// The one-line `file:line: message` diagnostic for this error, the
    /// format every parse failure surfaces in (CLI exit code 3, daemon
    /// `ERR` lines).
    pub fn diagnostic(&self, origin: &str) -> String {
        format!("{origin}:{}: {}", self.line, self.message)
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl Error for TraceError {}

fn err(line: usize, message: impl Into<String>) -> TraceError {
    TraceError {
        line,
        message: message.into(),
    }
}

/// Splits `A keys K1 K2 …` (the key list may be absent).
fn split_keys(rest: &str, lineno: usize) -> Result<(String, Vec<String>), TraceError> {
    let mut parts = rest.split_whitespace();
    let name = parts
        .next()
        .ok_or_else(|| err(lineno, "principal needs a name"))?
        .to_string();
    let keys: Vec<String> = match parts.next() {
        Some("keys") => parts.map(str::to_string).collect(),
        None => Vec::new(),
        Some(other) => return Err(err(lineno, format!("expected `keys`, found `{other}`"))),
    };
    Ok((name, keys))
}

/// Parses a trace into a [`Run`] (unchecked — audit with
/// [`validate_run`](crate::validate::validate_run)) plus the declared
/// symbol table, for parsing queries against the run.
///
/// # Errors
///
/// [`TraceError`] with the offending line on any problem, including a
/// `recv` of a message that was never sent to that principal (the only
/// model-level check that cannot be deferred).
pub fn parse_trace(input: &str) -> Result<(Run, Symbols), TraceError> {
    let mut start_time: i64 = 0;
    // The environment principal is always known to the symbol table.
    let mut syms = Symbols::new().principals(["Env".to_string()]);
    let mut builder: Option<RunBuilder> = None;
    let mut header_done = false;
    let mut pending: Vec<(usize, String)> = Vec::new();

    // First pass: header (so the symbol table is complete before any
    // message parses).
    for (i, raw) in input.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let (keyword, rest) = match line.split_once(char::is_whitespace) {
            Some((k, r)) => (k, r.trim()),
            None => (line, ""),
        };
        match keyword {
            "run" => {
                let rest = rest
                    .strip_prefix("start")
                    .map(str::trim)
                    .ok_or_else(|| err(lineno, "expected `run start <time>`"))?;
                start_time = rest
                    .parse()
                    .map_err(|_| err(lineno, format!("bad start time `{rest}`")))?;
            }
            "principal" => {
                let (name, keys) = split_keys(rest, lineno)?;
                syms = syms.principals([name.clone()]).keys(keys.clone());
                builder
                    .get_or_insert_with(|| RunBuilder::new(start_time))
                    .principal(name.as_str(), keys.iter().map(Key::new));
                if header_done {
                    return Err(err(lineno, "principal declarations must precede actions"));
                }
            }
            "env" => {
                let keys = rest
                    .strip_prefix("keys")
                    .map(str::trim)
                    .ok_or_else(|| err(lineno, "expected `env keys K1 K2 …`"))?;
                let keys: Vec<String> = keys.split_whitespace().map(str::to_string).collect();
                syms = syms.keys(keys.clone()).principals(["Env".to_string()]);
                builder
                    .get_or_insert_with(|| RunBuilder::new(start_time))
                    .env_keys(keys.iter().map(Key::new));
            }
            "bind" => {
                let Some((param, value)) = rest.split_once('=') else {
                    return Err(err(lineno, "expected `bind PARAM = MESSAGE`"));
                };
                pending.push((
                    lineno,
                    format!("bind\u{1}{}\u{1}{}", param.trim(), value.trim()),
                ));
            }
            "send" | "recv" | "newkey" => {
                header_done = true;
                pending.push((lineno, line.to_string()));
            }
            other => return Err(err(lineno, format!("unknown directive `{other}`"))),
        }
    }
    let mut builder = builder.ok_or_else(|| err(0, "trace declares no principals"))?;

    // Second pass: actions, with the full symbol table.
    for (lineno, line) in pending {
        if let Some(rest) = line.strip_prefix("bind\u{1}") {
            let (param, value) = rest
                .split_once('\u{1}')
                .ok_or_else(|| err(lineno, "expected `bind PARAM = MESSAGE`"))?;
            let m = parse_message(value, &syms).map_err(|e| err(lineno, e.to_string()))?;
            builder.bind_param(Param::new(param), m);
            continue;
        }
        let (keyword, rest) = line
            .split_once(char::is_whitespace)
            .ok_or_else(|| err(lineno, format!("`{line}` takes arguments")))?;
        let rest = rest.trim();
        match keyword {
            "send" => {
                let Some((route, message)) = rest.split_once(':') else {
                    return Err(err(lineno, "send needs `FROM -> TO : MESSAGE`"));
                };
                let Some((from, to)) = route.split_once("->") else {
                    return Err(err(lineno, "send route needs `FROM -> TO`"));
                };
                let m =
                    parse_message(message.trim(), &syms).map_err(|e| err(lineno, e.to_string()))?;
                builder.send_unchecked(from.trim(), m, to.trim());
            }
            "recv" => {
                let Some((p, message)) = rest.split_once(':') else {
                    return Err(err(lineno, "recv needs `P : MESSAGE`"));
                };
                let m =
                    parse_message(message.trim(), &syms).map_err(|e| err(lineno, e.to_string()))?;
                builder
                    .receive(p.trim(), &m)
                    .map_err(|e| err(lineno, e.to_string()))?;
            }
            "newkey" => {
                let mut parts = rest.split_whitespace();
                let (Some(p), Some(k), None) = (parts.next(), parts.next(), parts.next()) else {
                    return Err(err(lineno, "newkey takes exactly `newkey P K`"));
                };
                // `__pad` is the reserved padding key (see
                // `RunBuilder::idle`): the executor emits it without
                // recording any history, so replay it through the same
                // path — otherwise a rendered run would not parse back
                // to an equal run, and outcomes shipped through the
                // wire codec would stop deduplicating against local
                // executions.
                if k == "__pad" && p == Principal::environment().to_string() {
                    builder.idle();
                } else {
                    builder.new_key(p, k);
                }
            }
            _ => unreachable!("filtered in first pass"),
        }
    }
    let run = builder
        .build()
        .map_err(|e: ModelError| err(0, e.to_string()))?;
    Ok((run, syms))
}

/// Renders a run back into the trace format. Parameters, principal key
/// sets, and all actions are preserved; symbol declarations are inferred
/// from the run.
pub fn render_trace(run: &Run) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "run start {}", run.start_time());
    let first = run.state(run.start_time()).expect("first state exists");
    for p in run.principals() {
        let keys: Vec<String> = first.key_set(p).iter().map(ToString::to_string).collect();
        let _ = writeln!(out, "principal {p} keys {}", keys.join(" "));
    }
    let env_keys: Vec<String> = first.env.key_set.iter().map(ToString::to_string).collect();
    let _ = writeln!(out, "env keys {}", env_keys.join(" ").trim_end());
    for (param, value) in run.bindings().iter() {
        let _ = writeln!(out, "bind {param} = {value}");
    }
    for (_, event) in run.events() {
        match &event.action {
            crate::action::Action::Send { message, to } => {
                let _ = writeln!(out, "send {} -> {to} : {message}", event.actor);
            }
            crate::action::Action::Receive { message } => {
                let _ = writeln!(out, "recv {} : {message}", event.actor);
            }
            crate::action::Action::NewKey { key } => {
                let _ = writeln!(out, "newkey {} {key}", event.actor);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_run;

    const GOOD: &str = r#"
# A tiny well-formed trace.
run start -1
principal A keys Kas
principal S keys Kas
send A -> S : Na          # past epoch
recv S : Na
send S -> A : {Na}Kas@S
recv A : {Na}Kas@S
"#;

    #[test]
    fn parses_and_validates() {
        let (run, _) = parse_trace(GOOD).unwrap();
        assert_eq!(run.start_time(), -1);
        assert_eq!(run.horizon(), 3);
        assert!(validate_run(&run).is_empty());
    }

    #[test]
    fn illformed_traces_parse_but_fail_the_audit() {
        // The environment says ciphertext it could never construct.
        let bad = r#"
run start 0
principal B keys Kas
send Env -> B : {X}Kzz@Env
recv B : {X}Kzz@Env
"#;
        let (run, _) = parse_trace(bad).unwrap();
        let violations = validate_run(&run);
        assert!(violations.iter().any(|v| v.restriction == 3));
    }

    #[test]
    fn recv_of_unsent_message_is_rejected_at_parse() {
        let bad = "run start 0\nprincipal A keys K\nrecv A : Na\n";
        let e = parse_trace(bad).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("not buffered"));
    }

    #[test]
    fn bind_directive_sets_run_parameters() {
        let t = "run start 0\nprincipal A keys K9\nbind Kab = K9\nnewkey A K2\n";
        let (run, _) = parse_trace(t).unwrap();
        assert_eq!(
            run.bindings().get_key(&Param::new("Kab")),
            Some(&Key::new("K9"))
        );
    }

    #[test]
    fn render_parse_roundtrip() {
        let (run, _) = parse_trace(GOOD).unwrap();
        let rendered = render_trace(&run);
        let (again, _) = parse_trace(&rendered).unwrap();
        assert_eq!(run, again);
    }

    #[test]
    fn padded_runs_roundtrip_to_equality() {
        // Executor-style padding (`idle`) emits `newkey Env __pad`
        // without recording history; the parser must replay it through
        // the same path or the reconstructed run compares unequal.
        let mut b = RunBuilder::new(0);
        b.principal("A", [Key::new("K")]);
        b.new_key("A", "K2");
        b.idle();
        b.idle();
        let run = b.build().unwrap();
        let rendered = render_trace(&run);
        let (again, _) = parse_trace(&rendered).unwrap();
        assert_eq!(run, again);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_trace("run start x\nprincipal A keys K\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e2 = parse_trace("run start 0\nprincipal A keys K\nfrobnicate\n").unwrap_err();
        assert_eq!(e2.line, 3);
    }

    #[test]
    fn bare_action_keyword_is_an_error_not_a_panic() {
        let e = parse_trace("run start 0\nprincipal A keys K\nsend\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("takes arguments"));
    }

    #[test]
    fn principals_after_actions_rejected() {
        let bad = "run start 0\nprincipal A keys K\nnewkey A K2\nprincipal B keys K\n";
        assert!(parse_trace(bad).is_err());
    }
}
