//! Random generation of well-formed runs with an active adversary.
//!
//! The soundness model-checker (Theorem 1) needs many structurally diverse
//! systems. This module grows runs action by action: at each step a random
//! principal — possibly the environment, acting as the attacker — performs
//! a random action drawn from what the Section 5 restrictions allow it:
//! replaying seen ciphertext, forging tuples and forwards from seen
//! submessages, guessing keys with `newkey`, or sending fresh data.
//!
//! All construction goes through the checked [`RunBuilder`], so every
//! generated run satisfies restrictions 1–5 by construction (and the tests
//! re-audit with [`validate_run`](crate::validate::validate_run)).

use crate::run::{Run, RunBuilder};
use crate::system::System;
use atl_lang::{seen_submsgs_of_set, Key, Message, Nonce, Principal};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Configuration for the random run generator.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// System principals with their initial keys.
    pub principals: Vec<(Principal, Vec<Key>)>,
    /// The environment's initial keys.
    pub env_keys: Vec<Key>,
    /// The universe of keys `newkey` may draw from (models key guessing).
    pub key_universe: Vec<Key>,
    /// Nonce names used for fresh data messages.
    pub nonce_pool: Vec<Nonce>,
    /// Actions performed before time 0 (the past epoch).
    pub past_steps: usize,
    /// Actions performed in the current epoch.
    pub present_steps: usize,
    /// Probability that a step is taken by the environment.
    pub adversary_bias: f64,
}

impl GenConfig {
    /// A configuration whose principals own public-key pairs (each `P`
    /// holds everyone's public keys and its own private key), so the
    /// generator emits signatures and public-key ciphertext alongside
    /// shared-key traffic.
    pub fn public_key() -> Self {
        let pubs = [Key::new("Ka"), Key::new("Kb"), Key::new("Ks")];
        let all_pubs = || pubs.iter().cloned();
        GenConfig {
            principals: vec![
                (
                    Principal::new("A"),
                    all_pubs().chain([Key::new("Ka").inverse()]).collect(),
                ),
                (
                    Principal::new("B"),
                    all_pubs().chain([Key::new("Kb").inverse()]).collect(),
                ),
                (
                    Principal::new("S"),
                    all_pubs().chain([Key::new("Ks").inverse()]).collect(),
                ),
            ],
            env_keys: pubs.to_vec(),
            key_universe: pubs.to_vec(),
            nonce_pool: vec![Nonce::new("Na"), Nonce::new("Nb"), Nonce::new("Ts")],
            past_steps: 3,
            present_steps: 8,
            adversary_bias: 0.3,
        }
    }
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            principals: vec![
                (Principal::new("A"), vec![Key::new("Kas")]),
                (Principal::new("B"), vec![Key::new("Kbs")]),
                (Principal::new("S"), vec![Key::new("Kas"), Key::new("Kbs")]),
            ],
            env_keys: vec![],
            key_universe: vec![
                Key::new("Kas"),
                Key::new("Kbs"),
                Key::new("Kab"),
                Key::new("Ke"),
            ],
            nonce_pool: vec![Nonce::new("Na"), Nonce::new("Nb"), Nonce::new("Ts")],
            past_steps: 3,
            present_steps: 6,
            adversary_bias: 0.3,
        }
    }
}

/// Generates one well-formed random run.
pub fn random_run(config: &GenConfig, rng: &mut StdRng) -> Run {
    let total = config.past_steps + config.present_steps;
    let mut builder = RunBuilder::new(-(config.past_steps as i64));
    for (p, keys) in &config.principals {
        builder.principal(p.clone(), keys.iter().cloned());
    }
    builder.env_keys(config.env_keys.iter().cloned());
    let env = Principal::environment();
    let mut all: Vec<Principal> = config.principals.iter().map(|(p, _)| p.clone()).collect();
    all.push(env.clone());

    for _ in 0..total {
        let actor = if rng.gen_bool(config.adversary_bias) {
            env.clone()
        } else {
            all[rng.gen_range(0..all.len())].clone()
        };
        let mut attempted = false;
        for _ in 0..4 {
            if try_random_action(&mut builder, &actor, config, &all, rng) {
                attempted = true;
                break;
            }
        }
        if !attempted {
            // Guarantee progress: key acquisition always succeeds.
            let k = &config.key_universe[rng.gen_range(0..config.key_universe.len())];
            builder.new_key(actor, k.clone());
        }
    }
    builder.build().expect("generator always reaches time 0")
}

/// Tries one random action; returns whether it fired.
fn try_random_action(
    builder: &mut RunBuilder,
    actor: &Principal,
    config: &GenConfig,
    all: &[Principal],
    rng: &mut StdRng,
) -> bool {
    match rng.gen_range(0..4u8) {
        // Receive something buffered.
        0 => {
            let buffered = builder.current_state().env.buffer(actor).to_vec();
            if buffered.is_empty() {
                return false;
            }
            let m = buffered[rng.gen_range(0..buffered.len())].clone();
            builder.receive(actor.clone(), &m).is_ok()
        }
        // Acquire a key.
        1 => {
            let k = &config.key_universe[rng.gen_range(0..config.key_universe.len())];
            builder.new_key(actor.clone(), k.clone());
            true
        }
        // Send a constructible message.
        _ => {
            let Some(message) = random_message(builder, actor, config, rng) else {
                return false;
            };
            let to = all[rng.gen_range(0..all.len())].clone();
            builder.send(actor.clone(), message, to).is_ok()
        }
    }
}

/// Builds a random message the actor can legally send: fresh data, an
/// encryption under a held key, a replayed seen submessage, a forward of a
/// seen submessage, or a tuple of such parts.
fn random_message(
    builder: &RunBuilder,
    actor: &Principal,
    config: &GenConfig,
    rng: &mut StdRng,
) -> Option<Message> {
    let local = builder.current_state().local(actor);
    let seen: Vec<Message> = seen_submsgs_of_set(local.received().iter(), &local.key_set)
        .into_iter()
        .collect();
    let held: Vec<Key> = local.key_set.iter().cloned().collect();
    fn fresh(config: &GenConfig, rng: &mut StdRng) -> Message {
        Message::nonce(config.nonce_pool[rng.gen_range(0..config.nonce_pool.len())].clone())
    }
    let base = match rng.gen_range(0..5u8) {
        0 => fresh(config, rng),
        1 if !seen.is_empty() => seen[rng.gen_range(0..seen.len())].clone(),
        2 if !seen.is_empty() => Message::forwarded(seen[rng.gen_range(0..seen.len())].clone()),
        3 => Message::principal(actor.clone()),
        _ => fresh(config, rng),
    };
    // Half the time wrap in an encryption under a held key: a shared-key
    // encryption, a signature (if a private key is held), or public-key
    // ciphertext (under any held public counterpart).
    if !held.is_empty() && rng.gen_bool(0.5) {
        let k = held[rng.gen_range(0..held.len())].clone();
        if k.is_private() {
            // Sign, naming the verifying public key.
            return Some(Message::signed(base, k.inverse(), actor.clone()));
        }
        if rng.gen_bool(0.3) && held.contains(&k.inverse()) {
            // We could open this as public-key ciphertext; mint one.
            return Some(Message::pub_encrypted(base, k, actor.clone()));
        }
        if rng.gen_bool(0.25) {
            return Some(Message::pub_encrypted(base, k, actor.clone()));
        }
        return Some(Message::encrypted(base, k, actor.clone()));
    }
    // Sometimes pair it with a fresh nonce.
    if rng.gen_bool(0.3) {
        let n = fresh(config, rng);
        return Some(Message::tuple([base, n]));
    }
    Some(base)
}

/// Generates a system of `n_runs` random runs from a seed.
pub fn random_system(config: &GenConfig, n_runs: usize, seed: u64) -> System {
    let mut rng = StdRng::seed_from_u64(seed);
    System::new((0..n_runs).map(|_| random_run(config, &mut rng)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_run;

    #[test]
    fn generated_runs_are_well_formed() {
        let config = GenConfig::default();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..25 {
            let run = random_run(&config, &mut rng);
            let violations = validate_run(&run);
            assert!(violations.is_empty(), "{violations:?}");
            assert!(run.start_time() <= 0);
            assert!(run.horizon() >= 0);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = GenConfig::default();
        let a = random_system(&config, 3, 42);
        let b = random_system(&config, 3, 42);
        assert_eq!(a.runs(), b.runs());
        let c = random_system(&config, 3, 43);
        assert_ne!(a.runs(), c.runs());
    }

    #[test]
    fn adversary_bias_one_makes_env_act() {
        let config = GenConfig {
            adversary_bias: 1.0,
            ..GenConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        let run = random_run(&config, &mut rng);
        let env = Principal::environment();
        let env_acts = run.events().filter(|(_, e)| e.actor == env).count();
        assert_eq!(env_acts, run.events().count());
    }

    #[test]
    fn runs_contain_traffic() {
        let config = GenConfig::default();
        let sys = random_system(&config, 10, 9);
        let total_sends: usize = sys.runs().iter().map(|r| r.send_records().len()).sum();
        assert!(total_sends > 0, "expected some sends across 10 runs");
    }
}
