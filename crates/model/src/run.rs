//! Runs: timed sequences of global states (Section 5).
//!
//! A run assigns integer times to a sequence of global states. The first
//! state carries some time `k₀ ≤ 0`; the state at time 0 is the *initial
//! state* — the first state of the current epoch (the current
//! authentication). States before time 0 belong to the past epoch.
//!
//! The paper's runs are infinite; here a run is a finite prefix long enough
//! to contain time 0 and every point under analysis (see DESIGN.md §3 for
//! why this preserves the semantics of all constructs).

use crate::action::{Action, Event};
use crate::error::ModelError;
use crate::state::{EnvState, GlobalState, LocalState};
use atl_lang::{
    can_see, said_submsgs, Bindings, Key, KeySet, KeyTerm, Message, MessageSet, Principal,
};

/// A send event unfolded with the sender's context at send time, used by
/// the `said`/`says` and shared-key semantics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SendRecord {
    /// The time at which the send was performed (the event leading out of
    /// the state at this time).
    pub time: i64,
    /// The sending principal.
    pub sender: Principal,
    /// The recipient.
    pub to: Principal,
    /// The message sent.
    pub message: Message,
    /// The sender's key set at send time.
    pub key_set: KeySet,
    /// The messages the sender had received by send time.
    pub received: MessageSet,
}

impl SendRecord {
    /// The components of the sent message the sender is considered to have
    /// said (`said-submsgs` with the sender's context at send time).
    pub fn said_submsgs(&self) -> MessageSet {
        said_submsgs(&self.message, &self.key_set, &self.received)
    }
}

/// A finite run: a timed sequence of global states with the events between
/// them and a per-run parameter assignment (Section 8).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Run {
    start_time: i64,
    states: Vec<GlobalState>,
    events: Vec<Event>,
    bindings: Bindings,
    send_records: Vec<SendRecord>,
}

impl Run {
    /// Assembles a run from raw parts without checking the well-formedness
    /// restrictions of Section 5 (use [`RunBuilder`] for checked
    /// construction, and [`validate`](crate::validate::validate_run) to
    /// audit a hand-made run).
    ///
    /// # Errors
    ///
    /// Returns an error if the state/event counts disagree, if
    /// `start_time > 0`, or if the run ends before time 0.
    pub fn from_parts(
        start_time: i64,
        states: Vec<GlobalState>,
        events: Vec<Event>,
        bindings: Bindings,
    ) -> Result<Run, ModelError> {
        if states.len() != events.len() + 1 {
            return Err(ModelError::MalformedRun(format!(
                "{} states require {} events, got {}",
                states.len(),
                states.len().saturating_sub(1),
                events.len()
            )));
        }
        if start_time > 0 {
            return Err(ModelError::MalformedRun(format!(
                "start time {start_time} is after the epoch start"
            )));
        }
        let horizon = start_time + (states.len() as i64 - 1);
        if horizon < 0 {
            return Err(ModelError::MalformedRun(format!(
                "run ends at time {horizon}, before the epoch start"
            )));
        }
        let mut run = Run {
            start_time,
            states,
            events,
            bindings,
            send_records: Vec::new(),
        };
        run.send_records = run.compute_send_records();
        Ok(run)
    }

    fn compute_send_records(&self) -> Vec<SendRecord> {
        let mut out = Vec::new();
        for (i, event) in self.events.iter().enumerate() {
            if let Action::Send { message, to } = &event.action {
                let pre = &self.states[i];
                let local = pre.local(&event.actor);
                out.push(SendRecord {
                    time: self.start_time + i as i64,
                    sender: event.actor.clone(),
                    to: to.clone(),
                    message: message.clone(),
                    key_set: local.key_set.clone(),
                    received: local.received(),
                });
            }
        }
        out
    }

    /// The time of the first state (`k₀ ≤ 0`).
    pub fn start_time(&self) -> i64 {
        self.start_time
    }

    /// The time of the last state.
    pub fn horizon(&self) -> i64 {
        self.start_time + (self.states.len() as i64 - 1)
    }

    /// The state at time `k`, if the run covers it.
    pub fn state(&self, k: i64) -> Option<&GlobalState> {
        let idx = k.checked_sub(self.start_time)?;
        if idx < 0 {
            return None;
        }
        self.states.get(idx as usize)
    }

    /// The event performed at time `k` (transitioning `r(k)` to `r(k+1)`).
    pub fn event_at(&self, k: i64) -> Option<&Event> {
        let idx = k.checked_sub(self.start_time)?;
        if idx < 0 {
            return None;
        }
        self.events.get(idx as usize)
    }

    /// Iterates over the times the run covers, earliest first.
    pub fn times(&self) -> impl Iterator<Item = i64> {
        self.start_time..=self.horizon()
    }

    /// All events with the time at which each was performed.
    pub fn events(&self) -> impl Iterator<Item = (i64, &Event)> {
        self.events
            .iter()
            .enumerate()
            .map(|(i, e)| (self.start_time + i as i64, e))
    }

    /// The unfolded send events of the run (see [`SendRecord`]).
    pub fn send_records(&self) -> &[SendRecord] {
        &self.send_records
    }

    /// The parameter assignment of this run (Section 8).
    pub fn bindings(&self) -> &Bindings {
        &self.bindings
    }

    /// The system principals of the run (from its first state).
    pub fn principals(&self) -> impl Iterator<Item = &Principal> {
        self.states[0].principals()
    }

    /// The set `M(r, 0)`: every message sent by any principal before the
    /// current epoch (i.e. present in the global history of the state at
    /// time 0). Freshness is defined against the submessage closure of this
    /// set.
    pub fn sent_before_epoch(&self) -> MessageSet {
        self.send_records
            .iter()
            .take_while(|rec| rec.time < 0)
            .map(|rec| rec.message.clone())
            .collect()
    }

    /// Appends one event and its post-state in place, without checking
    /// the Section 5 restrictions — the streaming-monitor analogue of
    /// rebuilding the run from a longer prefix. Appending never touches
    /// earlier states or events, so every fact derived from the old
    /// prefix (local states, send records, the pre-epoch sent set at
    /// times the run already covered) stays valid; the result is equal
    /// to a [`Run::from_parts`] rebuild with the extended state/event
    /// vectors.
    pub fn extend_unchecked(&mut self, event: Event, post_state: GlobalState) {
        match &event.action {
            Action::Send { message, to } => {
                // The pre-state of the appended event is the current
                // final state; its local view is the sender's context at
                // send time, exactly what `compute_send_records` reads.
                let pre = self.states.last().expect("runs have at least one state");
                let local = pre.local(&event.actor);
                self.send_records.push(SendRecord {
                    time: self.horizon(),
                    sender: event.actor.clone(),
                    to: to.clone(),
                    message: message.clone(),
                    key_set: local.key_set.clone(),
                    received: local.received(),
                });
            }
            Action::Receive { message } => {
                // [`RunBuilder::receive`] pops the buffer *before*
                // snapshotting the pre-state, so the recorded pre-state
                // of a receive never shows the delivered message in
                // flight. Mirror that here or the extended run would
                // differ from a batch rebuild in exactly that buffer
                // slot. Local states (all the semantics reads) are
                // untouched either way.
                let pre = self.states.last_mut().expect("runs have a state");
                if let Some(buffer) = pre.env.buffers.get_mut(&event.actor) {
                    if let Some(pos) = buffer.iter().position(|m| m == message) {
                        buffer.remove(pos);
                    }
                }
            }
            Action::NewKey { .. } => {}
        }
        self.events.push(event);
        self.states.push(post_state);
    }
}

/// Checked, stepwise construction of a [`Run`].
///
/// The builder enforces the five restrictions of Section 5 as actions are
/// appended:
///
/// 1. key sets only grow (guaranteed structurally);
/// 2. a message can be received only if previously sent to that principal
///    (delivery pops the recipient's buffer);
/// 3. a principal may send ciphertext only if it saw the ciphertext or
///    holds the key;
/// 4. a *system* principal sets from fields to itself on ciphertext it
///    constructs;
/// 5. a *system* principal forwards only messages it has seen.
///
/// # Examples
///
/// ```
/// use atl_lang::{Key, Message, Nonce};
/// use atl_model::RunBuilder;
/// let mut b = RunBuilder::new(-1);
/// b.principal("A", [Key::new("Kas")]);
/// b.principal("S", [Key::new("Kas")]);
/// b.send("A", Message::nonce(Nonce::new("req")), "S")?;   // past epoch
/// b.receive("S", &Message::nonce(Nonce::new("req")))?;    // present
/// let run = b.build()?;
/// assert_eq!(run.start_time(), -1);
/// assert_eq!(run.horizon(), 1);
/// # Ok::<(), atl_model::ModelError>(())
/// ```
#[derive(Clone, Debug)]
pub struct RunBuilder {
    start_time: i64,
    current: GlobalState,
    states: Vec<GlobalState>,
    events: Vec<Event>,
    bindings: Bindings,
}

impl RunBuilder {
    /// Starts a run whose first state carries time `start_time ≤ 0`
    /// (clamped to 0 if positive). Histories and buffers start empty, as
    /// the paper requires of a run's first state.
    pub fn new(start_time: i64) -> Self {
        RunBuilder {
            start_time: start_time.min(0),
            current: GlobalState::default(),
            states: Vec::new(),
            events: Vec::new(),
            bindings: Bindings::new(),
        }
    }

    /// Registers a system principal with its initial key set. Must be
    /// called before any action is appended.
    pub fn principal(
        &mut self,
        p: impl Into<Principal>,
        keys: impl IntoIterator<Item = Key>,
    ) -> &mut Self {
        self.current
            .locals
            .insert(p.into(), LocalState::with_keys(keys));
        self
    }

    /// Grants the environment principal its initial keys.
    pub fn env_keys(&mut self, keys: impl IntoIterator<Item = Key>) -> &mut Self {
        self.current.env.key_set.extend(keys);
        self
    }

    /// Sets an application datum in a principal's initial local state
    /// (e.g. a coin-toss outcome).
    pub fn datum(
        &mut self,
        p: impl Into<Principal>,
        key: impl Into<String>,
        value: impl Into<String>,
    ) -> &mut Self {
        let p = p.into();
        self.current
            .locals
            .entry(p)
            .or_default()
            .data
            .insert(key.into(), value.into());
        self
    }

    /// Binds a run parameter (Section 8).
    pub fn bind_param(&mut self, p: atl_lang::Param, value: Message) -> &mut Self {
        self.bindings.bind(p, value);
        self
    }

    /// The time at which the *next* action will be performed.
    pub fn now(&self) -> i64 {
        self.start_time + self.events.len() as i64
    }

    /// A view of the global state as currently built.
    pub fn current_state(&self) -> &GlobalState {
        &self.current
    }

    /// The most recently appended event, if any — how a streaming
    /// consumer picks up the event it just applied (paired with
    /// [`RunBuilder::current_state`], the event's post-state) to extend
    /// an already-built [`Run`] via [`Run::extend_unchecked`].
    pub fn last_event(&self) -> Option<&Event> {
        self.events.last()
    }

    /// The run's initial global state: the declared principals with
    /// their starting key sets, before any event (the pre-state of the
    /// first event once one exists).
    pub fn initial_state(&self) -> &GlobalState {
        self.states.first().unwrap_or(&self.current)
    }

    fn step(&mut self, event: Event) {
        self.states.push(self.current.clone());
        self.events.push(event);
    }

    fn record_action(&mut self, actor: &Principal, action: Action) {
        if let Some(local) = self.current.locals.get_mut(actor) {
            local.history.push(action.clone());
        }
        self.current
            .env
            .global_history
            .push(Event::new(actor.clone(), action));
    }

    /// Checks restriction 3 (and 4–5 for system principals) for a message
    /// about to be sent by `actor`.
    fn check_send(&self, actor: &Principal, message: &Message) -> Result<(), ModelError> {
        let local = self.current.local(actor);
        let received = local.received();
        let is_system = self.current.locals.contains_key(actor);
        let said = said_submsgs(message, &local.key_set, &received);
        let seen_in_received = |m: &Message| received.iter().any(|r| can_see(m, r, &local.key_set));
        for sub in &said {
            match sub {
                Message::Encrypted { key, from, .. } => {
                    let holds_key =
                        matches!(key, KeyTerm::Key(k) if local.key_set.contains(k));
                    // Restriction 3: possess the key or have seen the
                    // ciphertext.
                    if !holds_key && !seen_in_received(sub) {
                        return Err(ModelError::SendViolation {
                            actor: actor.clone(),
                            reason: format!(
                                "restriction 3: cannot construct {sub} without its key"
                            ),
                        });
                    }
                    // Restriction 4 (system principals): from fields are
                    // honest on freshly constructed ciphertext.
                    if is_system && from != actor && !seen_in_received(sub) {
                        return Err(ModelError::SendViolation {
                            actor: actor.clone(),
                            reason: format!(
                                "restriction 4: from field {from} on ciphertext constructed by {actor}"
                            ),
                        });
                    }
                }
                Message::Combined { from, .. }
                    if is_system && from != actor && !seen_in_received(sub) => {
                        return Err(ModelError::SendViolation {
                            actor: actor.clone(),
                            reason: format!(
                                "restriction 4: from field {from} on combined message constructed by {actor}"
                            ),
                        });
                    }
                Message::Forwarded(body)
                    // Restriction 5 (system principals): forward only what
                    // has been seen.
                    if is_system && !seen_in_received(body) => {
                        return Err(ModelError::SendViolation {
                            actor: actor.clone(),
                            reason: format!(
                                "restriction 5: {actor} forwards {body} without having seen it"
                            ),
                        });
                    }
                Message::PubEncrypted { key, from, .. } => {
                    // Restriction 3 analogue: constructing public-key
                    // ciphertext requires the public key.
                    let holds_key =
                        matches!(key, KeyTerm::Key(k) if local.key_set.contains(k));
                    if !holds_key && !seen_in_received(sub) {
                        return Err(ModelError::SendViolation {
                            actor: actor.clone(),
                            reason: format!(
                                "restriction 3: cannot construct {sub} without the public key"
                            ),
                        });
                    }
                    if is_system && from != actor && !seen_in_received(sub) {
                        return Err(ModelError::SendViolation {
                            actor: actor.clone(),
                            reason: format!(
                                "restriction 4: from field {from} on public-key ciphertext constructed by {actor}"
                            ),
                        });
                    }
                }
                Message::Signed { key, from, .. } => {
                    // Signing requires the private counterpart.
                    let holds_inverse = matches!(
                        key,
                        KeyTerm::Key(k) if local.key_set.contains(&k.inverse())
                    );
                    if !holds_inverse && !seen_in_received(sub) {
                        return Err(ModelError::SendViolation {
                            actor: actor.clone(),
                            reason: format!(
                                "restriction 3: cannot construct {sub} without the private key"
                            ),
                        });
                    }
                    if is_system && from != actor && !seen_in_received(sub) {
                        return Err(ModelError::SendViolation {
                            actor: actor.clone(),
                            reason: format!(
                                "restriction 4: from field {from} on signature constructed by {actor}"
                            ),
                        });
                    }
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Appends a checked `send` action.
    ///
    /// # Errors
    ///
    /// [`ModelError::SendViolation`] if the send breaks restriction 3 (any
    /// principal) or restrictions 4–5 (system principals);
    /// [`ModelError::NotGround`] if the message still contains parameters.
    pub fn send(
        &mut self,
        from: impl Into<Principal>,
        message: Message,
        to: impl Into<Principal>,
    ) -> Result<&mut Self, ModelError> {
        let from = from.into();
        let to = to.into();
        if !message.is_ground() {
            return Err(ModelError::NotGround(message));
        }
        self.check_send(&from, &message)?;
        self.push_send(from, message, to);
        Ok(self)
    }

    /// Appends a `send` action *without* checking the restrictions. Used to
    /// build deliberately ill-formed runs for the validator tests.
    pub fn send_unchecked(
        &mut self,
        from: impl Into<Principal>,
        message: Message,
        to: impl Into<Principal>,
    ) -> &mut Self {
        self.push_send(from.into(), message, to.into());
        self
    }

    fn push_send(&mut self, from: Principal, message: Message, to: Principal) {
        let action = Action::send(message.clone(), to.clone());
        let event = Event::new(from.clone(), action.clone());
        self.step(event);
        self.record_action(&from, action);
        self.current
            .env
            .buffers
            .entry(to)
            .or_default()
            .push(message);
    }

    /// Appends a `receive` action delivering the given message from `p`'s
    /// buffer (the paper's nondeterministic choice, made explicit).
    ///
    /// # Errors
    ///
    /// [`ModelError::NotInBuffer`] if the message is not buffered for `p`.
    pub fn receive(
        &mut self,
        p: impl Into<Principal>,
        message: &Message,
    ) -> Result<&mut Self, ModelError> {
        let p = p.into();
        let buffer = self.current.env.buffers.entry(p.clone()).or_default();
        let Some(pos) = buffer.iter().position(|m| m == message) else {
            return Err(ModelError::NotInBuffer {
                principal: p,
                message: message.clone(),
            });
        };
        buffer.remove(pos);
        let action = Action::receive(message.clone());
        let event = Event::new(p.clone(), action.clone());
        self.step(event);
        self.record_action(&p, action);
        Ok(self)
    }

    /// Delivers the oldest buffered message to `p`, if any, returning it.
    pub fn receive_next(&mut self, p: impl Into<Principal>) -> Option<Message> {
        let p = p.into();
        let buffer = self.current.env.buffers.entry(p.clone()).or_default();
        if buffer.is_empty() {
            return None;
        }
        let message = buffer.remove(0);
        let action = Action::receive(message.clone());
        let event = Event::new(p.clone(), action.clone());
        self.step(event);
        self.record_action(&p, action);
        Some(message)
    }

    /// Appends a `newkey` action adding `key` to `p`'s key set.
    pub fn new_key(&mut self, p: impl Into<Principal>, key: impl Into<Key>) -> &mut Self {
        let p = p.into();
        let key = key.into();
        let action = Action::new_key(key.clone());
        let event = Event::new(p.clone(), action.clone());
        self.step(event);
        self.record_action(&p, action);
        if let Some(local) = self.current.locals.get_mut(&p) {
            local.key_set.insert(key);
        } else {
            self.current.env.key_set.insert(key);
        }
        self
    }

    /// Appends an idle step (no principal acts but time advances). Useful
    /// for padding the past epoch or aligning run lengths.
    pub fn idle(&mut self) -> &mut Self {
        // Modeled as the environment acquiring a key it already has (or a
        // throwaway bookkeeping key unique to nothing): we instead simply
        // duplicate the state with a no-op event by an inert newkey of an
        // existing env key when available. To keep histories faithful we
        // use a distinguished no-op: the environment "re-learns" a dummy
        // key name reserved for padding.
        let key = Key::new("__pad");
        let p = Principal::environment();
        let action = Action::new_key(key.clone());
        let event = Event::new(p, action);
        self.step(event);
        self.current.env.key_set.insert(key);
        // Note: deliberately not recorded in any local history.
        self
    }

    /// Finishes the run.
    ///
    /// # Errors
    ///
    /// [`ModelError::MalformedRun`] if the run would end before time 0.
    pub fn build(&mut self) -> Result<Run, ModelError> {
        let mut states = self.states.clone();
        states.push(self.current.clone());
        Run::from_parts(
            self.start_time,
            states,
            self.events.clone(),
            self.bindings.clone(),
        )
    }
}

/// Returns the environment state of the run's final state (for
/// inspection in tests and examples).
pub fn final_env(run: &Run) -> &EnvState {
    &run.state(run.horizon()).expect("horizon state exists").env
}

#[cfg(test)]
mod tests {
    use super::*;
    use atl_lang::Nonce;

    fn nonce(s: &str) -> Message {
        Message::nonce(Nonce::new(s))
    }

    #[test]
    fn times_and_states_align() {
        let mut b = RunBuilder::new(-2);
        b.principal("A", []);
        b.new_key("A", "K1");
        b.new_key("A", "K2");
        b.new_key("A", "K3");
        let run = b.build().unwrap();
        assert_eq!(run.start_time(), -2);
        assert_eq!(run.horizon(), 1);
        assert_eq!(run.times().collect::<Vec<_>>(), vec![-2, -1, 0, 1]);
        // Key acquired at time -2 appears in the state at time -1.
        assert!(!run
            .state(-2)
            .unwrap()
            .key_set(&Principal::new("A"))
            .contains(&Key::new("K1")));
        assert!(run
            .state(-1)
            .unwrap()
            .key_set(&Principal::new("A"))
            .contains(&Key::new("K1")));
    }

    #[test]
    fn send_buffers_and_receive_delivers() {
        let mut b = RunBuilder::new(0);
        b.principal("A", []);
        b.principal("B", []);
        b.send("A", nonce("X"), "B").unwrap();
        assert_eq!(
            b.current_state().env.buffer(&Principal::new("B")),
            [nonce("X")]
        );
        b.receive("B", &nonce("X")).unwrap();
        let run = b.build().unwrap();
        let final_state = run.state(run.horizon()).unwrap();
        assert!(final_state.env.buffer(&Principal::new("B")).is_empty());
        assert!(final_state
            .local(&Principal::new("B"))
            .received()
            .contains(&nonce("X")));
    }

    #[test]
    fn receive_requires_buffered_message() {
        let mut b = RunBuilder::new(0);
        b.principal("B", []);
        let err = b.receive("B", &nonce("X")).unwrap_err();
        assert!(matches!(err, ModelError::NotInBuffer { .. }));
    }

    #[test]
    fn restriction3_rejects_unconstructible_ciphertext() {
        let mut b = RunBuilder::new(0);
        b.principal("A", []);
        b.principal("B", []);
        let cipher = Message::encrypted(nonce("X"), Key::new("Kab"), Principal::new("A"));
        let err = b.send("A", cipher, "B").unwrap_err();
        assert!(matches!(err, ModelError::SendViolation { .. }));
    }

    #[test]
    fn resending_seen_ciphertext_is_allowed() {
        let mut b = RunBuilder::new(0);
        b.principal("A", [Key::new("K")]);
        b.principal("B", []);
        b.principal("C", []);
        let cipher = Message::encrypted(nonce("X"), Key::new("K"), Principal::new("A"));
        b.send("A", cipher.clone(), "B").unwrap();
        b.receive("B", &cipher).unwrap();
        // B does not hold K but may replay the ciphertext it received.
        b.send("B", cipher, "C").unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn restriction4_rejects_forged_from_field() {
        let mut b = RunBuilder::new(0);
        b.principal("A", [Key::new("K")]);
        b.principal("B", []);
        // A constructs ciphertext claiming it is from B.
        let forged = Message::encrypted(nonce("X"), Key::new("K"), Principal::new("B"));
        let err = b.send("A", forged, "B").unwrap_err();
        assert!(matches!(err, ModelError::SendViolation { .. }));
    }

    #[test]
    fn environment_may_forge_from_fields_but_not_break_r3() {
        let mut b = RunBuilder::new(0);
        b.principal("B", []);
        b.env_keys([Key::new("Ke")]);
        let env = Principal::environment();
        // The environment holds Ke, so it may construct ciphertext with any
        // from field (restriction 4 binds only system principals).
        let spoofed = Message::encrypted(nonce("X"), Key::new("Ke"), Principal::new("B"));
        b.send(env.clone(), spoofed, "B").unwrap();
        // But restriction 3 still binds it.
        let unknown = Message::encrypted(nonce("X"), Key::new("Kab"), Principal::new("B"));
        assert!(b.send(env, unknown, "B").is_err());
    }

    #[test]
    fn restriction5_rejects_blind_forwarding_by_system_principal() {
        let mut b = RunBuilder::new(0);
        b.principal("A", []);
        b.principal("B", []);
        let err = b
            .send("A", Message::forwarded(nonce("X")), "B")
            .unwrap_err();
        assert!(matches!(err, ModelError::SendViolation { .. }));
    }

    #[test]
    fn forwarding_after_receipt_is_allowed() {
        let mut b = RunBuilder::new(0);
        b.principal("A", []);
        b.principal("B", []);
        b.principal("C", []);
        b.send("A", nonce("X"), "B").unwrap();
        b.receive("B", &nonce("X")).unwrap();
        b.send("B", Message::forwarded(nonce("X")), "C").unwrap();
        assert!(b.build().is_ok());
    }

    #[test]
    fn sent_before_epoch_splits_at_time_zero() {
        let mut b = RunBuilder::new(-1);
        b.principal("A", []);
        b.principal("B", []);
        b.send("A", nonce("old"), "B").unwrap(); // time -1
        b.send("A", nonce("new"), "B").unwrap(); // time 0
        let run = b.build().unwrap();
        let past = run.sent_before_epoch();
        assert!(past.contains(&nonce("old")));
        assert!(!past.contains(&nonce("new")));
    }

    #[test]
    fn send_records_capture_sender_context() {
        let mut b = RunBuilder::new(0);
        b.principal("A", [Key::new("K")]);
        b.principal("B", []);
        let cipher = Message::encrypted(nonce("X"), Key::new("K"), Principal::new("A"));
        b.send("A", cipher.clone(), "B").unwrap();
        let run = b.build().unwrap();
        let recs = run.send_records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].sender, Principal::new("A"));
        assert!(recs[0].said_submsgs().contains(&nonce("X")));
    }

    #[test]
    fn extend_unchecked_equals_rebuild_at_every_prefix() {
        // Replay a run with sends (pre- and post-epoch), receives, and
        // newkeys event by event: a run extended in place must equal a
        // full rebuild of the same prefix after every single event.
        let mut b = RunBuilder::new(-1);
        b.principal("A", [Key::new("K")]);
        b.principal("B", []);
        b.send("A", nonce("old"), "B").unwrap();
        b.receive("B", &nonce("old")).unwrap();
        b.new_key("B", "K2");
        b.send("B", nonce("new"), "A").unwrap();
        b.receive("A", &nonce("new")).unwrap();
        let full = b.build().unwrap();

        let mut replay = RunBuilder::new(-1);
        replay.principal("A", [Key::new("K")]);
        replay.principal("B", []);
        let mut extended: Option<Run> = None;
        for (_, event) in full.events() {
            match &event.action {
                Action::Send { message, to } => {
                    replay
                        .send(event.actor.clone(), message.clone(), to.clone())
                        .unwrap();
                }
                Action::Receive { message } => {
                    replay.receive(event.actor.clone(), message).unwrap();
                }
                Action::NewKey { key } => {
                    replay.new_key(event.actor.clone(), key.clone());
                }
            }
            match &mut extended {
                None if replay.now() >= 0 => extended = Some(replay.build().unwrap()),
                None => {}
                Some(run) => {
                    let ev = replay.last_event().expect("just appended").clone();
                    run.extend_unchecked(ev, replay.current_state().clone());
                    let rebuilt = replay.build().unwrap();
                    assert_eq!(*run, rebuilt, "extension diverged from rebuild");
                    assert_eq!(run.send_records(), rebuilt.send_records());
                    assert_eq!(run.sent_before_epoch(), rebuilt.sent_before_epoch());
                }
            }
        }
        assert_eq!(extended.expect("run crossed the epoch"), full);
    }

    #[test]
    fn build_requires_reaching_epoch() {
        let mut b = RunBuilder::new(-3);
        b.principal("A", []);
        b.new_key("A", "K");
        assert!(matches!(b.build(), Err(ModelError::MalformedRun(_))));
    }

    #[test]
    fn non_ground_messages_rejected() {
        let mut b = RunBuilder::new(0);
        b.principal("A", []);
        b.principal("B", []);
        let err = b
            .send("A", Message::param(atl_lang::Param::new("X")), "B")
            .unwrap_err();
        assert!(matches!(err, ModelError::NotGround(_)));
    }
}
