//! Local, environment, and global states (Section 5).

use crate::action::{Action, Event};
use atl_lang::{hide_message, KeySet, Message, MessageSet, Principal, TermCache};
use std::collections::BTreeMap;

/// A system principal's local state: its local history, its key set, and
/// any application data (used, e.g., by the coin-toss example of Section 7,
/// where a principal's state records a coin outcome).
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LocalState {
    /// The sequence of all actions the principal has performed.
    pub history: Vec<Action>,
    /// The keys the principal holds.
    pub key_set: KeySet,
    /// Application-specific local data, part of the state for the purposes
    /// of indistinguishability.
    pub data: BTreeMap<String, String>,
}

impl LocalState {
    /// Creates an empty local state holding the given keys.
    pub fn with_keys(keys: impl IntoIterator<Item = atl_lang::Key>) -> Self {
        LocalState {
            history: Vec::new(),
            key_set: keys.into_iter().collect(),
            data: BTreeMap::new(),
        }
    }

    /// The set of messages the principal has received (the paper's `𝓜`):
    /// every `m` with `receive(m)` in the local history.
    pub fn received(&self) -> MessageSet {
        self.history
            .iter()
            .filter_map(|a| match a {
                Action::Receive { message } => Some(message.clone()),
                _ => None,
            })
            .collect()
    }

    /// The set of messages the principal has sent, analogously.
    pub fn sent(&self) -> MessageSet {
        self.history
            .iter()
            .filter_map(|a| match a {
                Action::Send { message, .. } => Some(message.clone()),
                _ => None,
            })
            .collect()
    }

    /// The `hide` operation of Section 6 applied to a whole local state:
    /// every message in the history has its unreadable ciphertext replaced
    /// by the opaque token, using the *current* key set.
    ///
    /// Two local states are indistinguishable to their owner exactly when
    /// their hidden forms are equal.
    pub fn hidden(&self) -> LocalState {
        self.hidden_by(&mut |m, keys| hide_message(m, keys))
    }

    /// [`Self::hidden`] routed through a [`TermCache`], so repeated hides
    /// of the same `(message, key set)` pair — ubiquitous when scanning
    /// many points of the same system — are computed once.
    pub fn hidden_with(&self, cache: &mut TermCache) -> LocalState {
        self.hidden_by(&mut |m, keys| (*cache.hide(m, keys)).clone())
    }

    fn hidden_by(&self, hide: &mut dyn FnMut(&Message, &KeySet) -> Message) -> LocalState {
        LocalState {
            history: self
                .history
                .iter()
                .map(|a| match a {
                    Action::Send { message, to } => Action::Send {
                        message: hide(message, &self.key_set),
                        to: to.clone(),
                    },
                    Action::Receive { message } => Action::Receive {
                        message: hide(message, &self.key_set),
                    },
                    Action::NewKey { key } => Action::NewKey { key: key.clone() },
                })
                .collect(),
            key_set: self.key_set.clone(),
            data: self.data.clone(),
        }
    }
}

/// The environment's state: the global history, the environment's own key
/// set, and a message buffer per principal holding messages sent but not
/// yet delivered (Section 5).
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EnvState {
    /// The sequence of all actions performed by any principal, each tagged
    /// with its performer.
    pub global_history: Vec<Event>,
    /// The environment's key set.
    pub key_set: KeySet,
    /// Per-principal buffers of undelivered messages. The environment
    /// principal has a buffer here too.
    pub buffers: BTreeMap<Principal, Vec<Message>>,
}

impl EnvState {
    /// The messages currently buffered for `p` (empty slice if none).
    pub fn buffer(&self, p: &Principal) -> &[Message] {
        self.buffers.get(p).map_or(&[], Vec::as_slice)
    }
}

/// A global state: the environment state plus one local state per system
/// principal (Section 5's tuple `(s_e, s_1, …, s_n)`).
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalState {
    /// The environment component `s_e`.
    pub env: EnvState,
    /// The system principals' components, keyed by principal.
    pub locals: BTreeMap<Principal, LocalState>,
}

impl GlobalState {
    /// The local state of `p`.
    ///
    /// For the distinguished environment principal this synthesizes a view
    /// from the environment state: its history is the environment's own
    /// actions drawn from the global history, and its key set is the
    /// environment key set. (The environment can deduce everything in the
    /// global state, but for the belief semantics only its own actions and
    /// keys matter, matching the treatment of system principals.)
    pub fn local(&self, p: &Principal) -> LocalState {
        if let Some(s) = self.locals.get(p) {
            return s.clone();
        }
        LocalState {
            history: self
                .env
                .global_history
                .iter()
                .filter(|e| &e.actor == p)
                .map(|e| e.action.clone())
                .collect(),
            key_set: self.env.key_set.clone(),
            data: BTreeMap::new(),
        }
    }

    /// The key set of `p` in this state (environment key set for the
    /// environment principal).
    pub fn key_set(&self, p: &Principal) -> &KeySet {
        self.locals.get(p).map_or(&self.env.key_set, |s| &s.key_set)
    }

    /// The system principals present in this state, in order.
    pub fn principals(&self) -> impl Iterator<Item = &Principal> {
        self.locals.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use atl_lang::{Key, Nonce};

    fn nonce(s: &str) -> Message {
        Message::nonce(Nonce::new(s))
    }

    #[test]
    fn received_and_sent_extraction() {
        let mut s = LocalState::with_keys([Key::new("K")]);
        s.history.push(Action::receive(nonce("X")));
        s.history.push(Action::send(nonce("Y"), "B"));
        s.history.push(Action::new_key("K2"));
        assert!(s.received().contains(&nonce("X")));
        assert!(!s.received().contains(&nonce("Y")));
        assert!(s.sent().contains(&nonce("Y")));
    }

    #[test]
    fn hidden_masks_unreadable_ciphertext_only() {
        let mut s = LocalState::with_keys([Key::new("Ka")]);
        let readable = Message::encrypted(nonce("X"), Key::new("Ka"), Principal::new("S"));
        let unreadable = Message::encrypted(nonce("Y"), Key::new("Kb"), Principal::new("S"));
        s.history.push(Action::receive(readable.clone()));
        s.history.push(Action::receive(unreadable));
        let h = s.hidden();
        assert_eq!(h.history[0], Action::receive(readable));
        assert_eq!(h.history[1], Action::receive(Message::Opaque));
    }

    #[test]
    fn hidden_states_merge_indistinguishable_histories() {
        // Two states that differ only in ciphertext the owner cannot read
        // hide to the same state.
        let mk = |inner: &str| {
            let mut s = LocalState::with_keys([]);
            s.history.push(Action::receive(Message::encrypted(
                nonce(inner),
                Key::new("K"),
                Principal::new("S"),
            )));
            s
        };
        assert_eq!(mk("X").hidden(), mk("Y").hidden());
    }

    #[test]
    fn hidden_with_cache_matches_uncached_hidden() {
        let mut s = LocalState::with_keys([Key::new("Ka")]);
        s.history.push(Action::receive(Message::encrypted(
            nonce("X"),
            Key::new("Ka"),
            Principal::new("S"),
        )));
        s.history.push(Action::send(
            Message::encrypted(nonce("Y"), Key::new("Kb"), Principal::new("S")),
            "B",
        ));
        let mut cache = TermCache::new();
        assert_eq!(s.hidden_with(&mut cache), s.hidden());
        // Second pass over the same state is answered from the cache.
        assert_eq!(s.hidden_with(&mut cache), s.hidden());
        assert!(cache.stats().hits >= 2);
    }

    #[test]
    fn environment_local_view_filters_global_history() {
        let env_p = Principal::environment();
        let mut g = GlobalState::default();
        g.env
            .global_history
            .push(Event::new("A", Action::new_key("Ka")));
        g.env
            .global_history
            .push(Event::new(env_p.clone(), Action::new_key("Ke")));
        g.env.key_set.insert(Key::new("Ke"));
        let view = g.local(&env_p);
        assert_eq!(view.history, vec![Action::new_key("Ke")]);
        assert!(view.key_set.contains(&Key::new("Ke")));
    }

    #[test]
    fn key_set_lookup() {
        let mut g = GlobalState::default();
        g.locals
            .insert(Principal::new("A"), LocalState::with_keys([Key::new("Ka")]));
        assert!(g.key_set(&Principal::new("A")).contains(&Key::new("Ka")));
        assert!(g.key_set(&Principal::environment()).is_empty());
    }
}
