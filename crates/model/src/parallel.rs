//! A small work-stealing pool for the parallel verification paths.
//!
//! The parallelizable workloads in this workspace — executing fault
//! plans in a sweep ([`crate::sweep_plans_on`]), filtering candidate runs in a
//! `G^j` good-run stage, prewarming per-point evaluation caches, and
//! proving independent goals (`atl-core`'s `goodruns`, `semantics`, and
//! `prover::BatchProver`, which reach this module through the
//! `atl_core::parallel` re-export) — all have the same shape: a
//! fixed slice of independent items, each mapped through a pure-ish
//! function, with results needed **in input order** so the parallel path
//! is bit-identical to the sequential one. [`Pool::map`] provides
//! exactly that: indices are dealt into per-worker deques, idle workers
//! steal from the *back* of busy workers' deques (classic work
//! stealing, so an item that turns out expensive does not serialize the
//! rest), and every result is placed back into its item's slot — a
//! deterministic ordered merge, independent of scheduling.
//!
//! The pool is built on [`std::thread::scope`], not a persistent
//! `'static` pool: scoped workers may borrow the caller's data (the
//! `&System`, the frozen interner) without `Arc`-wrapping the world and
//! without `unsafe` (this crate forbids it). Spawn cost is a few tens of
//! microseconds per `map`, which the callers amortize by parallelizing
//! only coarse units (whole runs, whole proof obligations, whole suite
//! entries).
//!
//! A pool with `jobs == 1` (see [`Pool::sequential`]) never spawns: it
//! runs the items inline, in order, on the calling thread. That path is
//! the *reference semantics* — `tests/e15_parallel.rs` asserts the
//! multi-worker paths agree with it exactly.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// A handle describing how much parallelism to use.
///
/// `Pool` is cheap to create and copy around; the worker threads
/// themselves are scoped to each [`map`](Pool::map) call.
///
/// ```
/// use atl_model::parallel::Pool;
/// let pool = Pool::new(4);
/// let squares = pool.map(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]); // always input order
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    jobs: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::auto()
    }
}

impl Pool {
    /// A pool using `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Self {
        Pool { jobs: jobs.max(1) }
    }

    /// A pool sized to the machine's available parallelism.
    pub fn auto() -> Self {
        Pool::new(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// The single-worker pool: runs everything inline on the calling
    /// thread, in input order. This is the reference path the parallel
    /// paths must match.
    pub fn sequential() -> Self {
        Pool::new(1)
    }

    /// How many workers a `map` call may use.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Maps `f` over `items`, returning results in input order.
    ///
    /// `f` receives each item's index alongside the item, so callers can
    /// recover positional context without threading it through the item
    /// type.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_init(items, || (), |(), i, t| f(i, t))
    }

    /// As [`map`](Pool::map), with per-worker scratch state: each worker
    /// calls `init` once and threads the state through every item it
    /// processes. The state never crosses threads (it is created and
    /// dropped on the worker), so it need not be `Send` — per-worker
    /// `Rc`-based caches are fine.
    pub fn map_init<T, S, R, I, F>(&self, items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        let jobs = self.jobs.min(items.len().max(1));
        if jobs == 1 {
            let mut state = init();
            return items
                .iter()
                .enumerate()
                .map(|(i, t)| f(&mut state, i, t))
                .collect();
        }
        let deques = deal(jobs, items.len());
        let worker_results: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
            let deques = &deques;
            let init = &init;
            let f = &f;
            let handles: Vec<_> = (0..jobs)
                .map(|w| {
                    scope.spawn(move || {
                        // State is created, used, and dropped on this
                        // worker thread — it never needs `Send`.
                        let mut state = init();
                        let mut out = Vec::new();
                        while let Some(i) = next_item(deques, w) {
                            out.push((i, f(&mut state, i, &items[i])));
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(join_worker).collect()
        });
        merge_ordered(items.len(), worker_results.into_iter())
    }

    /// As [`map_init`](Pool::map_init), additionally returning each
    /// worker's final state (here `S: Send`, since the states are handed
    /// back to the caller at join). The states come back in worker
    /// order, but which items a worker processed depends on scheduling —
    /// so callers must only rely on the *union* of the states (e.g.
    /// merged memo caches), never their partition.
    pub fn map_init_collect<T, S, R, I, F>(&self, items: &[T], init: I, f: F) -> (Vec<R>, Vec<S>)
    where
        T: Sync,
        S: Send,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        let jobs = self.jobs.min(items.len().max(1));
        if jobs == 1 {
            let mut state = init();
            let out = items
                .iter()
                .enumerate()
                .map(|(i, t)| f(&mut state, i, t))
                .collect();
            return (out, vec![state]);
        }
        let deques = deal(jobs, items.len());
        let worker_results: Vec<(Vec<(usize, R)>, S)> = std::thread::scope(|scope| {
            let deques = &deques;
            let init = &init;
            let f = &f;
            let handles: Vec<_> = (0..jobs)
                .map(|w| {
                    scope.spawn(move || {
                        let mut state = init();
                        let mut out = Vec::new();
                        while let Some(i) = next_item(deques, w) {
                            out.push((i, f(&mut state, i, &items[i])));
                        }
                        (out, state)
                    })
                })
                .collect();
            handles.into_iter().map(join_worker).collect()
        });
        let mut states = Vec::with_capacity(jobs);
        let mut results = Vec::with_capacity(jobs);
        for (rs, s) in worker_results {
            results.push(rs);
            states.push(s);
        }
        (merge_ordered(items.len(), results.into_iter()), states)
    }

    /// Runs a batch of heterogeneous jobs concurrently, returning their
    /// results in input order. Unlike [`map`](Pool::map), each job is an
    /// independent closure — this is the entry point for batch proving
    /// and suite sharding, where the work items are not a uniform slice.
    pub fn run<R, J>(&self, tasks: Vec<J>) -> Vec<R>
    where
        R: Send,
        J: FnOnce() -> R + Send,
    {
        let slots: Vec<Mutex<Option<J>>> = tasks.into_iter().map(|t| Mutex::new(Some(t))).collect();
        self.map(&slots, |_, slot| {
            let task = lock(slot).take().expect("each job slot is taken once");
            task()
        })
    }
}

/// Deals item indices into `jobs` contiguous blocks, one deque each.
/// Contiguous blocks keep the common case (similar-cost items) touching
/// memory in order; stealing rebalances the uncommon case.
fn deal(jobs: usize, n: usize) -> Vec<Mutex<VecDeque<usize>>> {
    (0..jobs)
        .map(|w| Mutex::new((w * n / jobs..(w + 1) * n / jobs).collect()))
        .collect()
}

/// Pops the next item for worker `w`: the front of its own deque, else a
/// steal from the back of the closest busy neighbor. `None` once every
/// deque is empty — all work is dealt up front, so no re-check is needed.
fn next_item(deques: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(i) = lock(&deques[w]).pop_front() {
        return Some(i);
    }
    let jobs = deques.len();
    (1..jobs).find_map(|d| lock(&deques[(w + d) % jobs]).pop_back())
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    // A poisoned deque only means another worker panicked mid-pop; the
    // deque itself is still a valid queue, and the panic will propagate
    // at join anyway.
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn join_worker<T>(handle: std::thread::ScopedJoinHandle<'_, T>) -> T {
    match handle.join() {
        Ok(v) => v,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

/// Places `(index, result)` pairs into their slots: the merge is ordered
/// by item index, so output is independent of which worker did what.
fn merge_ordered<R>(n: usize, per_worker: impl Iterator<Item = Vec<(usize, R)>>) -> Vec<R> {
    let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(n).collect();
    for rs in per_worker {
        for (i, r) in rs {
            debug_assert!(slots[i].is_none(), "each item processed exactly once");
            slots[i] = Some(r);
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every item processed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_input_order_at_any_width() {
        let items: Vec<usize> = (0..97).collect();
        let expect: Vec<usize> = items.iter().map(|x| x * 3 + 1).collect();
        for jobs in [1, 2, 3, 4, 8, 200] {
            let got = Pool::new(jobs).map(&items, |_, &x| x * 3 + 1);
            assert_eq!(got, expect, "jobs={jobs}");
        }
    }

    #[test]
    fn map_passes_the_item_index() {
        let items = ["a", "b", "c"];
        let got = Pool::new(2).map(&items, |i, &s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        let n = 300;
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let items: Vec<usize> = (0..n).collect();
        Pool::new(4).map(&items, |_, &i| counts[i].fetch_add(1, Ordering::SeqCst));
        assert!(counts.iter().all(|c| c.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn stealing_rebalances_lopsided_work() {
        // One expensive item at the front of worker 0's block must not
        // serialize the rest: the others get stolen and the totals match.
        let items: Vec<u64> = (0..64).collect();
        let got = Pool::new(4).map(&items, |i, &x| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x + 1
        });
        assert_eq!(got, (1..=64).collect::<Vec<u64>>());
    }

    #[test]
    fn map_init_threads_worker_local_state() {
        // A non-Send state type (Rc) is fine in map_init.
        use std::rc::Rc;
        let items: Vec<u32> = (0..40).collect();
        let got = Pool::new(3).map_init(
            &items,
            || Rc::new(std::cell::Cell::new(0u32)),
            |seen, _, &x| {
                seen.set(seen.get() + 1);
                x * 2
            },
        );
        assert_eq!(got, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_init_collect_returns_all_worker_states() {
        let items: Vec<u32> = (0..50).collect();
        let (got, states) =
            Pool::new(4).map_init_collect(&items, Vec::new, |acc: &mut Vec<u32>, _, &x| {
                acc.push(x);
                x
            });
        assert_eq!(got, items);
        // The union of the worker states is the full item set, whatever
        // the partition was.
        let mut union: Vec<u32> = states.into_iter().flatten().collect();
        union.sort_unstable();
        assert_eq!(union, items);
    }

    #[test]
    fn run_executes_heterogeneous_jobs_in_order() {
        let jobs: Vec<Box<dyn FnOnce() -> String + Send>> = vec![
            Box::new(|| "alpha".to_string()),
            Box::new(|| format!("{}", 6 * 7)),
            Box::new(|| "omega".to_string()),
        ];
        let got = Pool::new(2).run(jobs);
        assert_eq!(got, vec!["alpha", "42", "omega"]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let empty: [u8; 0] = [];
        assert!(Pool::new(4).map(&empty, |_, &x| x).is_empty());
        assert!(Pool::auto()
            .run(Vec::<Box<dyn FnOnce() -> u8 + Send>>::new())
            .is_empty());
    }

    #[test]
    fn sequential_pool_runs_inline() {
        // With jobs == 1 the closure runs on the calling thread, so a
        // thread-local is visible across items.
        thread_local! {
            static MARK: std::cell::Cell<u32> = const { std::cell::Cell::new(0) };
        }
        MARK.with(|m| m.set(7));
        let got = Pool::sequential().map(&[(), ()], |_, ()| MARK.with(|m| m.get()));
        assert_eq!(got, vec![7, 7]);
        assert_eq!(Pool::sequential().jobs(), 1);
    }

    #[test]
    fn zero_jobs_clamps_to_one() {
        assert_eq!(Pool::new(0).jobs(), 1);
        assert!(Pool::auto().jobs() >= 1);
    }

    #[test]
    fn worker_panic_propagates_at_join() {
        let result = std::panic::catch_unwind(|| {
            Pool::new(2).map(&[1, 2, 3, 4], |_, &x| {
                assert!(x != 3, "boom");
                x
            })
        });
        assert!(result.is_err(), "the item panic must reach the caller");
    }
}
